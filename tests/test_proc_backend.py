"""Unit tests of the real-process backend (workers, shm windows, death paths).

Everything here drives :class:`~repro.backends.proc.ProcBackend` directly or
through a bare :class:`~repro.rma.runtime.RmaRuntime` — the end-to-end
differential grid lives in ``tests/test_differential.py``, the kill-timing
stress sweep in ``tests/test_kill_timing.py``.  The whole module skips on
platforms without the fork start method or POSIX shared memory.
"""

import os
import signal

import numpy as np
import pytest

import repro
from repro.backends import ProcBackend, make_backend
from repro.backends.proc import SharedWindow, proc_available
from repro.errors import (
    BackendError,
    OpHandleError,
    ProcessFailedError,
    WatchdogError,
)
from repro.rma import RmaRuntime
from repro.simulator import Cluster

pytestmark = [
    pytest.mark.skipif(
        not proc_available(), reason="proc backend needs fork + POSIX shared memory"
    ),
    pytest.mark.usefixtures("proc_hygiene"),
]


@pytest.fixture
def rt():
    runtime = RmaRuntime(Cluster.simple(4, procs_per_node=2), backend="proc")
    runtime.win_allocate("w", 16)
    yield runtime
    runtime.finalize()


def _backend(rt) -> ProcBackend:
    backend = rt.backend
    assert isinstance(backend, ProcBackend)
    return backend


# ---------------------------------------------------------------------------
# Registry and lifecycle
# ---------------------------------------------------------------------------
def test_proc_is_a_registered_backend():
    assert "proc" in repro.available("backend")
    backend = make_backend("proc")
    assert isinstance(backend, ProcBackend)
    assert repro.proc_available()


def test_workers_are_real_distinct_processes(rt):
    backend = _backend(rt)
    pids = {backend.worker_pid(rank) for rank in range(4)}
    assert len(pids) == 4
    assert os.getpid() not in pids
    assert all(backend.ping(rank) for rank in range(4))


def test_rma_semantics_roundtrip_through_workers(rt):
    # put / get / accumulate all travel through the worker processes yet obey
    # the exact Backend contract the in-process backends implement.
    rt.put(0, 1, "w", 3, [7.0, 8.0])
    assert np.array_equal(rt.local(1, "w")[3:5], [7.0, 8.0])
    handle = rt.get_nb(2, 1, "w", 3, 2)
    rt.accumulate_nb(3, 1, "w", 3, [1.0, 1.0])
    rt.gsync()
    assert np.array_equal(handle.result(), [7.0, 8.0])  # read at completion
    assert np.array_equal(rt.local(1, "w")[3:5], [8.0, 9.0])


def test_close_is_idempotent_and_results_stay_readable(rt):
    rt.put(0, 1, "w", 0, [42.0])
    window = rt.windows.get("w")
    assert isinstance(window, SharedWindow)
    segment = window.segment_name
    assert segment in os.listdir("/dev/shm")
    rt.finalize()
    rt.finalize()  # idempotent
    _backend(rt).close()  # and directly, again
    assert segment not in os.listdir("/dev/shm")  # segment unlinked...
    assert rt.local(1, "w")[0] == 42.0  # ...but the results survive


# ---------------------------------------------------------------------------
# SharedWindow: in-place state transitions
# ---------------------------------------------------------------------------
def test_shared_window_transitions_never_detach_the_buffers(rt):
    window = rt.windows.get("w")
    view = window.buffers[1]  # the supervisor's live view of rank 1's slab
    rt.put(0, 1, "w", 0, [5.0, 6.0])
    assert view[0] == 5.0
    window.invalidate(1)
    assert view[0] == 0.0  # zeroed in place, same ndarray
    window.reallocate(1)
    window.restore(1, np.full(16, 3.0))
    assert view[0] == 3.0
    # The workers write through the same memory: a put lands in `view` too.
    rt.put(2, 1, "w", 0, [9.0])
    assert view[0] == 9.0


# ---------------------------------------------------------------------------
# Death detection and respawn
# ---------------------------------------------------------------------------
def test_poll_failures_reports_each_incarnation_once(rt):
    backend = _backend(rt)
    os.kill(backend.worker_pid(1), signal.SIGKILL)
    assert backend.wait_dead(1, timeout=10.0)
    assert backend.poll_failures() == [1]
    assert backend.poll_failures() == []  # same incarnation: reported once
    assert "dead" in backend.describe_rank(1)


def test_respawn_gives_a_fresh_worker_attached_to_existing_windows(rt):
    backend = _backend(rt)
    old_pid = backend.worker_pid(1)
    os.kill(old_pid, signal.SIGKILL)
    backend.wait_dead(1, timeout=10.0)
    backend.poll_failures()
    backend.respawn_rank(1)
    assert backend.worker_pid(1) != old_pid
    assert backend.ping(1)
    assert backend.poll_failures() == []  # the new incarnation is alive
    # The replacement worker must see windows created before its birth.
    rt.put(1, 0, "w", 2, [11.0])
    assert rt.local(0, "w")[2] == 11.0


def test_runtime_folds_worker_death_into_the_cluster(rt):
    backend = _backend(rt)
    os.kill(backend.worker_pid(3), signal.SIGKILL)
    backend.wait_dead(3, timeout=10.0)
    assert rt.cluster.is_alive(3)  # the control plane does not know yet
    rt.observe_failures()
    assert not rt.cluster.is_alive(3)  # ...now it does, via poll_failures
    with pytest.raises(ProcessFailedError, match="fail-stop"):
        rt.put(0, 3, "w", 0, [1.0])


# ---------------------------------------------------------------------------
# Mid-batch kills: the partial-write rollback
# ---------------------------------------------------------------------------
def test_mid_batch_kill_is_effect_free_and_keeps_the_queue(rt):
    backend = _backend(rt)
    handles = [rt.put_nb(0, 1, "w", m, [float(m + 1)]) for m in range(4)]
    backend.arm_kill(0, after_ops=2)  # die before applying the third op
    with pytest.raises(ProcessFailedError, match="process 0 has failed"):
        rt.flush(0, 1)
    # The two applied puts were rolled back: the aborted completion must be
    # indistinguishable from a never-dispatched one.
    assert np.array_equal(rt.local(1, "w"), np.zeros(16))
    # The queue survived the abort, so recovery's discard can poison the
    # handles exactly as on the in-process backends.
    assert backend.pending_ops(0) == 4
    rt.observe_failures()
    rt.discard_pending()
    assert all(h.discarded for h in handles)
    with pytest.raises(OpHandleError, match="discarded by a recovery"):
        handles[0].result()


def test_armed_kill_counts_across_batches(rt):
    backend = _backend(rt)
    backend.arm_kill(0, after_ops=3)
    rt.put_nb(0, 1, "w", 0, [1.0])
    rt.put_nb(0, 1, "w", 1, [2.0])
    rt.flush(0, 1)  # 2 ops applied; 1 remains armed
    assert np.array_equal(rt.local(1, "w")[:2], [1.0, 2.0])
    rt.put_nb(0, 2, "w", 0, [3.0])
    rt.put_nb(0, 2, "w", 1, [4.0])
    with pytest.raises(ProcessFailedError):
        rt.flush(0, 2)  # dies before the 2nd op of this batch
    assert np.array_equal(rt.local(2, "w")[:2], [0.0, 0.0])  # rolled back
    rt.observe_failures()
    rt.discard_pending()


# ---------------------------------------------------------------------------
# The ack-timeout watchdog
# ---------------------------------------------------------------------------
def test_wedged_worker_raises_a_diagnostic_watchdog_error():
    rt = RmaRuntime(Cluster.simple(2), backend=ProcBackend(ack_timeout=0.3))
    rt.win_allocate("w", 8)
    backend = rt.backend
    try:
        # Wedge rank 0's worker (test hook), then dispatch a batch to it: the
        # ack cannot arrive within the timeout.
        backend._workers[0].conn.send(("sleep", 1.0))
        rt.put_nb(0, 1, "w", 0, [1.0])
        with pytest.raises(WatchdogError, match="no reply within") as excinfo:
            rt.flush(0, 1)
        assert "rank 0" in str(excinfo.value)  # the per-rank state dump
        assert "pid=" in str(excinfo.value)
    finally:
        rt.finalize()  # the worker wakes up, drains its backlog and exits


def test_worker_error_reports_do_not_kill_the_worker(rt):
    backend = _backend(rt)
    worker = backend._workers[0]
    worker.conn.send(("no-such-tag",))
    tag, payload = worker.conn.recv()
    assert tag == "err" and "no-such-tag" in payload
    assert backend.ping(0)  # still alive and serving


def test_arm_kill_rejects_negative_offsets(rt):
    with pytest.raises(BackendError):
        _backend(rt).arm_kill(0, after_ops=-1)
