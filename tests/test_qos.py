"""QoS subsystem: delivery modes, multi-level checkpointing, the comparison engine."""

import json

import numpy as np
import pytest

from repro.errors import CheckpointError, QosError
from repro.ft import build_ft_stack, make_store
from repro.ft.stores import MultiLevelStore
from repro.qos.delivery import BestEffort, QosMetrics, Reliable, make_delivery
from repro.qos.engine import (
    QosSpec,
    _plan_seed,
    check_invariants,
    report_json,
    run_qos,
)
from repro.rma import RmaRuntime
from repro.simulator import Cluster
from repro.simulator.costs import cray_xe6_like
from repro.stats import latency_percentiles
from repro.study.model import IntervalModel, level_capture_seconds


def _runtime(nprocs=8, procs_per_node=2):
    return RmaRuntime(Cluster.simple(nprocs, procs_per_node=procs_per_node))


# ---------------------------------------------------------------------------
# QosMetrics — counting and serialization
# ---------------------------------------------------------------------------


def test_qos_metrics_round_trips_through_dict():
    metrics = QosMetrics()
    metrics.count("dropped_puts", 3)
    metrics.count("dropped_puts", 3, 2)
    metrics.count("stale_reads", 0)
    metrics.count("repairs", 5)
    payload = metrics.to_dict()
    # JSON-serializable as-is (string rank keys), and exact round trip.
    restored = QosMetrics.from_dict(json.loads(json.dumps(payload)))
    assert restored == metrics
    assert restored.total("dropped_puts") == 3
    assert restored.tolerated_ops == 4


def test_qos_metrics_rejects_unknown_events():
    metrics = QosMetrics()
    with pytest.raises(QosError, match="unknown qos event"):
        metrics.count("dropped_everything", 0)
    with pytest.raises(QosError, match="unknown qos event"):
        metrics.total("dropped_everything")
    with pytest.raises(QosError, match="unknown qos metric fields"):
        QosMetrics.from_dict({"dropped_everything": {}})


def test_delivery_mode_binds_to_exactly_one_job():
    mode = BestEffort(seed=7)
    first = _runtime()
    mode.bind(first, None)
    mode.bind(first, None)  # same job again is fine
    with pytest.raises(QosError, match="construct a fresh instance"):
        mode.bind(_runtime(), None)


def test_make_delivery_resolves_names_and_defaults():
    assert isinstance(make_delivery(None), Reliable)
    assert isinstance(make_delivery("best_effort"), BestEffort)
    with pytest.raises(QosError, match="'best_effort'.*'reliable'"):
        make_delivery("at_most_once")


def test_best_effort_entropy_is_deterministic():
    a, b = BestEffort(seed=11), BestEffort(seed=11)
    coords = [(0, 4, 0), (3, 4, 1), (7, 9, 5)]
    assert [a._entropy(*c) for c in coords] == [b._entropy(*c) for c in coords]
    assert all(0.0 <= a._entropy(*c) < 1.0 for c in coords)


# ---------------------------------------------------------------------------
# Order statistics — the all-equal edge (empty/single/NaN live in test_serve)
# ---------------------------------------------------------------------------


def test_latency_percentiles_all_equal_samples():
    assert latency_percentiles([2.5] * 40) == {"p50": 2.5, "p95": 2.5, "p99": 2.5}


# ---------------------------------------------------------------------------
# ActionLog dirty-region tracking
# ---------------------------------------------------------------------------


def test_action_log_merges_dirty_regions_and_truncate_clears():
    rt = _runtime()
    stack = build_ft_stack(rt, store="memory")
    log = stack.log
    rt.win_allocate("w", 64)
    rt.put(0, 1, "w", 4, np.ones(4))
    rt.put(0, 1, "w", 6, np.ones(4))  # overlaps [4,8) -> merges to (4, 6)
    rt.put(2, 1, "w", 32, np.ones(2))  # disjoint span
    rt.flush_all(0)
    rt.flush_all(2)
    regions = log.dirty_regions()
    assert regions[(1, "w")] == [(4, 6), (32, 2)]
    log.truncate()
    assert log.dirty_regions() == {}
    stack.uninstall(rt)


# ---------------------------------------------------------------------------
# MultiLevelStore — construction, incremental capture, recovery reach
# ---------------------------------------------------------------------------


def test_multilevel_store_registered_and_validated():
    store = make_store("multilevel")
    assert isinstance(store, MultiLevelStore)
    assert [
        (lvl.kind, lvl.every) for lvl in store.levels
    ] == list(MultiLevelStore.DEFAULT_LEVELS)
    with pytest.raises(CheckpointError, match="do not nest"):
        MultiLevelStore(base="multilevel")
    with pytest.raises(CheckpointError, match="level kind"):
        MultiLevelStore(levels=(("tape", 2),))
    with pytest.raises(CheckpointError, match="cadence"):
        MultiLevelStore(levels=(("parity", 0),))


def test_multilevel_incremental_capture_moves_only_dirty_bytes():
    rt = _runtime()
    stack = build_ft_stack(rt, store=MultiLevelStore(levels=(("parity", 1),)))
    rt.win_allocate("w", 64)
    for r in range(8):
        rt.local(r, "w")[:] = float(r)
    stack.checkpointer.checkpoint(tag=0)  # first capture seeds full mirrors
    m = rt.cluster.metrics
    full_image = 8 * 64 * 8
    assert m.get("ft.multilevel_moved_bytes") == full_image
    assert m.get("ft.multilevel_full_bytes") == full_image
    rt.put(0, 1, "w", 8, np.full(4, 99.0))
    rt.flush_all(0)
    stack.checkpointer.checkpoint(tag=1)
    assert m.get("ft.multilevel_moved_bytes") == full_image + 4 * 8
    # Direct local writes bypass the action log; the content-diff backstop
    # still ships them, keeping the mirror bit-exact.
    rt.local(5, "w")[3] = -7.0
    stack.checkpointer.checkpoint(tag=2)
    assert m.get("ft.multilevel_moved_bytes") == full_image + 4 * 8 + 8
    stack.uninstall(rt)


def test_multilevel_upper_level_survives_rank_and_buddy_loss():
    rt = _runtime()
    stack = build_ft_stack(rt, store="multilevel")
    store = stack.store
    rt.win_allocate("w", 16)
    for r in range(8):
        rt.local(r, "w")[:] = 10.0 + r
    stack.checkpointer.checkpoint(tag=0)
    buddy = store.buddies[0]
    rt.cluster.fail_rank(0)
    rt.cluster.fail_rank(buddy)
    rt.observe_failures()
    version = store.latest()
    assert not store.base.available(version, 0)
    assert store.available(version, 0)
    payload = store.fetch(version, 0)
    assert payload.source == "multilevel-parity"
    outcome = stack.recovery.recover()
    assert outcome.tag == 0
    for r in range(8):
        assert np.array_equal(rt.local(r, "w"), np.full(16, 10.0 + r))
    stack.uninstall(rt)


def test_multilevel_archive_extends_restore_reach_past_eviction():
    rt = _runtime()
    stack = build_ft_stack(
        rt, store=MultiLevelStore(keep_versions=1, levels=(("disk", 4),))
    )
    store = stack.store
    rt.win_allocate("w", 8)
    for r in range(8):
        rt.local(r, "w")[:] = 1.0
    stack.checkpointer.checkpoint(tag="captured")
    for r in range(8):
        rt.local(r, "w")[:] = 2.0
    stack.checkpointer.checkpoint(tag="live")  # evicts v0 into the archive
    assert [v.tag for v in store.versions] == ["live"]
    assert list(store.archived) == [0]
    buddy = store.buddies[2]
    rt.cluster.fail_rank(2)
    rt.cluster.fail_rank(buddy)
    rt.observe_failures()
    usable = store.latest_usable(list(range(8)))
    assert usable is not None and usable.tag == "captured"
    payload = store.fetch(usable, 2)
    assert payload.source == "multilevel-disk"
    assert np.array_equal(payload.windows["w"], np.full(8, 1.0))
    stack.uninstall(rt)


# ---------------------------------------------------------------------------
# Interval model — per-level pricing and cadences
# ---------------------------------------------------------------------------


def test_level_capture_seconds_prices_kinds_and_validates():
    costs = cray_xe6_like()
    parity = level_capture_seconds(
        "parity", bytes_per_rank=1 << 20, nprocs=8, cost_model=costs
    )
    disk = level_capture_seconds(
        "disk", bytes_per_rank=1 << 20, nprocs=8, cost_model=costs
    )
    assert 0 < parity < disk  # shared-PFS writes cost more than neighbor copies
    dirty = level_capture_seconds(
        "parity", bytes_per_rank=1 << 20, nprocs=8, cost_model=costs,
        dirty_fraction=0.25,
    )
    assert dirty < parity
    with pytest.raises(Exception):
        level_capture_seconds(
            "tape", bytes_per_rank=1 << 20, nprocs=8, cost_model=costs
        )
    with pytest.raises(Exception):
        level_capture_seconds(
            "parity", bytes_per_rank=1 << 20, nprocs=8, cost_model=costs,
            dirty_fraction=0.0,
        )


def test_multilevel_intervals_assign_rates_in_fdh_order():
    model = IntervalModel(
        cost_model=cray_xe6_like(),
        nprocs=8,
        bytes_per_rank=1 << 20,
        store="multilevel",
        rates_per_level={1: 1e-3, 2: 1e-5},
    )
    cadences = model.multilevel_intervals(("parity", "disk"))
    assert len(cadences) == 2
    # The frequent node-level rate is absorbed by the base store; the parity
    # level guards the rarer blade-level rate, the disk level the remainder.
    assert cadences[0] is not None and cadences[0] >= 1
    # Rarer upper-level failures mean (weakly) sparser captures.
    assert cadences[1] is None or cadences[1] >= cadences[0]


def test_multilevel_intervals_failure_free_is_none():
    model = IntervalModel(
        cost_model=cray_xe6_like(),
        nprocs=8,
        bytes_per_rank=1 << 20,
        store="multilevel",
        rates_per_level={},
    )
    assert model.multilevel_intervals(("parity", "disk")) == [None, None]


# ---------------------------------------------------------------------------
# Comparison engine — spec validation, shared plans, invariant gates
# ---------------------------------------------------------------------------


def test_qos_spec_validates_axes_and_parameters():
    with pytest.raises(QosError, match="unknown delivery"):
        QosSpec(deliveries=("telepathy",))
    with pytest.raises(QosError, match="unknown store"):
        QosSpec(stores=("tape",))
    with pytest.raises(QosError, match="axis.*empty"):
        QosSpec(backends=())
    with pytest.raises(QosError, match="at least one injected kill"):
        QosSpec(kills=0)
    with pytest.raises(QosError, match="stale_fraction"):
        QosSpec(stale_fraction=1.5)


def test_plan_seed_depends_only_on_master_seed_and_trial():
    a = QosSpec(seed=3, stores=("memory",))
    b = QosSpec(seed=3, stores=("memory", "multilevel"))
    assert _plan_seed(a, 0) == _plan_seed(b, 0)
    assert _plan_seed(a, 0) != _plan_seed(a, 1)
    assert _plan_seed(QosSpec(seed=4, stores=("memory",)), 0) != _plan_seed(a, 0)


def test_run_qos_trade_off_invariants_hold_on_sim():
    spec = QosSpec(
        backends=("sim",),
        trials=1,
        interval=3,
        workload_params={"slots": 16, "updates_per_step": 4, "steps": 12},
    )
    report = run_qos(spec, executor="serial")
    assert check_invariants(report) == []
    cells = report["cells"]
    reliable = cells["sim/memory/reliable"]
    tolerant = cells["sim/memory/best_effort"]
    assert reliable["min_quality"] == 1.0
    assert tolerant["mean_elapsed_s"] < reliable["mean_elapsed_s"]
    assert tolerant["tolerated_ops"] > 0
    multilevel = cells["sim/multilevel/reliable"]
    assert 0 < multilevel["multilevel_moved_bytes"] < multilevel["multilevel_full_bytes"]
    # Canonical serialization: a re-run reproduces the report byte for byte.
    assert report_json(run_qos(spec, executor="serial")) == report_json(report)
