"""Window access, invalidation and reallocation semantics."""

import numpy as np
import pytest

from repro.errors import ProcessFailedError, WindowError
from repro.rma.window import Window, WindowRegistry


@pytest.fixture
def window():
    return Window(name="u", size=8, dtype=np.float64, nprocs=4)


def test_buffers_start_zeroed_per_rank(window):
    for rank in range(4):
        assert np.array_equal(window.local(rank), np.zeros(8))


def test_read_write_round_trip(window):
    window.write(1, 2, [1.5, 2.5, 3.5])
    assert np.array_equal(window.read(1, 2, 3), [1.5, 2.5, 3.5])
    # read returns a copy, not a view
    copy = window.read(1, 2, 3)
    copy[0] = -1.0
    assert window.read(1, 2, 1)[0] == 1.5


def test_out_of_bounds_and_bad_rank_accesses_raise(window):
    with pytest.raises(WindowError):
        window.read(0, 6, 3)
    with pytest.raises(WindowError):
        window.write(0, -1, [1.0])
    with pytest.raises(WindowError):
        window.read(0, 0, 0)
    with pytest.raises(WindowError):
        window.local(7)


def test_invalidate_loses_content_and_blocks_access(window):
    window.write(2, 0, np.arange(8.0))
    window.invalidate(2)
    assert window.is_invalidated(2)
    for access in (
        lambda: window.local(2),
        lambda: window.read(2, 0, 1),
        lambda: window.write(2, 0, [1.0]),
        lambda: window.snapshot(2),
    ):
        with pytest.raises(ProcessFailedError):
            access()
    # Other ranks are unaffected.
    assert np.array_equal(window.local(3), np.zeros(8))


def test_reallocate_gives_a_fresh_zeroed_buffer(window):
    window.write(1, 0, np.ones(8))
    window.invalidate(1)
    window.reallocate(1)
    assert not window.is_invalidated(1)
    assert np.array_equal(window.local(1), np.zeros(8))


def test_restore_repopulates_even_while_invalidated(window):
    checkpoint = np.arange(8.0)
    window.write(0, 0, checkpoint)
    saved = window.snapshot(0)
    window.invalidate(0)
    window.restore(0, saved)
    assert not window.is_invalidated(0)
    assert np.array_equal(window.local(0), checkpoint)


def test_restore_rejects_wrong_payload_size(window):
    with pytest.raises(WindowError):
        window.restore(0, np.zeros(5))


def test_window_validates_construction():
    with pytest.raises(WindowError):
        Window(name="bad", size=0, dtype=np.float64, nprocs=2)
    with pytest.raises(WindowError):
        Window(name="bad", size=4, dtype=np.float64, nprocs=0)


def test_registry_creates_looks_up_and_rejects_duplicates():
    registry = WindowRegistry()
    win = registry.create("u", 4, np.float64, 2)
    assert registry.get("u") is win
    assert "u" in registry and len(registry) == 1
    with pytest.raises(WindowError):
        registry.create("u", 4, np.float64, 2)
    with pytest.raises(WindowError):
        registry.get("unknown")


def test_registry_invalidates_and_reallocates_across_all_windows():
    registry = WindowRegistry()
    a = registry.create("a", 4, np.float64, 3)
    b = registry.create("b", 2, np.int64, 3)
    registry.invalidate_rank(1)
    assert a.is_invalidated(1) and b.is_invalidated(1)
    registry.reallocate_rank(1)
    assert not a.is_invalidated(1) and not b.is_invalidated(1)
