"""Tests for the resilience-study engine: workloads, model, auto interval, campaigns."""

from __future__ import annotations

import math

import numpy as np
import pytest

import repro
from repro.errors import CampaignError, PolicyError, StudyError
from repro.registry import available
from repro.simulator import FailureSchedule
from repro.simulator.costs import cray_xe6_like, ethernet_cluster_like
from repro.study import (
    WORKLOADS,
    CampaignSpec,
    HeatStencil,
    IntervalModel,
    KvUpdate,
    RingAllreduce,
    check_against_baseline,
    check_invariants,
    make_workload,
    optimal_interval_seconds,
    predicted_overhead,
    render_markdown,
    report_json,
    run_campaign,
)
from repro.study.campaign import _Cell, _trial_seed
from repro.study.model import checkpoint_seconds, restart_seconds, system_failure_rate


# ----------------------------------------------------------------------
# Registry introspection
# ----------------------------------------------------------------------
def test_available_lists_every_seam():
    assert available("workload") == ("allreduce", "kv", "kv_service", "stencil")
    assert available("store") == ("disk", "memory", "multilevel", "parity")
    assert available("recovery") == ("degraded", "global", "localized")
    assert available("delivery") == ("best_effort", "reliable")
    expected_backends = (
        ("proc", "sim", "vector") if repro.proc_available() else ("sim", "vector")
    )
    assert available("backend") == expected_backends


def test_available_rejects_unknown_kind():
    with pytest.raises(KeyError, match="registered kinds"):
        available("flux-capacitor")


def test_policy_error_listings_come_from_available():
    for kind, kwargs in (
        ("store", {"store": "nope"}),
        ("recovery", {"recovery": "nope"}),
    ):
        with pytest.raises(PolicyError) as err:
            repro.FaultTolerancePolicy(**kwargs)
        for name in available(kind):
            assert repr(name) in str(err.value)


def test_unknown_workload_lists_catalog():
    with pytest.raises(StudyError) as err:
        make_workload("nope")
    for name in available("workload"):
        assert repr(name) in str(err.value)


# ----------------------------------------------------------------------
# Workload catalog
# ----------------------------------------------------------------------
def test_catalog_covers_the_three_examples():
    available("workload")  # imports every builtin catalog module (repro.serve)
    assert set(WORKLOADS) == {"stencil", "allreduce", "kv", "kv_service"}


def test_workload_digest_is_bit_exact():
    wl = HeatStencil(n_local=8, iters=10)
    a = wl.run()
    b = wl.run()
    assert a.digest == b.digest
    assert np.array_equal(a.result, b.result)
    # One ulp of difference must change the digest.
    perturbed = a.result.copy()
    perturbed[0] = np.nextafter(perturbed[0], np.inf)
    assert wl.digest(perturbed) != a.digest


def test_workload_parameterization_changes_shape():
    small = RingAllreduce(nprocs=4, chunk=4)
    assert small.steps == 6
    run = small.run()
    assert run.result.shape == (4, 16)
    assert np.allclose(run.result, small.expected()[None, :])


def test_kv_workload_matches_local_replay():
    wl = KvUpdate(nprocs=4, slots=8, updates_per_step=4, steps=6, seed=3)
    run = wl.run(ft=repro.FaultTolerancePolicy(interval=None, demand_threshold_bytes=256))
    assert np.array_equal(run.result, wl.expected())


def test_workload_recovers_bit_identical_under_injected_failure():
    wl = HeatStencil(n_local=8, iters=20)
    base = wl.run()
    schedule = FailureSchedule.single_rank(2, base.report.elapsed * 0.5)
    recovered = wl.run(ft=repro.FaultTolerancePolicy(interval=5), failures=schedule)
    assert recovered.report.recoveries >= 1
    assert recovered.digest == base.digest


def test_workload_validation():
    with pytest.raises(StudyError):
        HeatStencil(nprocs=1)
    with pytest.raises(StudyError):
        HeatStencil(n_local=0)
    with pytest.raises(StudyError):
        KvUpdate(steps=0)


def test_bytes_per_rank_matches_window_arithmetic():
    wl = HeatStencil(n_local=16, iters=4)
    assert wl.bytes_per_rank() == (16 + 2) * 8
    ar = RingAllreduce(nprocs=4, chunk=8)
    assert ar.bytes_per_rank() == 4 * 8 * 8


# ----------------------------------------------------------------------
# Analytic model
# ----------------------------------------------------------------------
def test_system_failure_rate_sums_levels():
    assert system_failure_rate({1: 0.5, 2: 0.25}) == 0.75
    assert system_failure_rate({}) == 0.0
    with pytest.raises(StudyError):
        system_failure_rate({1: -1.0})


def test_checkpoint_cost_orders_stores_as_the_paper_does():
    costs = cray_xe6_like()
    kwargs = dict(bytes_per_rank=1 << 20, nprocs=64, cost_model=costs)
    memory = checkpoint_seconds("memory", **kwargs)
    disk = checkpoint_seconds("disk", **kwargs)
    parity = checkpoint_seconds("parity", **kwargs)
    # Diskless checkpointing beats the PFS spill (Figure 10d), and parity
    # places less data than the full buddy copy.
    assert memory < disk
    assert parity < memory
    with pytest.raises(StudyError, match="memory"):
        checkpoint_seconds("nope", **kwargs)


def test_restart_cost_is_positive_and_store_dependent():
    costs = cray_xe6_like()
    kwargs = dict(bytes_per_rank=1 << 20, nprocs=64, cost_model=costs)
    assert 0 < restart_seconds("memory", **kwargs) < restart_seconds("disk", **kwargs)


def test_daly_interval_midpoint_behavior():
    # Classic sanity: tau grows with MTBF, shrinks with cheap checkpoints.
    assert optimal_interval_seconds(1.0, 10_000.0) < optimal_interval_seconds(
        4.0, 10_000.0
    )
    assert optimal_interval_seconds(1.0, 100.0) < optimal_interval_seconds(
        1.0, 10_000.0
    )
    # Degenerate regimes.
    assert math.isinf(optimal_interval_seconds(1.0, math.inf))
    assert optimal_interval_seconds(50.0, 10.0) == 10.0  # C >= 2M -> tau = M
    # Young's first-order term dominates for C << M.
    c, m = 1.0, 1e6
    assert optimal_interval_seconds(c, m) == pytest.approx(
        math.sqrt(2 * c * m), rel=0.01
    )


def test_predicted_overhead_has_a_minimum_at_the_optimum():
    c, r, m = 0.5, 0.2, 1000.0
    tau_opt = optimal_interval_seconds(c, m)
    at_opt = predicted_overhead(tau_opt, checkpoint_s=c, restart_s=r, mtbf_s=m)
    for factor in (0.2, 0.5, 2.0, 5.0):
        other = predicted_overhead(
            tau_opt * factor, checkpoint_s=c, restart_s=r, mtbf_s=m
        )
        assert at_opt <= other


def test_interval_model_resolves_steps_and_curves():
    model = IntervalModel(
        cost_model=cray_xe6_like(),
        nprocs=8,
        bytes_per_rank=1 << 16,
        store="memory",
        rates_per_level={1: 100.0},
    )
    steps = model.optimal_interval_steps(1e-5, max_steps=100)
    assert steps is not None and 1 <= steps <= 100
    curve = model.overhead_curve([1, steps, 100], 1e-5)
    assert len(curve) == 3
    assert curve[1] == min(curve)  # the resolved interval is (near) the minimum
    # Failure-free: no periodic checkpoints at all.
    free = IntervalModel(
        cost_model=cray_xe6_like(), nprocs=8, bytes_per_rank=1 << 16, store="memory"
    )
    assert free.optimal_interval_steps(1e-5) is None


def test_interval_model_reacts_to_the_machine():
    # A slower machine (expensive checkpoints) stretches the interval.
    fast = IntervalModel(
        cost_model=cray_xe6_like(), nprocs=8, bytes_per_rank=1 << 20,
        store="disk", rates_per_level={1: 10.0},
    )
    slow = IntervalModel(
        cost_model=ethernet_cluster_like(), nprocs=8, bytes_per_rank=1 << 20,
        store="disk", rates_per_level={1: 10.0},
    )
    assert slow.optimal_interval_seconds() > fast.optimal_interval_seconds()


# ----------------------------------------------------------------------
# interval="auto" through the session
# ----------------------------------------------------------------------
def test_policy_validates_interval_strings_and_rates():
    repro.FaultTolerancePolicy(interval="auto")  # fine
    with pytest.raises(PolicyError):
        repro.FaultTolerancePolicy(interval="sometimes")
    with pytest.raises(PolicyError):
        repro.FaultTolerancePolicy(interval=0)
    with pytest.raises(PolicyError):
        repro.FaultTolerancePolicy(interval="auto", failure_rates={1: -0.5})


def test_auto_interval_resolves_through_the_model():
    wl = HeatStencil(n_local=16, iters=24)
    base = wl.run()
    rate = 2.0 / base.report.elapsed
    run = wl.run(
        ft=repro.FaultTolerancePolicy(interval="auto", failure_rates={1: rate})
    )
    assert run.resolved_interval is not None
    assert 1 <= run.resolved_interval <= 24
    # Periodic checkpoints actually happened at that cadence.
    assert run.report.checkpoints >= 24 // run.resolved_interval
    assert run.digest == base.digest


def test_auto_interval_failure_free_means_no_periodic_checkpoints():
    wl = HeatStencil(n_local=8, iters=12)
    run = wl.run(ft=repro.FaultTolerancePolicy(interval="auto"))
    assert run.resolved_interval is None
    assert run.report.checkpoints == 1  # only the phase-opening checkpoint


def test_auto_interval_estimates_rates_from_schedule_when_undeclared():
    wl = HeatStencil(n_local=16, iters=24)
    base = wl.run()
    schedule = FailureSchedule.single_rank(3, base.report.elapsed * 0.6)
    run = wl.run(ft=repro.FaultTolerancePolicy(interval="auto"), failures=schedule)
    assert run.resolved_interval is not None
    assert run.report.recoveries >= 1
    assert run.digest == base.digest


def test_auto_interval_recovers_bit_identical_with_localized_replay():
    wl = HeatStencil(n_local=16, iters=24)
    base = wl.run()
    rate = {1: 2.0 / base.report.elapsed}
    schedule = FailureSchedule.single_rank(3, base.report.elapsed * 0.6)
    glob = wl.run(
        ft=repro.FaultTolerancePolicy(
            interval="auto", failure_rates=rate, recovery="global"
        ),
        failures=schedule,
    )
    loc = wl.run(
        ft=repro.FaultTolerancePolicy(
            interval="auto", failure_rates=rate, recovery="localized"
        ),
        failures=schedule,
    )
    assert glob.digest == base.digest == loc.digest
    restored_g = glob.report.metrics.total("ft.restored_bytes")
    restored_l = loc.report.metrics.total("ft.restored_bytes")
    assert 0 < restored_l < restored_g


def test_repeated_node_failure_during_replay_stays_bit_identical():
    """Regression test: a failure striking during (or right after) a localized
    replay used to desynchronize the log's step marks from its actions, so the
    *next* localized recovery restored the survivor snapshot one boundary too
    early and double-applied survivor work."""
    from repro.simulator.failures import FailureEvent

    wl = HeatStencil(n_local=16, iters=36)
    base = wl.run()
    e = base.report.elapsed
    schedule = FailureSchedule(
        [
            FailureEvent(0.16 * e, 1, 2),
            FailureEvent(0.70 * e, 1, 0),
            FailureEvent(0.74 * e, 1, 0),
        ]
    )
    run = wl.run(
        ft=repro.FaultTolerancePolicy(interval=6, recovery="localized"),
        failures=schedule,
    )
    assert run.report.recoveries >= 3
    assert run.digest == base.digest


# ----------------------------------------------------------------------
# Job context manager (session lifecycle)
# ----------------------------------------------------------------------
def test_job_context_manager_closes_on_exit():
    with repro.launch(4) as job:
        assert not job.closed
    assert job.closed
    job.close()  # idempotent


# ----------------------------------------------------------------------
# Campaign engine
# ----------------------------------------------------------------------
TINY = CampaignSpec(
    workloads=("stencil",),
    recoveries=("global", "localized"),
    mean_failures=(2.0,),
    intervals=("auto", 6),
    trials=3,
    seed=42,
    workload_params={"stencil": {"n_local": 8, "iters": 18}},
)


def test_campaign_spec_validation():
    with pytest.raises(CampaignError):
        CampaignSpec(workloads=())
    with pytest.raises(CampaignError):
        CampaignSpec(workloads=("nope",))
    with pytest.raises(CampaignError):
        CampaignSpec(trials=0)
    with pytest.raises(CampaignError):
        CampaignSpec(intervals=("sometimes",))
    with pytest.raises(CampaignError):
        CampaignSpec(mean_failures=(-1.0,))


def test_trial_seeds_ignore_recovery_and_separate_trials():
    cell_g = _Cell("stencil", "sim", "memory", "global", 2.0, 6, (0, 0, 0, 0, 0))
    cell_l = _Cell("stencil", "sim", "memory", "localized", 2.0, 6, (0, 0, 0, 0, 0))
    spec = TINY
    # Paired protocols face identical fault loads...
    assert _trial_seed(spec, cell_g, 0) == _trial_seed(spec, cell_l, 0)
    # ...but trials (and campaign seeds) are independent streams.
    assert _trial_seed(spec, cell_g, 0) != _trial_seed(spec, cell_g, 1)
    other = CampaignSpec(**{**TINY.__dict__, "seed": 43})
    assert _trial_seed(spec, cell_g, 0) != _trial_seed(other, cell_g, 0)


def test_campaign_report_is_byte_identical_across_reruns_and_executors():
    serial = run_campaign(TINY, executor="serial")
    again = run_campaign(TINY, executor="serial")
    threaded = run_campaign(TINY, executor="thread", max_workers=4)
    assert report_json(serial) == report_json(again) == report_json(threaded)


def test_campaign_different_seeds_draw_disjoint_schedules():
    other = CampaignSpec(**{**TINY.__dict__, "seed": 7})
    a = run_campaign(TINY, executor="serial")
    b = run_campaign(other, executor="serial")

    def event_times(report):
        times = set()
        for cell in report["cells"].values():
            for trial in cell["trials"]:
                times.update(t for t, _level, _idx in trial["events"])
        return times

    times_a, times_b = event_times(a), event_times(b)
    assert times_a and times_b
    assert not (times_a & times_b)


def test_campaign_invariants_and_rendering():
    report = run_campaign(TINY, executor="thread")
    assert check_invariants(report) == []
    md = render_markdown(report)
    assert md.count("\n") == 2 + len(report["cells"])
    assert "auto→" in md
    # Every cell recovered something and stayed bit-identical when it survived.
    for cell in report["cells"].values():
        assert cell["survival_rate"] > 0
        assert cell["bit_identical_rate"] == 1.0
        assert cell["predicted_overhead"] > 0
    # Self-comparison passes the baseline gate; a mutated baseline fails it.
    assert check_against_baseline(report, report) == []
    import copy

    mutated = copy.deepcopy(report)
    key = next(iter(mutated["cells"]))
    mutated["cells"][key]["survival_rate"] = -1.0
    assert any("survival_rate" in f for f in check_against_baseline(report, mutated))
    missing = copy.deepcopy(report)
    missing["cells"]["ghost/sim/memory/global/mf=2/int=6"] = mutated["cells"][key]
    assert any("missing" in f for f in check_against_baseline(report, missing))


def test_campaign_cli_smoke(tmp_path, capsys):
    from repro.study.__main__ import main

    out = tmp_path / "report.json"
    md = tmp_path / "report.md"
    status = main(
        [
            "--workloads", "stencil",
            "--recoveries", "global,localized",
            "--rates", "1",
            "--intervals", "auto,6",
            "--trials", "2",
            "--executor", "serial",
            "--output", str(out),
            "--markdown", str(md),
        ]
    )
    assert status == 0
    assert out.exists() and md.exists()
    printed = capsys.readouterr().out
    assert "| workload |" in printed
    assert "invariants hold" in printed
