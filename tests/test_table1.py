"""Round-trip tests for the paper's Table 1 categorization."""

import pytest

from repro.rma.actions import ActionCategory, OpKind
from repro.rma.table1 import (
    TABLE1,
    categories_of,
    operations_in_category,
    render_table1,
)


def test_categories_of_round_trips_every_entry():
    for entry in TABLE1:
        assert categories_of(entry.language, entry.operation) == entry.categories


def test_operations_in_category_round_trips_every_entry():
    for entry in TABLE1:
        for category in entry.categories:
            assert entry in operations_in_category(category, entry.language)
            assert entry in operations_in_category(category)


def test_entries_never_leak_into_foreign_categories():
    for entry in TABLE1:
        for category in ActionCategory:
            if category not in entry.categories:
                assert entry not in operations_in_category(category, entry.language)


def test_unknown_operation_has_no_categories():
    assert categories_of("mpi3", "MPI_Does_not_exist") == ()
    assert categories_of("chapel", "MPI_Put") == ()


def test_atomics_are_both_put_and_get():
    # The paper lists atomic read-modify-write functions in both rows.
    for op in ("MPI_Get_accumulate", "MPI_Fetch_and_op", "MPI_Compare_and_swap"):
        cats = categories_of("mpi3", op)
        assert ActionCategory.PUT in cats and ActionCategory.GET in cats


def test_every_language_covers_all_synchronization_categories():
    for language in ("mpi3", "upc", "fortran2008"):
        for category in (
            ActionCategory.LOCK,
            ActionCategory.UNLOCK,
            ActionCategory.GSYNC,
            ActionCategory.FLUSH,
        ):
            assert operations_in_category(category, language), (
                f"{language} has no {category.value} operation"
            )


def test_render_table1_mentions_every_operation_and_category():
    rendered = render_table1()
    for entry in TABLE1:
        assert entry.operation in rendered
    for category in ActionCategory:
        assert any(line.startswith(category.value) for line in rendered.splitlines())


@pytest.mark.parametrize(
    ("kind", "put_like", "get_like"),
    [
        (OpKind.PUT, True, False),
        (OpKind.GET, False, True),
        (OpKind.ACCUMULATE, True, False),
        (OpKind.GET_ACCUMULATE, True, True),
        (OpKind.FETCH_AND_OP, True, True),
        (OpKind.COMPARE_AND_SWAP, True, True),
    ],
)
def test_runtime_opkinds_match_declared_categories(kind, put_like, get_like):
    assert kind.is_put_like is put_like
    assert kind.is_get_like is get_like
