"""Kill-timing stress tests: SIGKILL at every awkward moment, zero residue.

A fault injector that only ever strikes at friendly points proves little.
This sweep kills real worker processes at seeded completion-stream offsets —
inside put bursts, while locks are held, exactly at checkpoint-commit
boundaries, mid-batch, and during an ongoing recovery — and demands two
things every time: the run still finishes bit-identical to the failure-free
reference, and nothing leaks (no orphan processes, no stale /dev/shm
segments; the ``proc_hygiene`` fixture asserts both after every test).
"""

import numpy as np
import pytest

import repro
from repro.backends.proc import ProcBackend, proc_available
from repro.errors import FailureScheduleError, WatchdogError
from repro.ft.inject import KillKind, KillPlan, install_injector
from repro.study import make_workload

pytestmark = [
    pytest.mark.skipif(
        not proc_available(), reason="proc backend needs fork + POSIX shared memory"
    ),
    pytest.mark.usefixtures("proc_hygiene"),
]

STENCIL = dict(nprocs=4, n_local=8, iters=12)
KV = dict(nprocs=4, slots=8, updates_per_step=4, steps=8)

_reference = {}


def reference_digest(name, params):
    if name not in _reference:
        _reference[name] = make_workload(name, **params).run().digest
    return _reference[name]


def _killed(name, params, plan, *, interval=3, store="memory", recovery="global"):
    ft = repro.FaultTolerancePolicy(interval=interval, store=store, recovery=recovery)
    return make_workload(name, **params).run(ft=ft, backend="proc", kill_plan=plan)


# ---------------------------------------------------------------------------
# Seeded offset sweep (put bursts, arbitrary stream positions)
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(5))
def test_seeded_kill_sweep_recovers_bit_identical(seed):
    # The stencil run completes ~72 comm ops; each seed draws a different
    # (offset, victim) pair, most of them inside the halo-exchange put bursts.
    plan = KillPlan.seeded(seed, nprocs=4, max_ops=70, kills=1, min_ops=2)
    run = _killed("stencil", STENCIL, plan)
    assert run.report.recoveries >= 1
    assert run.digest == reference_digest("stencil", STENCIL)


def test_seeded_plans_are_reproducible():
    a = KillPlan.seeded(7, nprocs=4, max_ops=50, kills=3, node_kill_prob=0.5)
    b = KillPlan.seeded(7, nprocs=4, max_ops=50, kills=3, node_kill_prob=0.5)
    assert a.events == b.events
    assert len(a) == 3
    all_node = KillPlan.seeded(7, nprocs=4, max_ops=50, kills=4, node_kill_prob=1.0)
    assert all(e.kind is KillKind.NODE_KILL for e in all_node)
    with pytest.raises(FailureScheduleError):
        KillPlan.seeded(7, nprocs=0, max_ops=50)
    with pytest.raises(FailureScheduleError):
        KillPlan.seeded(7, nprocs=4, max_ops=1)
    with pytest.raises(FailureScheduleError):
        KillPlan.single(rank=1, after_ops=0)  # before the opening checkpoint


# ---------------------------------------------------------------------------
# Kills at checkpoint-commit boundaries
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("boundary_ops", [18, 36, 54])
def test_kill_at_checkpoint_commit_boundary(boundary_ops):
    # 6 comm ops per stencil step and interval=3 put a checkpoint commit at
    # every 18-op boundary; the kill fires on the boundary's last completion,
    # so detection races the commit exactly as a real machine would.
    plan = KillPlan.single(rank=1, after_ops=boundary_ops)
    run = _killed("stencil", STENCIL, plan)
    assert run.report.recoveries >= 1
    assert run.digest == reference_digest("stencil", STENCIL)


# ---------------------------------------------------------------------------
# Kills while locks are held (the kv workload is lock-protected throughout)
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("after_ops", [3, 17, 64, 101])
def test_kill_under_lock_traffic_recovers(after_ops):
    plan = KillPlan.single(rank=2, after_ops=after_ops)
    run = _killed("kv", KV, plan, interval=2)
    assert run.report.recoveries >= 1
    assert run.digest == reference_digest("kv", KV)


# ---------------------------------------------------------------------------
# A second kill during the recovery itself
# ---------------------------------------------------------------------------
def test_kill_during_recovery_is_survived():
    workload = make_workload("stencil", **STENCIL)
    ft = repro.FaultTolerancePolicy(interval=3)
    with repro.launch(
        4,
        topology=repro.Topology(procs_per_node=2),
        ft=ft,
        sync_each_step=False,
        backend="proc",
    ) as job:
        workload.setup(job)
        # First kill mid-run; the second strikes rank 2's *replacement*
        # worker the moment recovery respawns it.
        injector = install_injector(
            job, KillPlan.single(rank=2, after_ops=20), kill_on_respawn=1
        )
        report = job.run(workload.kernel(), steps=workload.steps)
        result = workload.collect(job)
    assert len(injector.fired) == 2
    assert all(fired.real for fired in injector.fired)
    assert report.recoveries >= 1
    assert workload.digest(result) == reference_digest("stencil", STENCIL)


# ---------------------------------------------------------------------------
# Mid-batch deaths through a whole session (the arm_kill dispatch path)
# ---------------------------------------------------------------------------
def test_mid_batch_death_during_flush_recovers_bit_identical():
    # arm_kill makes the worker die *between two ops of one batch* — the
    # death is discovered by the dispatch itself (pipe EOF), not by the
    # injector's sentinel wait, covering the other detection route.
    workload = make_workload("stencil", **STENCIL)
    ft = repro.FaultTolerancePolicy(interval=3)
    with repro.launch(
        4,
        topology=repro.Topology(procs_per_node=2),
        ft=ft,
        sync_each_step=False,
        backend="proc",
    ) as job:
        workload.setup(job)
        backend = job.runtime.backend
        assert isinstance(backend, ProcBackend)
        backend.arm_kill(2, after_ops=9)
        report = job.run(workload.kernel(), steps=workload.steps)
        result = workload.collect(job)
    assert report.recoveries >= 1
    assert workload.digest(result) == reference_digest("stencil", STENCIL)


# ---------------------------------------------------------------------------
# Watchdog + teardown hygiene
# ---------------------------------------------------------------------------
def test_watchdog_abort_leaves_no_residue():
    # Wedge a worker, let the session watchdog abort the run, and rely on the
    # hygiene fixture to prove that even an aborted session tears down every
    # process and segment.
    with repro.launch(2, backend="proc", watchdog=0.3) as job:
        job.allocate("w", 8)
        backend = job.runtime.backend
        backend._workers[1].conn.send(("sleep", 1.0))  # test hook: wedge it

        def kernel(ctx, step):
            ctx.win("w").put_nb((ctx.rank + 1) % ctx.nranks, 0, [1.0])

        with pytest.raises(WatchdogError) as excinfo:
            job.run(kernel, steps=2)
        assert "vehicle: pid=" in str(excinfo.value)  # worker diagnostics


def test_aborted_session_cleans_up_after_unrecoverable_failure():
    # No FT policy: the kill surfaces to the caller; the context manager must
    # still reap workers and unlink segments.
    workload = make_workload("stencil", **STENCIL)
    with pytest.raises(repro.ReproError):
        workload.run(backend="proc", kill_plan=KillPlan.single(rank=1, after_ops=10))
