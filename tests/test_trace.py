"""The trace layer: deterministic event streams, diffing, telemetry, CLI.

The headline property mirrors the differential harness: because every
instrumentation seam fires at runtime level — before backend-specific
wall-time accounting diverges — the canonical trace (events minus the
segregated ``rt`` sub-object) of an identically-seeded run is
**byte-identical** across the sim, vector and proc backends, and across
serial vs thread executors when runs flow through a :class:`TraceHub`.
Everything host-specific (wall seconds, real-SIGKILL flags, backend
names) lives under ``rt`` and is excluded from identity.
"""

import json
import os
import threading

import pytest

import repro
from repro.backends.proc import proc_available
from repro.errors import TraceError
from repro.ft.inject import KillPlan
from repro.study import make_workload
from repro.trace import (
    TraceWriter,
    Tracer,
    event_lines,
    first_divergence,
    load_trace,
    render_divergence,
    render_summary,
    summarize,
    to_chrome_trace,
    trace_label,
    tracing,
    validate_event,
    write_trace,
)
from repro.trace.__main__ import main as trace_main

pytestmark = pytest.mark.usefixtures("proc_hygiene")

PROC_SKIP = pytest.mark.skipif(
    not proc_available(), reason="proc backend needs fork + POSIX shared memory"
)

#: One killed-and-recovered stencil cell: enough traffic for a meaty op
#: stream, a mid-run NODE-free kill, and a localized recovery episode.
PARAMS = dict(nprocs=4, n_local=8, iters=12)
KILL = dict(rank=2, after_ops=20)
INTERVAL = 3


def _traced_run(backend):
    workload = make_workload("stencil", **PARAMS)
    ft = repro.FaultTolerancePolicy(
        interval=INTERVAL, store="memory", recovery="localized"
    )
    with tracing() as hub:
        run = workload.run(ft=ft, backend=backend, kill_plan=KillPlan.single(**KILL))
    return run, hub.events()


# Traces per backend, computed once per session (plain dict, not a fixture:
# parametrized tests share them freely — same idiom as test_differential).
_traces = {}


def traced_events(backend):
    if backend not in _traces:
        run, events = _traced_run(backend)
        _traces[backend] = events
    return _traces[backend]


# ---------------------------------------------------------------------------
# Determinism: backends and executors
# ---------------------------------------------------------------------------
@pytest.mark.parametrize(
    "backend", ["vector", pytest.param("proc", marks=PROC_SKIP)]
)
def test_trace_is_byte_identical_across_backends(backend):
    reference = event_lines(traced_events("sim"), canonical=True)
    other = event_lines(traced_events(backend), canonical=True)
    assert other == reference
    # The stream is non-trivial: the kill, the recovery and the op traffic
    # all made it in.
    types = {event["type"] for event in traced_events(backend)}
    assert {"kill_fired", "recovery_completed", "op_completed"} <= types


@pytest.mark.skipif(not proc_available(), reason="proc backend unavailable")
def test_rt_segregates_host_facts_from_identity():
    def kills(events):
        return [e for e in events if e["type"] == "kill_fired"]

    (sim_kill,) = kills(traced_events("sim"))
    (proc_kill,) = kills(traced_events("proc"))
    # The host fact differs: sim raises an exception, proc really SIGKILLs.
    assert sim_kill["rt"] == {"real": False}
    assert proc_kill["rt"] == {"real": True}
    # The canonical identity does not.
    assert event_lines([sim_kill], canonical=True) == event_lines(
        [proc_kill], canonical=True
    )


def test_hub_merge_order_is_deterministic_across_executors():
    def run_cell(label):
        with trace_label(label):
            make_workload("stencil", nprocs=2, n_local=4, iters=4).run()

    # Serial, submitted in the order the labels sort.
    with tracing() as hub:
        for label in ("cell-a", "cell-b"):
            run_cell(label)
    serial = event_lines(hub.events(), canonical=True)

    # Threaded, submitted in *reverse* order and racing each other: the hub
    # orders the merged stream by (label, index), never by arrival.
    with tracing() as hub:
        threads = [
            threading.Thread(target=run_cell, args=(label,))
            for label in ("cell-b", "cell-a")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    threaded = event_lines(hub.events(), canonical=True)

    assert threaded == serial
    jobs = {event["job"] for event in hub.events()}
    assert jobs == {"cell-a#0", "cell-b#0"}


def test_disjoint_seeds_produce_disjoint_traces():
    def kv_events(seed):
        workload = make_workload(
            "kv", nprocs=4, slots=8, updates_per_step=4, steps=6, seed=seed
        )
        with tracing() as hub:
            workload.run()
        return hub.events()

    left, right = kv_events(11), kv_events(12)
    divergence = first_divergence(left, right)
    assert divergence is not None
    # Same schedule shape, different payload routing: the streams must split
    # inside the runtime op/sync traffic, not at the session envelope.
    assert left[divergence.index]["type"] in {
        "op_issued", "op_completed", "sync_completed"
    }


# ---------------------------------------------------------------------------
# First-divergence diffing
# ---------------------------------------------------------------------------
def test_diff_localizes_a_perturbed_event():
    events = traced_events("sim")
    perturbed = [dict(event) for event in events]
    index = next(
        i for i, event in enumerate(perturbed) if event["type"] == "op_completed"
    )
    perturbed[index]["count"] = perturbed[index]["count"] + 1

    divergence = first_divergence(events, perturbed)
    assert divergence is not None
    assert divergence.index == index
    assert "count" in divergence.reason
    rendered = render_divergence(divergence)
    assert f"event {index}" in rendered

    assert first_divergence(events, events) is None
    assert first_divergence(events, [dict(e) for e in events]) is None


def test_diff_ignores_rt_but_not_length():
    events = traced_events("sim")
    relabeled = [dict(event) for event in events]
    relabeled[0]["rt"] = {"backend": "somewhere-else"}
    assert first_divergence(events, relabeled) is None

    truncated = events[:-1]
    divergence = first_divergence(events, truncated)
    assert divergence is not None
    assert divergence.index == len(truncated)


# ---------------------------------------------------------------------------
# Schema and persistence
# ---------------------------------------------------------------------------
def test_trace_round_trips_through_jsonl(tmp_path):
    events = traced_events("sim")
    path = str(tmp_path / "trace.jsonl")
    count = write_trace(events, path)
    assert count == len(events)
    assert load_trace(path) == events
    # Canonical file shape: compact separators, sorted keys, one per line.
    first_line = open(path).readline().rstrip("\n")
    assert first_line == json.dumps(events[0], sort_keys=True, separators=(",", ":"))


def test_validate_event_rejects_malformed_events():
    good = {"type": "step_completed", "t": 0.5, "seq": 0, "job": "main", "step": 1}
    validate_event(good)
    for bad in (
        {**good, "type": "made_up_event"},
        {key: value for key, value in good.items() if key != "seq"},
        {**good, "t": "half past"},
        {**good, "rt": "not a dict"},
        "not even a dict",
    ):
        with pytest.raises(TraceError):
            validate_event(bad)


def test_load_trace_reports_the_offending_line(tmp_path):
    path = tmp_path / "broken.jsonl"
    path.write_text(
        json.dumps({"type": "step_completed", "t": 0.0, "seq": 0, "job": "m", "step": 0})
        + "\nnot json\n"
    )
    with pytest.raises(TraceError, match=r"broken\.jsonl:2"):
        load_trace(str(path))


def test_aborted_run_publishes_partial_trace_and_no_temp_files(tmp_path):
    path = tmp_path / "aborted.jsonl"

    with pytest.raises(RuntimeError, match="mid-run abort"):
        with tracing(str(path)):
            with repro.launch(2) as job:
                job.allocate("w", 4)
                job.run(lambda ctx, step: None, steps=2)
                raise RuntimeError("mid-run abort")

    # The partial trace is evidence, not garbage: published atomically.
    events = load_trace(str(path))
    assert any(event["type"] == "step_completed" for event in events)
    leftovers = [name for name in os.listdir(tmp_path) if name.endswith(".part")]
    assert leftovers == []


def test_trace_writer_discards_cleanly_when_nothing_was_written(tmp_path):
    path = tmp_path / "never.jsonl"
    with pytest.raises(RuntimeError):
        with TraceWriter(str(path)):
            raise RuntimeError("before any event")
    assert not path.exists()
    assert os.listdir(tmp_path) == []


def test_tracing_does_not_nest():
    with tracing():
        with pytest.raises(TraceError, match="does not nest"):
            with tracing():
                pass  # pragma: no cover


# ---------------------------------------------------------------------------
# Telemetry facade
# ---------------------------------------------------------------------------
def test_job_telemetry_unifies_metrics_and_trace_rollups():
    tracer = Tracer()
    ft = repro.FaultTolerancePolicy(interval=2, store="memory")
    with repro.launch(4, ft=ft, trace=tracer) as job:
        job.allocate("w", 8)
        job.run(
            lambda ctx, step: ctx.put((ctx.rank + 1) % 4, "w", 0, [1.0 + step]),
            steps=4,
        )
        telemetry = job.telemetry()

    assert "trace.events" in telemetry
    assert telemetry.get("trace.steps") == 4.0
    assert telemetry.get("trace.checkpoints") == telemetry.get("ft.checkpoints")
    # The per-level placement rollup reconciles with the store's own counter.
    by_level = telemetry.query("trace.checkpoint_bytes.*")
    assert by_level  # memory store: local + buddy
    assert sum(by_level.values()) == telemetry.get("ft.checkpoint_bytes")
    # Cluster metrics still flow through untouched, per-rank included.
    assert telemetry.get("rma.put") > 0
    assert sum(telemetry.per_rank("rma.put").values()) == telemetry.get("rma.put")


def test_untraced_job_telemetry_has_no_trace_namespace():
    with repro.launch(2) as job:
        job.allocate("w", 4)
        job.run(lambda ctx, step: None, steps=2)
        telemetry = job.telemetry()
    assert not telemetry.query("trace.*")
    assert "rma.gsyncs" in telemetry  # cluster metrics unaffected


# ---------------------------------------------------------------------------
# Summary, export and the CLI
# ---------------------------------------------------------------------------
def test_summarize_accounts_for_the_kill_and_recovery():
    stats = summarize(traced_events("sim"))
    assert stats["kills"]["fired"] == 1
    assert stats["recovery"]["episodes"] >= 1
    assert stats["recovery"]["completed"] == stats["recovery"]["episodes"]
    assert stats["ops"]["total"] > 0
    assert stats["checkpoints"]["count"] >= 1
    table = render_summary(stats)
    assert "kills fired / skipped" in table


def test_chrome_export_pairs_op_spans():
    trace = to_chrome_trace(traced_events("sim"))
    rows = trace["traceEvents"]
    op_spans = [r for r in rows if r.get("cat") == "rma" and r["ph"] == "X"]
    assert op_spans and all(r["dur"] >= 0.0 for r in op_spans)
    kills = [r for r in rows if r.get("name") == "kill_fired"]
    assert len(kills) == 1 and kills[0]["ph"] == "i"
    # One process row per job, named via metadata events.
    names = [r for r in rows if r["ph"] == "M" and r["name"] == "process_name"]
    assert len(names) == len({e["job"] for e in traced_events("sim")})


def test_cli_summarize_diff_export_round_trip(tmp_path, capsys):
    events = traced_events("sim")
    left = str(tmp_path / "left.jsonl")
    right = str(tmp_path / "right.jsonl")
    write_trace(events, left)
    perturbed = [dict(event) for event in events]
    perturbed[5]["t"] = perturbed[5]["t"] + 1.0
    write_trace(perturbed, right)

    assert trace_main(["summarize", left]) == 0
    assert "| events" in capsys.readouterr().out

    assert trace_main(["diff", left, left]) == 0
    assert "identical" in capsys.readouterr().out
    assert trace_main(["diff", left, right]) == 1
    assert "event 5" in capsys.readouterr().out

    exported = str(tmp_path / "chrome.json")
    assert trace_main(["export", left, "--output", exported]) == 0
    assert json.load(open(exported))["traceEvents"]

    assert trace_main(["summarize", str(tmp_path / "missing.jsonl")]) == 2
    assert "TRACE:" in capsys.readouterr().err
