"""RmaRuntime semantics: dispatch, costs, epochs/counters, failure surfacing."""

import numpy as np
import pytest

from repro.errors import LockError, ProcessFailedError, SynchronizationError
from repro.rma import AccumulateOp, RmaInterceptor, RmaRuntime
from repro.simulator import Cluster, FailureSchedule


@pytest.fixture
def runtime():
    rt = RmaRuntime(Cluster.simple(4, procs_per_node=2), record=True)
    rt.win_allocate("w", 8)
    return rt


def test_put_get_round_trip(runtime):
    runtime.put(0, 3, "w", 2, [1.0, 2.0, 3.0])
    assert np.array_equal(runtime.get(1, 3, "w", 2, 3), [1.0, 2.0, 3.0])


def test_accumulate_combines_into_target(runtime):
    runtime.put(0, 1, "w", 0, [10.0, 10.0])
    runtime.accumulate(0, 1, "w", 0, [1.0, 2.0], op=AccumulateOp.SUM)
    assert np.array_equal(runtime.local(1, "w")[:2], [11.0, 12.0])


def test_fetch_and_op_returns_previous_value(runtime):
    runtime.put(0, 2, "w", 5, [7.0])
    assert runtime.fetch_and_op(1, 2, "w", 5, 3.0) == 7.0
    assert runtime.local(2, "w")[5] == 10.0


def test_compare_and_swap_swaps_only_on_match(runtime):
    runtime.put(0, 2, "w", 0, [5.0])
    assert runtime.compare_and_swap(1, 2, "w", 0, compare=5.0, value=9.0) == 5.0
    assert runtime.local(2, "w")[0] == 9.0
    assert runtime.compare_and_swap(1, 2, "w", 0, compare=5.0, value=1.0) == 9.0
    assert runtime.local(2, "w")[0] == 9.0


def test_flush_closes_epoch_and_bumps_gc(runtime):
    assert runtime.epochs.epoch(0, 1) == 0
    action = runtime.put(0, 1, "w", 0, [1.0])
    assert action.EC == 0 and action.GC == 0
    runtime.flush(0, 1)
    assert runtime.epochs.epoch(0, 1) == 1
    assert runtime.counters.gc(0) == 1
    later = runtime.put(0, 1, "w", 0, [2.0])
    assert later.EC == 1 and later.GC == 1
    # co holds between the two epochs (§2.3).
    assert runtime.recorder.consistency_order(action, later)
    assert not runtime.recorder.consistency_order(later, action)


def test_lock_fetch_increments_sc_and_unlock_closes_epoch(runtime):
    a = runtime.lock(0, 2)
    b_sc = runtime.counters.sc_local(2)
    assert a.counters.sc == 1 and b_sc == 1
    with pytest.raises(LockError):
        runtime.lock(0, 2)  # double lock on the same structure
    epoch_before = runtime.epochs.epoch(0, 2)
    runtime.unlock(0, 2)
    assert runtime.epochs.epoch(0, 2) == epoch_before + 1
    with pytest.raises(LockError):
        runtime.unlock(0, 2)
    # The next locker fetches the incremented counter.
    assert runtime.lock(1, 2).counters.sc == 2


def test_gsync_bumps_gnc_everywhere_and_closes_all_epochs(runtime):
    runtime.put(0, 1, "w", 0, [1.0])
    runtime.put(2, 3, "w", 0, [1.0])
    runtime.gsync()
    assert all(runtime.counters.gnc(r) == 1 for r in range(4))
    assert runtime.epochs.epoch(0, 1) == 1
    assert runtime.epochs.epoch(2, 3) == 1
    assert not runtime.epochs.has_pending(0)


def test_gsync_while_holding_a_lock_is_illegal(runtime):
    runtime.lock(0, 1)
    with pytest.raises(SynchronizationError):
        runtime.gsync()


def test_actions_advance_the_origin_clock(runtime):
    before = runtime.cluster.now(0)
    runtime.put(0, 1, "w", 0, np.zeros(4))
    assert runtime.cluster.now(0) > before
    assert runtime.cluster.now(2) == runtime.cluster.now(3)  # untouched ranks


def test_scheduled_failure_surfaces_as_process_failed_error():
    schedule = FailureSchedule.single_rank(2, 0.0)
    rt = RmaRuntime(Cluster.simple(4, failure_schedule=schedule))
    with pytest.raises(ProcessFailedError):
        rt.win_allocate("w", 4)


def test_direct_fail_rank_is_observed_and_propagated():
    rt = RmaRuntime(Cluster.simple(4))
    rt.win_allocate("w", 4)

    class Spy(RmaInterceptor):
        def __init__(self):
            self.failed, self.respawned = [], []

        def on_failure_detected(self, rank):
            self.failed.append(rank)

        def on_respawn(self, rank):
            self.respawned.append(rank)

    spy = Spy()
    rt.add_interceptor(spy)
    rt.cluster.fail_rank(3)
    with pytest.raises(ProcessFailedError):
        rt.put(0, 3, "w", 0, [1.0])
    assert spy.failed == [3]
    assert rt.windows.get("w").is_invalidated(3)
    # A second observation does not re-fire the hook.
    with pytest.raises(ProcessFailedError):
        rt.get(1, 3, "w", 0, 1)
    assert spy.failed == [3]
    rt.cluster.respawn_rank(3)
    rt.notify_respawn(3)
    assert spy.respawned == [3]


def test_failed_origin_cannot_issue_actions():
    rt = RmaRuntime(Cluster.simple(4))
    rt.win_allocate("w", 4)
    rt.cluster.fail_rank(1)
    with pytest.raises(ProcessFailedError):
        rt.put(1, 0, "w", 0, [1.0])


def test_gsync_observes_scheduled_failures():
    # Rank 2 dies at t=1s (virtual), long after window allocation completes.
    schedule = FailureSchedule.single_rank(2, 1.0)
    rt = RmaRuntime(Cluster.simple(4, failure_schedule=schedule))
    rt.win_allocate("w", 4)
    rt.cluster.advance(0, 2.0)  # push virtual time past the failure
    with pytest.raises(ProcessFailedError):
        rt.gsync()


def test_put_payload_is_decoupled_from_caller_buffer(runtime):
    buf = np.array([1.0, 2.0])
    action = runtime.put(0, 1, "w", 0, buf)
    buf[0] = 99.0  # caller reuses its buffer after the put
    assert np.array_equal(action.data, [1.0, 2.0])  # recorded history is stable
    assert np.array_equal(runtime.local(1, "w")[:2], [1.0, 2.0])


def test_metrics_track_operations(runtime):
    runtime.put(0, 1, "w", 0, [1.0, 2.0])
    runtime.get(1, 0, "w", 0, 2)
    runtime.gsync()
    metrics = runtime.cluster.metrics
    assert metrics.get("rma.put") == 1
    assert metrics.get("rma.get") == 1
    assert metrics.get("rma.gsyncs") == 1
    assert metrics.get("rma.bytes_moved") == 32
