"""FailureSchedule ordering, exponential sampling determinism, injection."""

import pytest

from repro.errors import FailureScheduleError
from repro.simulator.failures import (
    FailureEvent,
    FailureInjector,
    FailureSchedule,
    exponential_schedule,
)
from repro.simulator.placement import block_placement
from repro.simulator.topology import FailureDomainHierarchy


def test_schedule_sorts_events_on_construction():
    events = [
        FailureEvent(time=3.0, level=0, index=1),
        FailureEvent(time=1.0, level=1, index=0),
        FailureEvent(time=2.0, level=0, index=2),
    ]
    schedule = FailureSchedule(events)
    assert [ev.time for ev in schedule] == [1.0, 2.0, 3.0]


def test_schedule_add_keeps_events_sorted():
    schedule = FailureSchedule.single_rank(4, 5.0)
    schedule.add(FailureEvent(time=1.0, level=0, index=2))
    assert [ev.time for ev in schedule] == [1.0, 5.0]
    assert len(schedule) == 2


def test_schedule_merge_combines_both_sides():
    merged = FailureSchedule.single_rank(0, 2.0).merged_with(
        FailureSchedule.element(1, 3, 1.0)
    )
    assert [(ev.time, ev.level) for ev in merged] == [(1.0, 1), (2.0, 0)]


@pytest.mark.parametrize(
    "event",
    [
        FailureEvent(time=-1.0, level=0, index=0),
        FailureEvent(time=1.0, level=-1, index=0),
        FailureEvent(time=1.0, level=0, index=-2),
    ],
)
def test_invalid_events_are_rejected(event):
    with pytest.raises(FailureScheduleError):
        FailureSchedule([event])


def test_element_constructor_requires_positive_level():
    with pytest.raises(FailureScheduleError):
        FailureSchedule.element(0, 1, 1.0)


def test_exponential_schedule_is_deterministic_under_fixed_seed():
    kwargs = dict(
        horizon=1000.0,
        rates_per_level={1: 0.01, 2: 0.002},
        max_index_per_level={1: 64, 2: 8},
    )
    a = exponential_schedule(seed=42, **kwargs)
    b = exponential_schedule(seed=42, **kwargs)
    c = exponential_schedule(seed=43, **kwargs)
    assert list(a) == list(b)
    assert list(a) != list(c)
    assert len(a) > 0
    assert all(0.0 < ev.time <= 1000.0 for ev in a)
    assert all(ev.index < kwargs["max_index_per_level"][ev.level] for ev in a)


def test_exponential_schedule_different_seeds_are_disjoint():
    # Continuous exponential draws from independent streams collide with
    # probability zero: different seeds must exercise disjoint schedules.
    kwargs = dict(
        horizon=1000.0,
        rates_per_level={1: 0.05},
        max_index_per_level={1: 64},
    )
    times = [
        {ev.time for ev in exponential_schedule(seed=seed, **kwargs)}
        for seed in range(5)
    ]
    for i, a in enumerate(times):
        assert a
        for b in times[i + 1 :]:
            assert not (a & b)


def test_exponential_schedule_accepts_seed_sequences():
    import numpy as np

    kwargs = dict(
        horizon=500.0, rates_per_level={1: 0.02}, max_index_per_level={1: 16}
    )
    # Structured entropy — how the study campaign seeds its trials — is
    # as deterministic as a plain integer seed.
    a = exponential_schedule(seed=np.random.SeedSequence((7, 1, 0)), **kwargs)
    b = exponential_schedule(seed=np.random.SeedSequence((7, 1, 0)), **kwargs)
    c = exponential_schedule(seed=np.random.SeedSequence((7, 1, 1)), **kwargs)
    assert list(a) == list(b)
    assert not ({ev.time for ev in a} & {ev.time for ev in c})


def test_exponential_schedule_zero_rate_yields_no_events():
    schedule = exponential_schedule(
        horizon=100.0, rates_per_level={1: 0.0}, max_index_per_level={1: 4}
    )
    assert len(schedule) == 0


def test_exponential_schedule_validates_inputs():
    with pytest.raises(FailureScheduleError):
        exponential_schedule(horizon=0.0, rates_per_level={}, max_index_per_level={})
    with pytest.raises(FailureScheduleError):
        exponential_schedule(
            horizon=1.0, rates_per_level={1: -0.1}, max_index_per_level={1: 4}
        )
    with pytest.raises(FailureScheduleError):
        exponential_schedule(
            horizon=1.0, rates_per_level={1: 0.1}, max_index_per_level={}
        )


def _placement(nprocs=8, procs_per_node=2):
    fdh = FailureDomainHierarchy.flat(nprocs // procs_per_node)
    return block_placement(fdh, nprocs, procs_per_node)


def test_injector_fires_events_once_and_in_time_order():
    schedule = FailureSchedule.ranks({1: 1.0, 5: 2.0})
    injector = FailureInjector(schedule, _placement())
    assert injector.newly_failed_ranks(0.5) == []
    assert injector.newly_failed_ranks(1.5) == [1]
    # Already-fired events are not reported again.
    assert injector.newly_failed_ranks(3.0) == [5]
    assert injector.failed_ranks == frozenset({1, 5})
    assert not injector.has_pending()


def test_node_level_event_kills_every_rank_on_the_node():
    schedule = FailureSchedule.element(level=1, index=2, time=1.0)
    injector = FailureInjector(schedule, _placement(nprocs=8, procs_per_node=2))
    assert injector.newly_failed_ranks(1.0) == [4, 5]


def test_injector_revive_clears_failed_state():
    injector = FailureInjector(FailureSchedule.single_rank(3, 1.0), _placement())
    injector.newly_failed_ranks(2.0)
    assert injector.is_failed(3)
    injector.revive(3)
    assert not injector.is_failed(3)


def test_event_targeting_out_of_range_rank_raises():
    injector = FailureInjector(FailureSchedule.single_rank(99, 1.0), _placement())
    with pytest.raises(FailureScheduleError):
        injector.newly_failed_ranks(2.0)
