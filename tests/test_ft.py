"""Fault-tolerance subsystem: buddies, checkpointing, recovery, e2e stencil."""

import numpy as np
import pytest

from heat_stencil_ft import run_stencil
from repro.errors import (
    CatastrophicFailure,
    CheckpointError,
    EpochError,
    PlacementError,
    ProcessFailedError,
    RecoveryError,
    TopologyError,
)
from repro.ft import (
    ActionLog,
    CoordinatedCheckpointer,
    InMemoryCheckpointStore,
    RecoveryManager,
    buddy_assignment,
    group_spread,
    t_aware_groups,
)
from repro.rma import RmaRuntime
from repro.simulator import Cluster, FailureSchedule, exponential_schedule
from repro.simulator.placement import block_placement
from repro.simulator.topology import FailureDomainHierarchy


def _placement(nprocs=8, procs_per_node=2):
    fdh = FailureDomainHierarchy.flat(nprocs // procs_per_node)
    return block_placement(fdh, nprocs, procs_per_node)


# ---------------------------------------------------------------------------
# Topology-aware groups and buddies
# ---------------------------------------------------------------------------


def test_buddy_assignment_crosses_failure_domains():
    placement = _placement()
    buddies = buddy_assignment(placement, level=1)
    assert sorted(buddies) == list(range(8))
    for rank, buddy in buddies.items():
        assert placement.node(rank) != placement.node(buddy)


def test_buddy_assignment_is_deterministic():
    placement = _placement()
    assert buddy_assignment(placement) == buddy_assignment(placement)


def test_buddy_assignment_needs_two_domains():
    fdh = FailureDomainHierarchy.flat(1)
    placement = block_placement(fdh, 4, 4)
    with pytest.raises(TopologyError):
        buddy_assignment(placement, level=1)


def test_t_aware_groups_spread_over_distinct_domains():
    placement = _placement(nprocs=8, procs_per_node=2)
    groups = t_aware_groups(placement, group_size=4, level=1)
    assert sorted(r for g in groups for r in g) == list(range(8))
    for group in groups:
        assert group_spread(placement, group, level=1) == len(group)


def test_t_aware_groups_validate_sizes():
    placement = _placement(nprocs=8, procs_per_node=2)  # 4 nodes
    with pytest.raises(PlacementError):
        t_aware_groups(placement, group_size=3)  # does not divide 8
    with pytest.raises(PlacementError):
        t_aware_groups(placement, group_size=8)  # only 4 domains


# ---------------------------------------------------------------------------
# Checkpoint store and coordinated checkpointer
# ---------------------------------------------------------------------------


def _ft_runtime(nprocs=8, schedule=None, **ck_kwargs):
    cluster = Cluster.simple(nprocs, procs_per_node=2, failure_schedule=schedule)
    runtime = RmaRuntime(cluster)
    checkpointer = CoordinatedCheckpointer(**ck_kwargs)
    if ck_kwargs.get("log") is not None:
        runtime.add_interceptor(ck_kwargs["log"])
    runtime.add_interceptor(checkpointer)
    return runtime, checkpointer, RecoveryManager(runtime, checkpointer)


def test_checkpoint_keeps_local_and_buddy_copies():
    runtime, checkpointer, _ = _ft_runtime()
    runtime.win_allocate("w", 4)
    for rank in range(8):
        runtime.local(rank, "w")[:] = rank
    version = checkpointer.checkpoint(tag=17)
    assert version.tag == 17
    for rank in range(8):
        assert np.array_equal(version.local[rank]["w"], np.full(4, rank))
        assert np.array_equal(version.remote[rank]["w"], np.full(4, rank))
    assert version.nbytes() == 8 * 2 * 4 * 8


def test_checkpoint_refused_while_lock_held_or_rank_dead():
    runtime, checkpointer, _ = _ft_runtime()
    runtime.win_allocate("w", 4)
    runtime.lock(0, 1)
    with pytest.raises(EpochError):
        checkpointer.checkpoint()
    runtime.unlock(0, 1)
    runtime.cluster.fail_rank(2)
    with pytest.raises(CheckpointError):
        checkpointer.checkpoint()


def test_store_evicts_oldest_beyond_keep_versions():
    runtime, checkpointer, _ = _ft_runtime(
        store=InMemoryCheckpointStore(keep_versions=2)
    )
    runtime.win_allocate("w", 4)
    for tag in range(3):
        checkpointer.checkpoint(tag=tag)
    assert len(checkpointer.store) == 2
    assert [v.tag for v in checkpointer.store.versions] == [1, 2]


def test_failure_drops_exactly_the_copies_in_dead_memory():
    runtime, checkpointer, _ = _ft_runtime()
    runtime.win_allocate("w", 4)
    checkpointer.checkpoint()
    victim = 3
    holder = next(r for r, b in checkpointer.buddies.items() if b == victim)
    runtime.cluster.fail_rank(victim)
    runtime.observe_failures()
    version = checkpointer.store.latest()
    # The victim's own (local) copy is gone; its buddy copy survives.
    kind, _ = version.payload_for(victim)
    assert kind == "buddy"
    # Whoever checkpointed *into* the victim fell back to its local copy.
    kind, _ = version.payload_for(holder)
    assert kind == "local"


def test_recovery_restores_dead_rank_from_buddy_copy():
    runtime, checkpointer, recovery = _ft_runtime()
    window = runtime.win_allocate("w", 4)
    for rank in range(8):
        runtime.local(rank, "w")[:] = 10.0 + rank
    checkpointer.checkpoint(tag="stable")
    for rank in range(8):
        runtime.local(rank, "w")[:] = -1.0  # post-checkpoint progress
    runtime.cluster.fail_rank(5)
    with pytest.raises(ProcessFailedError):
        runtime.put(4, 5, "w", 0, [0.0])
    outcome = recovery.recover()
    assert outcome.tag == "stable"
    # Coordinated rollback: every rank is back at the checkpoint.
    for rank in range(8):
        assert np.array_equal(window.local(rank), np.full(4, 10.0 + rank))
    assert runtime.cluster.is_alive(5)
    assert runtime.cluster.metrics.get("ft.recoveries") == 1


def test_recovery_without_checkpoint_or_failure_raises():
    runtime, _, recovery = _ft_runtime()
    runtime.win_allocate("w", 4)
    with pytest.raises(RecoveryError):
        recovery.recover()  # nobody failed
    runtime.cluster.fail_rank(0)
    with pytest.raises(RecoveryError):
        recovery.recover()  # no checkpoint exists


def test_losing_rank_and_its_buddy_is_catastrophic():
    runtime, checkpointer, recovery = _ft_runtime()
    runtime.win_allocate("w", 4)
    checkpointer.checkpoint()
    victim = 0
    buddy = checkpointer.buddies[victim]
    runtime.cluster.fail_rank(victim)
    runtime.cluster.fail_rank(buddy)
    runtime.observe_failures()
    with pytest.raises(CatastrophicFailure):
        recovery.recover()


def test_action_log_drives_demand_checkpoints():
    log = ActionLog()
    runtime, checkpointer, _ = _ft_runtime(log=log, demand_threshold_bytes=64)
    runtime.win_allocate("w", 16)
    checkpointer.checkpoint(tag="initial")
    assert checkpointer.maybe_checkpoint(tag="early") is None
    for _ in range(2):  # 2 puts x 4 elements x 8 bytes = 64 bytes logged
        runtime.put(0, 1, "w", 0, np.zeros(4))
    assert log.bytes_logged[0] == 64
    version = checkpointer.maybe_checkpoint(tag="demand")
    assert version is not None and version.tag == "demand"
    # Taking the checkpoint truncated the log.
    assert log.max_logged_bytes() == 0
    assert runtime.cluster.metrics.get("ft.demand_checkpoints") == 1


def test_rollback_releases_survivors_post_checkpoint_locks():
    runtime, checkpointer, recovery = _ft_runtime()
    runtime.win_allocate("w", 4)
    checkpointer.checkpoint(tag=0)
    runtime.lock(1, 2)  # survivor acquires a lock *after* the checkpoint
    runtime.cluster.fail_rank(0)
    with pytest.raises(ProcessFailedError):
        runtime.put(3, 0, "w", 0, [1.0])
    recovery.recover()
    # The rollback undid the lock: re-acquiring must not raise, and a
    # fresh checkpoint is legal again.
    assert not runtime.counters.holds_any_lock(1)
    runtime.lock(1, 2)
    runtime.unlock(1, 2)
    checkpointer.checkpoint(tag=1)


def test_failure_during_checkpoint_commits_nothing():
    # Measure, on a failure-free twin, when the copy phase of the checkpoint
    # happens, then schedule a failure inside that interval: the closing
    # barrier observes it and the aborted checkpoint must not be committed.
    runtime, checkpointer, _ = _ft_runtime(nprocs=4)
    runtime.win_allocate("w", 256)
    runtime.put(0, 1, "w", 0, np.ones(8))
    t_start = runtime.cluster.elapsed()
    checkpointer.checkpoint()
    t_end = runtime.cluster.elapsed()
    opening_barrier = runtime.cluster.costs.barrier(4)
    t_fail = t_start + opening_barrier + (t_end - t_start - opening_barrier) * 0.5

    log = ActionLog()
    runtime, checkpointer, _ = _ft_runtime(
        nprocs=4, schedule=FailureSchedule.single_rank(2, t_fail), log=log
    )
    runtime.win_allocate("w", 256)
    runtime.put(0, 1, "w", 0, np.ones(8))
    logged_before = log.max_logged_bytes()
    assert logged_before > 0
    with pytest.raises(ProcessFailedError):
        checkpointer.checkpoint()
    assert len(checkpointer.store) == 0  # nothing half-written was published
    assert log.max_logged_bytes() == logged_before  # log survives the abort


def test_recovery_truncates_the_action_log():
    log = ActionLog()
    runtime, checkpointer, recovery = _ft_runtime(log=log, demand_threshold_bytes=10**9)
    runtime.win_allocate("w", 8)
    checkpointer.checkpoint(tag=0)
    runtime.put(0, 1, "w", 0, np.ones(4))
    assert log.max_logged_bytes() > 0
    runtime.cluster.fail_rank(3)
    recovery.recover()
    # Rolled-back actions must not linger: the restored checkpoint was taken
    # with a freshly truncated log.
    assert log.max_logged_bytes() == 0 and not log.entries


# ---------------------------------------------------------------------------
# End-to-end: stencil under failures finishes bit-identical (acceptance)
# ---------------------------------------------------------------------------


def test_stencil_recovers_single_rank_failure_bit_identical():
    baseline = run_stencil(nprocs=6, n_local=8, iters=30, ckpt_interval=5)
    assert baseline.recoveries == 0
    schedule = FailureSchedule.single_rank(3, baseline.elapsed * 0.5)
    recovered = run_stencil(
        nprocs=6, n_local=8, iters=30, ckpt_interval=5, failure_schedule=schedule
    )
    assert recovered.recoveries == 1
    assert np.array_equal(baseline.field, recovered.field)
    # Recovery re-executes rolled-back iterations and costs virtual time.
    assert recovered.iterations_executed > baseline.iterations_executed
    assert recovered.elapsed > baseline.elapsed


def test_stencil_recovers_whole_node_failure_bit_identical():
    baseline = run_stencil(nprocs=8, n_local=8, iters=30, ckpt_interval=5)
    # Node 1 hosts ranks 2 and 3; both die at once mid-run.
    schedule = FailureSchedule.element(level=1, index=1, time=baseline.elapsed * 0.6)
    recovered = run_stencil(
        nprocs=8, n_local=8, iters=30, ckpt_interval=5, failure_schedule=schedule
    )
    assert recovered.recoveries == 1
    assert np.array_equal(baseline.field, recovered.field)


def test_stencil_survives_failures_in_rapid_succession():
    # The second failure can fire *during* recovery from the first; the
    # driver's retry loop must absorb it and still finish bit-identical.
    baseline = run_stencil(nprocs=6, n_local=8, iters=30, ckpt_interval=5)
    t = baseline.elapsed * 0.5
    schedule = FailureSchedule.ranks({1: t, 4: t + 1e-7})
    recovered = run_stencil(
        nprocs=6, n_local=8, iters=30, ckpt_interval=5, failure_schedule=schedule
    )
    assert recovered.recoveries >= 1
    assert np.array_equal(baseline.field, recovered.field)


def test_stencil_survives_exponential_failure_schedule():
    baseline = run_stencil(nprocs=8, n_local=16, iters=40, ckpt_interval=8)
    schedule = exponential_schedule(
        horizon=baseline.elapsed,
        rates_per_level={1: 2.0 / baseline.elapsed},
        max_index_per_level={1: 4},
        seed=7,
    )
    assert len(schedule) > 0
    recovered = run_stencil(
        nprocs=8, n_local=16, iters=40, ckpt_interval=8, failure_schedule=schedule
    )
    assert recovered.recoveries >= 1
    assert np.array_equal(baseline.field, recovered.field)
