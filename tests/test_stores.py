"""Checkpoint store strategies: registry, memory/disk/parity placement, eviction."""

import numpy as np
import pytest

import repro
from repro.errors import (
    CatastrophicFailure,
    CheckpointError,
    PolicyError,
    ProcessFailedError,
)
from repro.ft import (
    CoordinatedCheckpointer,
    DiskStore,
    InMemoryCheckpointStore,
    MemoryStore,
    ParityStore,
    build_ft_stack,
    make_store,
)
from repro.rma import RmaRuntime
from repro.simulator import Cluster


def _runtime(nprocs=8, procs_per_node=2):
    return RmaRuntime(Cluster.simple(nprocs, procs_per_node=procs_per_node))


def _stack(runtime, **kwargs):
    return build_ft_stack(runtime, **kwargs)


# ---------------------------------------------------------------------------
# Registry resolution — unknown names fail loudly, listing the choices
# ---------------------------------------------------------------------------


def test_make_store_resolves_names_and_instances():
    assert isinstance(make_store(None), MemoryStore)
    assert isinstance(make_store("memory"), MemoryStore)
    assert isinstance(make_store("disk"), DiskStore)
    assert isinstance(make_store("parity"), ParityStore)
    custom = MemoryStore(keep_versions=5)
    assert make_store(custom) is custom
    assert make_store(custom).keep_versions == 5  # instance config wins
    assert make_store("memory", keep_versions=3).keep_versions == 3


def test_make_store_unknown_name_lists_choices():
    with pytest.raises(CheckpointError, match=r"'disk'.*'memory'.*'parity'"):
        make_store("tape")
    with pytest.raises(CheckpointError, match="tape"):
        make_store("tape")


def test_policy_rejects_unknown_store_and_recovery_listing_choices():
    with pytest.raises(PolicyError, match=r"'disk'.*'memory'.*'parity'"):
        repro.FaultTolerancePolicy(store="tape")
    with pytest.raises(PolicyError, match=r"'degraded'.*'global'.*'localized'"):
        repro.FaultTolerancePolicy(recovery="optimistic")
    # Instances pass validation.
    repro.FaultTolerancePolicy(store=MemoryStore(), recovery=repro.GlobalRollback())


def test_launch_rejects_unknown_backend_listing_choices():
    with pytest.raises(PolicyError, match=r"'sim'.*'vector'"):
        repro.launch(4, backend="warp-drive")


def test_legacy_store_name_still_works():
    assert InMemoryCheckpointStore is MemoryStore
    store = InMemoryCheckpointStore(keep_versions=1)
    assert store.keep_versions == 1


# ---------------------------------------------------------------------------
# DiskStore — spill survives node loss (rank + buddy together)
# ---------------------------------------------------------------------------


def test_disk_store_round_trip_and_eviction(tmp_path):
    runtime = _runtime()
    store = DiskStore(keep_versions=2, directory=tmp_path / "ckpt")
    stack = _stack(runtime, store=store)
    runtime.win_allocate("w", 4)
    for rank in range(8):
        runtime.local(rank, "w")[:] = 10.0 + rank
    for tag in range(3):
        stack.checkpointer.checkpoint(tag=tag)
    assert len(store) == 2 and [v.tag for v in store.versions] == [1, 2]
    # Evicted version's files are gone; retained versions are loadable.
    files = sorted(p.name for p in (tmp_path / "ckpt").iterdir())
    assert files and all(name.startswith(("v1_", "v2_")) for name in files)
    payload = store.fetch(store.latest(), 3)
    assert payload.source == "disk"
    assert np.array_equal(payload.windows["w"], np.full(4, 13.0))
    # Disk copies hold no job memory.
    assert store.nbytes() == 0


def test_disk_store_survives_rank_and_buddy_loss():
    # Losing a rank together with its buddy is the in-memory scheme's
    # catastrophic case; the disk spill recovers it.
    runtime = _runtime()
    stack = _stack(runtime, store="disk")
    recovery = stack.recovery
    runtime.win_allocate("w", 4)
    for rank in range(8):
        runtime.local(rank, "w")[:] = 10.0 + rank
    stack.checkpointer.checkpoint(tag=0)
    runtime.cluster.fail_rank(0)
    runtime.cluster.fail_rank(1)
    runtime.observe_failures()
    outcome = recovery.recover()
    assert outcome.tag == 0
    for rank in range(8):
        assert np.array_equal(runtime.local(rank, "w"), np.full(4, 10.0 + rank))
    stack.uninstall(runtime)


def test_disk_store_close_removes_owned_scratch_directory():
    runtime = _runtime()
    stack = _stack(runtime, store="disk")
    store = stack.store
    runtime.win_allocate("w", 4)
    stack.checkpointer.checkpoint(tag=0)
    directory = store.directory
    assert directory is not None and directory.exists()
    stack.uninstall(runtime)  # closes the store
    assert not directory.exists()
    store.close()  # idempotent


def test_disk_store_scratch_removed_even_after_failed_restore():
    # Corrupting the spill makes the restore raise mid-recovery; teardown
    # must still remove the owned scratch directory (no tmpdir leak).
    runtime = _runtime()
    stack = _stack(runtime, store="disk")
    store = stack.store
    runtime.win_allocate("w", 4)
    for rank in range(8):
        runtime.local(rank, "w")[:] = float(rank)
    stack.checkpointer.checkpoint(tag=0)
    directory = store.directory
    assert directory is not None and directory.exists()
    for path in directory.glob("v*_r0_*.npy"):
        path.write_bytes(b"not a numpy file")
    runtime.cluster.fail_rank(0)
    runtime.cluster.fail_rank(1)  # buddy too: only the disk spill remains
    runtime.observe_failures()
    with pytest.raises(Exception):
        stack.recovery.recover()
    stack.uninstall(runtime)
    assert not directory.exists()


# ---------------------------------------------------------------------------
# ParityStore — 1 + 1/k overhead, XOR reconstruction, group-loss limits
# ---------------------------------------------------------------------------


def test_parity_store_reconstructs_failed_rank_bit_exact():
    runtime = _runtime()
    stack = _stack(runtime, store="parity")
    runtime.win_allocate("w", 16)
    rng = np.random.default_rng(3)
    expected = {}
    for rank in range(8):
        data = rng.normal(size=16)
        runtime.local(rank, "w")[:] = data
        expected[rank] = data.copy()
    stack.checkpointer.checkpoint(tag=0)
    victim = 2
    runtime.cluster.fail_rank(victim)
    runtime.observe_failures()  # drops the victim's local copy + its chunks
    version = stack.store.latest()
    assert victim not in version.local
    payload = stack.store.fetch(version, victim)
    assert payload.source == "parity" and payload.peers
    assert np.array_equal(payload.windows["w"], expected[victim])
    # Survivors still fetch locally.
    assert stack.store.fetch(version, 0).source == "local"


def test_parity_store_uses_less_memory_than_buddy_copies():
    results = {}
    for name in ("memory", "parity"):
        runtime = _runtime()
        stack = _stack(runtime, store=name, keep_versions=1)
        runtime.win_allocate("w", 64)
        stack.checkpointer.checkpoint(tag=0)
        results[name] = stack.store.nbytes()
    window_bytes = 8 * 64 * 8  # nprocs * elems * float64
    assert results["memory"] == 2 * window_bytes
    # Groups of 4 -> one quarter of a stripe per rank on top of the local copy.
    assert results["parity"] == window_bytes + window_bytes // 4
    assert results["parity"] < results["memory"]


def test_parity_store_two_failures_in_one_group_are_unrecoverable():
    runtime = _runtime()
    stack = _stack(runtime, store="parity")
    runtime.win_allocate("w", 4)
    stack.checkpointer.checkpoint(tag=0)
    store = stack.store
    group = store.groups[0]
    for victim in group[:2]:
        runtime.cluster.fail_rank(victim)
    runtime.observe_failures()
    assert not store.available(store.latest(), group[0])
    with pytest.raises(CatastrophicFailure):
        stack.recovery.recover()


def test_parity_store_needs_enough_groups():
    # 2 ranks on 1 node: no t-aware grouping possible at node level.
    runtime = RmaRuntime(Cluster.simple(2, procs_per_node=2))
    checkpointer = CoordinatedCheckpointer(store="parity")
    with pytest.raises(CheckpointError, match="memory"):
        runtime.add_interceptor(checkpointer)


# ---------------------------------------------------------------------------
# Version eviction under demand checkpoints (keep_versions=1)
# ---------------------------------------------------------------------------


def test_recovery_after_oldest_version_evicted_by_demand_checkpoint():
    # keep_versions=1: every demand checkpoint evicts the previous version.
    # Recovery must restore the *surviving* (newest) version, not the
    # evicted one, and the log must have been truncated at its commit.
    runtime = _runtime()
    stack = _stack(runtime, keep_versions=1, demand_threshold_bytes=64)
    runtime.win_allocate("w", 16)
    stack.checkpointer.checkpoint(tag="initial")
    for rank in range(8):
        runtime.local(rank, "w")[:] = 1.0
    for _ in range(2):  # 2 x 4 elems x 8 bytes = 64 bytes logged at rank 0
        runtime.put(0, 1, "w", 0, np.full(4, 2.0))
    version = stack.checkpointer.maybe_checkpoint(tag="demand")
    assert version is not None and version.tag == "demand"
    assert len(stack.store) == 1  # the initial version was evicted
    assert stack.store.latest().tag == "demand"
    assert stack.log.max_logged_bytes() == 0
    runtime.cluster.fail_rank(5)
    with pytest.raises(ProcessFailedError):
        runtime.put(4, 5, "w", 0, [0.0])
    outcome = stack.recovery.recover()
    assert outcome.tag == "demand"
    # The restored state is the demand checkpoint's, not the initial zeros.
    state = np.array(runtime.local(5, "w"))
    assert np.array_equal(state, np.full(16, 1.0))
    assert np.array_equal(runtime.local(1, "w")[:4], np.full(4, 2.0))


def test_memory_store_keep_versions_validation():
    with pytest.raises(CheckpointError):
        MemoryStore(keep_versions=0)


def test_store_instance_cannot_be_reused_across_jobs():
    # Same contract as Backend.bind: a store holds one job's checkpoints.
    store = MemoryStore()
    runtime = _runtime()
    _stack(runtime, store=store)
    other = _runtime()
    with pytest.raises(CheckpointError, match="fresh instance"):
        _stack(other, store=store)
    # A policy carrying a store *instance* fails loudly on its second launch
    # instead of leaking the first job's versions into the second.
    policy = repro.FaultTolerancePolicy(interval=5, store=MemoryStore())
    with repro.launch(4, ft=policy):
        pass
    with pytest.raises(CheckpointError, match="fresh instance"):
        repro.launch(4, ft=policy)


def test_closed_disk_store_refuses_rebinding():
    runtime = _runtime()
    store = DiskStore()
    stack = _stack(runtime, store=store)
    runtime.win_allocate("w", 4)
    stack.checkpointer.checkpoint(tag=0)
    stack.uninstall(runtime)  # closes the store, scratch dir removed
    with pytest.raises(CheckpointError, match="closed"):
        store.bind(_runtime())


# ---------------------------------------------------------------------------
# Stores are interchangeable under the session API
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("store", ["memory", "disk", "parity"])
def test_session_recovers_with_every_store(store):
    from heat_stencil_ft import run_stencil

    baseline = run_stencil(nprocs=8, n_local=8, iters=20, ckpt_interval=5, store=store)
    from repro.simulator import FailureSchedule

    schedule = FailureSchedule.single_rank(3, baseline.elapsed * 0.5)
    recovered = run_stencil(
        nprocs=8, n_local=8, iters=20, ckpt_interval=5, store=store,
        failure_schedule=schedule,
    )
    assert recovered.recoveries == 1
    assert np.array_equal(baseline.field, recovered.field)
