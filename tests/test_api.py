"""Tests for the rank-centric session API (:mod:`repro.api`).

The acceptance bar: every example workload (stencil, ring allreduce,
key-value) runs through ``repro.launch`` with injected failures and finishes
bit-identical to its failure-free run, with no recovery logic in application
code.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

import repro
from heat_stencil_ft import run_stencil
from kv_update_ft import expected_table, run_kv
from repro.errors import (
    PolicyError,
    ProcessFailedError,
    SchedulerError,
    WindowError,
)
from repro.ft import FtStack, build_ft_stack
from repro.rma import RmaRuntime
from repro.simulator import Cluster, FailureSchedule
from ring_allreduce_ft import CHUNK, _initial_vector, run_allreduce

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


# ---------------------------------------------------------------------------
# Workloads: bit-identical with and without injected failures
# ---------------------------------------------------------------------------


def test_stencil_recovers_bit_identical():
    baseline = run_stencil(nprocs=8, n_local=16, iters=30)
    schedule = FailureSchedule.ranks(
        {2: 0.3 * baseline.elapsed, 5: 0.7 * baseline.elapsed}
    )
    recovered = run_stencil(nprocs=8, n_local=16, iters=30, failure_schedule=schedule)
    assert recovered.recoveries >= 1
    assert recovered.iterations_executed > 30  # some steps were replayed
    assert np.array_equal(baseline.field, recovered.field)


def test_stencil_demand_checkpoints_recover_bit_identical():
    baseline = run_stencil(nprocs=8, n_local=16, iters=30)
    schedule = FailureSchedule.single_rank(3, 0.5 * baseline.elapsed)
    demand = run_stencil(
        nprocs=8,
        n_local=16,
        iters=30,
        ckpt_interval=30,  # only the initial periodic checkpoint
        demand_threshold_bytes=128,
        failure_schedule=schedule,
    )
    assert demand.recoveries >= 1
    assert np.array_equal(baseline.field, demand.field)


def test_ring_allreduce_recovers_bit_identical():
    nprocs = 8
    baseline = run_allreduce(nprocs=nprocs)
    expected = np.sum([_initial_vector(r, nprocs) for r in range(nprocs)], axis=0)
    assert baseline.vectors.shape == (nprocs, nprocs * CHUNK)
    assert np.allclose(baseline.vectors, expected[None, :])
    schedule = FailureSchedule.ranks(
        {3: 0.35 * baseline.elapsed, 6: 0.7 * baseline.elapsed}
    )
    recovered = run_allreduce(nprocs=nprocs, failure_schedule=schedule)
    assert recovered.recoveries >= 1
    assert np.array_equal(baseline.vectors, recovered.vectors)


def test_kv_updates_recover_bit_identical():
    nprocs, steps, seed = 8, 16, 11
    baseline = run_kv(nprocs=nprocs, steps=steps, seed=seed)
    assert np.array_equal(baseline.table, expected_table(seed, nprocs, steps))
    schedule = FailureSchedule.ranks(
        {1: 0.3 * baseline.elapsed, 4: 0.75 * baseline.elapsed}
    )
    recovered = run_kv(
        nprocs=nprocs, steps=steps, seed=seed, failure_schedule=schedule
    )
    assert recovered.recoveries >= 1
    assert recovered.demand_checkpoints >= 1
    assert np.array_equal(baseline.table, recovered.table)


def test_examples_contain_no_recovery_logic():
    """Transparency: application code has zero FT wiring or recovery calls."""
    forbidden = (
        "ProcessFailedError",
        "RecoveryManager",
        "CoordinatedCheckpointer",
        "ActionLog",
        "RmaRuntime",
        ".recover(",
        ".checkpoint(",
        "add_interceptor",
    )
    for example in sorted(EXAMPLES_DIR.glob("*.py")):
        source = example.read_text()
        for token in forbidden:
            assert token not in source, f"{example.name} contains {token!r}"


# ---------------------------------------------------------------------------
# Session semantics
# ---------------------------------------------------------------------------


def _fill(job: repro.Job, window: str, value_of) -> None:
    for ctx in job.contexts:
        ctx.local(window)[:] = value_of(ctx.rank)


def test_launch_without_ft_propagates_failures():
    def kernel(ctx, step):
        ctx.put((ctx.rank + 1) % ctx.nranks, "w", 0, np.ones(2))
        ctx.compute(1e4)

    with repro.launch(4, failures=FailureSchedule.single_rank(2, 1e-5)) as job:
        job.allocate("w", 8)
        with pytest.raises(ProcessFailedError):
            job.run(kernel, steps=50)


def test_step_boundary_failure_is_recovered_not_checkpoint_error():
    """A failure visible only at the step boundary still drives recovery."""
    tripped: list[bool] = []

    def kernel(ctx, step):
        ctx.local("w")[:] += 1.0
        if step == 1 and ctx.rank == ctx.nranks - 1 and not tripped:
            # The last rank of the step kills rank 0 as its final act: no
            # further action or sync runs this step (sync_each_step=False),
            # so only the next step-boundary hook can observe the failure.
            tripped.append(True)
            ctx._runtime.cluster.fail_rank(0)

    with repro.launch(
        4, ft=repro.FaultTolerancePolicy(interval=1), sync_each_step=False
    ) as job:
        job.allocate("w", 2)
        job.run(kernel, steps=3)
        assert job.report().recoveries == 1
        assert np.array_equal(job.gather("w"), np.full(8, 3.0))


def test_rank_and_buddy_loss_is_catastrophic():
    from repro.errors import CatastrophicFailure

    def kernel(ctx, step):
        ctx.compute(1e3)

    with repro.launch(4, ft=repro.FaultTolerancePolicy(interval=1)) as job:
        job.allocate("w", 4)
        job.run(kernel, steps=1)
        assert job.ft is not None
        buddy = job.ft.checkpointer.buddies[0]
        job.cluster.fail_rank(0)
        job.cluster.fail_rank(buddy)
        with pytest.raises(CatastrophicFailure):
            job.run(kernel, steps=1, start_step=1)


def test_multi_phase_run_never_rolls_back_into_previous_phase():
    """Each run() opens with a checkpoint, so recovery replays its own kernel."""

    def add_one(ctx, step):
        ctx.local("w")[:] += 1.0

    def run_phases(fail_in_second: bool) -> np.ndarray:
        tripped: list[bool] = []

        def triple(ctx, step):
            ctx.local("w")[:] *= 3.0
            if fail_in_second and step == 4 and ctx.rank == ctx.nranks - 1 and not tripped:
                tripped.append(True)
                ctx._runtime.cluster.fail_rank(1)

        policy = repro.FaultTolerancePolicy(interval=None)  # no periodic ckpts
        with repro.launch(4, ft=policy) as job:
            job.allocate("w", 2)
            job.run(add_one, steps=3)
            # Recovery in the second phase must roll back to the checkpoint
            # this run() opened at step 3 — never into the add_one phase.
            job.run(triple, steps=3, start_step=3)
            assert job.report().recoveries == (1 if fail_in_second else 0)
            return job.gather("w")

    baseline = run_phases(fail_in_second=False)
    assert np.array_equal(baseline, np.full(8, 81.0))  # (0+1+1+1) * 3^3
    recovered = run_phases(fail_in_second=True)
    assert np.array_equal(baseline, recovered)


def test_rollback_before_current_phase_raises_recovery_error():
    """A failure before the phase-opening checkpoint commits cannot be
    replayed with the current kernel; the session refuses instead of
    silently re-running the wrong program."""
    from repro.errors import RecoveryError

    def kernel(ctx, step):
        ctx.compute(1e3)

    with repro.launch(4, ft=repro.FaultTolerancePolicy(interval=None)) as job:
        job.allocate("w", 2)
        job.run(kernel, steps=2)  # leaves only the phase-1 checkpoint (tag 0)
        job.cluster.fail_rank(2)  # dies between phases, nothing observes it
        with pytest.raises(RecoveryError, match="before this run's start_step"):
            job.run(kernel, steps=2, start_step=2)


def test_session_takes_initial_checkpoint_with_interval_none():
    def kernel(ctx, step):
        ctx.compute(1e3)

    policy = repro.FaultTolerancePolicy(interval=None)
    with repro.launch(4, ft=policy) as job:
        job.allocate("w", 8)
        report = job.run(kernel, steps=5)
    assert report.checkpoints == 1  # exactly the initial one


def test_periodic_checkpoints_follow_the_interval():
    def kernel(ctx, step):
        ctx.compute(1e3)

    with repro.launch(4, ft=repro.FaultTolerancePolicy(interval=3)) as job:
        job.allocate("w", 8)
        report = job.run(kernel, steps=9)  # steps 0, 3, 6 checkpoint
    assert report.checkpoints == 3
    assert report.recoveries == 0


def test_job_report_counts_are_ints():
    def kernel(ctx, step):
        ctx.compute(1e3)

    with repro.launch(4, ft=repro.FaultTolerancePolicy(interval=2)) as job:
        job.allocate("w", 8)
        report = job.run(kernel, steps=4)
    assert isinstance(report.steps_executed, int)
    assert isinstance(report.checkpoints, int)
    assert isinstance(report.demand_checkpoints, int)
    assert isinstance(report.recoveries, int)
    assert "checkpoints" in report.describe()


def test_gather_concatenates_rank_major():
    with repro.launch(4) as job:
        job.allocate("w", 4)
        _fill(job, "w", lambda r: float(r))
        gathered = job.gather("w")
        assert np.array_equal(gathered, np.repeat(np.arange(4.0), 4))
        part = job.gather("w", part=slice(1, 3))
        assert np.array_equal(part, np.repeat(np.arange(4.0), 2))


def test_run_rejects_negative_steps():
    with repro.launch(2) as job:
        with pytest.raises(repro.ReproError):
            job.run(lambda ctx, step: None, steps=-1)


# ---------------------------------------------------------------------------
# RankContext and WindowHandle
# ---------------------------------------------------------------------------


def test_window_handle_get_put_slices_and_scalars():
    with repro.launch(2) as job:
        job.allocate("w", 8)
        ctx0, ctx1 = job.contexts
        w0 = ctx0.win("w")
        w0[1, 2:5] = np.array([1.0, 2.0, 3.0])  # put a slice into rank 1
        w0[1, 7] = 9.0  # put a scalar
        assert np.array_equal(job.local(1, "w"), [0, 0, 1, 2, 3, 0, 0, 9])
        assert np.array_equal(w0[1, 2:5], [1.0, 2.0, 3.0])  # get a slice
        assert w0[1, 7] == 9.0  # get a scalar
        assert w0[1, -1] == 9.0  # negative index resolves
        w1 = ctx1.win("w")
        w1.local[0] = 5.0  # local store, no runtime call
        assert job.local(1, "w")[0] == 5.0
        assert w1.size == 8


def test_window_handle_broadcasts_scalar_fill():
    with repro.launch(2) as job:
        job.allocate("w", 6)
        job.contexts[0].win("w")[1, 0:6] = 1.5
        assert np.array_equal(job.local(1, "w"), np.full(6, 1.5))


def test_window_handle_rejects_strided_and_empty_slices():
    with repro.launch(2) as job:
        job.allocate("w", 8)
        w = job.contexts[0].win("w")
        with pytest.raises(WindowError):
            w[1, 0:8:2]
        with pytest.raises(WindowError):
            w[1, 5:5]


def test_context_atomics_and_locks():
    with repro.launch(4) as job:
        job.allocate("w", 4)
        ctx = job.contexts[2]
        ctx.lock(0)
        previous = ctx.fetch_and_op(0, "w", 1, 5.0)
        ctx.unlock(0)
        assert previous == 0.0
        assert job.local(0, "w")[1] == 5.0
        old = ctx.compare_and_swap(0, "w", 1, 5.0, 7.0)
        assert old == 5.0 and job.local(0, "w")[1] == 7.0
        got = ctx.get_accumulate(0, "w", 1, np.array([1.0]))
        assert got[0] == 7.0 and job.local(0, "w")[1] == 8.0
        ctx.flush(0)
        ctx.flush_all()
        assert ctx.now() > 0.0


def test_plain_kernel_calling_collective_raises():
    def bad_kernel(ctx, step):
        ctx.gsync()  # not yielded — cannot suspend a plain function

    with repro.launch(2) as job:
        job.allocate("w", 4)
        with pytest.raises(SchedulerError, match="generator"):
            job.run(bad_kernel, steps=1)


def test_generator_kernel_yielding_foreign_value_raises():
    def bad_kernel(ctx, step):
        yield 42

    with repro.launch(2) as job:
        job.allocate("w", 4)
        with pytest.raises(SchedulerError, match="collective tokens"):
            job.run(bad_kernel, steps=1)


def test_mismatched_collectives_raise():
    def kernel(ctx, step):
        if ctx.rank == 0:
            yield ctx.barrier()
        else:
            yield ctx.gsync()

    with repro.launch(2) as job:
        job.allocate("w", 4)
        with pytest.raises(SchedulerError, match="mismatched"):
            job.run(kernel, steps=1)


def test_generator_kernel_multiple_collectives_per_step():
    order: list[tuple[int, str]] = []

    def kernel(ctx, step):
        order.append((ctx.rank, "a"))
        yield ctx.gsync()
        order.append((ctx.rank, "b"))
        yield ctx.barrier()
        order.append((ctx.rank, "c"))

    with repro.launch(3) as job:
        job.allocate("w", 4)
        job.run(kernel, steps=1)
    # Round-robin over ranks, phase by phase: all a's, then b's, then c's.
    assert order == [(r, p) for p in ("a", "b", "c") for r in range(3)]


# ---------------------------------------------------------------------------
# Policies and construction hooks
# ---------------------------------------------------------------------------


def test_policy_validation():
    with pytest.raises(PolicyError):
        repro.FaultTolerancePolicy(interval=0)
    with pytest.raises(PolicyError):
        repro.FaultTolerancePolicy(demand_threshold_bytes=0)
    with pytest.raises(PolicyError):
        repro.FaultTolerancePolicy(buddy_level=0)
    with pytest.raises(PolicyError):
        repro.FaultTolerancePolicy(keep_versions=0)
    with pytest.raises(PolicyError):
        repro.Topology(procs_per_node=0)
    with pytest.raises(PolicyError):
        repro.Topology().build(0)


def test_build_ft_stack_wires_interceptors():
    runtime = RmaRuntime(Cluster.simple(4, procs_per_node=2))
    stack = build_ft_stack(runtime, demand_threshold_bytes=64)
    assert isinstance(stack, FtStack)
    assert stack.log is not None
    assert stack.checkpointer.demand_threshold_bytes == 64
    assert stack.store is stack.checkpointer.store
    assert len(runtime.interceptors) == 2
    stack.uninstall(runtime)
    assert len(runtime.interceptors) == 0


def test_build_ft_stack_without_log():
    runtime = RmaRuntime(Cluster.simple(4, procs_per_node=2))
    stack = build_ft_stack(runtime, log_actions=False)
    assert stack.log is None
    assert len(runtime.interceptors) == 1


def test_low_level_api_still_importable_and_usable():
    """The old hand-wired path keeps working underneath the facade."""
    from repro.ft import CoordinatedCheckpointer, RecoveryManager

    cluster = Cluster.simple(4, procs_per_node=2)
    runtime = RmaRuntime(cluster)
    ckpt = CoordinatedCheckpointer(level=1)
    runtime.add_interceptor(ckpt)
    recovery = RecoveryManager(runtime, ckpt)
    runtime.win_allocate("u", 8)
    runtime.local(0, "u")[:] = 3.0
    ckpt.checkpoint(tag=0)
    cluster.fail_rank(1)
    with pytest.raises(ProcessFailedError):
        runtime.gsync()
    outcome = recovery.recover()
    assert outcome.kind == "rollback" and outcome.tag == 0
    assert np.array_equal(runtime.local(0, "u"), np.full(8, 3.0))
