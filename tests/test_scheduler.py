"""Determinism of the cooperative scheduler (:mod:`repro.api.scheduler`).

The schedule must be a pure function of (kernel, policy, seed, failure
schedule): two identical launches produce identical
:class:`~repro.rma.ordering.OrderRecorder` traces and identical per-rank
virtual clocks — with and without injected failures.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.simulator import FailureSchedule

NPROCS = 6
N_LOCAL = 8
STEPS = 18
SEED = 5


def _kernel(ctx: repro.RankContext, step: int):
    """A mixed workload: halo puts, a collective, atomics, seeded randomness."""
    u = ctx.win("u")
    mine = u.local
    right = (ctx.rank + 1) % ctx.nranks
    u[right, 0] = mine[1]
    yield ctx.gsync()
    mine[1:] = mine[1:] * 0.5 + mine[0]
    rng = np.random.default_rng((SEED, step, ctx.rank))
    slot = int(rng.integers(0, N_LOCAL))
    ctx.lock(right)
    ctx.fetch_and_op(right, "u", slot, float(rng.integers(1, 5)))
    ctx.unlock(right)
    ctx.compute(3.0 * N_LOCAL)


def _run(failure_schedule: FailureSchedule | None):
    """One recorded run; returns (trace signature, per-rank clocks, field)."""
    with repro.launch(
        NPROCS,
        ft=repro.FaultTolerancePolicy(interval=4, demand_threshold_bytes=4096),
        failures=failure_schedule,
        record=True,
    ) as job:
        job.allocate("u", N_LOCAL)
        for ctx in job.contexts:
            ctx.local("u")[:] = np.arange(N_LOCAL) + ctx.rank
        job.run(_kernel, steps=STEPS)
        # Determinants minus the process-global `seq` counter (it keeps
        # growing across runs in the same process).
        trace = [event.action.determinant()[:-1] for event in job.runtime.recorder.events]
        clocks = [job.cluster.now(rank) for rank in range(NPROCS)]
        field = job.gather("u")
    return trace, clocks, field


def _failure_schedule() -> FailureSchedule:
    return FailureSchedule.ranks({2: 2.0e-4, 4: 3.5e-4})


@pytest.mark.parametrize(
    "schedule_factory",
    [lambda: None, _failure_schedule],
    ids=["failure-free", "with-failures"],
)
def test_identical_runs_produce_identical_traces_and_clocks(schedule_factory):
    trace_a, clocks_a, field_a = _run(schedule_factory())
    trace_b, clocks_b, field_b = _run(schedule_factory())
    assert len(trace_a) > 0
    assert trace_a == trace_b
    assert clocks_a == clocks_b
    assert np.array_equal(field_a, field_b)


def test_failure_run_replays_to_the_same_field():
    """Failures change the trace (rollback + replay) but never the answer."""
    trace_free, _, field_free = _run(None)
    trace_fail, _, field_fail = _run(_failure_schedule())
    assert np.array_equal(field_free, field_fail)
    assert len(trace_fail) > len(trace_free)  # replayed actions were recorded


def test_rank_order_is_ascending_within_each_phase():
    order: list[int] = []

    def kernel(ctx, step):
        order.append(ctx.rank)
        yield ctx.gsync()
        order.append(ctx.rank + 100)

    with repro.launch(4) as job:
        job.allocate("u", 2)
        job.run(kernel, steps=1)
    assert order == [0, 1, 2, 3, 100, 101, 102, 103]
