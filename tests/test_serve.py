"""Tests for the serving layer: shards, traffic, SLO windows, the comparison."""

from __future__ import annotations

import json
import math
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import replace

import pytest

from repro.backends.proc import proc_available
from repro.chaos.metrics import compute_metrics
from repro.errors import ServeError, StudyError
from repro.registry import available, render_available
from repro.serve import (
    STATUS_DROPPED_WRITE,
    STATUS_OK,
    STATUS_STALE_READ,
    KvService,
    RequestGenerator,
    ServeSpec,
    ShardMap,
    WindowTracker,
    check_against_baseline,
    check_serve_invariants,
    load_requests,
    render_markdown,
    report_json,
    run_service,
    run_slo_comparison,
    trace_lines,
    write_requests,
)
from repro.serve.__main__ import main as serve_main, quick_spec
from repro.serve.engine import build_plan
from repro.serve.report import validate_request_row
from repro.serve.slo import (
    SEGMENT_CHECKPOINT,
    SEGMENT_RECOVERY,
    SEGMENT_STEADY,
    build_slo_report,
)
from repro.stats import latency_percentiles, percentile
from repro.study.workloads import make_workload

pytestmark = pytest.mark.usefixtures("proc_hygiene")

PROC_SKIP = pytest.mark.skipif(
    not proc_available(), reason="proc backend needs fork + POSIX shared memory"
)

TRAFFIC_SHAPE = dict(steps=10, nprocs=4, key_space=64, rate_per_step=4.0)


def _trace(seed: int) -> str:
    """Canonical serialization of one seeded trace (picklable helper)."""
    generator = RequestGenerator(seed=seed, **TRAFFIC_SHAPE)
    return "\n".join(trace_lines(generator.generate()))


@pytest.fixture(scope="module")
def comparison():
    """The quick sim comparison every report-level test reads from."""
    return run_slo_comparison(quick_spec())


def cell(results, recovery: str):
    return next(r for r in results if r.spec.recovery == recovery)


# ----------------------------------------------------------------------
# Shared percentile helper (repro.stats)
# ----------------------------------------------------------------------
def test_percentile_nearest_rank():
    xs = [1.0, 2.0, 3.0, 4.0]
    assert percentile(xs, 50.0) == 2.0
    assert percentile(xs, 75.0) == 3.0
    assert percentile(xs, 100.0) == 4.0
    assert percentile(xs, 1.0) == 1.0


def test_percentile_rejects_empty_and_bad_quantile():
    with pytest.raises(ValueError):
        percentile([], 50.0)
    with pytest.raises(ValueError):
        percentile([1.0], 0.0)
    with pytest.raises(ValueError):
        percentile([1.0], 101.0)


def test_latency_percentiles_empty_is_none_never_nan():
    assert latency_percentiles([]) is None


def test_latency_percentiles_single_sample():
    assert latency_percentiles([3.0]) == {"p50": 3.0, "p95": 3.0, "p99": 3.0}


def test_latency_percentiles_rejects_nan():
    with pytest.raises(ValueError, match="NaN"):
        latency_percentiles([1.0, math.nan])


# ----------------------------------------------------------------------
# Shard placement
# ----------------------------------------------------------------------
def test_shard_map_locates_in_range():
    shards = ShardMap(nshards=8, slots=16)
    for key in range(500):
        owner, offset = shards.locate(key)
        assert 0 <= owner < 8 and 0 <= offset < 16
        assert shards.owner(key) == owner


def test_shard_map_scatters_hot_keys():
    # Zipf traffic concentrates on low key ids; the multiplicative hash must
    # spread them over several shards instead of melting the low-slot owner.
    shards = ShardMap(nshards=8, slots=16)
    owners = {shards.owner(key) for key in range(8)}
    assert len(owners) > 2


def test_shard_map_validation():
    with pytest.raises(ServeError):
        ShardMap(nshards=0, slots=16)
    with pytest.raises(ServeError):
        ShardMap(nshards=8, slots=16).locate(-1)


# ----------------------------------------------------------------------
# Traffic: seeded determinism across executors (satellite 3)
# ----------------------------------------------------------------------
def test_generator_identical_seeds_identical_traces():
    assert _trace(7) == _trace(7)


def test_generator_trace_identical_across_executors():
    serial = _trace(2026)
    with ThreadPoolExecutor(max_workers=2) as pool:
        threaded = list(pool.map(_trace, [2026, 2026]))
    with ProcessPoolExecutor(max_workers=2) as pool:
        forked = list(pool.map(_trace, [2026, 2026]))
    assert threaded == [serial, serial]
    assert forked == [serial, serial]


def test_generator_disjoint_seeds_disjoint_traces():
    a = RequestGenerator(seed=1, **TRAFFIC_SHAPE).generate()
    b = RequestGenerator(seed=2, **TRAFFIC_SHAPE).generate()
    assert {r.frac for r in a}.isdisjoint({r.frac for r in b})


def test_generator_admission_table_covers_trace():
    generator = RequestGenerator(seed=5, **TRAFFIC_SHAPE)
    requests = generator.generate()
    table = generator.by_step_frontend(requests)
    assert sum(len(v) for v in table.values()) == len(requests)
    for (step, frontend), batch in table.items():
        assert 0 <= step < TRAFFIC_SHAPE["steps"]
        assert 0 <= frontend < TRAFFIC_SHAPE["nprocs"]
        assert all(r.step == step and r.frontend == frontend for r in batch)


def test_generator_validation():
    with pytest.raises(ServeError):
        RequestGenerator(seed=1, steps=0, nprocs=4, key_space=8)
    with pytest.raises(ServeError):
        RequestGenerator(seed=1, steps=4, nprocs=4, key_space=8, rate_per_step=0.0)
    with pytest.raises(ServeError):
        RequestGenerator(seed=1, steps=4, nprocs=4, key_space=8, read_fraction=1.5)


# ----------------------------------------------------------------------
# Registry (satellite 1)
# ----------------------------------------------------------------------
def test_kv_service_registered_as_workload():
    assert "kv_service" in available("workload")
    assert "kv_service" in render_available()
    service = make_workload("kv_service", nprocs=4, slots=8, key_space=32, steps=4)
    assert isinstance(service, KvService)


def test_make_workload_unknown_name_lists_registered():
    with pytest.raises(StudyError, match="kv_service"):
        make_workload("kv_disservice")


def test_serve_spec_unknown_axis_lists_registered():
    with pytest.raises(ServeError, match="registered recoveries"):
        ServeSpec(recovery="time-travel")
    with pytest.raises(ServeError, match="registered backends"):
        ServeSpec(backend="quantum")
    with pytest.raises(ServeError, match="pod_kill"):
        ServeSpec(kill_kind="asteroid")


def test_serve_spec_rejects_bad_traffic_shape():
    with pytest.raises(ServeError, match="rate_per_step"):
        ServeSpec(rate_per_step=-1.0)
    with pytest.raises(ServeError, match="steps, key_space and slots"):
        ServeSpec(steps=0)
    with pytest.raises(ServeError, match="steps, key_space and slots"):
        ServeSpec(slots=0)
    with pytest.raises(ServeError, match="zipf_s"):
        ServeSpec(zipf_s=-0.5)
    with pytest.raises(ServeError, match="read_fraction"):
        ServeSpec(read_fraction=1.5)


def test_cli_list_mentions_kv_service(capsys):
    assert serve_main(["--list"]) == 0
    assert "kv_service" in capsys.readouterr().out


# ----------------------------------------------------------------------
# Kill-plan construction
# ----------------------------------------------------------------------
def test_build_plan_excludes_comparison_axes():
    base = quick_spec()
    plans = [
        build_plan(replace(base, backend=b, recovery=r), ops_total=4000)
        for b in ("sim", "vector")
        for r in ("global", "localized", "degraded")
    ]
    reference = [(e.after_ops, e.rank, e.kind) for e in plans[0].events]
    assert all(
        [(e.after_ops, e.rank, e.kind) for e in plan.events] == reference
        for plan in plans
    )


def test_build_plan_zero_kills_empty():
    assert not build_plan(replace(quick_spec(), kills=0), ops_total=4000).events


# ----------------------------------------------------------------------
# Window segmentation
# ----------------------------------------------------------------------
def test_window_tracker_segment_precedence():
    tracker = WindowTracker()
    tracker.checkpoint_windows.append((10.0, 12.0, 3, False))
    tracker.recovery_windows.append((11.0, 15.0))
    assert tracker.segment_of(5.0) == SEGMENT_STEADY
    assert tracker.segment_of(10.5) == SEGMENT_CHECKPOINT
    assert tracker.segment_of(11.5) == SEGMENT_RECOVERY  # recovery wins overlap
    assert tracker.segment_of(14.0) == SEGMENT_RECOVERY
    assert tracker.segment_of(16.0) == SEGMENT_STEADY
    seconds = tracker.segment_seconds(20.0)
    assert seconds[SEGMENT_RECOVERY] == 4.0
    assert seconds[SEGMENT_CHECKPOINT] == 2.0
    assert seconds[SEGMENT_STEADY] == 14.0


def test_window_tracker_finish_closes_open_outage():
    tracker = WindowTracker()
    tracker.on_failure_detected(3, 7, 42.0)
    tracker.finish(50.0)
    assert tracker.recovery_windows == [(42.0, 50.0)]


def test_build_slo_report_empty_segments_are_none():
    tracker = WindowTracker()
    report = build_slo_report([], tracker, total_s=0.0)
    for segment in (SEGMENT_STEADY, SEGMENT_CHECKPOINT, SEGMENT_RECOVERY, "overall"):
        assert report[segment]["latency_ms"] is None
        assert report[segment]["error_rate"] is None


# ----------------------------------------------------------------------
# Chaos metrics reuse the shared estimator (satellite 2)
# ----------------------------------------------------------------------
def test_chaos_metrics_mttr_percentiles():
    events = [
        {"type": "failure_detected", "t": 10.0},
        {"type": "service_restored", "t": 12.0},
        {"type": "failure_detected", "t": 20.0},
        {"type": "service_restored", "t": 26.0},
        {"type": "soak_completed", "t": 30.0},
    ]
    metrics = compute_metrics(events)
    assert metrics.mttr_p50_s == 2.0
    assert metrics.mttr_p99_s == 6.0


def test_chaos_metrics_mttr_percentiles_none_without_outages():
    metrics = compute_metrics([{"type": "soak_completed", "t": 30.0}])
    assert metrics.mttr_p50_s is None and metrics.mttr_p99_s is None


# ----------------------------------------------------------------------
# The serving runs: determinism, correctness, invariants
# ----------------------------------------------------------------------
def test_run_service_rerun_byte_identical():
    spec = replace(quick_spec(), recovery="localized")
    first = json.dumps(run_service(spec).as_dict(), sort_keys=True)
    second = json.dumps(run_service(spec).as_dict(), sort_keys=True)
    assert first == second


def test_comparison_thread_executor_identical(comparison):
    threaded = run_slo_comparison(quick_spec(), executor="thread", max_workers=3)
    assert report_json(threaded) == report_json(comparison)


def test_comparison_fires_and_recovers(comparison):
    for result in comparison:
        assert result.aborted is None
        assert [k for k in result.kills if not k["skipped"]]
        assert result.recoveries >= 1
        assert result.recovery_windows


def test_comparison_invariants_hold(comparison):
    assert check_serve_invariants(comparison) == []


def test_full_recovery_tables_match_failure_free(comparison):
    # Rollback and replay must restore the exact failure-free table — the
    # digest oracle the study workloads gate on, under serving traffic.
    service = quick_spec().service()
    expected = service.digest(service.expected())
    assert cell(comparison, "global").digest == expected
    assert cell(comparison, "localized").digest == expected
    assert cell(comparison, "degraded").digest != expected


def test_statuses_by_protocol(comparison):
    for recovery in ("global", "localized"):
        statuses = {row["status"] for row in cell(comparison, recovery).rows}
        assert statuses == {STATUS_OK}
    degraded = {row["status"] for row in cell(comparison, "degraded").rows}
    assert STATUS_OK in degraded
    assert degraded & {STATUS_STALE_READ, STATUS_DROPPED_WRITE}


def test_localized_stalls_fewer_requests_than_global(comparison):
    touched_global = cell(comparison, "global").slo[SEGMENT_RECOVERY]["requests"]
    touched_localized = cell(comparison, "localized").slo[SEGMENT_RECOVERY]["requests"]
    assert 0 < touched_localized < touched_global


def test_checkpoint_windows_observed(comparison):
    for result in comparison:
        assert result.checkpoint_windows
        for t0, t1, step, demand in result.checkpoint_windows:
            assert 0.0 <= t0 <= t1
            assert isinstance(demand, bool)


# ----------------------------------------------------------------------
# Request log and report gates (satellite 5 machinery)
# ----------------------------------------------------------------------
def test_request_log_roundtrip(tmp_path, comparison):
    path = tmp_path / "requests.jsonl"
    count = write_requests(comparison, path)
    rows = load_requests(path)
    assert len(rows) == count == sum(len(r.rows) for r in comparison)
    assert {row["cell"] for row in rows} == {r.spec.cell_key for r in comparison}


def test_request_log_rejects_bad_rows(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"rid": 1}\n')
    with pytest.raises(ServeError, match="missing"):
        load_requests(path)
    row = {
        "rid": 0, "frontend": 0, "owner": 0, "step": 0, "op": "read", "key": 3,
        "arrival_t": 0.1, "completion_t": 0.2, "latency_s": 0.1,
        "status": "ok", "segment": "steady",
    }
    validate_request_row(row)
    with pytest.raises(ServeError, match="unknown op"):
        validate_request_row(dict(row, op="delete"))
    with pytest.raises(ServeError, match="unknown status"):
        validate_request_row(dict(row, status="lost"))
    with pytest.raises(ServeError, match="unknown segment"):
        validate_request_row(dict(row, segment="warmup"))


def test_markdown_covers_every_cell_and_segment(comparison):
    markdown = render_markdown(comparison)
    for result in comparison:
        assert result.spec.cell_key in markdown
    for segment in (SEGMENT_STEADY, SEGMENT_CHECKPOINT, SEGMENT_RECOVERY, "overall"):
        assert f"| {segment} |" in markdown


def test_baseline_gate_passes_against_itself(comparison):
    report = json.loads(report_json(comparison))
    assert check_against_baseline(report, report) == []


def test_baseline_gate_catches_p99_regression(comparison):
    report = json.loads(report_json(comparison))
    baseline = json.loads(report_json(comparison))
    key = "sim/memory/global"
    report["cells"][key]["slo"]["overall"]["latency_ms"]["p99"] *= 3.0
    failures = check_against_baseline(report, baseline)
    assert any("p99" in failure for failure in failures)


def test_baseline_gate_catches_census_change(comparison):
    report = json.loads(report_json(comparison))
    baseline = json.loads(report_json(comparison))
    report["cells"]["sim/memory/degraded"]["status_counts"]["ok"] -= 1
    failures = check_against_baseline(report, baseline)
    assert any("status_counts" in failure for failure in failures)


def test_invariant_catches_slow_localized(comparison):
    # Force the localized recovery-window p99 above global's and make sure
    # the invariant trips.
    doctored = []
    for result in comparison:
        if result.spec.recovery == "localized":
            slo = json.loads(json.dumps(result.slo))
            slo[SEGMENT_RECOVERY]["latency_ms"]["p99"] = 1e9
            result = replace(result, slo=slo)
        doctored.append(result)
    assert any("not strictly below" in v for v in check_serve_invariants(doctored))


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_quick_writes_artifacts(tmp_path, capsys):
    requests = tmp_path / "requests.jsonl"
    output = tmp_path / "serve.json"
    markdown = tmp_path / "serve.md"
    status = serve_main([
        "--quick",
        "--requests", str(requests),
        "--output", str(output),
        "--markdown", str(markdown),
    ])
    assert status == 0
    assert "invariants hold" in capsys.readouterr().out
    assert load_requests(requests)
    document = json.loads(output.read_text())
    assert document["meta"]["engine"] == "repro.serve"
    assert "| overall |" in markdown.read_text()


# ----------------------------------------------------------------------
# Cross-backend: the proc backend serves the identical rows
# ----------------------------------------------------------------------
@PROC_SKIP
@pytest.mark.parametrize("recovery", ["global", "localized", "degraded"])
def test_proc_backend_rows_identical_to_sim(comparison, recovery):
    sim = cell(comparison, recovery)
    proc = run_service(replace(quick_spec(), backend="proc", recovery=recovery))
    assert proc.rows == sim.rows
    assert json.dumps(proc.slo, sort_keys=True) == json.dumps(sim.slo, sort_keys=True)
    assert proc.digest == sim.digest
