"""The differential harness: real kills vs simulated failures, cell by cell.

The headline invariant of the real-process backend: for every
(workload x store x recovery) cell, a run whose victim rank is killed with a
real ``SIGKILL`` on ``backend="proc"`` finishes with the **same sha256 result
digest** as the exception-injected run on ``backend="sim"`` — and both match
the failure-free reference.  The kill is timed by completion-stream position
(:class:`~repro.ft.inject.KillPlan`), so it strikes at the same program point
on every backend; everything downstream (detection, rollback/replay,
re-execution) must then agree bit for bit.

Also here: the NODE_KILL taxonomy, the cross-backend regression test pinning
failure *surfacing* (exception types, messages, poisoned-handle behaviour) to
be identical on ``sim``, ``vector`` and ``proc``, and the ``Job.run``
watchdog.  Proc cells auto-skip on platforms without fork + POSIX shm.
"""

import time

import numpy as np
import pytest

import repro
from repro.backends.proc import proc_available
from repro.errors import OpHandleError, ProcessFailedError, WatchdogError
from repro.ft.inject import KillKind, KillPlan, install_injector
from repro.study import make_workload
from repro.trace import first_divergence, render_divergence, tracing

pytestmark = pytest.mark.usefixtures("proc_hygiene")

#: Per-workload differential cells: constructor params, the kill, and the
#: checkpoint interval.  Offsets are chosen mid-run (well past the initial
#: checkpoint, well before the last op) so every cell really recovers.
CELLS = {
    "stencil": (
        dict(nprocs=4, n_local=8, iters=12),
        dict(rank=2, after_ops=20),
        3,
    ),
    "allreduce": (
        dict(nprocs=4, chunk=4),
        dict(rank=2, after_ops=10),
        2,
    ),
    "kv": (
        dict(nprocs=4, slots=8, updates_per_step=4, steps=8),
        dict(rank=2, after_ops=40),
        3,
    ),
}

STORES = ["memory", "disk", "parity"]
RECOVERIES = ["global", "localized"]
PROC_SKIP = pytest.mark.skipif(
    not proc_available(), reason="proc backend needs fork + POSIX shared memory"
)
BACKENDS = ["sim", "vector", pytest.param("proc", marks=PROC_SKIP)]


def _killed_run(name, backend, store, recovery):
    params, kill, interval = CELLS[name]
    workload = make_workload(name, **params)
    ft = repro.FaultTolerancePolicy(interval=interval, store=store, recovery=recovery)
    return workload.run(ft=ft, backend=backend, kill_plan=KillPlan.single(**kill))


# Failure-free sim references and killed-sim oracle cells, computed once per
# session (plain dicts, not fixtures: parametrized tests share them freely).
_reference = {}
_oracle = {}


def reference_digest(name):
    if name not in _reference:
        params, _, _ = CELLS[name]
        _reference[name] = make_workload(name, **params).run().digest
    return _reference[name]


def oracle_run(name, store, recovery):
    key = (name, store, recovery)
    if key not in _oracle:
        _oracle[key] = _killed_run(name, "sim", store, recovery)
    return _oracle[key]


# ---------------------------------------------------------------------------
# The grid
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("recovery", RECOVERIES)
@pytest.mark.parametrize("store", STORES)
@pytest.mark.parametrize("name", sorted(CELLS))
def test_killed_run_matches_exception_injected_oracle(name, store, recovery, backend):
    run = _killed_run(name, backend, store, recovery)
    oracle = oracle_run(name, store, recovery)
    # The kill really struck and was really recovered...
    assert run.report.recoveries >= 1
    assert run.report.metrics.total("inject.kills") == 1
    # ...the result is bit-identical to the failure-free reference...
    assert run.digest == reference_digest(name), (
        f"{name}/{store}/{recovery} on {backend}: recovered digest diverged "
        "from the failure-free reference — re-run both sides under "
        "repro.trace.tracing() and localize the first divergent event with "
        "`python -m repro.trace diff`"
    )
    # ...and the recovery trajectory is comparable to the sim oracle.
    assert run.report.recoveries == oracle.report.recoveries
    assert run.report.steps_executed == oracle.report.steps_executed
    assert run.report.checkpoints == oracle.report.checkpoints
    assert run.report.localized_recoveries == oracle.report.localized_recoveries


@pytest.mark.parametrize(
    "backend", ["vector", pytest.param("proc", marks=PROC_SKIP)]
)
def test_killed_run_trace_matches_sim_event_for_event(backend):
    """Stronger than digest parity: the *whole* canonical event stream agrees.

    A digest comparison proves the final answer matched; tracing the same
    killed cell on two backends and diffing proves every intermediate op,
    checkpoint, kill and recovery decision happened at the same virtual time
    in the same order.  When this breaks, the assertion message pinpoints the
    first divergent event instead of just saying "digests differ".
    """

    def traced_events(on_backend):
        params, kill, interval = CELLS["stencil"]
        workload = make_workload("stencil", **params)
        ft = repro.FaultTolerancePolicy(
            interval=interval, store="memory", recovery="localized"
        )
        with tracing() as hub:
            workload.run(
                ft=ft, backend=on_backend, kill_plan=KillPlan.single(**kill)
            )
        return hub.events()

    reference = traced_events("sim")
    candidate = traced_events(backend)
    divergence = first_divergence(reference, candidate)
    assert divergence is None, (
        f"sim vs {backend} traces diverge:\n{render_divergence(divergence)}"
    )


@pytest.mark.parametrize("backend", ["sim", pytest.param("proc", marks=PROC_SKIP)])
def test_node_kill_takes_out_the_whole_node(backend):
    # procs_per_node=2 places ranks {2, 3} on node 1: a NODE_KILL of rank 2
    # must fell both, and the node-spread buddy copies (buddy_level=1) must
    # still recover the run to the failure-free result.
    params, _, interval = CELLS["stencil"]
    workload = make_workload("stencil", **params)
    plan = KillPlan.single(rank=2, after_ops=20, kind=KillKind.NODE_KILL)
    ft = repro.FaultTolerancePolicy(interval=interval, store="memory", buddy_level=1)
    run = workload.run(ft=ft, backend=backend, kill_plan=plan, procs_per_node=2)
    assert run.report.metrics.total("inject.kills") == 2
    assert run.report.metrics.rank_value("inject.kills", 2) == 1
    assert run.report.metrics.rank_value("inject.kills", 3) == 1
    assert run.report.recoveries >= 1
    assert run.digest == reference_digest("stencil")


# ---------------------------------------------------------------------------
# Failure surfacing is one code path (exception identity across backends)
# ---------------------------------------------------------------------------
def _failure_surface(backend):
    """Kill rank 1 mid-run without FT and capture how the failure surfaces."""
    handles = []

    def kernel(ctx, step):
        handles.append(
            ctx.win("w").put_nb((ctx.rank + 1) % ctx.nranks, 0, [1.0 + step])
        )

    with repro.launch(4, backend=backend) as job:
        job.allocate("w", 8)
        install_injector(job, KillPlan.single(rank=1, after_ops=3))
        with pytest.raises(ProcessFailedError) as excinfo:
            job.run(kernel, steps=4)
        # Poison the survivors' issued-but-uncompleted operations, exactly as
        # a recovery rollback would.
        job.runtime.discard_pending()
        poisoned = []
        for handle in handles:
            if handle.discarded:
                with pytest.raises(OpHandleError) as op_exc:
                    handle.result()
                poisoned.append((handle.action.describe(), str(op_exc.value)))
    return type(excinfo.value).__name__, str(excinfo.value), poisoned


def test_failure_surfacing_is_identical_across_backends():
    reference = _failure_surface("sim")
    assert reference[0] == "ProcessFailedError"
    assert "fail-stop" in reference[1]
    assert _failure_surface("vector") == reference
    if proc_available():
        assert _failure_surface("proc") == reference


# ---------------------------------------------------------------------------
# The Job.run watchdog
# ---------------------------------------------------------------------------
def test_watchdog_converts_a_wedged_step_into_a_diagnosis():
    def stuck_kernel(ctx, step):
        if ctx.rank == 0 and step == 1:
            time.sleep(5.0)  # interrupted by the watchdog long before 5s

    with repro.launch(2, watchdog=0.2) as job:
        job.allocate("w", 4)
        with pytest.raises(WatchdogError) as excinfo:
            job.run(stuck_kernel, steps=3)
    message = str(excinfo.value)
    assert "watchdog" in message
    assert "rank 0" in message and "rank 1" in message  # per-rank dump


def test_watchdog_off_by_default_and_validated():
    with repro.launch(2) as job:
        assert job.watchdog is None
    with pytest.raises(repro.ReproError):
        repro.launch(2, watchdog=0.0)
    with pytest.raises(repro.ReproError):
        repro.launch(2, watchdog=-1.0)


def test_watchdog_disarms_after_run():
    # A run that finishes under the limit must leave no timer armed: sleeping
    # past the watchdog afterwards must not raise.
    with repro.launch(2, watchdog=0.5) as job:
        job.allocate("w", 4)
        job.run(lambda ctx, step: None, steps=2)
    time.sleep(0.6)
