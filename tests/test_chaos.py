"""Tests for the chaos/soak engine: scenarios, monitors, metrics, comparisons."""

from __future__ import annotations

import json

import numpy as np
import pytest

import repro
from repro.backends.proc import proc_available
from repro.chaos import (
    EpisodeMonitor,
    SoakSpec,
    compute_metrics,
    load_events,
    make_monitor,
    make_scenario,
    run_comparison,
    run_soak,
    scaled_cost_model,
)
from repro.chaos.__main__ import main as chaos_main
from repro.chaos.metrics import EVENT_TYPES, event_lines
from repro.chaos.report import (
    check_against_baseline,
    check_chaos_invariants,
    render_markdown,
    report_json,
)
from repro.chaos.soak import build_plan, make_countermeasure
from repro.errors import ChaosError, StudyError
from repro.ft.inject import KillPlan
from repro.registry import all_kinds, available, render_available
from repro.simulator.costs import cray_xe6_like
from repro.study.campaign import _trial_batches
from repro.study.model import IntervalModel
from repro.study.workloads import make_workload

pytestmark = pytest.mark.usefixtures("proc_hygiene")

PROC_SKIP = pytest.mark.skipif(
    not proc_available(), reason="proc backend needs fork + POSIX shared memory"
)

SHAPE = dict(nprocs=8, ops_per_round=400, steps_per_round=20, rounds=4)


def small_spec(**overrides) -> SoakSpec:
    """A seconds-long sim soak that still fires and resolves real outages."""
    defaults = dict(
        workload="stencil",
        scenario="poisson",
        rounds=3,
        interval=6,
        rate_per_round=1.0,
        seed=2026,
        workload_params={"n_local": 16, "iters": 24},
    )
    defaults.update(overrides)
    return SoakSpec(**defaults)


def scrub(events: list[dict]) -> list[dict]:
    """Drop the two backend-identifying fields from an event stream.

    ``soak_started`` carries the backend name and ``failure_initiated`` the
    ``real`` flag (SIGKILL vs simulated fail-stop); everything else must be
    bit-identical between ``sim`` and ``proc``.
    """
    return [
        {k: v for k, v in e.items() if k not in ("backend", "real")} for e in events
    ]


# ----------------------------------------------------------------------
# Registry introspection
# ----------------------------------------------------------------------
def test_chaos_kinds_registered():
    assert available("scenario") == ("cascade", "correlated", "flaky", "poisson")
    assert available("monitor") == ("episodes", "transitions")
    assert available("countermeasure") == ("excise", "replay", "rollback")


def test_render_available_lists_every_kind():
    text = render_available()
    assert len(all_kinds()) >= 7
    for line_start in ("scenarios:", "monitors:", "countermeasures:",
                      "backends:", "stores:", "recoveries:", "workloads:"):
        assert any(line.startswith(line_start) for line in text.splitlines())


def test_make_scenario_rejects_unknown():
    with pytest.raises(ChaosError, match="poisson"):
        make_scenario("meteor-strike")


# ----------------------------------------------------------------------
# Seeded determinism: KillPlan.seeded and the scenario generators
# ----------------------------------------------------------------------
def test_killplan_seeded_deterministic():
    a = KillPlan.seeded(42, nprocs=8, max_ops=10_000, kills=4)
    b = KillPlan.seeded(42, nprocs=8, max_ops=10_000, kills=4)
    assert [(e.after_ops, e.rank, e.kind) for e in a] == [
        (e.after_ops, e.rank, e.kind) for e in b
    ]


def test_killplan_disjoint_seeds_disjoint_schedules():
    parent = np.random.SeedSequence(2026)
    left, right = parent.spawn(2)
    a = KillPlan.seeded(left, nprocs=8, max_ops=100_000, kills=5)
    b = KillPlan.seeded(right, nprocs=8, max_ops=100_000, kills=5)
    assert {e.after_ops for e in a}.isdisjoint({e.after_ops for e in b})


@pytest.mark.parametrize("name", ["poisson", "correlated", "cascade", "flaky"])
def test_scenario_same_seed_same_plan(name):
    scenario = make_scenario(name, rate_per_round=1.5)
    plans = [
        scenario.plan(np.random.SeedSequence(7), **SHAPE) for _ in range(2)
    ]
    events = [[(e.after_ops, e.rank, e.kind) for e in p] for p in plans]
    assert events[0] == events[1]
    assert events[0], f"scenario {name} generated an empty plan at rate 1.5"


@pytest.mark.parametrize("name", ["poisson", "correlated", "cascade", "flaky"])
def test_scenario_disjoint_seeds_differ(name):
    scenario = make_scenario(name, rate_per_round=1.5)
    left, right = np.random.SeedSequence(7).spawn(2)
    a = scenario.plan(left, **SHAPE)
    b = scenario.plan(right, **SHAPE)
    assert [(e.after_ops, e.rank) for e in a] != [(e.after_ops, e.rank) for e in b]


def test_correlated_scenario_kills_nodes():
    plan = make_scenario("correlated", rate_per_round=1.5).plan(
        np.random.SeedSequence(7), **SHAPE
    )
    assert all(e.kind.value == "node_kill" for e in plan)


def test_flaky_scenario_targets_one_victim():
    plan = make_scenario("flaky").plan(np.random.SeedSequence(7), **SHAPE)
    assert len({e.rank for e in plan}) == 1
    offsets = [e.after_ops for e in plan]
    assert offsets == sorted(offsets)


def test_scenario_rejects_degenerate_shape():
    with pytest.raises(ChaosError, match="nprocs"):
        make_scenario("poisson").plan(
            np.random.SeedSequence(0),
            nprocs=1, ops_per_round=10, steps_per_round=2, rounds=1,
        )


# ----------------------------------------------------------------------
# Time compression
# ----------------------------------------------------------------------
def test_scaled_cost_model_preserves_relative_costs():
    base = cray_xe6_like()
    scaled = scaled_cost_model(base, compression=10_000.0)
    assert scaled.name == f"{base.name}-x10000"
    assert scaled.network_latency == pytest.approx(base.network_latency * 10_000)
    assert scaled.network_bandwidth == pytest.approx(base.network_bandwidth / 10_000)
    # Relative cost of any two latencies is untouched.
    assert scaled.network_latency / scaled.issue_overhead == pytest.approx(
        base.network_latency / base.issue_overhead
    )


def test_scaled_cost_model_rejects_nonpositive():
    with pytest.raises(ChaosError, match="positive"):
        scaled_cost_model(compression=0.0)


# ----------------------------------------------------------------------
# SoakSpec validation
# ----------------------------------------------------------------------
@pytest.mark.parametrize("field,value", [
    ("workload", "nope"),
    ("backend", "nope"),
    ("store", "nope"),
    ("countermeasure", "nope"),
    ("scenario", "nope"),
    ("monitor", "nope"),
])
def test_spec_rejects_unknown_names(field, value):
    with pytest.raises(ChaosError, match="nope"):
        SoakSpec(**{field: value})


def test_spec_rejects_non_numeric_interval():
    with pytest.raises(ChaosError, match="interval"):
        SoakSpec(interval="auto")


def test_spec_cell_key_orders_axes():
    assert small_spec().cell_key == "stencil/poisson/sim/memory/rollback"


# ----------------------------------------------------------------------
# The soak driver and the event log
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def sim_comparison():
    """One serial sim comparison shared by the report/invariant tests."""
    return run_comparison(small_spec())


def test_soak_events_well_formed(tmp_path):
    result = run_soak(small_spec(), events_path=str(tmp_path / "soak.jsonl"))
    assert result.aborted is None
    assert result.metrics.kills_fired >= 1
    assert result.metrics.episodes_resolved >= 1
    times = [e["t"] for e in result.events]
    assert times == sorted(times), "events must be emitted in virtual-time order"
    assert {e["type"] for e in result.events} <= EVENT_TYPES
    assert result.events[0]["type"] == "soak_started"
    assert result.events[-1]["type"] == "soak_completed"
    assert result.metrics.rounds_completed == small_spec().rounds


def test_event_log_roundtrips_through_metrics(tmp_path):
    path = tmp_path / "soak.jsonl"
    result = run_soak(small_spec(), events_path=str(path))
    loaded = load_events(str(path))
    assert loaded == result.events
    assert compute_metrics(loaded) == result.metrics


def test_load_events_validates_schema(tmp_path):
    bad_json = tmp_path / "bad.jsonl"
    bad_json.write_text('{"type": "soak_started", "t": 0}\nnot json\n')
    with pytest.raises(ChaosError, match="bad.jsonl:2"):
        load_events(str(bad_json))
    bad_type = tmp_path / "type.jsonl"
    bad_type.write_text('{"type": "meteor", "t": 0}\n')
    with pytest.raises(ChaosError, match="unknown event type"):
        load_events(str(bad_type))
    no_t = tmp_path / "t.jsonl"
    no_t.write_text('{"type": "soak_started"}\n')
    with pytest.raises(ChaosError, match="numeric 't'"):
        load_events(str(no_t))


def test_rerun_is_byte_identical():
    a = run_soak(small_spec())
    b = run_soak(small_spec())
    assert list(event_lines(a.events)) == list(event_lines(b.events))
    assert a.digest == b.digest
    assert a.as_dict() == b.as_dict()


def test_episode_monitor_coalesces_outages():
    result = run_soak(small_spec(monitor="episodes"))
    episodes = [e for e in result.events if e["type"] == "episode"]
    assert len(episodes) == result.metrics.episodes_resolved
    for episode in episodes:
        assert episode["initiated_t"] <= episode["detected_t"] <= episode["restored_t"]
    # The coalesced events are derived, not double-counted by the metrics.
    transitions = [e for e in result.events if e["type"] != "episode"]
    assert compute_metrics(transitions) == result.metrics


def test_excise_skips_kills_of_excised_rank():
    result = run_soak(
        small_spec(scenario="flaky", countermeasure="excise", rate_per_round=1.0)
    )
    # The flaky victim dies once, is excised, and every later flap of the
    # same rank is a skipped event the monitor still accounts for.
    assert result.metrics.kills_fired == 1
    assert result.metrics.kills_skipped >= 1
    assert result.excised_ranks >= 1


def test_plan_is_identical_across_countermeasures_and_backends():
    workload = make_workload("stencil", nprocs=8, n_local=16, iters=24)
    plans = [
        build_plan(
            small_spec(countermeasure=c, store=s),
            ops_per_round=400, steps_per_round=workload.steps,
        )
        for c, s in (("rollback", "memory"), ("replay", "disk"), ("excise", "parity"))
    ]
    events = [[(e.after_ops, e.rank, e.kind) for e in p] for p in plans]
    assert events[0] == events[1] == events[2]


# ----------------------------------------------------------------------
# The comparison grid: the paper's availability / MTTR trade-off
# ----------------------------------------------------------------------
def test_comparison_invariants_hold_on_sim(sim_comparison):
    assert check_chaos_invariants(sim_comparison) == []
    by_cm = {r.spec.countermeasure: r for r in sim_comparison}
    assert by_cm["replay"].metrics.mttr_s < by_cm["rollback"].metrics.mttr_s
    assert (
        by_cm["excise"].metrics.availability
        > by_cm["rollback"].metrics.availability
    )
    assert (
        by_cm["excise"].metrics.availability
        > by_cm["replay"].metrics.availability
    )


def test_comparison_cells_face_identical_schedules(sim_comparison):
    plans = {tuple(map(tuple, r.plan)) for r in sim_comparison}
    assert len(plans) == 1


def test_thread_executor_matches_serial(sim_comparison):
    threaded = run_comparison(small_spec(), executor="thread", max_workers=3)
    assert report_json(threaded) == report_json(sim_comparison)


def test_report_roundtrip_and_baseline_gate(sim_comparison):
    report = json.loads(report_json(sim_comparison))
    assert check_against_baseline(report, report) == []
    doctored = json.loads(report_json(sim_comparison))
    key = next(iter(doctored["cells"]))
    doctored["cells"][key]["metrics"]["kills_fired"] += 1
    assert any("kills_fired" in f for f in check_against_baseline(report, doctored))


def test_render_markdown_shows_every_cell(sim_comparison):
    text = render_markdown(sim_comparison)
    for result in sim_comparison:
        assert result.spec.countermeasure in text
    assert "MTTR predicted" in text


def test_rollback_prices_reexecution(sim_comparison):
    # A global rollback must re-execute all lost work; the observed MTTR is
    # therefore bounded below by one step of virtual time.
    rollback = next(r for r in sim_comparison if r.spec.countermeasure == "rollback")
    steps = make_workload("stencil", nprocs=8, n_local=16, iters=24).steps
    assert rollback.metrics.mttr_s > rollback.round_seconds / steps


@PROC_SKIP
def test_sim_and_proc_soaks_are_identical():
    from dataclasses import replace

    spec = small_spec(seed=7)
    sim = run_soak(spec)
    proc = run_soak(replace(spec, backend="proc"))
    assert sim.metrics.kills_fired >= 1
    assert scrub(sim.events) == scrub(proc.events)
    assert sim.metrics == proc.metrics
    assert sim.digest == proc.digest
    assert sim.plan == proc.plan


# ----------------------------------------------------------------------
# Analytic predictions
# ----------------------------------------------------------------------
def test_predicted_mttr_ordering():
    model = IntervalModel(
        cost_model=cray_xe6_like(),
        nprocs=8,
        bytes_per_rank=1 << 16,
        store="memory",
        rates_per_level={0: 1e-3},
    )
    kwargs = dict(step_seconds=0.5, interval_steps=8)
    degraded = model.predicted_mttr_seconds("degraded", **kwargs)
    localized = model.predicted_mttr_seconds("localized", **kwargs)
    global_ = model.predicted_mttr_seconds("global", **kwargs)
    assert degraded < localized < global_
    assert (
        model.predicted_availability("degraded", **kwargs)
        > model.predicted_availability("global", **kwargs)
    )
    with pytest.raises(StudyError, match="degraded"):
        model.predicted_mttr_seconds("nope", **kwargs)


def test_soak_result_carries_predictions(sim_comparison):
    for result in sim_comparison:
        assert result.predicted_mttr_s > 0
        assert 0 < result.predicted_availability <= 1


# ----------------------------------------------------------------------
# Observer / listener seams
# ----------------------------------------------------------------------
def test_session_observer_hooks():
    seen: list[tuple] = []

    class Recorder(repro.SessionObserver):
        def on_step_completed(self, step, t):
            seen.append(("step", step))

        def on_failure_detected(self, rank, step, t):
            seen.append(("detected", rank))

        def on_recovery_completed(self, resume_step, t):
            seen.append(("recovered", resume_step))

    with repro.launch(4, ft=repro.FaultTolerancePolicy(interval=4)) as job:
        job.allocate("u", 10)
        repro.install_injector(job, KillPlan.single(rank=1, after_ops=30))

        def kernel(ctx, step):
            w = ctx.win("u")
            w[(ctx.rank + 1) % ctx.nranks, 0] = float(step)
            yield ctx.gsync()

        job.add_observer(Recorder())
        job.run(kernel, steps=12)

    kinds = [k for k, _ in seen]
    # Re-executed steps after the rollback notify again, so the completion
    # count exceeds the step count but every step completes at least once.
    assert kinds.count("step") >= 12
    assert {s for k, s in seen if k == "step"} == set(range(12))
    assert ("detected", 1) in seen
    assert "recovered" in kinds
    assert kinds.index("detected") < kinds.index("recovered")


def test_monitor_requires_bind():
    from repro.ft.inject import FiredKill, KillEvent

    record = FiredKill(event=KillEvent(after_ops=1, rank=0), victims=(0,), real=False)
    with pytest.raises(ChaosError, match="bind"):
        make_monitor("transitions").on_kill(record)
    assert isinstance(make_monitor("episodes"), EpisodeMonitor)


def test_countermeasures_map_onto_recovery_protocols():
    for name, recovery in (
        ("rollback", "global"), ("replay", "localized"), ("excise", "degraded")
    ):
        cm = make_countermeasure(name)
        assert cm.recovery == recovery
        assert cm.policy(store="memory", interval=4).recovery == recovery


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_chaos_cli_list(capsys):
    assert chaos_main(["--list"]) == 0
    out = capsys.readouterr().out
    for kind in ("scenarios:", "countermeasures:", "monitors:"):
        assert kind in out


def test_chaos_cli_quick(tmp_path, capsys):
    events = tmp_path / "soak.jsonl"
    output = tmp_path / "soak.json"
    code = chaos_main([
        "--quick", "--events", str(events), "--output", str(output),
    ])
    assert code == 0
    assert "invariants hold" in capsys.readouterr().out
    assert load_events(str(events))  # schema-valid JSONL
    report = json.loads(output.read_text())
    assert report["meta"]["engine"] == "repro.chaos"
    assert len(report["cells"]) == 3


def test_study_cli_list(capsys):
    from repro.study.__main__ import main as study_main

    assert study_main(["--list"]) == 0
    assert "workloads:" in capsys.readouterr().out


# ----------------------------------------------------------------------
# Campaign dispatch chunking (the executor fix rides with this PR)
# ----------------------------------------------------------------------
def test_trial_batches_cover_every_trial_in_order():
    from repro.study import CampaignSpec

    spec = CampaignSpec(trials=5)
    cells = ["c0", "c1", "c2"]
    baselines = [{"b": i} for i in range(3)]
    for workers in (1, 2, 4, 16):
        batches = _trial_batches(spec, cells, baselines, workers)
        per_cell: dict[str, list[int]] = {c: [] for c in cells}
        for _, cell, _, start, stop in batches:
            assert start < stop <= spec.trials
            per_cell[cell].extend(range(start, stop))
        assert all(per_cell[c] == list(range(5)) for c in cells)
        # Batches preserve sweep order: cells in order, ranges ascending.
        order = [cell for _, cell, _, _, _ in batches]
        assert order == sorted(order, key=cells.index)
