"""Recovery protocol strategies: global rollback, localized replay, degraded mode."""

import numpy as np
import pytest

import repro
from heat_stencil_ft import run_stencil
from kv_update_ft import run_kv
from repro.errors import CatastrophicFailure, RecoveryError
from repro.ft import (
    ContinueDegraded,
    GlobalRollback,
    LocalizedReplay,
    build_ft_stack,
    make_protocol,
)
from repro.rma import RmaRuntime
from repro.simulator import Cluster, FailureSchedule
from ring_allreduce_ft import run_allreduce


def _runtime(nprocs=8, procs_per_node=2, schedule=None, backend=None):
    cluster = Cluster.simple(nprocs, procs_per_node=procs_per_node, failure_schedule=schedule)
    return RmaRuntime(cluster, backend=backend)


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


def test_make_protocol_resolves_names_and_instances():
    assert isinstance(make_protocol(None), GlobalRollback)
    assert isinstance(make_protocol("global"), GlobalRollback)
    assert isinstance(make_protocol("localized"), LocalizedReplay)
    assert isinstance(make_protocol("degraded"), ContinueDegraded)
    custom = LocalizedReplay()
    assert make_protocol(custom) is custom
    with pytest.raises(RecoveryError, match=r"'degraded'.*'global'.*'localized'"):
        make_protocol("optimistic")


# ---------------------------------------------------------------------------
# Localized replay — bit-identical to global rollback on all three examples
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("backend", ["sim", "vector"])
def test_stencil_localized_replay_bit_identical(backend):
    baseline = run_stencil(nprocs=8, n_local=8, iters=24, ckpt_interval=6)
    schedule = FailureSchedule.single_rank(3, baseline.elapsed * 0.55)
    rolled = run_stencil(
        nprocs=8, n_local=8, iters=24, ckpt_interval=6,
        failure_schedule=schedule, backend=backend, recovery="global",
    )
    localized = run_stencil(
        nprocs=8, n_local=8, iters=24, ckpt_interval=6,
        failure_schedule=schedule, backend=backend, recovery="localized",
    )
    assert localized.recoveries == 1
    assert np.array_equal(rolled.field, localized.field)
    assert np.array_equal(baseline.field, localized.field)


@pytest.mark.parametrize("backend", ["sim", "vector"])
def test_allreduce_localized_replay_bit_identical(backend):
    # Combining accumulates: the M-flag case a naive log re-application
    # would double-apply on survivors.
    baseline = run_allreduce(nprocs=8)
    schedule = FailureSchedule.ranks(
        {3: 0.35 * baseline.elapsed, 6: 0.7 * baseline.elapsed}
    )
    rolled = run_allreduce(
        nprocs=8, failure_schedule=schedule, backend=backend, recovery="global"
    )
    localized = run_allreduce(
        nprocs=8, failure_schedule=schedule, backend=backend, recovery="localized"
    )
    assert localized.recoveries >= 1
    assert np.array_equal(rolled.vectors, localized.vectors)
    assert np.array_equal(baseline.vectors, localized.vectors)


@pytest.mark.parametrize("backend", ["sim", "vector"])
def test_kv_localized_replay_bit_identical(backend):
    # Blocking lock-protected atomics complete mid-step: the crash leaves a
    # partially-committed batch the replay must suppress exactly.
    baseline = run_kv(nprocs=8, steps=16, seed=11)
    schedule = FailureSchedule.ranks(
        {1: 0.3 * baseline.elapsed, 4: 0.75 * baseline.elapsed}
    )
    rolled = run_kv(
        nprocs=8, steps=16, seed=11, failure_schedule=schedule,
        backend=backend, recovery="global",
    )
    localized = run_kv(
        nprocs=8, steps=16, seed=11, failure_schedule=schedule,
        backend=backend, recovery="localized",
    )
    assert localized.recoveries >= 1
    assert np.array_equal(rolled.table, localized.table)
    assert np.array_equal(baseline.table, localized.table)


def test_localized_replay_restores_strictly_fewer_bytes():
    from repro.study.workloads import HeatStencil

    workload = HeatStencil(nprocs=8, n_local=16, iters=24)

    def run(recovery, schedule=None):
        policy = repro.FaultTolerancePolicy(interval=6, recovery=recovery)
        with repro.launch(
            8, topology=repro.Topology(procs_per_node=2), ft=policy,
            failures=schedule, sync_each_step=False,
        ) as job:
            workload.setup(job)
            report = job.run(workload.kernel(), steps=workload.steps)
            field = job.gather("u", part=slice(1, 17))
        return field, report

    _, free = run("global")
    schedule = FailureSchedule.single_rank(3, free.elapsed * 0.55)
    rolled_field, rolled = run("global", schedule)
    localized_field, localized = run("localized", schedule)
    assert np.array_equal(rolled_field, localized_field)
    restored_global = rolled.metrics.total("ft.restored_bytes")
    restored_localized = localized.metrics.total("ft.restored_bytes")
    assert 0 < restored_localized < restored_global
    # Exactly the failed rank's windows moved, not all eight ranks'.
    assert restored_localized == restored_global / 8


def test_localized_restores_only_failed_ranks_low_level():
    runtime = _runtime()
    stack = build_ft_stack(runtime, recovery="localized")
    runtime.win_allocate("w", 4)
    for rank in range(8):
        runtime.local(rank, "w")[:] = 10.0 + rank
    stack.checkpointer.checkpoint(tag=0)
    for rank in range(8):
        runtime.local(rank, "w")[:] = 20.0 + rank  # survivor progress
    stack.log.mark_step()
    runtime.cluster.fail_rank(5)
    runtime.observe_failures()
    outcome = stack.recovery.recover()
    assert outcome.kind == "replay" and outcome.tag == 0
    assert outcome.restored_bytes == 4 * 8  # one rank's window, not eight
    # Survivors kept their post-checkpoint local progress...
    for rank in range(8):
        if rank != 5:
            assert np.array_equal(runtime.local(rank, "w"), np.full(4, 20.0 + rank))
    # ...while the failed rank is back at the checkpoint (its local progress
    # was never logged; the session-level replay re-executes it).
    assert np.array_equal(runtime.local(5, "w"), np.full(4, 15.0))
    metrics = runtime.cluster.metrics
    assert metrics.get("ft.localized_recoveries") == 1
    assert metrics.get("ft.recovery_fallbacks") == 0


def test_localized_falls_back_to_global_rollback_when_copies_lost():
    # A rank dying together with its buddy cannot be served by the newest
    # (memory) version: localized recovery must fall back to the coordinated
    # checkpoint path, which here is catastrophic too — but the fallback is
    # recorded before that surfaces.
    runtime = _runtime()
    stack = build_ft_stack(runtime, recovery="localized")
    runtime.win_allocate("w", 4)
    stack.checkpointer.checkpoint(tag=0)
    victim = 0
    buddy = stack.checkpointer.buddies[victim]
    runtime.cluster.fail_rank(victim)
    runtime.cluster.fail_rank(buddy)
    runtime.observe_failures()
    with pytest.raises(CatastrophicFailure):
        stack.recovery.recover()
    assert runtime.cluster.metrics.get("ft.recovery_fallbacks") == 1


def test_localized_with_disk_store_survives_rank_and_buddy_loss():
    from heat_stencil_ft import run_stencil as rs

    baseline = rs(nprocs=8, n_local=8, iters=20, ckpt_interval=5, store="disk")
    # Node 1 hosts ranks 2 and 3 — a whole-node loss, including a buddy pair
    # boundary; the disk spill serves both replacements.
    schedule = FailureSchedule.element(level=1, index=1, time=baseline.elapsed * 0.6)
    localized = rs(
        nprocs=8, n_local=8, iters=20, ckpt_interval=5, store="disk",
        failure_schedule=schedule, recovery="localized",
    )
    assert localized.recoveries >= 1
    assert np.array_equal(baseline.field, localized.field)


# ---------------------------------------------------------------------------
# Degraded continuation — shrunk membership, best-effort semantics
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("backend", ["sim", "vector"])
def test_degraded_stencil_finishes_with_excised_ranks(backend):
    baseline = run_stencil(nprocs=8, n_local=8, iters=24, ckpt_interval=6)
    schedule = FailureSchedule.single_rank(3, baseline.elapsed * 0.5)
    degraded = run_stencil(
        nprocs=8, n_local=8, iters=24, ckpt_interval=6,
        failure_schedule=schedule, backend=backend, recovery="degraded",
    )
    # The job finished every step on the shrunk membership; the surviving
    # field is finite but not bit-identical (no rollback happened).
    assert degraded.iterations_executed == 24
    assert np.isfinite(degraded.field).all()
    assert not np.array_equal(baseline.field, degraded.field)


def test_degraded_drop_semantics_low_level():
    runtime = _runtime()
    stack = build_ft_stack(runtime, recovery="degraded")
    runtime.win_allocate("w", 4)
    for rank in range(8):
        runtime.local(rank, "w")[:] = 1.0 + rank
    stack.checkpointer.checkpoint(tag=0)
    runtime.cluster.fail_rank(2)
    runtime.observe_failures()
    outcome = stack.recovery.recover()
    assert outcome.kind == "degraded" and outcome.failed == (2,)
    assert runtime.excised == frozenset({2})
    # Operations targeting the excised rank are dropped, not raised.
    runtime.put(1, 2, "w", 0, np.full(4, 9.0))
    assert np.array_equal(runtime.local(2, "w"), np.zeros(4))  # put was dropped
    assert np.array_equal(runtime.get(1, 2, "w", 0, 4), np.zeros(4))
    assert runtime.fetch_and_op(1, 2, "w", 0, 5.0) == 0.0
    runtime.lock(1, 2)
    runtime.unlock(1, 2)
    assert runtime.cluster.metrics.get("ft.dropped_ops") >= 2
    # Collectives proceed over the shrunk membership.
    runtime.gsync()
    # Survivors keep communicating normally.
    runtime.put(0, 1, "w", 0, np.full(4, 7.0))
    assert np.array_equal(runtime.local(1, "w"), np.full(4, 7.0))
    # A later checkpoint over the shrunk membership is legal — and the
    # excised rank is neither snapshotted nor used as a copy holder.
    version = stack.checkpointer.checkpoint(tag=1)
    assert 2 not in version.local and 2 not in version.remote
    assert 2 not in version.buddy_of
    for owner, buddy in stack.checkpointer.buddies.items():
        if buddy == 2:  # nobody holds a copy in excised memory
            assert owner not in version.remote
    # Recovering again with no new failure is an error, not a loop.
    with pytest.raises(RecoveryError):
        stack.recovery.recover()


def test_degraded_successive_failures_shrink_further():
    baseline = run_stencil(nprocs=8, n_local=8, iters=24, ckpt_interval=6)
    t = baseline.elapsed
    schedule = FailureSchedule.ranks({2: t * 0.3, 6: t * 0.6})
    degraded = run_stencil(
        nprocs=8, n_local=8, iters=24, ckpt_interval=6,
        failure_schedule=schedule, recovery="degraded",
    )
    assert degraded.iterations_executed == 24
    assert degraded.recoveries == 2


# ---------------------------------------------------------------------------
# Job lifecycle — close/uninstall fully detach the stack
# ---------------------------------------------------------------------------


def test_job_context_manager_closes_and_is_idempotent():
    policy = repro.FaultTolerancePolicy(interval=5)
    with repro.launch(4, ft=policy) as job:
        job.allocate("u", 8)
        job.run(lambda ctx, step: None, steps=3)
        assert not job.closed
        assert len(job.runtime.interceptors) == 2
    assert job.closed
    # The stack is fully detached: interceptors gone, recovery refuses.
    assert len(job.runtime.interceptors) == 0
    with pytest.raises(RecoveryError, match="uninstalled"):
        job.ft.recovery.recover()
    # close() after the context exit is a no-op, as is a second close().
    job.close()
    job.finalize()
    assert job.closed


def test_ft_stack_uninstall_detaches_recovery_manager():
    runtime = _runtime(nprocs=4)
    stack = build_ft_stack(runtime, demand_threshold_bytes=64)
    assert len(runtime.interceptors) == 2
    stack.uninstall(runtime)
    assert len(runtime.interceptors) == 0
    assert stack.recovery.runtime is None and stack.recovery.checkpointer is None
    with pytest.raises(RecoveryError, match="uninstalled"):
        stack.recovery.recover()
    with pytest.raises(RecoveryError, match="uninstalled"):
        _ = stack.recovery.store
    stack.uninstall(runtime)  # idempotent


def test_report_describe_mentions_excised_ranks():
    baseline = run_stencil(nprocs=6, n_local=8, iters=12, ckpt_interval=4)
    schedule = FailureSchedule.single_rank(2, baseline.elapsed * 0.5)
    policy = repro.FaultTolerancePolicy(interval=4, recovery="degraded")
    with repro.launch(
        6, topology=repro.Topology(procs_per_node=2), ft=policy, failures=schedule,
        sync_each_step=False,
    ) as job:
        job.allocate("u", 10)
        from repro.study.workloads import HeatStencil

        kernel = HeatStencil(nprocs=6, n_local=8, iters=12).kernel()
        report = job.run(kernel, steps=12)
    assert report.excised_ranks == 1
    assert "1 ranks excised" in report.describe()
