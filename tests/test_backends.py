"""Backends and the nonblocking operation API.

Covers the epoch semantics of :class:`~repro.rma.handles.OpHandle` (buffers
materialize only at flush/unlock/gsync), the counter transitions of the
completion points, the coalescing correctness of the vector backend, and the
bit-identity of recorded traces between ``SimBackend`` and ``VectorBackend``
with and without injected failures.
"""

import numpy as np
import pytest

import repro
from repro.backends import SimBackend, VectorBackend, make_backend
from repro.errors import BackendError, EpochError, OpHandleError, WindowError
from repro.rma import RmaRuntime
from repro.simulator import Cluster, FailureSchedule

BACKENDS = ["sim", "vector"]


def _runtime(backend: str, nprocs: int = 4, **kwargs) -> RmaRuntime:
    rt = RmaRuntime(Cluster.simple(nprocs, procs_per_node=2), backend=backend, **kwargs)
    rt.win_allocate("w", 16)
    return rt


# ---------------------------------------------------------------------------
# Backend registry
# ---------------------------------------------------------------------------
def test_make_backend_resolves_names_and_instances():
    assert isinstance(make_backend(None), SimBackend)
    assert isinstance(make_backend("sim"), SimBackend)
    assert isinstance(make_backend("vector"), VectorBackend)
    custom = VectorBackend()
    assert make_backend(custom) is custom
    with pytest.raises(BackendError):
        make_backend("warp-drive")
    with pytest.raises(BackendError):
        make_backend(42)


def test_runtime_and_launch_accept_backend_knob():
    rt = RmaRuntime(Cluster.simple(2), backend="vector")
    assert rt.backend.name == "vector"
    with repro.launch(2, backend="vector") as job:
        assert job.runtime.backend.name == "vector"


def test_backend_instance_cannot_be_rebound_across_jobs():
    backend = VectorBackend()
    with repro.launch(2, backend=backend) as job:
        job.allocate("w", 4)
    # The instance owns the first job's windows/queues: a second job must
    # refuse it instead of inheriting stale state.
    with pytest.raises(BackendError):
        repro.launch(4, backend=backend)


# ---------------------------------------------------------------------------
# Handle epoch semantics
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS)
def test_unflushed_get_nb_buffer_raises_on_read(backend):
    rt = _runtime(backend)
    rt.put(0, 1, "w", 3, [7.0, 8.0])
    handle = rt.get_nb(0, 1, "w", 3, 2)
    assert not handle.completed
    with pytest.raises(OpHandleError):
        handle.result()
    rt.flush(0, 1)
    assert handle.completed
    assert np.array_equal(handle.result(), [7.0, 8.0])


@pytest.mark.parametrize("backend", BACKENDS)
def test_put_nb_completes_at_flush_and_result_is_none(backend):
    rt = _runtime(backend)
    handle = rt.put_nb(0, 2, "w", 0, [1.0, 2.0, 3.0])
    assert not handle.completed
    rt.flush(0, 2)
    assert handle.completed
    assert handle.result() is None  # puts carry no fetched buffer
    assert np.array_equal(rt.local(2, "w")[:3], [1.0, 2.0, 3.0])


def test_vector_backend_defers_effects_until_completion():
    rt = _runtime("vector")
    rt.put_nb(0, 1, "w", 0, [5.0])
    assert rt.local(1, "w")[0] == 0.0  # not applied yet
    assert rt.pending_nb_ops() == 1
    rt.flush(0, 1)
    assert rt.local(1, "w")[0] == 5.0
    assert rt.pending_nb_ops() == 0


@pytest.mark.parametrize("backend", BACKENDS)
def test_get_nb_reads_at_completion_on_every_backend(backend):
    # The target legally stores into its *own* buffer while the origin's epoch
    # is open; the get's read happens at the completion point on every
    # backend, so it must observe the store.
    rt = _runtime(backend)
    handle = rt.get_nb(0, 1, "w", 0, 1)
    rt.local(1, "w")[0] = 42.0
    rt.flush(0, 1)
    assert handle.result()[0] == 42.0


@pytest.mark.parametrize("backend", BACKENDS)
def test_unlock_and_gsync_complete_nonblocking_ops(backend):
    rt = _runtime(backend)
    rt.lock(0, 1)
    locked = rt.put_nb(0, 1, "w", 0, [1.0])
    rt.unlock(0, 1)
    assert locked.completed
    synced = rt.accumulate_nb(2, 3, "w", 5, [4.0])
    rt.gsync()
    assert synced.completed
    assert rt.local(1, "w")[0] == 1.0
    assert rt.local(3, "w")[5] == 4.0


@pytest.mark.parametrize("backend", BACKENDS)
def test_flush_closes_epoch_and_bumps_gc_for_nb_ops(backend):
    rt = _runtime(backend)
    first = rt.put_nb(0, 1, "w", 0, [1.0])
    assert first.action.EC == 0 and first.action.GC == 0
    assert rt.epochs.pending(0, 1) == 1
    rt.flush(0, 1)
    assert rt.epochs.epoch(0, 1) == 1
    assert rt.counters.gc(0) == 1
    assert rt.epochs.pending(0, 1) == 0
    later = rt.put_nb(0, 1, "w", 0, [2.0])
    assert later.action.EC == 1 and later.action.GC == 1
    rt.flush(0, 1)


@pytest.mark.parametrize("backend", BACKENDS)
def test_blocking_op_completes_queued_nb_ops_to_same_target(backend):
    rt = _runtime(backend)
    queued = rt.accumulate_nb(0, 1, "w", 0, [2.0])
    # The blocking get towards the same target is issue+completion: it must
    # land *after* the queued accumulate in issue order.
    got = rt.get(0, 1, "w", 0, 1)
    assert queued.completed
    assert got[0] == 2.0


def test_flush_only_completes_the_named_target_pair():
    rt = _runtime("vector")
    to_one = rt.put_nb(0, 1, "w", 0, [1.0])
    to_two = rt.put_nb(0, 2, "w", 0, [2.0])
    rt.flush(0, 1)
    assert to_one.completed and not to_two.completed
    assert rt.local(2, "w")[0] == 0.0
    rt.flush_all(0)
    assert to_two.completed
    assert rt.local(2, "w")[0] == 2.0


# ---------------------------------------------------------------------------
# Vector coalescing correctness
# ---------------------------------------------------------------------------
def test_vector_coalesces_contiguous_puts_correctly():
    rt = _runtime("vector")
    for m in range(4):  # one contiguous stream, chunked
        rt.put_nb(0, 1, "w", 3 * m, np.full(3, float(m)))
    rt.flush(0, 1)
    expected = np.repeat(np.arange(4.0), 3)
    assert np.array_equal(rt.local(1, "w")[:12], expected)


@pytest.mark.parametrize("backend", BACKENDS)
def test_overlapping_puts_apply_in_issue_order(backend):
    rt = _runtime(backend)
    rt.put_nb(0, 1, "w", 0, [1.0, 1.0, 1.0])
    rt.put_nb(0, 1, "w", 1, [2.0, 2.0])  # overlaps: later op wins
    rt.flush(0, 1)
    assert np.array_equal(rt.local(1, "w")[:3], [1.0, 2.0, 2.0])


def test_vector_batch_mixing_puts_and_atomics_preserves_order():
    rt = _runtime("vector")
    rt.put_nb(0, 1, "w", 0, [10.0])
    rt.accumulate_nb(0, 1, "w", 0, [5.0])
    rt.put_nb(0, 1, "w", 1, [1.0])
    rt.put_nb(0, 1, "w", 2, [2.0])  # contiguous with the previous put
    rt.flush(0, 1)
    assert np.array_equal(rt.local(1, "w")[:3], [15.0, 1.0, 2.0])


# ---------------------------------------------------------------------------
# Determinism: identical traces, clocks and metrics across backends
# ---------------------------------------------------------------------------
def _stencil_like_kernel(ctx, step):
    u = ctx.win("w")
    if ctx.rank > 0:
        u.put_nb(ctx.rank - 1, 7, u.local[1:2])
    if ctx.rank < ctx.nranks - 1:
        u.put_nb(ctx.rank + 1, 0, u.local[6:7])
    yield ctx.gsync()
    u.local[1:7] += 0.5 * ctx.rank
    ctx.compute(8.0)


def _run_traced(backend, failures=None):
    ft = repro.FaultTolerancePolicy(interval=3)
    with repro.launch(
        4, ft=ft, failures=failures, record=True, sync_each_step=False,
        backend=backend,
    ) as job:
        job.allocate("w", 8)
        for ctx in job.contexts:
            ctx.local("w")[:] = np.arange(8.0) + ctx.rank
        job.run(_stencil_like_kernel, steps=8)
        field = np.stack([job.local(r, "w").copy() for r in range(4)])
        # Strip the globally monotonic seq (last element): it differs between
        # process-wide runs, not between backends within a run.
        trace = [e.action.determinant()[:-1] for e in job.runtime.recorder.events]
        clocks = [job.runtime.cluster.now(r) for r in range(4)]
    return field, trace, clocks


@pytest.mark.parametrize(
    "failures",
    [None, {2: 0.00012}, {1: 0.00008, 3: 0.00025}],
    ids=["failure-free", "one-failure", "two-failures"],
)
def test_traces_fields_and_clocks_bit_identical_across_backends(failures):
    schedule = FailureSchedule.ranks(failures) if failures else None
    sim = _run_traced("sim", schedule)
    schedule = FailureSchedule.ranks(failures) if failures else None
    vector = _run_traced("vector", schedule)
    assert np.array_equal(sim[0], vector[0])  # window contents
    assert sim[1] == vector[1]  # recorded determinants
    assert sim[2] == vector[2]  # per-rank virtual clocks


@pytest.mark.parametrize("backend", BACKENDS)
def test_metrics_totals_are_backend_independent(backend):
    rt = _runtime(backend)
    for m in range(4):
        rt.put_nb(0, 1, "w", m, [1.0])
    rt.get_nb(0, 1, "w", 0, 2)
    rt.flush(0, 1)
    metrics = rt.cluster.metrics
    assert metrics.get("rma.put") == 4
    assert metrics.get("rma.get") == 1
    assert metrics.get("rma.bytes_moved") == 6 * 8


# ---------------------------------------------------------------------------
# Fault tolerance integration
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS)
def test_checkpoint_refuses_unflushed_nb_ops(backend):
    from repro.ft.stack import build_ft_stack

    rt = _runtime(backend)
    stack = build_ft_stack(rt)
    rt.put_nb(0, 1, "w", 0, [1.0])
    with pytest.raises(EpochError):
        stack.checkpointer.checkpoint(tag=0)
    rt.flush(0, 1)
    stack.checkpointer.checkpoint(tag=0)  # epoch boundary: fine now


@pytest.mark.parametrize("backend", BACKENDS)
def test_recovery_discards_pending_handles(backend):
    from repro.ft.stack import build_ft_stack

    rt = _runtime(backend)
    stack = build_ft_stack(rt)
    stack.checkpointer.checkpoint(tag=0)
    pending = rt.put_nb(0, 1, "w", 0, [9.0])
    rt.cluster.fail_rank(3)
    rt.observe_failures()
    stack.recovery.recover()
    assert pending.discarded
    with pytest.raises(OpHandleError):
        pending.result()
    # The rolled-back put must not have survived into the restored state.
    assert rt.local(1, "w")[0] == 0.0
    assert rt.pending_nb_ops() == 0


def test_recovery_respawn_goes_through_the_backend_hook():
    from repro.ft.stack import build_ft_stack

    class SpyBackend(SimBackend):
        def __init__(self):
            super().__init__()
            self.invalidated, self.reallocated = [], []

        def invalidate_rank(self, rank):
            self.invalidated.append(rank)
            super().invalidate_rank(rank)

        def reallocate_rank(self, rank):
            self.reallocated.append(rank)
            super().reallocate_rank(rank)

    backend = SpyBackend()
    rt = RmaRuntime(Cluster.simple(4, procs_per_node=2), backend=backend)
    rt.win_allocate("w", 8)
    stack = build_ft_stack(rt)
    stack.checkpointer.checkpoint(tag=0)
    rt.cluster.fail_rank(2)
    rt.observe_failures()
    stack.recovery.recover()
    # A custom backend sees the full failure lifecycle, not just half of it.
    assert backend.invalidated == [2]
    assert backend.reallocated == [2]


@pytest.mark.parametrize("backend", BACKENDS)
def test_flush_all_towards_dead_target_raises_on_every_backend(backend):
    from repro.errors import ProcessFailedError

    rt = _runtime(backend)
    rt.put_nb(0, 1, "w", 0, [1.0])
    rt.cluster.fail_rank(1)
    rt.observe_failures()
    # The liveness check, not the (possibly already performed) apply, must be
    # the failure point — identical on eager and batching backends.
    with pytest.raises(ProcessFailedError):
        rt.flush_all(0)


# ---------------------------------------------------------------------------
# WindowHandle edge cases (rank and window named in every error)
# ---------------------------------------------------------------------------
def test_window_handle_names_rank_and_window_in_errors():
    with repro.launch(2) as job:
        job.allocate("edge", 8)
        w = job.contexts[0].win("edge")
        with pytest.raises(WindowError, match=r"edge.*rank 0|rank 0.*edge"):
            w.put_nb(1, -3, [1.0])  # negative offset
        with pytest.raises(WindowError, match=r"edge"):
            w.get_nb(1, 0, 0)  # zero-length access
        with pytest.raises(WindowError, match=r"target rank 5.*edge"):
            w.put_nb(5, 0, [1.0])  # out-of-range target
        with pytest.raises(WindowError, match=r"target rank -1.*edge"):
            w[-1, 0:2]
        with pytest.raises(WindowError, match=r"edge"):
            w[1, 3:3]  # zero-length slice
        with pytest.raises(WindowError, match=r"edge"):
            w[1, 99]  # out-of-bounds scalar index
        with pytest.raises(WindowError, match=r"edge"):
            w.accumulate_nb(1, 4, np.zeros(0))  # empty payload


@pytest.mark.parametrize("backend", BACKENDS)
def test_runtime_rejects_out_of_bounds_nb_ops_at_issue(backend):
    rt = _runtime(backend)
    with pytest.raises(WindowError, match=r"w"):
        rt.put_nb(0, 1, "w", 12, np.zeros(8))  # tail out of bounds
    with pytest.raises(WindowError, match=r"rank 9"):
        rt.get_nb(0, 9, "w", 0, 1)  # bad target rank
    # Nothing was queued: the malformed ops failed at their call site.
    assert rt.pending_nb_ops() == 0
