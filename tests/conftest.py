"""Shared fixtures: process/shared-memory hygiene for the real-process tests."""

import multiprocessing
import os
import tempfile

import pytest


def _ckpt_scratch_dirs():
    """``repro-ckpt-*`` scratch directories currently present in the tmpdir.

    :class:`~repro.ft.stores.DiskStore` creates one per bound store and must
    remove it on ``close()`` — even when the session tears down after a failed
    restore.  A survivor here is a leak that would accumulate across CI runs.
    """
    root = tempfile.gettempdir()
    try:
        return {
            name for name in os.listdir(root) if name.startswith("repro-ckpt-")
        }
    except (FileNotFoundError, NotADirectoryError, PermissionError):
        return None


def _trace_staging_files():
    """``repro-trace-*`` staging files currently present in the tmpdir.

    :class:`~repro.trace.events.TraceWriter` stages next to its destination
    and must either publish (atomic rename) or unlink on close — even when
    the traced run aborts mid-step.  A survivor here is a leak.
    """
    root = tempfile.gettempdir()
    try:
        return {
            name for name in os.listdir(root) if name.startswith("repro-trace-")
        }
    except (FileNotFoundError, NotADirectoryError, PermissionError):
        return None


def _shm_segments():
    """Names of POSIX shm segments currently visible (Linux: /dev/shm).

    Python's :mod:`multiprocessing.shared_memory` names its segments
    ``psm_*``; restricting to that prefix keeps unrelated system segments
    (pulseaudio, browsers, ...) out of the diff.  Returns ``None`` where the
    tmpfs view does not exist — the check then degrades to process hygiene
    only.
    """
    try:
        return {name for name in os.listdir("/dev/shm") if name.startswith("psm_")}
    except (FileNotFoundError, NotADirectoryError, PermissionError):
        return None


@pytest.fixture
def proc_hygiene():
    """Assert a test leaves no orphan worker processes and no leaked shm.

    SIGKILL-heavy tests are exactly where teardown bugs hide: a worker that
    survives its session or a shared-memory segment that never gets unlinked
    would poison every later test (and, in CI, the machine).  Runs after the
    test body, so a failing assertion here names the leaking test directly.
    """
    before = _shm_segments()
    scratch_before = _ckpt_scratch_dirs()
    staging_before = _trace_staging_files()
    yield
    # Reap zombies first: a SIGKILLed child stays in active_children() until
    # someone joins it, which is bookkeeping, not a leak.
    for child in multiprocessing.active_children():
        child.join(timeout=2.0)
    leaked = [p for p in multiprocessing.active_children() if p.is_alive()]
    assert not leaked, f"orphan worker processes survived the test: {leaked}"
    after = _shm_segments()
    if before is not None and after is not None:
        assert after - before == set(), (
            f"leaked shared-memory segments: {sorted(after - before)}"
        )
    scratch_after = _ckpt_scratch_dirs()
    if scratch_before is not None and scratch_after is not None:
        assert scratch_after - scratch_before == set(), (
            "leaked DiskStore scratch directories: "
            f"{sorted(scratch_after - scratch_before)}"
        )
    staging_after = _trace_staging_files()
    if staging_before is not None and staging_after is not None:
        assert staging_after - staging_before == set(), (
            "leaked trace staging files: "
            f"{sorted(staging_after - staging_before)}"
        )
