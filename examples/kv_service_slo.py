"""Serving traffic through a failure: the per-window SLO table.

The serving layer (:mod:`repro.serve`) prices a failure the way a service
owner does — request latency against an SLO — instead of the infrastructure
units (MTTR, availability) the chaos engine reports.  This example drives the
sharded ``"kv_service"`` workload under seeded open-loop traffic, injects one
seeded NODE_KILL mid-run, and compares what each recovery protocol does to
the latency tail **on identical traffic and an identical kill plan**:

* ``global`` rollback re-executes every step since the checkpoint — every
  key's requests get re-served at later clocks, so the recovery-window p99
  spikes for everyone;
* ``localized`` replay fast-forwards survivors through the log and restores
  only the failed shard — its requests stall, everyone else's latency stands;
* ``degraded`` continuation excises the victims and keeps serving — latency
  stays flat, but the excised shard's reads go stale and its writes drop:
  a measurable error rate is the price of the flat tail.

Run with::

    PYTHONPATH=src python examples/kv_service_slo.py
"""

from __future__ import annotations

from repro.serve import ServeSpec, check_serve_invariants, render_markdown, run_slo_comparison

#: A small, seconds-long cell (the CLI's defaults serve a longer run).
SPEC = ServeSpec(
    nprocs=8,
    steps=24,
    rate_per_step=5.0,
    slots=32,
    key_space=256,
    interval=8,
    seed=2026,
    kill_frac=0.45,
    kill_kind="node_kill",
)


def main() -> None:
    results = run_slo_comparison(SPEC)

    for result in results:
        slo = result.slo["overall"]
        print(
            f"{result.spec.cell_key:24s} kills={len([k for k in result.kills if not k['skipped']])} "
            f"recoveries={result.recoveries} excised={result.excised_ranks} "
            f"errors={slo['errors']}/{slo['requests']}"
        )
    print()
    print(render_markdown(results), end="")

    violations = check_serve_invariants(results)
    for violation in violations:
        print(f"INVARIANT: {violation}")
    if violations:
        raise SystemExit(1)
    print()
    print(
        "invariants hold: localized recovery-window p99 < global's; "
        "degraded errs but its tail stays flat"
    )


if __name__ == "__main__":
    main()
