"""Fault-tolerant ring allreduce on the ``repro.api`` session.

Every rank holds a full vector of ``nranks * chunk`` elements in a window
``vec``; the job computes the element-wise sum over all ranks' vectors with
the classic two-phase ring algorithm, one ring hop per job step:

* **reduce-scatter** (steps ``0 .. P-2``): at step ``t`` rank ``r``
  *accumulates* its chunk ``(r - t) mod P`` into its right neighbour, so each
  chunk travels the ring gathering contributions; after ``P-1`` steps rank
  ``r`` owns the fully-reduced chunk ``(r + 1) mod P``;
* **allgather** (steps ``P-1 .. 2P-3``): reduced chunks travel the ring once
  more, now with plain *puts*, until every rank holds the complete sum.

Each step touches pairwise-disjoint chunks, so the kernel is a plain function
(no mid-step collective); the session's implicit end-of-step ``gsync``
separates the hops.  All cross-step state lives in the window, which is
exactly what the session checkpoints — so an injected fail-stop failure rolls
the ring back a few hops and replays them, finishing **bit-identical** to the
failure-free run, with zero recovery logic in this file.

Run with::

    PYTHONPATH=src python examples/ring_allreduce_ft.py
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

import repro
from repro.simulator import FailureSchedule

CHUNK = 16  # elements per ring chunk


@dataclass
class AllreduceResult:
    """Outcome of one ring-allreduce run."""

    vectors: np.ndarray  # (nranks, nranks * CHUNK) — final vector of each rank
    steps_executed: int
    recoveries: int
    checkpoints: int
    elapsed: float

    def describe(self) -> str:
        return (
            f"{self.steps_executed} ring hops executed, "
            f"{self.checkpoints} checkpoints, {self.recoveries} recoveries, "
            f"makespan {self.elapsed * 1e3:.3f} ms (virtual)"
        )


def _initial_vector(rank: int, nranks: int) -> np.ndarray:
    """Deterministic per-rank input vector."""
    n = nranks * CHUNK
    x = np.arange(n, dtype=np.float64)
    return np.sin(x * (rank + 1)) + rank


def ring_allreduce_kernel(ctx: repro.RankContext, step: int) -> None:
    """One ring hop: send one chunk to the right neighbour.

    Both hops issue *nonblocking* operations; the session's implicit
    end-of-step ``gsync`` completes them, so a batching backend holds them
    queued (and coalesces the puts) until the hop boundary.
    """
    vec = ctx.win("vec")
    nranks = ctx.nranks
    right = (ctx.rank + 1) % nranks
    if step < nranks - 1:
        # Reduce-scatter hop: combine my partial chunk into the neighbour's.
        c = (ctx.rank - step) % nranks
        vec.accumulate_nb(right, c * CHUNK, vec.local[c * CHUNK : (c + 1) * CHUNK])
    else:
        # Allgather hop: forward the already-reduced chunk.
        t = step - (nranks - 1)
        c = (ctx.rank + 1 - t) % nranks
        vec.put_nb(right, c * CHUNK, vec.local[c * CHUNK : (c + 1) * CHUNK])
    ctx.compute(2.0 * CHUNK)


def run_allreduce(
    *,
    nprocs: int = 8,
    ckpt_interval: int = 4,
    procs_per_node: int = 2,
    failure_schedule: FailureSchedule | None = None,
    backend: str = "sim",
    store: str = "memory",
    recovery: str = "global",
) -> AllreduceResult:
    """Run the full allreduce; the session recovers injected failures."""
    policy = repro.FaultTolerancePolicy(
        interval=ckpt_interval, store=store, recovery=recovery
    )
    with repro.launch(
        nprocs,
        topology=repro.Topology(procs_per_node=procs_per_node),
        ft=policy,
        failures=failure_schedule,
        backend=backend,
    ) as job:
        job.allocate("vec", nprocs * CHUNK)
        for ctx in job.contexts:
            ctx.local("vec")[:] = _initial_vector(ctx.rank, nprocs)
        report = job.run(ring_allreduce_kernel, steps=2 * nprocs - 2)
        vectors = np.stack([job.local(r, "vec").copy() for r in range(nprocs)])
    return AllreduceResult(
        vectors=vectors,
        steps_executed=report.steps_executed,
        recoveries=report.recoveries,
        checkpoints=report.checkpoints,
        elapsed=report.elapsed,
    )


def main() -> None:
    nprocs = 8

    baseline = run_allreduce(nprocs=nprocs)
    print(f"failure-free run : {baseline.describe()}")

    expected = np.sum(
        [_initial_vector(r, nprocs) for r in range(nprocs)], axis=0
    )
    assert np.allclose(baseline.vectors, expected[None, :])
    # Every rank ends with the same reduced vector, bit-for-bit.
    assert all(np.array_equal(baseline.vectors[0], v) for v in baseline.vectors)

    schedule = FailureSchedule.ranks(
        {3: 0.35 * baseline.elapsed, 6: 0.7 * baseline.elapsed}
    )
    print(f"injected failures: {[ev.describe() for ev in schedule]}")
    recovered = run_allreduce(nprocs=nprocs, failure_schedule=schedule)
    print(f"recovered run    : {recovered.describe()}")

    identical = np.array_equal(baseline.vectors, recovered.vectors)
    print(f"final vectors bit-identical: {identical}")
    if not identical:
        raise SystemExit(1)

    # Cross-backend check: the batching vector backend must land every hop —
    # and every recovery replay — exactly where the eager backend lands it.
    for sched, reference, label in (
        (None, baseline, "failure-free"),
        (schedule, recovered, "with failures"),
    ):
        vector = run_allreduce(nprocs=nprocs, failure_schedule=sched, backend="vector")
        identical = np.array_equal(reference.vectors, vector.vectors)
        print(f"vector backend {label}: bit-identical to sim = {identical}")
        if not identical:
            raise SystemExit(1)

    # The ring's combining accumulates are exactly the operations a naive
    # log re-application would double-apply (the paper's M flag, §3.2.3);
    # localized replay suppresses them against survivors and must still end
    # bit-identical to the global rollback on every backend.
    for backend in ("sim", "vector"):
        localized = run_allreduce(
            nprocs=nprocs, failure_schedule=schedule, backend=backend,
            recovery="localized",
        )
        identical = np.array_equal(recovered.vectors, localized.vectors)
        print(f"localized recovery ({backend}): bit-identical to global = {identical}")
        if not identical:
            raise SystemExit(1)


if __name__ == "__main__":
    main()
