"""Fault-tolerant ring allreduce, driven through the workload catalog.

The algorithm — a classic two-phase ring allreduce whose reduce-scatter hops
*accumulate* chunks into the right neighbour (exactly the combining
operations the paper's ``M`` flag guards against double-applying, §3.2.3) —
lives in the registry-resolved workload catalog as
:class:`repro.study.workloads.RingAllreduce` (``"allreduce"``), where the
resilience-study engine can sweep it.  This example drives that entry and
asserts the transparency claims: injected fail-stop failures roll the ring
back a few hops and replay them, finishing **bit-identical** to the
failure-free run on every backend, under both global rollback and localized
log-based replay — with zero recovery logic in this file.

Run with::

    PYTHONPATH=src python examples/ring_allreduce_ft.py
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

import repro
from repro.simulator import FailureSchedule
from repro.study.workloads import RingAllreduce

CHUNK = 16  # elements per ring chunk


def _initial_vector(rank: int, nranks: int) -> np.ndarray:
    """Deterministic per-rank input vector (catalog-defined)."""
    return RingAllreduce(nprocs=nranks, chunk=CHUNK).initial_vector(rank)


@dataclass
class AllreduceResult:
    """Outcome of one ring-allreduce run."""

    vectors: np.ndarray  # (nranks, nranks * CHUNK) — final vector of each rank
    steps_executed: int
    recoveries: int
    checkpoints: int
    elapsed: float

    def describe(self) -> str:
        return (
            f"{self.steps_executed} ring hops executed, "
            f"{self.checkpoints} checkpoints, {self.recoveries} recoveries, "
            f"makespan {self.elapsed * 1e3:.3f} ms (virtual)"
        )


def run_allreduce(
    *,
    nprocs: int = 8,
    ckpt_interval: int | str | None = 4,
    procs_per_node: int = 2,
    failure_schedule: FailureSchedule | None = None,
    backend: str = "sim",
    store: str = "memory",
    recovery: str = "global",
    kill_plan: repro.KillPlan | None = None,
) -> AllreduceResult:
    """Run the catalog allreduce; the session recovers injected failures."""
    workload = RingAllreduce(nprocs=nprocs, chunk=CHUNK)
    policy = repro.FaultTolerancePolicy(
        interval=ckpt_interval, store=store, recovery=recovery
    )
    run = workload.run(
        ft=policy,
        failures=failure_schedule,
        backend=backend,
        procs_per_node=procs_per_node,
        kill_plan=kill_plan,
    )
    return AllreduceResult(
        vectors=run.result,
        steps_executed=run.report.steps_executed,
        recoveries=run.report.recoveries,
        checkpoints=run.report.checkpoints,
        elapsed=run.report.elapsed,
    )


def main() -> None:
    nprocs = 8

    baseline = run_allreduce(nprocs=nprocs)
    print(f"failure-free run : {baseline.describe()}")

    expected = RingAllreduce(nprocs=nprocs, chunk=CHUNK).expected()
    assert np.allclose(baseline.vectors, expected[None, :])
    # Every rank ends with the same reduced vector, bit-for-bit.
    assert all(np.array_equal(baseline.vectors[0], v) for v in baseline.vectors)

    schedule = FailureSchedule.ranks(
        {3: 0.35 * baseline.elapsed, 6: 0.7 * baseline.elapsed}
    )
    print(f"injected failures: {[ev.describe() for ev in schedule]}")
    recovered = run_allreduce(nprocs=nprocs, failure_schedule=schedule)
    print(f"recovered run    : {recovered.describe()}")

    identical = np.array_equal(baseline.vectors, recovered.vectors)
    print(f"final vectors bit-identical: {identical}")
    if not identical:
        raise SystemExit(1)

    # Cross-backend check: the batching vector backend must land every hop —
    # and every recovery replay — exactly where the eager backend lands it.
    for sched, reference, label in (
        (None, baseline, "failure-free"),
        (schedule, recovered, "with failures"),
    ):
        vector = run_allreduce(nprocs=nprocs, failure_schedule=sched, backend="vector")
        identical = np.array_equal(reference.vectors, vector.vectors)
        print(f"vector backend {label}: bit-identical to sim = {identical}")
        if not identical:
            raise SystemExit(1)

    # The ring's combining accumulates are exactly the operations a naive
    # log re-application would double-apply (the paper's M flag, §3.2.3);
    # localized replay suppresses them against survivors and must still end
    # bit-identical to the global rollback on every backend.
    for backend in ("sim", "vector"):
        localized = run_allreduce(
            nprocs=nprocs, failure_schedule=schedule, backend=backend,
            recovery="localized",
        )
        identical = np.array_equal(recovered.vectors, localized.vectors)
        print(f"localized recovery ({backend}): bit-identical to global = {identical}")
        if not identical:
            raise SystemExit(1)

    # Real processes, real kills: a mid-reduce-scatter SIGKILL of a real
    # worker process must land the ring exactly where the exception-injected
    # sim run lands it — the combining accumulates make this the sharpest
    # bit-identity test of the real-process backend.
    if repro.proc_available():
        plan = repro.KillPlan.single(rank=3, after_ops=40)
        for store in ("memory", "disk", "parity"):
            for recovery in ("global", "localized"):
                simulated = run_allreduce(
                    nprocs=nprocs, backend="sim", store=store,
                    recovery=recovery, kill_plan=plan,
                )
                killed = run_allreduce(
                    nprocs=nprocs, backend="proc", store=store,
                    recovery=recovery, kill_plan=plan,
                )
                identical = killed.recoveries >= 1 and (
                    np.array_equal(simulated.vectors, killed.vectors)
                    and np.array_equal(baseline.vectors, killed.vectors)
                )
                print(
                    f"real SIGKILL (proc/{store}/{recovery}): bit-identical "
                    f"to simulated kill = {identical}"
                )
                if not identical:
                    raise SystemExit(1)
    else:  # pragma: no cover - platform dependent
        print("real-process backend unavailable here; skipping SIGKILL runs")


if __name__ == "__main__":
    main()
