"""Fault-tolerant 1-D heat stencil, written against the ``repro.api`` session.

An SPMD Jacobi iteration: each rank owns ``n_local`` interior cells of a 1-D
rod in a window ``u`` with one ghost cell on each side.  Every step the
kernel puts its boundary cells into its neighbours' ghost cells, suspends at
a ``gsync`` (halo visibility), and updates its interior.

The kernel contains **no** fault-tolerance code at all.  The session declared
by :class:`repro.FaultTolerancePolicy` takes coordinated in-memory
checkpoints every ``ckpt_interval`` steps (or on demand when the put/get log
grows past a threshold), and when a fail-stop failure is observed mid-run it
respawns the dead ranks, restores every window from the surviving buddy
copies and resumes the step loop from the checkpointed step — transparently.

Because the cooperative schedule is deterministic, the recovered run finishes
with a final temperature field **bit-identical** to a failure-free run —
which ``main()`` demonstrates under an exponential failure schedule.

Run with::

    PYTHONPATH=src python examples/heat_stencil_ft.py
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

import repro
from repro.simulator import FailureSchedule, exponential_schedule

ALPHA = 0.1  # diffusion coefficient of the explicit update


@dataclass
class StencilResult:
    """Outcome of one stencil run."""

    field: np.ndarray
    iterations_executed: int
    recoveries: int
    checkpoints: int
    elapsed: float

    def describe(self) -> str:
        return (
            f"{self.iterations_executed} iterations executed, "
            f"{self.checkpoints} checkpoints, {self.recoveries} recoveries, "
            f"makespan {self.elapsed * 1e3:.3f} ms (virtual)"
        )


def _initial_field(nprocs: int, n_local: int) -> np.ndarray:
    """Deterministic initial temperature: a sine profile plus a hot spot."""
    n_global = nprocs * n_local
    x = np.arange(n_global, dtype=np.float64)
    field = np.sin(2.0 * np.pi * x / n_global)
    field[n_global // 3] += 2.0
    return field


def make_stencil_kernel(n_local: int):
    """One Jacobi step from a single rank's point of view."""

    def kernel(ctx: repro.RankContext, step: int):
        u = ctx.win("u")
        mine = u.local
        # Halo exchange: nonblocking puts of the boundary cells into the
        # neighbours' ghost cells; the gsync below completes them (a batching
        # backend is free to coalesce them until then).
        if ctx.rank > 0:
            u.put_nb(ctx.rank - 1, n_local + 1, mine[1:2])
        if ctx.rank < ctx.nranks - 1:
            u.put_nb(ctx.rank + 1, 0, mine[n_local : n_local + 1])
        yield ctx.gsync()  # halos are visible from here on
        interior = mine[1 : n_local + 1]
        mine[1 : n_local + 1] = interior + ALPHA * (
            mine[0:n_local] - 2.0 * interior + mine[2 : n_local + 2]
        )
        ctx.compute(4.0 * n_local)

    return kernel


def run_stencil(
    *,
    nprocs: int = 8,
    n_local: int = 32,
    iters: int = 60,
    ckpt_interval: int = 10,
    procs_per_node: int = 2,
    failure_schedule: FailureSchedule | None = None,
    demand_threshold_bytes: int | None = None,
    buddy_level: int = 1,
    backend: str = "sim",
    store: str = "memory",
    recovery: str = "global",
) -> StencilResult:
    """Run the stencil to completion; the session recovers injected failures."""
    policy = repro.FaultTolerancePolicy(
        interval=ckpt_interval,
        demand_threshold_bytes=demand_threshold_bytes,
        buddy_level=buddy_level,
        store=store,
        recovery=recovery,
    )
    with repro.launch(
        nprocs,
        topology=repro.Topology(procs_per_node=procs_per_node),
        ft=policy,
        failures=failure_schedule,
        sync_each_step=False,  # the kernel's mid-step gsync is the only sync
        backend=backend,
    ) as job:
        job.allocate("u", n_local + 2)
        initial = _initial_field(nprocs, n_local)
        for ctx in job.contexts:
            ctx.local("u")[1 : n_local + 1] = initial[
                ctx.rank * n_local : (ctx.rank + 1) * n_local
            ]
        report = job.run(make_stencil_kernel(n_local), steps=iters)
        field = job.gather("u", part=slice(1, n_local + 1))
    return StencilResult(
        field=field,
        iterations_executed=report.steps_executed,
        recoveries=report.recoveries,
        checkpoints=report.checkpoints,
        elapsed=report.elapsed,
    )


def main() -> None:
    nprocs, n_local, iters = 8, 32, 60

    baseline = run_stencil(nprocs=nprocs, n_local=n_local, iters=iters)
    print(f"failure-free run : {baseline.describe()}")

    # Exponential fail-stop schedule over the failure-free makespan: node-level
    # events (level 1) drawn from a Poisson process, as in the paper's §7.1.
    schedule = exponential_schedule(
        horizon=baseline.elapsed,
        rates_per_level={1: 2.0 / baseline.elapsed},
        max_index_per_level={1: -(-nprocs // 2)},
        seed=7,
    )
    print(f"injected failures: {[ev.describe() for ev in schedule]}")
    recovered = run_stencil(
        nprocs=nprocs, n_local=n_local, iters=iters, failure_schedule=schedule
    )
    print(f"recovered run    : {recovered.describe()}")

    identical = np.array_equal(baseline.field, recovered.field)
    print(f"final fields bit-identical: {identical}")
    if not identical:
        raise SystemExit(1)

    demand = run_stencil(
        nprocs=nprocs,
        n_local=n_local,
        iters=iters,
        ckpt_interval=iters,  # only the initial coordinated checkpoint
        demand_threshold_bytes=256,
        failure_schedule=schedule,
    )
    print(f"demand-ckpt run  : {demand.describe()}")
    assert np.array_equal(baseline.field, demand.field)

    # The vector backend batches the nonblocking halo puts and applies them as
    # coalesced writes at the gsync — with and without failures the final
    # field must match the eager backend bit for bit.
    for sched, label in ((None, "failure-free"), (schedule, "with failures")):
        vector = run_stencil(
            nprocs=nprocs, n_local=n_local, iters=iters,
            failure_schedule=sched, backend="vector",
        )
        reference = baseline if sched is None else recovered
        identical = np.array_equal(reference.field, vector.field)
        print(f"vector backend {label}: bit-identical to sim = {identical}")
        if not identical:
            raise SystemExit(1)

    # Localized (log-based) recovery restores only the failed ranks and
    # replays the put/get log; survivors keep their state.  The final field
    # must still match the global rollback bit for bit — on every backend and
    # on every checkpoint store.  Each store has its own cost profile (disk
    # checkpoints are PFS-slow), so the fail-stop time is scaled to a
    # store-specific failure-free makespan to land mid-run everywhere.
    for store in ("memory", "disk", "parity"):
        store_free = run_stencil(
            nprocs=nprocs, n_local=n_local, iters=iters, store=store,
        )
        store_schedule = FailureSchedule.single_rank(3, store_free.elapsed * 0.6)
        for backend in ("sim", "vector"):
            rolled = run_stencil(
                nprocs=nprocs, n_local=n_local, iters=iters,
                failure_schedule=store_schedule, backend=backend, store=store,
                recovery="global",
            )
            localized = run_stencil(
                nprocs=nprocs, n_local=n_local, iters=iters,
                failure_schedule=store_schedule, backend=backend, store=store,
                recovery="localized",
            )
            identical = np.array_equal(rolled.field, localized.field) and (
                np.array_equal(baseline.field, localized.field)
            )
            print(
                f"localized recovery ({backend}/{store}): bit-identical to "
                f"global rollback = {identical}"
            )
            if not identical:
                raise SystemExit(1)

    # Best-effort degraded continuation: the failed ranks are excised and the
    # survivors keep computing on the shrunk membership — no bit-identity
    # (the excised ranks' cells decay towards the zeroed ghost values), but
    # the job finishes and the surviving field stays finite.
    degraded = run_stencil(
        nprocs=nprocs, n_local=n_local, iters=iters,
        failure_schedule=schedule, recovery="degraded",
    )
    print(f"degraded run     : {degraded.describe()}")
    assert degraded.iterations_executed >= iters
    assert np.isfinite(degraded.field).all()


if __name__ == "__main__":
    main()
