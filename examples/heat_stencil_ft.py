"""Fault-tolerant 1-D heat stencil, driven through the workload catalog.

The stencil itself — an SPMD Jacobi iteration whose kernel contains **no**
fault-tolerance code at all — lives in the registry-resolved workload catalog
as :class:`repro.study.workloads.HeatStencil` (``"stencil"``), where the
resilience-study engine (``python -m repro.study``) can sweep it.  This
example drives that catalog entry through the declarative session API and
demonstrates the paper's transparency claim end to end:

* a run recovering injected fail-stop failures finishes with a final
  temperature field **bit-identical** to a failure-free run (global rollback,
  demand checkpoints, every backend, every checkpoint store);
* localized (log-based) recovery matches the global rollback bit for bit
  while restoring only the failed ranks;
* ``interval="auto"`` resolves the checkpoint interval through the analytic
  Young/Daly model instead of a hand-picked constant;
* a degraded continuation survives without bit-identity (availability over
  precision).

Run with::

    PYTHONPATH=src python examples/heat_stencil_ft.py
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

import repro
from repro.simulator import FailureSchedule, exponential_schedule
from repro.study.workloads import HeatStencil


@dataclass
class StencilResult:
    """Outcome of one stencil run."""

    field: np.ndarray
    iterations_executed: int
    recoveries: int
    checkpoints: int
    elapsed: float
    resolved_interval: int | None = None

    def describe(self) -> str:
        return (
            f"{self.iterations_executed} iterations executed, "
            f"{self.checkpoints} checkpoints, {self.recoveries} recoveries, "
            f"makespan {self.elapsed * 1e3:.3f} ms (virtual)"
        )


def run_stencil(
    *,
    nprocs: int = 8,
    n_local: int = 32,
    iters: int = 60,
    ckpt_interval: int | str | None = 10,
    procs_per_node: int = 2,
    failure_schedule: FailureSchedule | None = None,
    demand_threshold_bytes: int | None = None,
    buddy_level: int = 1,
    backend: str = "sim",
    store: str = "memory",
    recovery: str = "global",
    failure_rates: dict[int, float] | None = None,
    kill_plan: repro.KillPlan | None = None,
) -> StencilResult:
    """Run the catalog stencil to completion; the session recovers failures."""
    workload = HeatStencil(nprocs=nprocs, n_local=n_local, iters=iters)
    policy = repro.FaultTolerancePolicy(
        interval=ckpt_interval,
        demand_threshold_bytes=demand_threshold_bytes,
        buddy_level=buddy_level,
        store=store,
        recovery=recovery,
        failure_rates=failure_rates,
    )
    run = workload.run(
        ft=policy,
        failures=failure_schedule,
        backend=backend,
        procs_per_node=procs_per_node,
        kill_plan=kill_plan,
    )
    return StencilResult(
        field=run.result,
        iterations_executed=run.report.steps_executed,
        recoveries=run.report.recoveries,
        checkpoints=run.report.checkpoints,
        elapsed=run.report.elapsed,
        resolved_interval=run.resolved_interval,
    )


def main() -> None:
    nprocs, n_local, iters = 8, 32, 60

    baseline = run_stencil(nprocs=nprocs, n_local=n_local, iters=iters)
    print(f"failure-free run : {baseline.describe()}")

    # Exponential fail-stop schedule over the failure-free makespan: node-level
    # events (level 1) drawn from a Poisson process, as in the paper's §7.1.
    schedule = exponential_schedule(
        horizon=baseline.elapsed,
        rates_per_level={1: 2.0 / baseline.elapsed},
        max_index_per_level={1: -(-nprocs // 2)},
        seed=7,
    )
    print(f"injected failures: {[ev.describe() for ev in schedule]}")
    recovered = run_stencil(
        nprocs=nprocs, n_local=n_local, iters=iters, failure_schedule=schedule
    )
    print(f"recovered run    : {recovered.describe()}")

    identical = np.array_equal(baseline.field, recovered.field)
    print(f"final fields bit-identical: {identical}")
    if not identical:
        raise SystemExit(1)

    demand = run_stencil(
        nprocs=nprocs,
        n_local=n_local,
        iters=iters,
        ckpt_interval=iters,  # only the initial coordinated checkpoint
        demand_threshold_bytes=256,
        failure_schedule=schedule,
    )
    print(f"demand-ckpt run  : {demand.describe()}")
    assert np.array_equal(baseline.field, demand.field)

    # interval="auto": the session resolves the periodic interval through the
    # analytic Young/Daly model from the declared failure rates, the store's
    # checkpoint cost and the measured step cost — and still recovers
    # bit-identically.
    auto = run_stencil(
        nprocs=nprocs, n_local=n_local, iters=iters,
        ckpt_interval="auto",
        failure_rates={1: 2.0 / baseline.elapsed},
        failure_schedule=schedule,
    )
    print(f"auto-interval run: {auto.describe()} (resolved interval: {auto.resolved_interval})")
    assert auto.resolved_interval is not None
    assert np.array_equal(baseline.field, auto.field)

    # The vector backend batches the nonblocking halo puts and applies them as
    # coalesced writes at the gsync — with and without failures the final
    # field must match the eager backend bit for bit.
    for sched, label in ((None, "failure-free"), (schedule, "with failures")):
        vector = run_stencil(
            nprocs=nprocs, n_local=n_local, iters=iters,
            failure_schedule=sched, backend="vector",
        )
        reference = baseline if sched is None else recovered
        identical = np.array_equal(reference.field, vector.field)
        print(f"vector backend {label}: bit-identical to sim = {identical}")
        if not identical:
            raise SystemExit(1)

    # Localized (log-based) recovery restores only the failed ranks and
    # replays the put/get log; survivors keep their state.  The final field
    # must still match the global rollback bit for bit — on every backend and
    # on every checkpoint store.  Each store has its own cost profile (disk
    # checkpoints are PFS-slow), so the fail-stop time is scaled to a
    # store-specific failure-free makespan to land mid-run everywhere.
    for store in ("memory", "disk", "parity"):
        store_free = run_stencil(
            nprocs=nprocs, n_local=n_local, iters=iters, store=store,
        )
        store_schedule = FailureSchedule.single_rank(3, store_free.elapsed * 0.6)
        for backend in ("sim", "vector"):
            rolled = run_stencil(
                nprocs=nprocs, n_local=n_local, iters=iters,
                failure_schedule=store_schedule, backend=backend, store=store,
                recovery="global",
            )
            localized = run_stencil(
                nprocs=nprocs, n_local=n_local, iters=iters,
                failure_schedule=store_schedule, backend=backend, store=store,
                recovery="localized",
            )
            identical = np.array_equal(rolled.field, localized.field) and (
                np.array_equal(baseline.field, localized.field)
            )
            print(
                f"localized recovery ({backend}/{store}): bit-identical to "
                f"global rollback = {identical}"
            )
            if not identical:
                raise SystemExit(1)

    # Real processes, real kills: on platforms with fork + POSIX shared
    # memory, the same catalog entry runs with every rank a real OS process
    # over shared-memory windows, and the fault is a real SIGKILL delivered
    # mid-run.  Timed by completion-stream position, the same kill strikes
    # the exception-injected sim run at the same program point — and every
    # (store x recovery) cell must finish bit-identical to it.
    if repro.proc_available():
        plan = repro.KillPlan.single(rank=3, after_ops=120)
        for store in ("memory", "disk", "parity"):
            for recovery in ("global", "localized"):
                simulated = run_stencil(
                    nprocs=nprocs, n_local=n_local, iters=iters,
                    backend="sim", store=store, recovery=recovery,
                    kill_plan=plan,
                )
                killed = run_stencil(
                    nprocs=nprocs, n_local=n_local, iters=iters,
                    backend="proc", store=store, recovery=recovery,
                    kill_plan=plan,
                )
                identical = killed.recoveries >= 1 and (
                    np.array_equal(simulated.field, killed.field)
                    and np.array_equal(baseline.field, killed.field)
                )
                print(
                    f"real SIGKILL (proc/{store}/{recovery}): bit-identical "
                    f"to simulated kill = {identical}"
                )
                if not identical:
                    raise SystemExit(1)
    else:  # pragma: no cover - platform dependent
        print("real-process backend unavailable here; skipping SIGKILL runs")

    # Best-effort degraded continuation: the failed ranks are excised and the
    # survivors keep computing on the shrunk membership — no bit-identity
    # (the excised ranks' cells decay towards the zeroed ghost values), but
    # the job finishes and the surviving field stays finite.
    degraded = run_stencil(
        nprocs=nprocs, n_local=n_local, iters=iters,
        failure_schedule=schedule, recovery="degraded",
    )
    print(f"degraded run     : {degraded.describe()}")
    assert degraded.iterations_executed >= iters
    assert np.isfinite(degraded.field).all()


if __name__ == "__main__":
    main()
