"""Fault-tolerant 1-D heat stencil on the simulated RMA runtime.

An SPMD Jacobi iteration: each rank owns ``n_local`` interior cells of a 1-D
rod in a window ``u`` with one ghost cell on each side.  Every iteration the
ranks exchange halos with one-sided ``put``, synchronize with a ``gsync`` and
update their interior.  Coordinated in-memory checkpoints are taken every
``ckpt_interval`` iterations (or on demand when the put/get log grows past a
threshold); when a fail-stop failure is observed mid-run, the
:class:`~repro.ft.recovery.RecoveryManager` respawns the dead ranks, restores
every window from the surviving buddy copies and the iteration resumes from
the checkpointed step.

Because the computation is deterministic, the recovered run finishes with a
final temperature field **bit-identical** to a failure-free run — which
``main()`` demonstrates under an exponential failure schedule.

Run with::

    PYTHONPATH=src python examples/heat_stencil_ft.py
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ProcessFailedError
from repro.ft import ActionLog, CoordinatedCheckpointer, RecoveryManager
from repro.rma import RmaRuntime
from repro.simulator import Cluster, FailureSchedule, exponential_schedule

ALPHA = 0.1  # diffusion coefficient of the explicit update


@dataclass
class StencilResult:
    """Outcome of one stencil run."""

    field: np.ndarray
    iterations_executed: int
    recoveries: int
    checkpoints: int
    elapsed: float

    def describe(self) -> str:
        return (
            f"{self.iterations_executed} iterations executed, "
            f"{self.checkpoints:.0f} checkpoints, {self.recoveries:.0f} recoveries, "
            f"makespan {self.elapsed * 1e3:.3f} ms (virtual)"
        )


def _initial_field(nprocs: int, n_local: int) -> np.ndarray:
    """Deterministic initial temperature: a sine profile plus a hot spot."""
    n_global = nprocs * n_local
    x = np.arange(n_global, dtype=np.float64)
    field = np.sin(2.0 * np.pi * x / n_global)
    field[n_global // 3] += 2.0
    return field


def run_stencil(
    *,
    nprocs: int = 8,
    n_local: int = 32,
    iters: int = 60,
    ckpt_interval: int = 10,
    procs_per_node: int = 2,
    failure_schedule: FailureSchedule | None = None,
    demand_threshold_bytes: int | None = None,
    buddy_level: int = 1,
) -> StencilResult:
    """Run the stencil to completion, recovering from any injected failures."""
    cluster = Cluster.simple(
        nprocs, procs_per_node=procs_per_node, failure_schedule=failure_schedule
    )
    runtime = RmaRuntime(cluster)
    log = ActionLog()
    checkpointer = CoordinatedCheckpointer(
        level=buddy_level, log=log, demand_threshold_bytes=demand_threshold_bytes
    )
    runtime.add_interceptor(log)
    runtime.add_interceptor(checkpointer)
    recovery = RecoveryManager(runtime, checkpointer)

    runtime.win_allocate("u", n_local + 2)
    initial = _initial_field(nprocs, n_local)
    for rank in range(nprocs):
        runtime.local(rank, "u")[1 : n_local + 1] = initial[
            rank * n_local : (rank + 1) * n_local
        ]

    it = 0
    executed = 0
    while it < iters:
        try:
            if it % ckpt_interval == 0:
                checkpointer.checkpoint(tag=it)
            elif demand_threshold_bytes is not None:
                checkpointer.maybe_checkpoint(tag=it)
            _halo_exchange(runtime, nprocs, n_local)
            runtime.gsync()
            _update_interior(runtime, nprocs, n_local)
            it += 1
            executed += 1
        except ProcessFailedError:
            # A further failure can strike *during* recovery (its closing
            # barrier observes it); keep recovering until one attempt
            # completes — the store survives across attempts.
            while True:
                try:
                    it = recovery.recover()
                    break
                except ProcessFailedError:
                    continue
    runtime.finalize()

    field = np.concatenate(
        [runtime.local(rank, "u")[1 : n_local + 1].copy() for rank in range(nprocs)]
    )
    metrics = cluster.metrics
    return StencilResult(
        field=field,
        iterations_executed=executed,
        recoveries=metrics.get("ft.recoveries"),
        checkpoints=metrics.get("ft.checkpoints"),
        elapsed=cluster.elapsed(),
    )


def _halo_exchange(runtime: RmaRuntime, nprocs: int, n_local: int) -> None:
    """Each rank puts its boundary cells into its neighbours' ghost cells."""
    for rank in range(nprocs):
        u = runtime.local(rank, "u")
        if rank > 0:
            runtime.put(rank, rank - 1, "u", n_local + 1, u[1:2])
        if rank < nprocs - 1:
            runtime.put(rank, rank + 1, "u", 0, u[n_local : n_local + 1])


def _update_interior(runtime: RmaRuntime, nprocs: int, n_local: int) -> None:
    """Explicit Jacobi update of every rank's interior cells."""
    for rank in range(nprocs):
        u = runtime.local(rank, "u")
        interior = u[1 : n_local + 1]
        updated = interior + ALPHA * (u[0:n_local] - 2.0 * interior + u[2 : n_local + 2])
        u[1 : n_local + 1] = updated
        runtime.compute(rank, 4.0 * n_local)


def main() -> None:
    nprocs, n_local, iters = 8, 32, 60

    baseline = run_stencil(nprocs=nprocs, n_local=n_local, iters=iters)
    print(f"failure-free run : {baseline.describe()}")

    # Exponential fail-stop schedule over the failure-free makespan: node-level
    # events (level 1) drawn from a Poisson process, as in the paper's §7.1.
    schedule = exponential_schedule(
        horizon=baseline.elapsed,
        rates_per_level={1: 2.0 / baseline.elapsed},
        max_index_per_level={1: -(-nprocs // 2)},
        seed=7,
    )
    print(f"injected failures: {[ev.describe() for ev in schedule]}")
    recovered = run_stencil(
        nprocs=nprocs, n_local=n_local, iters=iters, failure_schedule=schedule
    )
    print(f"recovered run    : {recovered.describe()}")

    identical = np.array_equal(baseline.field, recovered.field)
    print(f"final fields bit-identical: {identical}")
    if not identical:
        raise SystemExit(1)

    demand = run_stencil(
        nprocs=nprocs,
        n_local=n_local,
        iters=iters,
        ckpt_interval=iters,  # only the initial coordinated checkpoint
        demand_threshold_bytes=256,
        failure_schedule=schedule,
    )
    print(f"demand-ckpt run  : {demand.describe()}")
    assert np.array_equal(baseline.field, demand.field)


if __name__ == "__main__":
    main()
