"""Fault-tolerant random-access key-value updates, via the workload catalog.

The GUPS-style workload — lock-protected atomic ``fetch_and_op(SUM)`` updates
drawn from deterministic per-``(seed, step, rank)`` batches — lives in the
registry-resolved catalog as :class:`repro.study.workloads.KvUpdate`
(``"kv"``), where the resilience-study engine can sweep it.  It exercises the
Locks scheme: lock/unlock drive the SC counter and the checkpoint guard (no
checkpoint while a lock is held), and the put/get log drives *demand*
checkpoints (``interval=None``: besides the initial one, checkpoints happen
only when the logged volume passes the threshold, §6.2).

No recovery logic appears below: the session rolls the table back to the last
committed checkpoint and replays, and because the batches are pure functions
of ``(step, rank)`` the recovered table is **bit-identical** to the
failure-free run — and to a plain numpy replay of all updates.

Run with::

    PYTHONPATH=src python examples/kv_update_ft.py
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

import repro
from repro.simulator import FailureSchedule
from repro.study.workloads import KvUpdate

SLOTS = 24  # table slots owned by each rank
UPDATES_PER_STEP = 8  # updates drawn by each rank per step


def expected_table(seed: int, nprocs: int, steps: int) -> np.ndarray:
    """Replay every batch locally, in the scheduler's (step, rank) order."""
    return KvUpdate(
        nprocs=nprocs, slots=SLOTS, updates_per_step=UPDATES_PER_STEP,
        steps=steps, seed=seed,
    ).expected()


@dataclass
class KvResult:
    """Outcome of one key-value run."""

    table: np.ndarray  # the concatenated global table
    steps_executed: int
    recoveries: int
    checkpoints: int
    demand_checkpoints: int
    elapsed: float

    def describe(self) -> str:
        return (
            f"{self.steps_executed} steps executed, "
            f"{self.checkpoints} checkpoints ({self.demand_checkpoints} on demand), "
            f"{self.recoveries} recoveries, "
            f"makespan {self.elapsed * 1e3:.3f} ms (virtual)"
        )


def run_kv(
    *,
    nprocs: int = 8,
    steps: int = 24,
    seed: int = 11,
    demand_threshold_bytes: int = 512,
    procs_per_node: int = 2,
    failure_schedule: FailureSchedule | None = None,
    backend: str = "sim",
    store: str = "memory",
    recovery: str = "global",
    kill_plan: repro.KillPlan | None = None,
) -> KvResult:
    """Run the catalog workload; the session recovers injected failures on demand."""
    workload = KvUpdate(
        nprocs=nprocs, slots=SLOTS, updates_per_step=UPDATES_PER_STEP,
        steps=steps, seed=seed,
    )
    policy = repro.FaultTolerancePolicy(
        interval=None,  # demand checkpoints only (plus the initial one)
        demand_threshold_bytes=demand_threshold_bytes,
        store=store,
        recovery=recovery,
    )
    run = workload.run(
        ft=policy,
        failures=failure_schedule,
        backend=backend,
        procs_per_node=procs_per_node,
        kill_plan=kill_plan,
    )
    return KvResult(
        table=run.result,
        steps_executed=run.report.steps_executed,
        recoveries=run.report.recoveries,
        checkpoints=run.report.checkpoints,
        demand_checkpoints=run.report.demand_checkpoints,
        elapsed=run.report.elapsed,
    )


def main() -> None:
    nprocs, steps, seed = 8, 24, 11

    baseline = run_kv(nprocs=nprocs, steps=steps, seed=seed)
    print(f"failure-free run : {baseline.describe()}")
    assert np.array_equal(baseline.table, expected_table(seed, nprocs, steps))

    schedule = FailureSchedule.ranks(
        {1: 0.3 * baseline.elapsed, 4: 0.75 * baseline.elapsed}
    )
    print(f"injected failures: {[ev.describe() for ev in schedule]}")
    recovered = run_kv(nprocs=nprocs, steps=steps, seed=seed, failure_schedule=schedule)
    print(f"recovered run    : {recovered.describe()}")

    identical = np.array_equal(baseline.table, recovered.table)
    print(f"final tables bit-identical: {identical}")
    if not identical:
        raise SystemExit(1)

    # The lock-protected atomics are blocking (they need their fetched
    # values), which exercises the mixed blocking path on the batching
    # backend: every backend must produce the same table, failures included.
    vector = run_kv(
        nprocs=nprocs, steps=steps, seed=seed,
        failure_schedule=schedule, backend="vector",
    )
    identical = np.array_equal(recovered.table, vector.table)
    print(f"vector backend with failures: bit-identical to sim = {identical}")
    if not identical:
        raise SystemExit(1)

    # A failure here usually lands mid-step, with half a batch of blocking
    # lock-protected atomics already committed — the hardest case for
    # log-based recovery: localized replay must suppress exactly the
    # committed prefix (serving the logged fetch results) and re-execute the
    # rest, finishing bit-identical to the global rollback on every backend.
    for backend in ("sim", "vector"):
        localized = run_kv(
            nprocs=nprocs, steps=steps, seed=seed,
            failure_schedule=schedule, backend=backend, recovery="localized",
        )
        identical = np.array_equal(recovered.table, localized.table)
        print(f"localized recovery ({backend}): bit-identical to global = {identical}")
        if not identical:
            raise SystemExit(1)

    # Real processes, real kills: SIGKILL a real worker mid-run — most
    # offsets land inside a lock-protected atomic batch — and demand the
    # recovered table match the exception-injected sim run bit for bit on
    # every (store x recovery) cell.
    if repro.proc_available():
        plan = repro.KillPlan.single(rank=4, after_ops=300)
        for store in ("memory", "disk", "parity"):
            for recovery in ("global", "localized"):
                simulated = run_kv(
                    nprocs=nprocs, steps=steps, seed=seed, backend="sim",
                    store=store, recovery=recovery, kill_plan=plan,
                )
                killed = run_kv(
                    nprocs=nprocs, steps=steps, seed=seed, backend="proc",
                    store=store, recovery=recovery, kill_plan=plan,
                )
                identical = killed.recoveries >= 1 and (
                    np.array_equal(simulated.table, killed.table)
                    and np.array_equal(baseline.table, killed.table)
                )
                print(
                    f"real SIGKILL (proc/{store}/{recovery}): bit-identical "
                    f"to simulated kill = {identical}"
                )
                if not identical:
                    raise SystemExit(1)
    else:  # pragma: no cover - platform dependent
        print("real-process backend unavailable here; skipping SIGKILL runs")


if __name__ == "__main__":
    main()
