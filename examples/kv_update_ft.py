"""Fault-tolerant random-access key-value updates on the ``repro.api`` session.

A GUPS-style workload: a global table of ``nranks * SLOTS`` float slots is
block-distributed over the ranks in a window ``table``.  Each step every rank
draws a deterministic pseudo-random batch of ``(key, delta)`` updates —
seeded purely by ``(seed, step, rank)``, so a replayed step draws exactly the
same batch — and applies each with a lock-protected atomic
``fetch_and_op(SUM)`` on the owner rank.  This exercises the Locks scheme:
lock/unlock drive the SC counter and the checkpoint guard (no checkpoint
while a lock is held), and the put/get log drives *demand* checkpoints
(``interval=None``: besides the initial one, checkpoints happen only when the
logged volume passes the threshold, §6.2).

No recovery logic appears below: the session rolls the table back to the last
committed checkpoint and replays, and because the batches are pure functions
of ``(step, rank)`` the recovered table is **bit-identical** to the
failure-free run — and to a plain numpy replay of all updates.

Run with::

    PYTHONPATH=src python examples/kv_update_ft.py
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

import repro
from repro.simulator import FailureSchedule

SLOTS = 24  # table slots owned by each rank
UPDATES_PER_STEP = 8  # updates drawn by each rank per step


@dataclass
class KvResult:
    """Outcome of one key-value run."""

    table: np.ndarray  # the concatenated global table
    steps_executed: int
    recoveries: int
    checkpoints: int
    demand_checkpoints: int
    elapsed: float

    def describe(self) -> str:
        return (
            f"{self.steps_executed} steps executed, "
            f"{self.checkpoints} checkpoints ({self.demand_checkpoints} on demand), "
            f"{self.recoveries} recoveries, "
            f"makespan {self.elapsed * 1e3:.3f} ms (virtual)"
        )


def _batch(seed: int, step: int, rank: int, nranks: int) -> tuple[np.ndarray, np.ndarray]:
    """The update batch of ``rank`` at ``step``: pure function of its inputs."""
    rng = np.random.default_rng((seed, step, rank))
    keys = rng.integers(0, nranks * SLOTS, size=UPDATES_PER_STEP)
    deltas = rng.integers(1, 10, size=UPDATES_PER_STEP).astype(np.float64)
    return keys, deltas


def make_kv_kernel(seed: int):
    """One batch of lock-protected atomic updates from one rank."""

    def kernel(ctx: repro.RankContext, step: int) -> None:
        keys, deltas = _batch(seed, step, ctx.rank, ctx.nranks)
        for key, delta in zip(keys, deltas):
            owner, offset = divmod(int(key), SLOTS)
            ctx.lock(owner)
            ctx.fetch_and_op(owner, "table", offset, float(delta))
            ctx.unlock(owner)
        ctx.compute(10.0 * UPDATES_PER_STEP)

    return kernel


def expected_table(seed: int, nprocs: int, steps: int) -> np.ndarray:
    """Replay every batch locally, in the scheduler's (step, rank) order."""
    table = np.zeros(nprocs * SLOTS, dtype=np.float64)
    for step in range(steps):
        for rank in range(nprocs):
            keys, deltas = _batch(seed, step, rank, nprocs)
            for key, delta in zip(keys, deltas):
                table[int(key)] += delta
    return table


def run_kv(
    *,
    nprocs: int = 8,
    steps: int = 24,
    seed: int = 11,
    demand_threshold_bytes: int = 512,
    procs_per_node: int = 2,
    failure_schedule: FailureSchedule | None = None,
    backend: str = "sim",
    store: str = "memory",
    recovery: str = "global",
) -> KvResult:
    """Run the workload; the session recovers injected failures on demand."""
    policy = repro.FaultTolerancePolicy(
        interval=None,  # demand checkpoints only (plus the initial one)
        demand_threshold_bytes=demand_threshold_bytes,
        store=store,
        recovery=recovery,
    )
    with repro.launch(
        nprocs,
        topology=repro.Topology(procs_per_node=procs_per_node),
        ft=policy,
        failures=failure_schedule,
        backend=backend,
    ) as job:
        job.allocate("table", SLOTS)
        report = job.run(make_kv_kernel(seed), steps=steps)
        table = job.gather("table")
    return KvResult(
        table=table,
        steps_executed=report.steps_executed,
        recoveries=report.recoveries,
        checkpoints=report.checkpoints,
        demand_checkpoints=report.demand_checkpoints,
        elapsed=report.elapsed,
    )


def main() -> None:
    nprocs, steps, seed = 8, 24, 11

    baseline = run_kv(nprocs=nprocs, steps=steps, seed=seed)
    print(f"failure-free run : {baseline.describe()}")
    assert np.array_equal(baseline.table, expected_table(seed, nprocs, steps))

    schedule = FailureSchedule.ranks(
        {1: 0.3 * baseline.elapsed, 4: 0.75 * baseline.elapsed}
    )
    print(f"injected failures: {[ev.describe() for ev in schedule]}")
    recovered = run_kv(nprocs=nprocs, steps=steps, seed=seed, failure_schedule=schedule)
    print(f"recovered run    : {recovered.describe()}")

    identical = np.array_equal(baseline.table, recovered.table)
    print(f"final tables bit-identical: {identical}")
    if not identical:
        raise SystemExit(1)

    # The lock-protected atomics are blocking (they need their fetched
    # values), which exercises the mixed blocking path on the batching
    # backend: every backend must produce the same table, failures included.
    vector = run_kv(
        nprocs=nprocs, steps=steps, seed=seed,
        failure_schedule=schedule, backend="vector",
    )
    identical = np.array_equal(recovered.table, vector.table)
    print(f"vector backend with failures: bit-identical to sim = {identical}")
    if not identical:
        raise SystemExit(1)

    # A failure here usually lands mid-step, with half a batch of blocking
    # lock-protected atomics already committed — the hardest case for
    # log-based recovery: localized replay must suppress exactly the
    # committed prefix (serving the logged fetch results) and re-execute the
    # rest, finishing bit-identical to the global rollback on every backend.
    for backend in ("sim", "vector"):
        localized = run_kv(
            nprocs=nprocs, steps=steps, seed=seed,
            failure_schedule=schedule, backend=backend, recovery="localized",
        )
        identical = np.array_equal(recovered.table, localized.table)
        print(f"localized recovery ({backend}): bit-identical to global = {identical}")
        if not identical:
            raise SystemExit(1)


if __name__ == "__main__":
    main()
