"""Delivery modes — *what a communication is allowed to do under failure*.

Today's semantics are reliable-or-stall: the moment an operation touches a
failed rank the runtime raises :class:`~repro.errors.ProcessFailedError`,
admission freezes, and a recovery protocol rolls the whole job (or the failed
part of it) back.  "Best-Effort Communication Improves Performance and Scales
Robustly" (arXiv 2211.10897) argues the other end of the spectrum: let
messages toward a failed peer *drop* or return *stale* data, keep the
survivors running at full speed, and quantify the resulting loss of result
quality instead of paying the stall.

:class:`DeliveryMode` is the strategy that picks the point on that spectrum
(registry kind ``"delivery"``, the same convention as ``backend=``/``store=``):

* :class:`Reliable` (``"reliable"``, the default) — exactly today's
  semantics; every path through the runtime behaves as if the mode did not
  exist.
* :class:`BestEffort` (``"best_effort"``) — failed (non-excised) ranks are
  *suspended* rather than fatal: puts toward them drop, gets toward them
  deterministically either drop (observe zeros) or serve *stale* data from
  the newest checkpoint copy, and the suspended rank itself is skipped by the
  scheduler until the session repairs it at the next step boundary.

Determinism contract: whether a given operation drops or serves stale data is
a pure function of ``(seed, GNC epoch, per-rank tolerated-op index)`` — all
three identical across the sim/vector/proc backends because the suspended set
changes only at injector-controlled completion-stream positions.  Every
tolerated operation is counted in per-rank :class:`QosMetrics`, which is what
the quality/robustness/speed comparison (:mod:`repro.qos.engine`) reports.
"""

from __future__ import annotations

import abc
import zlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import QosError
from repro.registry import register_kind, resolve_component

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from repro.ft.stores import CheckpointStore
    from repro.rma.actions import CommAction
    from repro.rma.runtime import RmaRuntime
    from repro.rma.window import Window

__all__ = [
    "QosMetrics",
    "DeliveryMode",
    "Reliable",
    "BestEffort",
    "DELIVERY_MODES",
    "make_delivery",
]

#: The per-rank event counters a delivery mode maintains, in report order.
_COUNTER_FIELDS = (
    "dropped_puts",
    "dropped_gets",
    "stale_reads",
    "dropped_syncs",
    "discarded_inflight",
    "suspended_steps",
    "repairs",
)


@dataclass
class QosMetrics:
    """Per-rank counts of every delivery-mode intervention.

    Keys are ranks; absent ranks count zero.  ``dropped_puts``/``dropped_gets``
    and ``stale_reads`` are attributed to the *origin* (the survivor whose
    operation was tolerated), ``discarded_inflight``/``suspended_steps``/
    ``repairs`` to the failed rank itself.

    ``listener`` — when set (the trace bus does this via ``install_trace``)
    — receives ``(event, rank, n)`` for every count, making this the single
    delivery-decision hook; a class-level default rather than a dataclass
    field so serialized metrics round-trip unchanged.
    """

    listener = None

    dropped_puts: dict[int, int] = field(default_factory=dict)
    dropped_gets: dict[int, int] = field(default_factory=dict)
    stale_reads: dict[int, int] = field(default_factory=dict)
    dropped_syncs: dict[int, int] = field(default_factory=dict)
    discarded_inflight: dict[int, int] = field(default_factory=dict)
    suspended_steps: dict[int, int] = field(default_factory=dict)
    repairs: dict[int, int] = field(default_factory=dict)

    @classmethod
    def counter_fields(cls) -> tuple[str, ...]:
        """The counted event names, in report order."""
        return _COUNTER_FIELDS

    def count(self, event: str, rank: int, n: int = 1) -> None:
        """Add ``n`` occurrences of ``event`` at ``rank``."""
        if event not in _COUNTER_FIELDS:
            raise QosError(
                f"unknown qos event {event!r}; counted events are: "
                f"{', '.join(_COUNTER_FIELDS)}"
            )
        counter = getattr(self, event)
        counter[rank] = counter.get(rank, 0) + n
        if self.listener is not None:
            self.listener(event, rank, n)

    def total(self, event: str) -> int:
        """Sum of ``event`` over all ranks."""
        if event not in _COUNTER_FIELDS:
            raise QosError(
                f"unknown qos event {event!r}; counted events are: "
                f"{', '.join(_COUNTER_FIELDS)}"
            )
        return sum(getattr(self, event).values())

    @property
    def tolerated_ops(self) -> int:
        """Operations that would have raised under reliable delivery."""
        return (
            self.total("dropped_puts")
            + self.total("dropped_gets")
            + self.total("stale_reads")
            + self.total("dropped_syncs")
        )

    def to_dict(self) -> dict:
        """JSON-ready form (rank keys become strings, sorted)."""
        return {
            event: {
                str(rank): count
                for rank, count in sorted(getattr(self, event).items())
            }
            for event in _COUNTER_FIELDS
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "QosMetrics":
        """Inverse of :meth:`to_dict` (round-trips exactly)."""
        unknown = set(payload) - set(_COUNTER_FIELDS)
        if unknown:
            raise QosError(
                f"unknown qos metric fields {sorted(unknown)}; expected a "
                f"subset of {list(_COUNTER_FIELDS)}"
            )
        return cls(
            **{
                event: {int(rank): int(count) for rank, count in counters.items()}
                for event, counters in payload.items()
            }
        )


class DeliveryMode(abc.ABC):
    """Strategy deciding what operations toward failed ranks are allowed to do.

    Lifecycle mirrors the other seams: constructed by name through
    :func:`make_delivery`, bound once to a runtime (and the checkpoint store
    it may serve stale reads from) by the fault-tolerance stack, then
    consulted by the runtime on every path that would otherwise raise
    :class:`~repro.errors.ProcessFailedError` for a tolerated rank.
    """

    #: Registry name of the mode ("reliable", "best_effort", ...).
    name: str = "abstract"

    #: Whether failed ranks are suspended (tolerated) instead of fatal.
    tolerates_failures: bool = False

    #: Whether the backend must capture undo data so in-flight operations
    #: toward a freshly-failed rank can be discarded effect-free.
    needs_clean_discard: bool = False

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self.metrics = QosMetrics()
        self._runtime: "RmaRuntime | None" = None
        self._store: "CheckpointStore | None" = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def bind(self, runtime: "RmaRuntime", store: "CheckpointStore | None") -> None:
        """Attach the mode to a job; one instance per job (like backends)."""
        if self._runtime is not None and self._runtime is not runtime:
            raise QosError(
                f"delivery mode {self.name!r} is already bound to a job; modes "
                f"hold per-job metrics and cannot be reused — construct a "
                f"fresh instance per job"
            )
        self._runtime = runtime
        self._store = store

    # ------------------------------------------------------------------
    # Policy queries
    # ------------------------------------------------------------------
    def suspended(self, runtime: "RmaRuntime") -> frozenset[int]:
        """Failed ranks this mode tolerates (empty under reliable delivery).

        Derived from the cluster's failed set, which the fault injector
        mutates at identical completion-stream positions on every backend —
        so the answer is backend-independent at every point of the program.
        """
        if not self.tolerates_failures:
            return frozenset()
        return frozenset(
            rank
            for rank in runtime.cluster.failed_ranks()
            if rank not in runtime.excised
        )

    @abc.abstractmethod
    def resolve(
        self, action: "CommAction", win: "Window", runtime: "RmaRuntime"
    ) -> None:
        """Decide the fate of one tolerated operation toward a suspended rank.

        Only called when :meth:`suspended` contains ``action.trg``.  Must
        fill ``action.data`` for get-like kinds (zeros on drop, checkpoint
        data on stale service) and count the event in :attr:`metrics`; must
        not touch the suspended rank's (invalidated) window buffer.
        """

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    def _stale_payload(self, action: "CommAction", win: "Window") -> np.ndarray | None:
        """The newest checkpointed copy of the targeted slice (None = none)."""
        if self._store is None:
            return None
        for version in reversed(self._store.versions):
            if not self._store.available(version, action.trg):
                continue
            payload = self._store.fetch(version, action.trg)
            if payload is None or action.window not in payload.windows:
                continue
            data = payload.windows[action.window]
            return np.array(
                data[action.offset : action.offset + action.count],
                dtype=win.dtype, copy=True,
            ).ravel()
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(seed={self.seed})"


class Reliable(DeliveryMode):
    """Today's semantics: any touch of a failed rank is fatal (§2.4).

    The runtime never consults this mode's :meth:`resolve` — with an empty
    suspended set every failure path raises exactly as before the qos
    subsystem existed, which is what keeps the 392-test baseline bit-for-bit.
    """

    name = "reliable"
    tolerates_failures = False

    def resolve(
        self, action: "CommAction", win: "Window", runtime: "RmaRuntime"
    ) -> None:  # pragma: no cover - unreachable by construction
        raise QosError("reliable delivery tolerates no failed targets")


class BestEffort(DeliveryMode):
    """Relaxed delivery: drop or serve stale instead of stalling (2211.10897).

    Puts toward a suspended rank always drop (there is no memory to write).
    Gets deterministically either drop — the origin observes zeros — or are
    served *stale* from the newest checkpoint copy of the target's window;
    the choice hashes ``(seed, GNC, tolerated-op index)`` through crc32, the
    library's seeded-entropy convention, so sim/vector/proc agree bit-for-bit.
    ``stale_fraction`` is the probability mass given to stale service (the
    rest drops); with no usable checkpoint copy a would-be stale read drops.
    """

    name = "best_effort"
    tolerates_failures = True
    needs_clean_discard = True

    def __init__(self, seed: int = 0, stale_fraction: float = 0.5) -> None:
        super().__init__(seed)
        if not 0.0 <= stale_fraction <= 1.0:
            raise QosError(
                f"stale_fraction must be within [0, 1], got {stale_fraction}"
            )
        self.stale_fraction = float(stale_fraction)
        #: Per-origin count of tolerated ops (the deterministic op index).
        self._op_index: dict[int, int] = {}

    def _entropy(self, src: int, gnc: int, index: int) -> float:
        """Uniform-ish [0, 1) from the deterministic drop/stale coordinates."""
        h = 0
        for part in (self.seed, src, gnc, index):
            h = zlib.crc32(int(part).to_bytes(8, "little", signed=True), h)
        return h / 2**32

    def resolve(
        self, action: "CommAction", win: "Window", runtime: "RmaRuntime"
    ) -> None:
        src = action.src
        index = self._op_index.get(src, 0)
        self._op_index[src] = index + 1
        metrics = runtime.cluster.metrics
        if not action.kind.is_get_like:
            self.metrics.count("dropped_puts", src)
            metrics.incr("qos.dropped_puts", rank=src)
            return
        gnc = action.counters.gnc if action.counters is not None else 0
        stale = (
            self.stale_fraction > 0.0
            and self._entropy(src, gnc, index) < self.stale_fraction
        )
        payload = self._stale_payload(action, win) if stale else None
        if payload is None:
            action.data = np.zeros(action.count, dtype=win.dtype)
            self.metrics.count("dropped_gets", src)
            metrics.incr("qos.dropped_gets", rank=src)
            return
        action.data = payload
        self.metrics.count("stale_reads", src)
        metrics.incr("qos.stale_reads", rank=src)
        # The stale copy is served from a surviving checkpoint replica: a
        # local memory read, not a remote transfer to dead hardware.
        runtime.cluster.advance(
            src,
            runtime.cluster.costs.local_copy(action.count * win.itemsize),
            kind="comm",
        )


#: Registry of constructable delivery modes, by name.
DELIVERY_MODES: dict[str, type[DeliveryMode]] = {
    Reliable.name: Reliable,
    BestEffort.name: BestEffort,
}
register_kind("delivery", DELIVERY_MODES)


def make_delivery(
    spec: "str | DeliveryMode | None",
    *,
    seed: int = 0,
    error: type[Exception] = QosError,
) -> DeliveryMode:
    """Resolve a delivery-mode specification into a fresh (or given) instance.

    ``None`` means the default (``"reliable"``); a string is looked up in
    :data:`DELIVERY_MODES` (an unknown name raises ``error`` listing the
    registered choices); a :class:`DeliveryMode` instance passes through
    unchanged, its own configuration winning over ``seed``.
    """
    return resolve_component(
        "delivery", spec, DELIVERY_MODES, DeliveryMode, error,
        default=Reliable.name, seed=seed,
    )
