"""Rendering and baseline gating for ``python -m repro.qos`` reports."""

from __future__ import annotations

__all__ = ["render_markdown", "check_against_baseline"]


def render_markdown(report: dict) -> str:
    """The trade-off as a markdown table — one row per (backend, store, delivery)."""
    reliable_elapsed: dict[tuple[str, str], float] = {}
    for cell in report["cells"].values():
        if cell["delivery"] == "reliable":
            reliable_elapsed[(cell["backend"], cell["store"])] = cell["mean_elapsed_s"]

    lines = [
        "| backend | store | delivery | quality (mean/min) | makespan (virt ms) "
        "| speedup vs reliable | tolerated ops | repairs | recoveries "
        "| upper-level bytes (moved/full) |",
        "|---|---|---|---|---|---|---|---|---|---|",
    ]
    for key in sorted(report["cells"]):
        cell = report["cells"][key]
        baseline = reliable_elapsed.get((cell["backend"], cell["store"]))
        if baseline and cell["mean_elapsed_s"] > 0:
            speedup = f"{baseline / cell['mean_elapsed_s']:.2f}x"
        else:
            speedup = "—"
        if cell["multilevel_full_bytes"]:
            moved = (
                f"{cell['multilevel_moved_bytes']:,} / "
                f"{cell['multilevel_full_bytes']:,}"
            )
        else:
            moved = "—"
        lines.append(
            "| {backend} | {store} | {delivery} | {qmean:.4f} / {qmin:.4f} "
            "| {ms:.3f} | {speedup} | {tolerated} | {repairs} | {recoveries} "
            "| {moved} |".format(
                backend=cell["backend"],
                store=cell["store"],
                delivery=cell["delivery"],
                qmean=cell["mean_quality"],
                qmin=cell["min_quality"],
                ms=cell["mean_elapsed_s"] * 1e3,
                speedup=speedup,
                tolerated=cell["tolerated_ops"],
                repairs=cell["repairs"],
                recoveries=cell["recoveries"],
                moved=moved,
            )
        )
    return "\n".join(lines) + "\n"


def check_against_baseline(
    report: dict, baseline: dict, *, max_ratio: float = 2.0
) -> list[str]:
    """Regression gate against a checked-in baseline report; returns failures.

    Deterministic outcomes — digests, qualities, tolerated-operation and
    byte counts — must match exactly; the virtual makespan may drift but not
    past ``max_ratio`` (the same tolerance pattern as the other engines).
    """
    failures: list[str] = []
    for key, base in baseline.get("cells", {}).items():
        current = report["cells"].get(key)
        if current is None:
            failures.append(f"{key}: cell missing from current report")
            continue
        for exact in (
            "mean_quality", "min_quality", "recoveries", "repairs",
            "tolerated_ops", "checkpoint_bytes",
            "multilevel_moved_bytes", "multilevel_full_bytes",
        ):
            if current.get(exact) != base.get(exact):
                failures.append(
                    f"{key}: {exact} changed from {base.get(exact)!r} to "
                    f"{current.get(exact)!r}"
                )
        cur_t, base_t = current.get("mean_elapsed_s"), base.get("mean_elapsed_s")
        if (
            cur_t is not None
            and base_t is not None
            and base_t > 0
            and cur_t / base_t > max_ratio
        ):
            failures.append(
                f"{key}: virtual makespan {cur_t:.6g}s is "
                f"{cur_t / base_t:.2f}x the baseline's {base_t:.6g}s "
                f"(allowed {max_ratio:.1f}x)"
            )
        cur_trials = [t.get("digest") for t in current.get("trials", [])]
        base_trials = [t.get("digest") for t in base.get("trials", [])]
        if cur_trials != base_trials:
            failures.append(f"{key}: per-trial result digests changed")
    return failures
