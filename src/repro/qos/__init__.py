"""repro.qos — delivery modes and the quality/robustness/speed trade-off.

The subsystem has two halves:

* :mod:`repro.qos.delivery` — the :class:`DeliveryMode` strategy (registry
  kind ``"delivery"``): ``"reliable"`` keeps today's fail-stop semantics,
  ``"best_effort"`` suspends failed ranks instead — operations toward them
  deterministically drop or serve stale checkpoint data, counted per rank in
  :class:`QosMetrics`, while survivors keep running at full speed.
* :mod:`repro.qos.engine` / :mod:`repro.qos.report` — the comparison harness
  behind ``python -m repro.qos``: it sweeps delivery × store-hierarchy cells
  against identical kill plans and quantifies each cell as (result quality,
  tolerated operations, makespan).

Select a mode declaratively::

    repro.launch(nprocs=8, ft=repro.FaultTolerancePolicy(delivery="best_effort"))
"""

from repro.qos.delivery import (
    DELIVERY_MODES,
    BestEffort,
    DeliveryMode,
    QosMetrics,
    Reliable,
    make_delivery,
)

# The engine half imports the session/workload layers, which themselves load
# the delivery half above — so it resolves lazily (PEP 562) to keep
# ``repro.ft.stack → repro.qos`` cycle-free.
_ENGINE_EXPORTS = {
    "QosSpec": "repro.qos.engine",
    "quick_spec": "repro.qos.engine",
    "run_qos": "repro.qos.engine",
    "report_json": "repro.qos.engine",
    "check_invariants": "repro.qos.engine",
    "render_markdown": "repro.qos.report",
    "check_against_baseline": "repro.qos.report",
}


def __getattr__(name: str):
    module_name = _ENGINE_EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.qos' has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


__all__ = [
    "QosMetrics",
    "DeliveryMode",
    "Reliable",
    "BestEffort",
    "DELIVERY_MODES",
    "make_delivery",
    "QosSpec",
    "quick_spec",
    "run_qos",
    "report_json",
    "check_invariants",
    "render_markdown",
    "check_against_baseline",
]
