"""``python -m repro.qos`` — quantify the quality/robustness/speed trade-off.

Examples::

    # The default comparison: sparse kv updates, reliable vs best-effort
    # delivery on memory vs multilevel stores, identical kill plans:
    python -m repro.qos

    # A bigger sweep on sim and proc, JSON artifact:
    python -m repro.qos --workload kv --backends sim,proc \\
        --stores memory,multilevel,parity --trials 4 --kills 2 \\
        --output qos.json

    # The CI gate: quick smoke (sim + proc when available), invariants +
    # baseline comparison:
    python -m repro.qos --quick \\
        --check-baseline benchmarks/BENCH_qos_baseline.json

    # What can I put on each axis?
    python -m repro.qos --list

Exit status 1 when a trade-off invariant is violated or the baseline gate
fails.
"""

from __future__ import annotations

import argparse

from repro.cli import (
    add_common_arguments,
    add_report_arguments,
    csv,
    handle_list,
    run_gates,
    trace_run,
    write_outputs,
)
from repro.qos.engine import (
    QosSpec,
    check_invariants,
    quick_spec,
    report_json,
    run_qos,
)
from repro.qos.report import check_against_baseline, render_markdown

__all__ = ["main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.qos",
        description="delivery-mode × store-hierarchy comparison on identical "
                    "kill plans",
    )
    add_common_arguments(parser, default_seed=0)
    parser.add_argument(
        "--workload", default="kv",
        help="workload under test (sparse-write kernels show the trade-off best)",
    )
    parser.add_argument(
        "--deliveries", type=csv, default=("reliable", "best_effort"),
        help="comma-separated delivery modes to compare",
    )
    parser.add_argument(
        "--stores", type=csv, default=("memory", "multilevel"),
        help="comma-separated checkpoint stores to compare",
    )
    parser.add_argument(
        "--backends", type=csv, default=("sim",),
        help="comma-separated backends to run identical plans on",
    )
    parser.add_argument(
        "--kills", type=int, default=1, help="injected kills per trial"
    )
    parser.add_argument(
        "--trials", type=int, default=2, help="seeded kill plans per cell"
    )
    parser.add_argument("--nprocs", type=int, default=8, help="ranks per job")
    parser.add_argument(
        "--procs-per-node", type=int, default=2, help="ranks packed per node"
    )
    parser.add_argument(
        "--interval", type=int, default=4, help="checkpoint interval in steps"
    )
    parser.add_argument(
        "--stale-fraction", type=float, default=0.5,
        help="probability a tolerated get serves stale checkpoint data "
             "instead of dropping (default 0.5)",
    )
    parser.add_argument(
        "--executor", choices=("serial", "thread", "process"), default="thread",
        help="how cells/trials are dispatched (report is identical either way)",
    )
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N", help="max executor workers"
    )
    add_report_arguments(parser, regression_metric="virtual-makespan")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if handle_list(args):
        return 0
    if args.quick:
        spec = quick_spec()
    else:
        spec = QosSpec(
            workload=args.workload,
            deliveries=args.deliveries,
            stores=args.stores,
            backends=args.backends,
            kills=args.kills,
            trials=args.trials,
            seed=args.seed,
            nprocs=args.nprocs,
            procs_per_node=args.procs_per_node,
            interval=args.interval,
            stale_fraction=args.stale_fraction,
        )
    with trace_run(args):
        report = run_qos(spec, executor=args.executor, max_workers=args.jobs)
    write_outputs(args, render_markdown(report), report_json(report))
    return run_gates(
        args,
        check_invariants=lambda: check_invariants(report),
        invariants_message=(
            "invariants hold (reliable quality == 1.0; best-effort strictly "
            "faster; incremental < full; backends agree)"
        ),
        check_baseline=lambda baseline, ratio: check_against_baseline(
            report, baseline, max_ratio=ratio
        ),
    )


if __name__ == "__main__":
    raise SystemExit(main())
