"""The QoS comparison engine — quality/robustness/speed as one experiment.

The paper's protocols answer "how do we *not lose* work under failures"; the
QoS layer asks the complementary question: **what does each answer cost, and
what do you get back for relaxing it?**  This engine quantifies that as a
three-axis trade-off, measured — not argued — on identical fault loads:

* **quality** — :meth:`~repro.study.workloads.Workload.result_quality`
  against the failure-free reference result (``1.0`` = bit-exact);
* **robustness** — recoveries survived, operations tolerated (dropped /
  served stale), ranks repaired;
* **speed** — virtual makespan, checkpoint bytes moved.

Every cell of the ``delivery × store`` sweep runs the *same* seeded
:class:`~repro.ft.inject.KillPlan` (offsets in the completion stream, so the
same plan strikes the same program point on every backend), which is what
makes cells comparable: ``reliable`` pays rollback + re-execution for a
bit-exact result, ``best_effort`` keeps survivors running and pays in result
quality, ``multilevel`` keeps upper-level copies for rare catastrophic
failures while moving only dirty bytes.

The report is canonical JSON — byte-identical across re-runs, executors and
backends — gated by :func:`check_invariants`.
"""

from __future__ import annotations

import json
from collections.abc import Mapping
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from itertools import product

import numpy as np

from repro.api.policy import FaultTolerancePolicy
from repro.errors import QosError
from repro.ft.inject import KillPlan
from repro.qos.delivery import BestEffort, QosMetrics
from repro.registry import available, plural
from repro.rma.actions import OpKind
from repro.simulator.costs import cray_xe6_like
from repro.study.workloads import Workload, make_workload
from repro.trace.tracer import trace_label

__all__ = [
    "QosSpec",
    "quick_spec",
    "run_qos",
    "report_json",
    "check_invariants",
]

#: ``qos.*`` counters carried into every trial record (the per-rank
#: :class:`~repro.qos.delivery.QosMetrics` events, plus the sync drops the
#: runtime counts directly).
_QOS_COUNTERS = tuple(f"qos.{name}" for name in QosMetrics.counter_fields())


@dataclass(frozen=True)
class QosSpec:
    """Declarative description of one QoS comparison sweep.

    Attributes
    ----------
    workload:
        Registry name of the kernel under test.  The default ``"kv"``
        (sparse random-access updates) is the shape where incremental
        checkpoints and stale reads are both meaningful.
    deliveries / stores / backends:
        The sweep axes (registry names).  Every ``(backend, store)`` pair
        runs every delivery mode against the same kill plans.
    kills:
        Fail-stop events injected per trial (completion-stream offsets drawn
        from the trial seed).
    trials:
        Independently-seeded kill plans per cell.
    seed:
        Master seed; trial plans and best-effort drop decisions derive from it.
    interval:
        Coordinated-checkpoint interval in steps (fixed, so every cell
        checkpoints identically).
    stale_fraction:
        Probability a tolerated get serves stale checkpoint data instead of
        dropping (see :class:`~repro.qos.delivery.BestEffort`).
    workload_params:
        Constructor overrides for the workload, e.g. ``{"steps": 12}``.
    """

    workload: str = "kv"
    deliveries: tuple[str, ...] = ("reliable", "best_effort")
    stores: tuple[str, ...] = ("memory", "multilevel")
    backends: tuple[str, ...] = ("sim",)
    kills: int = 1
    trials: int = 2
    seed: int = 0
    nprocs: int = 8
    procs_per_node: int = 2
    interval: int = 4
    keep_versions: int = 2
    stale_fraction: float = 0.5
    workload_params: Mapping[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for axis in ("deliveries", "stores", "backends"):
            if not getattr(self, axis):
                raise QosError(f"qos sweep axis {axis!r} is empty")
        for kind, names in (
            ("workload", (self.workload,)),
            ("delivery", self.deliveries),
            ("store", self.stores),
            ("backend", self.backends),
        ):
            known = available(kind)
            for name in names:
                if name not in known:
                    listing = ", ".join(repr(k) for k in known)
                    raise QosError(
                        f"unknown {kind} {name!r} in qos spec; registered "
                        f"{plural(kind)} are: {listing}"
                    )
        if self.kills < 1:
            raise QosError("a qos comparison needs at least one injected kill")
        if self.trials < 1:
            raise QosError("a qos comparison needs at least one trial")
        if self.interval < 1:
            raise QosError("the checkpoint interval must be at least 1 step")
        if not 0.0 <= self.stale_fraction <= 1.0:
            raise QosError("stale_fraction must be in [0, 1]")
        if self.nprocs < 2 or self.procs_per_node < 1:
            raise QosError("qos sweeps need nprocs >= 2 and procs_per_node >= 1")


def quick_spec() -> QosSpec:
    """The tiny CI sweep: sparse kv updates, 2 stores × 2 deliveries.

    Small enough to run in seconds, yet every gate is live: the kill lands
    mid-run, ``multilevel`` takes several incremental captures, and
    best-effort both drops and serves stale data.
    """
    import repro

    backends = ("sim", "proc") if repro.proc_available() else ("sim",)
    return QosSpec(
        workload="kv",
        backends=backends,
        trials=1,
        interval=3,
        workload_params={"slots": 16, "updates_per_step": 4, "steps": 12},
    )


@dataclass(frozen=True)
class _Cell:
    """One point of the sweep."""

    backend: str
    store: str
    delivery: str

    @property
    def key(self) -> str:
        return f"{self.backend}/{self.store}/{self.delivery}"


def _cells(spec: QosSpec) -> list[_Cell]:
    return [
        _Cell(b, s, d)
        for b, s, d in product(spec.backends, spec.stores, spec.deliveries)
    ]


def _build_workload(spec: QosSpec) -> Workload:
    return make_workload(
        spec.workload, nprocs=spec.nprocs, **dict(spec.workload_params)
    )


def _cost_model():
    # The same machine the study campaign prices — one cost model everywhere.
    return cray_xe6_like()


#: Metric names that count completed *communication* operations — exactly the
#: stream :class:`~repro.ft.inject.FaultInjector` indexes into.  Sync actions
#: (locks, flushes, gsyncs) and byte bookkeeping also live under ``rma.`` but
#: never pass through ``after_comm``, so they must not inflate the count.
_OP_METRICS = frozenset(f"rma.{kind.value}" for kind in OpKind)


def _completed_ops(report) -> int:
    return int(
        sum(
            value
            for name, value in report.metrics.totals.items()
            if name in _OP_METRICS
        )
    )


def _plan_seed(spec: QosSpec, trial: int) -> int:
    """Per-trial kill-plan seed — a function of (master seed, trial) only, so
    every cell of the sweep faces the identical plan."""
    return int(np.random.SeedSequence((spec.seed, trial)).generate_state(1)[0])


def _trial_plan(spec: QosSpec, trial: int, stream_ops: int) -> KillPlan:
    """The trial's kill plan, struck strictly mid-run.

    Offsets are drawn from the middle half of the failure-free completion
    stream: late enough that the phase-opening checkpoint committed, early
    enough that tolerated/recovered work remains in every delivery mode.
    """
    min_ops = max(2, stream_ops // 4)
    max_ops = max(min_ops + 2, stream_ops // 2)
    return KillPlan.seeded(
        _plan_seed(spec, trial),
        nprocs=spec.nprocs,
        max_ops=max_ops,
        kills=spec.kills,
        min_ops=min_ops,
    )


def _run_reference(args: tuple[QosSpec, str]) -> dict:
    """The failure-free, unprotected reference run of one backend."""
    spec, backend = args
    workload = _build_workload(spec)
    with trace_label(f"reference/{backend}"):
        run = workload.run(
            backend=backend,
            procs_per_node=spec.procs_per_node,
            cost_model=_cost_model(),
        )
    return {
        "digest": run.digest,
        "elapsed_s": run.report.elapsed,
        "result": run.result,
        "stream_ops": _completed_ops(run.report),
    }


def _run_cell_trial(args: tuple[QosSpec, _Cell, int, int, np.ndarray]) -> dict:
    """One (cell, trial) run against the trial's shared kill plan."""
    spec, cell, trial, stream_ops, reference_result = args
    workload = _build_workload(spec)
    plan = _trial_plan(spec, trial, stream_ops)
    if cell.delivery == "best_effort":
        # A fresh instance per run (modes bind to exactly one job), seeded by
        # the master seed so drop decisions replay identically everywhere.
        delivery = BestEffort(seed=spec.seed, stale_fraction=spec.stale_fraction)
    else:
        delivery = cell.delivery
    policy = FaultTolerancePolicy(
        interval=spec.interval,
        store=cell.store,
        keep_versions=spec.keep_versions,
        delivery=delivery,
    )
    # Label the session by cell and trial so a run-wide trace hub merges
    # thread-executor runs in deterministic order (byte-identical to serial).
    with trace_label(f"{cell.backend}/{cell.store}/{cell.delivery}/t{trial}"):
        run = workload.run(
            ft=policy,
            backend=cell.backend,
            procs_per_node=spec.procs_per_node,
            cost_model=_cost_model(),
            kill_plan=plan,
        )
    totals = run.report.metrics.totals
    record = {
        "trial": trial,
        "digest": run.digest,
        "quality": workload.result_quality(run.result, reference_result),
        "elapsed_s": run.report.elapsed,
        "recoveries": run.report.recoveries,
        "checkpoints": run.report.checkpoints,
        "checkpoint_bytes": int(totals.get("ft.checkpoint_bytes", 0)),
        "restored_bytes": int(totals.get("ft.restored_bytes", 0)),
        "multilevel_moved_bytes": int(totals.get("ft.multilevel_moved_bytes", 0)),
        "multilevel_full_bytes": int(totals.get("ft.multilevel_full_bytes", 0)),
    }
    for name in _QOS_COUNTERS:
        record[name.replace("qos.", "", 1)] = int(totals.get(name, 0))
    record["tolerated_ops"] = (
        record["dropped_puts"]
        + record["dropped_gets"]
        + record["stale_reads"]
        + record["dropped_syncs"]
    )
    return record


def _summarize_cell(cell: _Cell, trials: list[dict]) -> dict:
    n = len(trials)
    summary: dict = {
        "backend": cell.backend,
        "store": cell.store,
        "delivery": cell.delivery,
        "mean_elapsed_s": sum(t["elapsed_s"] for t in trials) / n,
        "mean_quality": sum(t["quality"] for t in trials) / n,
        "min_quality": min(t["quality"] for t in trials),
        "recoveries": sum(t["recoveries"] for t in trials),
        "repairs": sum(t["repairs"] for t in trials),
        "tolerated_ops": sum(t["tolerated_ops"] for t in trials),
        "checkpoint_bytes": sum(t["checkpoint_bytes"] for t in trials),
        "multilevel_moved_bytes": sum(t["multilevel_moved_bytes"] for t in trials),
        "multilevel_full_bytes": sum(t["multilevel_full_bytes"] for t in trials),
        "trials": trials,
    }
    return summary


def _make_executor(executor: str, max_workers: int | None) -> Executor | None:
    if executor == "serial":
        return None
    if executor == "thread":
        return ThreadPoolExecutor(max_workers=max_workers)
    if executor == "process":
        return ProcessPoolExecutor(max_workers=max_workers)
    raise QosError(
        f"unknown executor {executor!r}; choose 'serial', 'thread' or 'process'"
    )


def run_qos(
    spec: QosSpec,
    *,
    executor: str = "thread",
    max_workers: int | None = None,
) -> dict:
    """Run the full delivery × store sweep and return the report document.

    Every trial is an isolated deterministic session, so ``"serial"``,
    ``"thread"`` and ``"process"`` executors produce byte-identical reports.
    """
    cells = _cells(spec)
    pool = _make_executor(executor, max_workers)

    def dispatch(fn, args_list):
        if pool is None:
            return [fn(args) for args in args_list]
        return list(pool.map(fn, args_list))

    try:
        references = dict(zip(
            spec.backends,
            dispatch(_run_reference, [(spec, b) for b in spec.backends]),
        ))
        # The completion stream is contractually identical across backends;
        # using one backend's count for every plan keeps the plans shared.
        stream_ops = references[spec.backends[0]]["stream_ops"]
        tasks = [
            (spec, cell, trial, stream_ops, references[cell.backend]["result"])
            for cell in cells
            for trial in range(spec.trials)
        ]
        records = dispatch(_run_cell_trial, tasks)
    finally:
        if pool is not None:
            pool.shutdown()

    report: dict = {
        "meta": {
            "engine": "repro.qos",
            "workload": spec.workload,
            "seed": spec.seed,
            "trials": spec.trials,
            "kills": spec.kills,
            "nprocs": spec.nprocs,
            "procs_per_node": spec.procs_per_node,
            "interval": spec.interval,
            "stale_fraction": spec.stale_fraction,
            "deliveries": list(spec.deliveries),
            "stores": list(spec.stores),
            "backends": list(spec.backends),
            "workload_params": dict(spec.workload_params),
        },
        "reference": {
            backend: {
                "digest": ref["digest"],
                "elapsed_s": ref["elapsed_s"],
                "stream_ops": ref["stream_ops"],
            }
            for backend, ref in references.items()
        },
        "cells": {},
    }
    for idx, cell in enumerate(cells):
        trials = records[idx * spec.trials : (idx + 1) * spec.trials]
        report["cells"][cell.key] = _summarize_cell(cell, trials)
    return report


def report_json(report: dict) -> str:
    """Canonical serialization — byte-identical across re-runs and executors."""
    return json.dumps(report, indent=2, sort_keys=True) + "\n"


# ----------------------------------------------------------------------
# Gates
# ----------------------------------------------------------------------
def check_invariants(report: dict) -> list[str]:
    """The trade-off's defining inequalities; returns violations.

    * **Reliable is exact** — every ``reliable`` trial scores quality exactly
      ``1.0`` (rollback recovery is bit-identical to the failure-free run).
    * **Best effort is faster** — for every (backend, store, trial) pair run
      under the identical kill plan, the ``best_effort`` makespan is strictly
      below ``reliable``'s (survivors never stall or re-execute).
    * **Incremental moves fewer bytes** — every ``multilevel`` cell that
      captured ships strictly fewer bytes to its upper levels than the full
      mirrors it maintains.
    * **Backends agree** — the same (store, delivery, trial) produces the
      same digest and the same tolerated-operation counts on every backend.
    """
    failures: list[str] = []
    cells = report["cells"]

    for key in sorted(cells):
        cell = cells[key]
        if cell["delivery"] == "reliable":
            for t in cell["trials"]:
                if t["quality"] != 1.0:
                    failures.append(
                        f"{key} trial {t['trial']}: reliable delivery scored "
                        f"quality {t['quality']!r}, expected exactly 1.0"
                    )
        if cell["store"] == "multilevel":
            moved = cell["multilevel_moved_bytes"]
            full = cell["multilevel_full_bytes"]
            if full == 0:
                failures.append(f"{key}: multilevel store never captured")
            elif moved >= full:
                failures.append(
                    f"{key}: incremental captures moved {moved} bytes, not "
                    f"strictly fewer than the {full} full mirrors hold"
                )

    by_pair: dict[tuple, dict[str, dict]] = {}
    for cell in cells.values():
        pair = (cell["backend"], cell["store"])
        by_pair.setdefault(pair, {})[cell["delivery"]] = cell
    for pair, group in sorted(by_pair.items()):
        reliable, tolerant = group.get("reliable"), group.get("best_effort")
        if not reliable or not tolerant:
            continue
        for rt, bt in zip(reliable["trials"], tolerant["trials"]):
            if bt["elapsed_s"] >= rt["elapsed_s"]:
                failures.append(
                    f"{'/'.join(pair)} trial {rt['trial']}: best_effort "
                    f"makespan {bt['elapsed_s']:.6g}s is not strictly below "
                    f"reliable's {rt['elapsed_s']:.6g}s under the same kill plan"
                )

    by_config: dict[tuple, dict[str, dict]] = {}
    for cell in cells.values():
        config = (cell["store"], cell["delivery"])
        by_config.setdefault(config, {})[cell["backend"]] = cell
    for config, group in sorted(by_config.items()):
        backends = sorted(group)
        if len(backends) < 2:
            continue
        first = group[backends[0]]
        for other_name in backends[1:]:
            other = group[other_name]
            for ft, ot in zip(first["trials"], other["trials"]):
                if ft["digest"] != ot["digest"]:
                    failures.append(
                        f"{'/'.join(config)} trial {ft['trial']}: digest "
                        f"differs between {backends[0]} and {other_name}"
                    )
                if ft["tolerated_ops"] != ot["tolerated_ops"]:
                    failures.append(
                        f"{'/'.join(config)} trial {ft['trial']}: tolerated "
                        f"ops differ between {backends[0]} "
                        f"({ft['tolerated_ops']}) and {other_name} "
                        f"({ot['tolerated_ops']})"
                    )
    return failures
