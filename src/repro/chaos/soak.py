"""The soak driver: open-ended workload rounds under accelerated virtual time.

A *soak* runs one workload for many consecutive rounds inside a single
session, with a scenario-generated kill plan striking throughout and a chaos
monitor timestamping every transition.  Two levers make hour-scale campaigns
finish in wall-clock seconds:

* **time compression** — :func:`scaled_cost_model` multiplies every latency
  of the :class:`~repro.simulator.costs.CostModel` by the compression factor
  (and divides the bandwidths), so one simulated kernel step *charges* e.g.
  10,000x more virtual time than the baseline machine would — MTTF and MTTR
  come out in operationally meaningful units while the wall clock only pays
  for the simulation itself;
* **virtual clocks** — all timestamps advance from CostModel charges, never
  from the wall, so the event log is deterministic.

The *countermeasure* seam maps chaos-engineering vocabulary onto the existing
:class:`~repro.ft.protocols.RecoveryProtocol` strategies: ``"rollback"`` →
global rollback, ``"replay"`` → localized log replay, ``"excise"`` → degraded
continuation.  :func:`run_comparison` pits countermeasures (and backends and
stores) against **identical** failure schedules — the plan's seed entropy
deliberately excludes those axes — which is what makes the availability /
MTTR trade-off between the protocols quantitatively comparable cell by cell.
"""

from __future__ import annotations

import zlib
from collections.abc import Sequence
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace

import numpy as np

from repro.api.policy import FaultTolerancePolicy, Topology
from repro.api.session import launch
from repro.chaos.metrics import ChaosMetrics, compute_metrics, write_events
from repro.chaos.monitor import make_monitor
from repro.chaos.scenarios import make_scenario
from repro.errors import (
    CatastrophicFailure,
    ChaosError,
    RecoveryError,
)
from repro.ft.inject import FaultInjector, KillPlan, install_injector
from repro.registry import available, plural, register_kind, resolve_component
from repro.simulator.costs import CostModel, cray_xe6_like
from repro.study.model import IntervalModel
from repro.study.workloads import Workload, make_workload
from repro.trace.tracer import Tracer, current_trace_hub, trace_label

__all__ = [
    "Countermeasure",
    "Rollback",
    "Replay",
    "Excise",
    "COUNTERMEASURES",
    "make_countermeasure",
    "SoakSpec",
    "SoakResult",
    "scaled_cost_model",
    "calibrate_round",
    "run_soak",
    "run_comparison",
]


# ----------------------------------------------------------------------
# Countermeasures: chaos vocabulary over the recovery-protocol strategies
# ----------------------------------------------------------------------
class Countermeasure:
    """One catalog entry: how the job answers the failures thrown at it.

    A countermeasure is a thin, declarative wrapper building the
    :class:`~repro.api.policy.FaultTolerancePolicy` whose ``recovery``
    strategy implements it — the soak engine adds no recovery machinery of
    its own, it *names* the existing protocols in reliability terms.
    """

    #: Registry name ("rollback", "replay", "excise").
    name: str = "abstract"
    #: The recovery-protocol registry name this countermeasure maps onto.
    recovery: str = "global"

    def policy(
        self, *, store: str, interval: int, delivery: str = "reliable"
    ) -> FaultTolerancePolicy:
        """The fault-tolerance policy realizing this countermeasure."""
        return FaultTolerancePolicy(
            interval=interval, store=store, recovery=self.recovery,
            delivery=delivery,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(recovery={self.recovery!r})"


class Rollback(Countermeasure):
    """Coordinated rollback of every rank to the last checkpoint (§4.2)."""

    name = "rollback"
    recovery = "global"


class Replay(Countermeasure):
    """Only failed ranks restore; survivors fast-forward the action log (§7)."""

    name = "replay"
    recovery = "localized"


class Excise(Countermeasure):
    """Failed ranks are removed; survivors continue best-effort (degraded)."""

    name = "excise"
    recovery = "degraded"


#: Registry of constructable countermeasures, by name.
COUNTERMEASURES: dict[str, type[Countermeasure]] = {
    Rollback.name: Rollback,
    Replay.name: Replay,
    Excise.name: Excise,
}
register_kind("countermeasure", COUNTERMEASURES)


def make_countermeasure(spec: "str | Countermeasure | None") -> Countermeasure:
    """Resolve a countermeasure specification (default ``"rollback"``)."""
    return resolve_component(
        "countermeasure", spec, COUNTERMEASURES, Countermeasure, ChaosError,
        default=Rollback.name,
    )


# ----------------------------------------------------------------------
# Time compression
# ----------------------------------------------------------------------
#: CostModel fields denominated in seconds (scaled *up* by compression).
_TIME_FIELDS = (
    "issue_overhead", "network_latency", "atomic_latency", "memory_latency",
    "barrier_base", "barrier_per_level", "flush_latency", "lock_latency",
    "lock_contention", "pfs_latency", "flop_time", "hash_time",
    "log_bookkeeping",
)
#: CostModel fields denominated in bytes/second (scaled *down*).
_BANDWIDTH_FIELDS = ("network_bandwidth", "memory_bandwidth", "pfs_bandwidth")


def scaled_cost_model(
    base: CostModel | None = None, *, compression: float
) -> CostModel:
    """``base`` with every charge stretched by ``compression``.

    Multiplying the latencies and dividing the bandwidths by the same factor
    preserves every *relative* cost — the machine is the same machine, its
    virtual clock just ticks ``compression`` times faster per unit of work —
    so compressed soaks exercise exactly the protocol behavior of the
    uncompressed model while reporting hour-scale MTTF/MTTR numbers.
    """
    if compression <= 0:
        raise ChaosError("time compression must be positive")
    base = base if base is not None else cray_xe6_like()
    overrides: dict = {f: getattr(base, f) * compression for f in _TIME_FIELDS}
    overrides |= {f: getattr(base, f) / compression for f in _BANDWIDTH_FIELDS}
    overrides["name"] = f"{base.name}-x{compression:g}"
    return base.with_overrides(**overrides)


# ----------------------------------------------------------------------
# The soak specification
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SoakSpec:
    """Declarative description of one soak cell.

    The kill plan is a pure function of ``(seed, workload, scenario,
    rate_per_round)`` — deliberately **not** of the countermeasure, store or
    backend — so comparison cells face identical failure schedules.
    """

    workload: str = "stencil"
    backend: str = "sim"
    store: str = "memory"
    countermeasure: str = "rollback"
    #: Delivery mode under failure (registry kind ``"delivery"``); the plan
    #: seed excludes it, so reliable vs best-effort soaks face identical kills.
    delivery: str = "reliable"
    scenario: str = "poisson"
    monitor: str = "transitions"
    #: Consecutive workload rounds the soak drives (one long session).
    rounds: int = 6
    #: Coordinated-checkpoint interval in steps (numeric only: an open-ended
    #: soak must keep checkpointing, so ``None``/``"auto"`` are not options).
    interval: int = 8
    #: Virtual-time compression factor applied to the cost model.
    compression: float = 10_000.0
    #: Expected kills per workload round (scenario intensity).
    rate_per_round: float = 0.75
    seed: int = 2026
    nprocs: int = 8
    procs_per_node: int = 2
    watchdog: float | None = None
    workload_params: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        for kind, name in (
            ("workload", self.workload),
            ("backend", self.backend),
            ("store", self.store),
            ("countermeasure", self.countermeasure),
            ("delivery", self.delivery),
            ("scenario", self.scenario),
            ("monitor", self.monitor),
        ):
            known = available(kind)
            if name not in known:
                listing = ", ".join(repr(k) for k in known)
                raise ChaosError(
                    f"unknown {kind} {name!r} in soak spec; "
                    f"registered {plural(kind)} are: {listing}"
                )
        if self.rounds < 1:
            raise ChaosError("a soak needs at least one round")
        if not isinstance(self.interval, int) or self.interval < 1:
            raise ChaosError("soak checkpoint interval must be a positive step count")
        if self.compression <= 0:
            raise ChaosError("time compression must be positive")
        if self.rate_per_round < 0:
            raise ChaosError("rate_per_round must be non-negative")
        if self.nprocs < 2 or self.procs_per_node < 1:
            raise ChaosError("soaks need nprocs >= 2 and procs_per_node >= 1")

    @property
    def cell_key(self) -> str:
        return (
            f"{self.workload}/{self.scenario}/{self.backend}"
            f"/{self.store}/{self.countermeasure}"
        )


@dataclass(frozen=True)
class SoakResult:
    """Everything one soak produced, ready for reporting and gating."""

    spec: SoakSpec
    #: The full transition stream (JSONL-serializable dicts, virtual time).
    events: list[dict]
    #: The reliability summary computed from :attr:`events`.
    metrics: ChaosMetrics
    #: The generated kill plan as ``[after_ops, rank, kind]`` triples.
    plan: list[list]
    #: Calibrated completion-stream length of one failure-free round.
    ops_per_round: int
    #: Virtual seconds of one failure-free round (compressed units).
    round_seconds: float
    #: Session counters at the end of the soak.
    checkpoints: int
    recoveries: int
    fallbacks: int
    excised_ranks: int
    steps_executed: int
    elapsed_s: float
    #: Bit-exact digest of the final workload state (None if aborted).
    digest: str | None
    #: Exception class name if the soak ended early, else None.
    aborted: str | None
    #: Analytic §5–§7-model predictions for this cell.
    predicted_mttr_s: float
    predicted_availability: float

    def as_dict(self) -> dict:
        """JSON-ready form (byte-identical across re-runs: no wall clock)."""
        return {
            "spec": {
                "workload": self.spec.workload,
                "backend": self.spec.backend,
                "store": self.spec.store,
                "countermeasure": self.spec.countermeasure,
                "scenario": self.spec.scenario,
                "monitor": self.spec.monitor,
                "rounds": self.spec.rounds,
                "interval": self.spec.interval,
                "compression": self.spec.compression,
                "rate_per_round": self.spec.rate_per_round,
                "seed": self.spec.seed,
                "nprocs": self.spec.nprocs,
                "procs_per_node": self.spec.procs_per_node,
            },
            "plan": self.plan,
            "ops_per_round": self.ops_per_round,
            "round_seconds": self.round_seconds,
            "metrics": self.metrics.as_dict(),
            "checkpoints": self.checkpoints,
            "recoveries": self.recoveries,
            "fallbacks": self.fallbacks,
            "excised_ranks": self.excised_ranks,
            "steps_executed": self.steps_executed,
            "elapsed_s": self.elapsed_s,
            "digest": self.digest,
            "aborted": self.aborted,
            "predicted_mttr_s": self.predicted_mttr_s,
            "predicted_availability": self.predicted_availability,
            "events": self.events,
        }


# ----------------------------------------------------------------------
# Calibration and plan generation
# ----------------------------------------------------------------------
def calibrate_round(
    workload: Workload, *, procs_per_node: int, cost_model: CostModel
) -> tuple[int, float]:
    """One failure-free probe round: ``(ops_per_round, round_seconds)``.

    The probe always runs on the ``sim`` backend: the completion stream is
    contractually identical across backends and checkpoint/store traffic does
    not pass through ``after_comm``, so the calibrated operation count holds
    for every backend, store and countermeasure of a comparison — one probe
    per workload serves the whole grid.
    """
    with launch(
        workload.nprocs,
        topology=Topology(procs_per_node=procs_per_node, cost_model=cost_model),
        sync_each_step=workload.sync_each_step,
        backend="sim",
    ) as job:
        workload.setup(job)
        counter = FaultInjector(KillPlan([]))
        job.runtime.add_interceptor(counter)
        report = job.run(workload.kernel(), steps=workload.steps)
    return counter.ops_seen, report.elapsed


def _plan_seed(spec: SoakSpec) -> np.random.SeedSequence:
    """Schedule entropy: seed + workload + scenario — nothing else.

    Backend, store and countermeasure are deliberately excluded so that
    comparison cells (and sim-vs-proc differential runs) draw the *same*
    plan; the string axes enter as stable CRCs, not Python hashes, so the
    entropy is identical across processes and machines.
    """
    return np.random.SeedSequence((
        spec.seed,
        zlib.crc32(spec.workload.encode()),
        zlib.crc32(spec.scenario.encode()),
    ))


def build_plan(spec: SoakSpec, *, ops_per_round: int, steps_per_round: int) -> KillPlan:
    """The spec's kill plan (pure function of spec + calibrated shape)."""
    scenario = make_scenario(spec.scenario, rate_per_round=spec.rate_per_round)
    return scenario.plan(
        _plan_seed(spec),
        nprocs=spec.nprocs,
        ops_per_round=ops_per_round,
        steps_per_round=steps_per_round,
        rounds=spec.rounds,
        procs_per_node=spec.procs_per_node,
    )


# ----------------------------------------------------------------------
# The driver
# ----------------------------------------------------------------------
def run_soak(spec: SoakSpec, *, events_path: str | None = None) -> SoakResult:
    """Run one soak cell to completion and compute its reliability metrics.

    The whole soak is **one** session and one :meth:`~repro.api.session.Job.run`
    of ``rounds × steps`` job steps (every catalog kernel is a pure function
    of its step number, so rounds are just step ranges); a rollback therefore
    never crosses a phase boundary.  A failure mode recovery cannot absorb —
    a rank lost together with its buddy, or no usable checkpoint — ends the
    soak early with a ``soak_aborted`` event rather than raising: surviving
    *is* the measurement.
    """
    workload = make_workload(
        spec.workload, nprocs=spec.nprocs, **dict(spec.workload_params)
    )
    cost = scaled_cost_model(compression=spec.compression)
    with trace_label(f"{spec.cell_key}/probe"):
        ops_per_round, round_seconds = calibrate_round(
            workload, procs_per_node=spec.procs_per_node, cost_model=cost
        )
    plan = build_plan(
        spec, ops_per_round=ops_per_round, steps_per_round=workload.steps
    )
    countermeasure = make_countermeasure(spec.countermeasure)
    monitor = make_monitor(spec.monitor)
    monitor.steps_per_round = workload.steps
    total_steps = spec.rounds * workload.steps

    aborted: str | None = None
    digest: str | None = None
    # The monitor consumes the trace event bus rather than registering its
    # own observer/listener stack: one tracer instruments the job (joining
    # the run-wide hub when an engine CLI's ``--trace`` activated one) and
    # the monitor subscribes.  Timestamps are the same ``cluster.elapsed()``
    # the direct hooks carried, so the chaos event stream is unchanged.
    with trace_label(spec.cell_key):
        hub = current_trace_hub()
        tracer = hub.tracer() if hub is not None else Tracer(detail="lifecycle")
    with launch(
        spec.nprocs,
        topology=Topology(procs_per_node=spec.procs_per_node, cost_model=cost),
        ft=countermeasure.policy(
            store=spec.store, interval=spec.interval, delivery=spec.delivery
        ),
        sync_each_step=workload.sync_each_step,
        backend=spec.backend,
        watchdog=spec.watchdog,
        trace=tracer,
    ) as job:
        workload.setup(job)
        bytes_per_rank = sum(w.nbytes_per_rank for w in job.runtime.windows.all())
        monitor.bind(job)
        tracer.subscribe(monitor.consume)
        monitor.emit(
            "soak_started", 0.0,
            workload=spec.workload, backend=spec.backend, store=spec.store,
            countermeasure=spec.countermeasure, scenario=spec.scenario,
            rounds=spec.rounds, steps_per_round=workload.steps,
            planned_kills=len(plan), compression=spec.compression,
            seed=spec.seed, nprocs=spec.nprocs,
        )
        injector = install_injector(job, plan)
        try:
            report = job.run(workload.kernel(), steps=total_steps)
        except (RecoveryError, CatastrophicFailure) as exc:
            aborted = type(exc).__name__
            monitor.emit("soak_aborted", job.cluster.elapsed(), error=aborted)
            report = job.report()
        if aborted is None:
            digest = workload.digest(workload.collect(job))
        monitor.emit(
            "soak_completed", job.cluster.elapsed(),
            steps_executed=report.steps_executed,
            kills_fired=len(injector.fired),
            kills_skipped=len(injector.skipped),
        )

    metrics = compute_metrics(monitor.events)
    if events_path is not None:
        write_events(monitor.events, events_path)

    # The analytic prediction for this cell: the §5–§7 interval model fed the
    # *planned* failure rate, so predicted and observed MTTR/availability can
    # be judged against each other in the report.
    total_seconds = spec.rounds * round_seconds
    rate = len(plan) / total_seconds if total_seconds > 0 and len(plan) else 0.0
    model = IntervalModel(
        cost_model=cost,
        nprocs=spec.nprocs,
        bytes_per_rank=bytes_per_rank,
        store=spec.store,
        rates_per_level={0: rate} if rate else {},
    )
    step_seconds = round_seconds / workload.steps
    recovery = countermeasure.recovery
    predicted_mttr = model.predicted_mttr_seconds(
        recovery, step_seconds=step_seconds, interval_steps=spec.interval
    )
    predicted_avail = model.predicted_availability(
        recovery, step_seconds=step_seconds, interval_steps=spec.interval
    )

    return SoakResult(
        spec=spec,
        events=monitor.events,
        metrics=metrics,
        plan=[[e.after_ops, e.rank, e.kind.value] for e in plan],
        ops_per_round=ops_per_round,
        round_seconds=round_seconds,
        checkpoints=int(report.checkpoints),
        recoveries=int(report.recoveries),
        fallbacks=int(report.recovery_fallbacks),
        excised_ranks=int(report.excised_ranks),
        steps_executed=int(report.steps_executed),
        elapsed_s=report.elapsed,
        digest=digest,
        aborted=aborted,
        predicted_mttr_s=predicted_mttr,
        predicted_availability=predicted_avail,
    )


def run_comparison(
    base: SoakSpec,
    *,
    countermeasures: Sequence[str] = ("rollback", "replay", "excise"),
    backends: Sequence[str] | None = None,
    stores: Sequence[str] | None = None,
    executor: str = "serial",
    max_workers: int | None = None,
) -> list[SoakResult]:
    """Run the cross-config comparison grid against identical kill plans.

    Every cell reuses ``base``'s seed, workload and scenario, so the plan —
    a function of exactly those — is identical across the grid; only the
    countermeasure/store/backend axes vary.  Cells are independent sessions,
    so ``executor="thread"`` parallelizes them while the assembled result
    list (and hence the report) stays byte-identical to a serial run.
    """
    backends = tuple(backends) if backends is not None else (base.backend,)
    stores = tuple(stores) if stores is not None else (base.store,)
    countermeasures = tuple(countermeasures)
    if not countermeasures or not backends or not stores:
        raise ChaosError("comparison axes must be non-empty")
    specs = [
        replace(base, backend=b, store=s, countermeasure=c)
        for b in backends
        for s in stores
        for c in countermeasures
    ]
    if executor == "serial":
        return [run_soak(spec) for spec in specs]
    if executor == "thread":
        with ThreadPoolExecutor(max_workers=max_workers) as pool:
            return list(pool.map(run_soak, specs))
    raise ChaosError(f"unknown executor {executor!r}; choose 'serial' or 'thread'")
