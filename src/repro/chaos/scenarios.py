"""Seeded failure-scenario generators — :class:`~repro.ft.inject.KillPlan` factories.

A *scenario* turns a seed and the calibrated shape of a soak (how many
completion-stream operations one workload round emits) into a concrete kill
plan.  Plans are expressed as **operation offsets**, not virtual times,
because the completion stream is the one sequence the backends are
contractually required to emit identically — the same scenario therefore
strikes at the same program points on ``sim`` and ``proc``, which is what
makes cross-backend soak comparisons (and their byte-identical event logs)
possible.

The catalog mirrors the failure modes of the paper's §7 evaluation and the
classic chaos-engineering taxonomy:

* ``"poisson"`` — independent fail-stop kills with exponential inter-arrival
  gaps, the memoryless process behind every MTBF model;
* ``"correlated"`` — node-level kills taking out a whole failure domain at
  once (the event buddy placement must survive, §5);
* ``"cascade"`` — an initial kill followed by secondary kills of further
  ranks a few steps later (correlated-in-time, not in space);
* ``"flaky"`` — one rank killed again and again after each respawn, then
  left dead (the crash-looping pod of the reliability literature).

Scenarios are registry-resolved (:func:`repro.registry.resolve_component`)
under the kind ``"scenario"``, exactly like backends/stores/recovery.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.errors import ChaosError
from repro.ft.inject import KillEvent, KillKind, KillPlan
from repro.registry import register_kind, resolve_component
from repro.simulator.rng import make_rng

__all__ = [
    "Scenario",
    "PoissonKills",
    "CorrelatedFailures",
    "CascadingFailures",
    "FlakyRank",
    "SCENARIOS",
    "make_scenario",
]


class Scenario(abc.ABC):
    """One catalog entry: a seeded generator of soak-length kill plans.

    Subclasses draw events from the rng handed to :meth:`plan`; the same seed
    must always yield the same plan, event for event, and disjoint seeds
    yield independent streams (:func:`repro.simulator.rng.make_rng` wraps
    :class:`numpy.random.SeedSequence` spawning).
    """

    #: Registry name ("poisson", "correlated", "cascade", "flaky", ...).
    name: str = "abstract"

    def __init__(self, *, rate_per_round: float = 0.75) -> None:
        if rate_per_round < 0:
            raise ChaosError(f"scenario {self.name!r} needs rate_per_round >= 0")
        self.rate_per_round = rate_per_round

    @abc.abstractmethod
    def plan(
        self,
        seed: int | np.random.Generator | np.random.SeedSequence,
        *,
        nprocs: int,
        ops_per_round: int,
        steps_per_round: int,
        rounds: int,
        procs_per_node: int = 2,
    ) -> KillPlan:
        """Generate the kill plan for a soak of ``rounds`` workload rounds.

        ``ops_per_round`` is the calibrated completion-stream length of one
        failure-free round (see :func:`repro.chaos.soak.calibrate_round`);
        ``steps_per_round`` the workload's step count, so scenarios can space
        events in units of whole steps.
        """

    # ------------------------------------------------------------------
    def _shape(self, nprocs: int, ops_per_round: int, steps_per_round: int, rounds: int):
        if nprocs < 2:
            raise ChaosError(f"scenario {self.name!r} needs nprocs >= 2")
        if ops_per_round < 1 or steps_per_round < 1 or rounds < 1:
            raise ChaosError(
                f"scenario {self.name!r} needs ops_per_round, steps_per_round "
                f"and rounds all >= 1"
            )
        total_ops = ops_per_round * rounds
        ops_per_step = max(1, ops_per_round // steps_per_round)
        return total_ops, ops_per_step

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(rate_per_round={self.rate_per_round:g})"


class PoissonKills(Scenario):
    """Independent fail-stop kills with exponential inter-arrival gaps.

    Gaps are drawn in operation units with mean ``ops_per_round /
    rate_per_round`` and floored at two whole steps, so one recovery can
    complete before the next failure lands (two simultaneous deaths of a
    buddy pair would be a catastrophic failure, which is the ``"cascade"``
    scenario's business, not this one's).
    """

    name = "poisson"

    def plan(self, seed, *, nprocs, ops_per_round, steps_per_round, rounds,
             procs_per_node=2) -> KillPlan:
        total_ops, ops_per_step = self._shape(
            nprocs, ops_per_round, steps_per_round, rounds
        )
        rng = make_rng(seed)
        if self.rate_per_round == 0:
            return KillPlan([])
        mean_gap = ops_per_round / self.rate_per_round
        min_gap = 2 * ops_per_step
        events = []
        offset = ops_per_step  # never before the first step's work
        while True:
            offset += max(min_gap, int(round(rng.exponential(mean_gap))))
            if offset >= total_ops:
                break
            events.append(
                KillEvent(after_ops=offset, rank=int(rng.integers(0, nprocs)))
            )
        return KillPlan(events)


class CorrelatedFailures(PoissonKills):
    """Node-level kills: every event takes out a whole failure domain.

    Same arrival process as ``"poisson"`` but each event is a ``NODE_KILL``
    — all ranks sharing the victim's compute node die together, the smallest
    correlated failure topology-aware buddy placement must survive (§5).
    """

    name = "correlated"

    def plan(self, seed, *, nprocs, ops_per_round, steps_per_round, rounds,
             procs_per_node=2) -> KillPlan:
        base = super().plan(
            seed, nprocs=nprocs, ops_per_round=ops_per_round,
            steps_per_round=steps_per_round, rounds=rounds,
            procs_per_node=procs_per_node,
        )
        return KillPlan([
            KillEvent(after_ops=e.after_ops, rank=e.rank, kind=KillKind.NODE_KILL)
            for e in base
        ])


class CascadingFailures(Scenario):
    """An initial kill followed by secondary kills rippling to further ranks.

    Each trigger (Poisson arrivals, like ``"poisson"``) is followed by
    ``cascade - 1`` follow-up kills of other ranks, spaced two steps apart —
    far enough for the previous recovery to complete, close enough that the
    outages chain into one long episode of repeated rollbacks.
    """

    name = "cascade"

    def __init__(self, *, rate_per_round: float = 0.4, cascade: int = 3) -> None:
        super().__init__(rate_per_round=rate_per_round)
        if cascade < 2:
            raise ChaosError("cascade scenario needs cascade >= 2 ranks per burst")
        self.cascade = cascade

    def plan(self, seed, *, nprocs, ops_per_round, steps_per_round, rounds,
             procs_per_node=2) -> KillPlan:
        total_ops, ops_per_step = self._shape(
            nprocs, ops_per_round, steps_per_round, rounds
        )
        rng = make_rng(seed)
        if self.rate_per_round == 0:
            return KillPlan([])
        mean_gap = ops_per_round / self.rate_per_round
        burst_span = 2 * ops_per_step * self.cascade
        events = []
        offset = ops_per_step
        while True:
            offset += max(burst_span, int(round(rng.exponential(mean_gap))))
            if offset >= total_ops:
                break
            first = int(rng.integers(0, nprocs))
            for k in range(min(self.cascade, nprocs)):
                strike = offset + k * 2 * ops_per_step
                if strike >= total_ops:
                    break
                events.append(
                    KillEvent(after_ops=strike, rank=(first + k) % nprocs)
                )
        return KillPlan(events)


class FlakyRank(Scenario):
    """One rank killed again and again after each respawn, then left dead.

    The crash-looping pod: a single seeded victim dies ``flaps`` times at
    regular intervals.  Under ``"rollback"``/``"replay"`` countermeasures the
    rank is respawned each time and dies again; under ``"excise"`` the first
    death removes it and every later event is *skipped* (the injector still
    reports it, so the monitor can show the excision absorbing the flaps).
    """

    name = "flaky"

    def __init__(self, *, rate_per_round: float = 1.0, flaps: int = 3) -> None:
        super().__init__(rate_per_round=rate_per_round)
        if flaps < 1:
            raise ChaosError("flaky scenario needs flaps >= 1")
        self.flaps = flaps

    def plan(self, seed, *, nprocs, ops_per_round, steps_per_round, rounds,
             procs_per_node=2) -> KillPlan:
        total_ops, ops_per_step = self._shape(
            nprocs, ops_per_round, steps_per_round, rounds
        )
        rng = make_rng(seed)
        victim = int(rng.integers(0, nprocs))
        first = ops_per_step + int(rng.integers(0, ops_per_step))
        span = max(1, total_ops - first)
        gap = max(2 * ops_per_step, span // (self.flaps + 1))
        events = []
        for flap in range(self.flaps):
            strike = first + flap * gap
            if strike >= total_ops:
                break
            events.append(KillEvent(after_ops=strike, rank=victim))
        return KillPlan(events)


#: Registry of constructable scenarios, by name.
SCENARIOS: dict[str, type[Scenario]] = {
    PoissonKills.name: PoissonKills,
    CorrelatedFailures.name: CorrelatedFailures,
    CascadingFailures.name: CascadingFailures,
    FlakyRank.name: FlakyRank,
}
register_kind("scenario", SCENARIOS)


def make_scenario(spec: "str | Scenario | None", **params: object) -> Scenario:
    """Resolve a scenario specification into a fresh (or given) instance.

    ``None`` means the default (``"poisson"``); an unknown name raises
    :class:`ChaosError` listing the registered choices; a :class:`Scenario`
    instance passes through, its own parameters winning over ``params``.
    """
    return resolve_component(
        "scenario", spec, SCENARIOS, Scenario, ChaosError,
        default=PoissonKills.name, **params,
    )
