"""Chaos reports: JSON document, markdown tables, invariants, baseline gate.

The report is the artifact the soak engine exists for — the paper's
resilience claims restated as a reliability table::

    | workload | scenario | backend | store | countermeasure | kills | MTTF | MTBF | MTTR | availability |

plus a predicted-vs-observed section judging the §5–§7 analytic model the
way the paper judges its own (:meth:`~repro.study.model.IntervalModel.predicted_mttr_seconds`).

:func:`check_chaos_invariants` encodes the trade-off the comparison mode must
make visible: on identical failure schedules, ``replay`` (localized) repairs
strictly faster than ``rollback`` (global re-execution), and ``excise``
(degraded continuation) is strictly more available than both — it trades
correctness (ranks are gone) for uptime.  :func:`check_against_baseline` is
the CI regression gate.
"""

from __future__ import annotations

import json

from repro.chaos.soak import SoakResult

__all__ = [
    "report_json",
    "render_markdown",
    "check_chaos_invariants",
    "check_against_baseline",
]


def report_json(results: list[SoakResult]) -> str:
    """Canonical serialization — byte-identical across re-runs and executors."""
    document = {
        "meta": {"engine": "repro.chaos", "cells": len(results)},
        "cells": {result.spec.cell_key: result.as_dict() for result in results},
    }
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


def _fmt_s(value: float | None) -> str:
    """Format virtual seconds with enough range for compressed soaks."""
    if value is None:
        return "—"
    if value >= 3600.0:
        return f"{value / 3600.0:.2f} h"
    if value >= 60.0:
        return f"{value / 60.0:.2f} min"
    return f"{value:.3f} s"


def _fmt_pct(value: float | None) -> str:
    return "—" if value is None else f"{value * 100.0:.3f}%"


def render_markdown(results: list[SoakResult]) -> str:
    """The soak grid as markdown: reliability table + predicted-vs-observed."""
    lines = [
        "| workload | scenario | backend | store | countermeasure | kills "
        "| episodes | MTTF | MTBF | MTTR | availability |",
        "|---|---|---|---|---|---|---|---|---|---|---|",
    ]
    for result in results:
        spec, m = result.spec, result.metrics
        kills = f"{m.kills_fired}"
        if m.kills_skipped:
            kills += f" (+{m.kills_skipped} skipped)"
        if result.aborted:
            kills += f" [{result.aborted}]"
        lines.append(
            f"| {spec.workload} | {spec.scenario} | {spec.backend} | {spec.store} "
            f"| {spec.countermeasure} | {kills} | {m.episodes} "
            f"| {_fmt_s(m.mttf_s)} | {_fmt_s(m.mtbf_s)} | {_fmt_s(m.mttr_s)} "
            f"| {_fmt_pct(m.availability)} |"
        )
    lines += [
        "",
        "| cell | MTTR observed | MTTR predicted | availability observed "
        "| availability predicted |",
        "|---|---|---|---|---|",
    ]
    for result in results:
        m = result.metrics
        lines.append(
            f"| {result.spec.cell_key} | {_fmt_s(m.mttr_s)} "
            f"| {_fmt_s(result.predicted_mttr_s)} | {_fmt_pct(m.availability)} "
            f"| {_fmt_pct(result.predicted_availability)} |"
        )
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Gates
# ----------------------------------------------------------------------
def check_chaos_invariants(results: list[SoakResult]) -> list[str]:
    """The comparison-mode invariants; returns human-readable violations.

    Within every group of cells sharing ``(workload, scenario, backend,
    store)`` — which by construction faced the *identical* kill plan:

    * ``replay`` must achieve **strictly lower mean MTTR** than ``rollback``
      (suppressed-action fast-forward vs full re-execution of lost work);
    * ``excise`` must achieve **strictly higher availability** than both
      (no restore, no rework — the degraded continuation trades the excised
      ranks' results for uptime).

    Groups missing a countermeasure, without resolved outages, or aborted
    are skipped — the grid decides what is comparable, the invariants judge
    whatever is.
    """
    violations: list[str] = []
    groups: dict[tuple, dict[str, SoakResult]] = {}
    for result in results:
        spec = result.spec
        key = (spec.workload, spec.scenario, spec.backend, spec.store)
        groups.setdefault(key, {})[spec.countermeasure] = result

    for key, cells in sorted(groups.items()):
        label = "/".join(key)
        rollback = cells.get("rollback")
        replay = cells.get("replay")
        excise = cells.get("excise")
        if rollback and replay and not rollback.aborted and not replay.aborted:
            g, l_ = rollback.metrics.mttr_s, replay.metrics.mttr_s
            if g is None or l_ is None:
                violations.append(
                    f"{label}: no resolved outage to compare MTTR on "
                    f"(rollback={g}, replay={l_})"
                )
            elif l_ >= g:
                violations.append(
                    f"{label}: replay MTTR {l_:.3f}s is not strictly lower than "
                    f"rollback's {g:.3f}s"
                )
        if excise and not excise.aborted:
            for other in (rollback, replay):
                if other is None or other.aborted:
                    continue
                a_e = excise.metrics.availability
                a_o = other.metrics.availability
                if a_e is None or a_o is None:
                    violations.append(
                        f"{label}: availability undefined "
                        f"(excise={a_e}, {other.spec.countermeasure}={a_o})"
                    )
                elif a_e <= a_o:
                    violations.append(
                        f"{label}: excise availability {a_e:.6f} is not strictly "
                        f"higher than {other.spec.countermeasure}'s {a_o:.6f}"
                    )
    return violations


def check_against_baseline(
    report: dict, baseline: dict, *, max_ratio: float = 2.0
) -> list[str]:
    """Regression gate against a checked-in baseline report; returns failures.

    Everything in a soak is virtual-time deterministic, so the schedule-shaped
    quantities (kills, episodes, recoveries, plan) must match **exactly**;
    the reliability outcomes are gated by ratio — observed MTTR may not
    exceed ``max_ratio`` × baseline, and observed *unavailability* may not
    exceed ``max_ratio`` × the baseline's — so a protocol regression fails CI
    while legitimate cost-model retuning only shifts within the band.
    """
    failures: list[str] = []
    for key, base in baseline.get("cells", {}).items():
        current = report["cells"].get(key)
        if current is None:
            failures.append(f"{key}: cell missing from current report")
            continue
        base_m, cur_m = base["metrics"], current["metrics"]
        for exact in ("kills_fired", "kills_skipped", "episodes",
                      "episodes_resolved", "recoveries"):
            if cur_m.get(exact) != base_m.get(exact):
                failures.append(
                    f"{key}: {exact} changed from {base_m.get(exact)!r} to "
                    f"{cur_m.get(exact)!r}"
                )
        if current.get("plan") != base.get("plan"):
            failures.append(f"{key}: kill plan changed from the baseline's")
        if current.get("aborted") != base.get("aborted"):
            failures.append(
                f"{key}: aborted changed from {base.get('aborted')!r} to "
                f"{current.get('aborted')!r}"
            )
        cur_mttr, base_mttr = cur_m.get("mttr_s"), base_m.get("mttr_s")
        if (
            cur_mttr is not None and base_mttr is not None
            and base_mttr > 0 and cur_mttr / base_mttr > max_ratio
        ):
            failures.append(
                f"{key}: MTTR {cur_mttr:.3f}s is {cur_mttr / base_mttr:.2f}x "
                f"the baseline's {base_mttr:.3f}s (allowed {max_ratio:.1f}x)"
            )
        cur_av, base_av = cur_m.get("availability"), base_m.get("availability")
        if cur_av is not None and base_av is not None:
            cur_un, base_un = 1.0 - cur_av, 1.0 - base_av
            if base_un > 0 and cur_un / base_un > max_ratio:
                failures.append(
                    f"{key}: unavailability {cur_un:.6f} is "
                    f"{cur_un / base_un:.2f}x the baseline's {base_un:.6f} "
                    f"(allowed {max_ratio:.1f}x)"
                )
    return failures
