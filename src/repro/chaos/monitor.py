"""Chaos monitors — virtual-time failure/recovery transition detectors.

A monitor consumes the trace event bus (``tracer.subscribe(monitor.consume)``
— how the soak driver wires it) or, equivalently, plugs in directly as a
:class:`~repro.api.session.SessionObserver` plus a
:class:`~repro.ft.inject.FaultInjector` listener; either way it sees both
halves of every outage:

* ``failure_initiated`` — the injector lands a kill (SIGKILL on ``proc``,
  simulated fail-stop elsewhere), *before* the control plane notices;
* ``failure_detected`` — the fail-stop surfaces in the step loop as a
  :class:`~repro.errors.ProcessFailedError`;
* ``recovery_started`` / ``protocol_applied`` / ``recovery_completed`` — the
  countermeasure runs;
* ``service_restored`` — the step the failure aborted completes again, i.e.
  the job is back to where it was when the outage began.  This marker — not
  the protocol's return — is what MTTR measures: a global rollback must
  *re-execute* everything back to the crash step at full cost, a localized
  replay fast-forwards suppressed actions at bookkeeping cost, a degraded
  continuation just re-runs the aborted step with the survivors.  That
  accounting is exactly what makes the protocols' recovery-time trade-off
  visible.

Every timestamp is the cluster's **virtual** ``elapsed()`` — no wall clock —
so the event stream of a seeded soak is byte-identical across re-runs and
across the ``sim`` and ``proc`` backends.  Monitors are registry-resolved
under the kind ``"monitor"``: ``"transitions"`` streams every transition,
``"episodes"`` additionally coalesces each outage into one summary event.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.api.session import SessionObserver
from repro.errors import ChaosError
from repro.ft.inject import FiredKill
from repro.registry import register_kind, resolve_component

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from repro.api.session import Job

__all__ = [
    "ChaosMonitor",
    "TransitionMonitor",
    "EpisodeMonitor",
    "MONITORS",
    "make_monitor",
]


class ChaosMonitor(SessionObserver):
    """Base monitor: the transition state machine and the event buffer.

    Subclasses choose what extra structure to emit; the base class owns the
    episode bookkeeping (outage open/close, crash-step tracking, round
    markers).  Events are plain dicts — ``{"type": ..., "t": ...,
    **fields}`` — appended in occurrence order, the exact stream
    :func:`repro.chaos.metrics.write_events` serializes as JSONL.
    """

    name = "abstract"

    def __init__(self) -> None:
        self.events: list[dict] = []
        #: Steps per workload round; set by the soak driver so the monitor
        #: can emit ``round_completed`` markers (0 disables them).
        self.steps_per_round = 0
        self._job: Job | None = None
        self._episode: dict | None = None
        self._max_step_completed = -1

    # ------------------------------------------------------------------
    def bind(self, job: "Job") -> None:
        """Attach to ``job``'s cluster for virtual timestamps."""
        self._job = job

    def _now(self) -> float:
        if self._job is None:
            raise ChaosError("monitor used before bind(job)")
        return self._job.cluster.elapsed()

    def emit(self, type_: str, t: float, **fields) -> None:
        """Append one event (used internally and by the soak driver)."""
        self.events.append({"type": type_, "t": t, **fields})

    # ------------------------------------------------------------------
    # Trace-bus consumer
    # ------------------------------------------------------------------
    def consume(self, event: dict) -> None:
        """Trace-bus subscriber: drive the monitor from a job's tracer.

        The soak driver wires this via ``tracer.subscribe(monitor.consume)``
        instead of registering the monitor as its own observer/listener
        stack — one instrumentation source, no double-counting.  Timestamps
        come from the events themselves (the tracer stamps the same
        ``cluster.elapsed()`` the direct hooks used to read), so the chaos
        event stream is byte-identical to the pre-bus wiring.  Event types
        outside the monitor's vocabulary are ignored.
        """
        kind = event["type"]
        t = event["t"]
        if kind == "kill_fired":
            self._record_kill(
                t,
                rank=event["rank"],
                victims=list(event["victims"]),
                kill_kind=event["kind"],
                after_ops=event["after_ops"],
                real=bool(event.get("rt", {}).get("real", False)),
            )
        elif kind == "kill_skipped":
            self._record_skip(t, rank=event["rank"], after_ops=event["after_ops"])
        elif kind == "failure_detected":
            self.on_failure_detected(event["rank"], event["step"], t)
        elif kind == "recovery_started":
            self.on_recovery_started(event["step"], t)
        elif kind == "protocol_applied":
            self._record_protocol(
                t,
                protocol=event["protocol"],
                kind=event["kind"],
                failed=list(event["failed"]),
                restored_bytes=event["restored_bytes"],
                fallback=event["fallback"],
                resume_step=event["resume_step"],
            )
        elif kind == "recovery_completed":
            self.on_recovery_completed(event["resume_step"], t)
        elif kind == "step_completed":
            self.on_step_completed(event["step"], t)

    # ------------------------------------------------------------------
    # Injector listener (direct wiring; the trace bus uses the _record_*
    # handlers with the bus event's timestamp instead)
    # ------------------------------------------------------------------
    def on_kill(self, record: FiredKill) -> None:
        """Injector callback: a planned event resolved (fired or skipped)."""
        t = self._now()
        if record.skipped:
            self._record_skip(
                t, rank=record.event.rank, after_ops=record.event.after_ops
            )
            return
        self._record_kill(
            t,
            rank=record.event.rank,
            victims=list(record.victims),
            kill_kind=record.event.kind.value,
            after_ops=record.event.after_ops,
            real=record.real,
        )

    def _record_skip(self, t: float, *, rank: int, after_ops: int) -> None:
        self.emit("failure_skipped", t, rank=rank, after_ops=after_ops)

    def _record_kill(
        self,
        t: float,
        *,
        rank: int,
        victims: list[int],
        kill_kind: str,
        after_ops: int,
        real: bool,
    ) -> None:
        self.emit(
            "failure_initiated", t,
            rank=rank,
            victims=list(victims),
            kind=kill_kind,
            after_ops=after_ops,
            real=real,
        )
        if self._episode is None:
            self._episode = {
                "initiated_t": t,
                "detected_t": None,
                "crash_step": None,
                "victims": list(victims),
                "kills": 1,
            }
        else:
            self._episode["kills"] += 1
            for victim in victims:
                if victim not in self._episode["victims"]:
                    self._episode["victims"].append(victim)

    # ------------------------------------------------------------------
    # Session observer
    # ------------------------------------------------------------------
    def on_failure_detected(self, rank: int, step: int, t: float) -> None:
        self.emit("failure_detected", t, rank=rank, step=step)
        if self._episode is None:
            # A failure the injector did not initiate (e.g. a virtual-time
            # schedule): the detection opens the episode.
            self._episode = {
                "initiated_t": t, "detected_t": t,
                "crash_step": step, "victims": [rank], "kills": 0,
            }
            return
        if self._episode["detected_t"] is None:
            self._episode["detected_t"] = t
        crash = self._episode["crash_step"]
        self._episode["crash_step"] = step if crash is None else max(crash, step)

    def on_recovery_started(self, step: int, t: float) -> None:
        self.emit("recovery_started", t, step=step)

    def on_protocol_applied(self, outcome, resume_step: int, t: float) -> None:
        self._record_protocol(
            t,
            protocol=outcome.protocol,
            kind=outcome.kind,
            failed=list(outcome.failed),
            restored_bytes=outcome.restored_bytes,
            fallback=outcome.fallback,
            resume_step=resume_step,
        )

    def _record_protocol(
        self,
        t: float,
        *,
        protocol: str,
        kind: str,
        failed: list[int],
        restored_bytes: int,
        fallback: bool,
        resume_step: int,
    ) -> None:
        self.emit(
            "protocol_applied", t,
            protocol=protocol,
            kind=kind,
            failed=list(failed),
            restored_bytes=restored_bytes,
            fallback=fallback,
            resume_step=resume_step,
        )

    def on_recovery_completed(self, resume_step: int, t: float) -> None:
        self.emit("recovery_completed", t, resume_step=resume_step)

    def on_step_completed(self, step: int, t: float) -> None:
        episode = self._episode
        if (
            episode is not None
            and episode["crash_step"] is not None
            and step >= episode["crash_step"]
        ):
            self._close_episode(step, t)
        if (
            self.steps_per_round > 0
            and step > self._max_step_completed
            and (step + 1) % self.steps_per_round == 0
        ):
            self.emit("round_completed", t, round=(step + 1) // self.steps_per_round - 1)
        self._max_step_completed = max(self._max_step_completed, step)

    # ------------------------------------------------------------------
    def _close_episode(self, step: int, t: float) -> None:
        episode = self._episode
        assert episode is not None
        self._episode = None
        detected = episode["detected_t"]
        self.emit(
            "service_restored", t,
            step=step,
            mttr_s=(t - detected) if detected is not None else None,
        )
        self.episode_closed(episode, restored_t=t)

    def episode_closed(self, episode: dict, *, restored_t: float) -> None:
        """Subclass hook: one outage episode fully resolved."""


class TransitionMonitor(ChaosMonitor):
    """The plain monitor: every transition, nothing coalesced."""

    name = "transitions"


class EpisodeMonitor(TransitionMonitor):
    """Transition stream plus one coalesced ``episode`` summary per outage."""

    name = "episodes"

    def episode_closed(self, episode: dict, *, restored_t: float) -> None:
        self.emit(
            "episode", restored_t,
            initiated_t=episode["initiated_t"],
            detected_t=episode["detected_t"],
            restored_t=restored_t,
            victims=episode["victims"],
            kills=episode["kills"],
        )


#: Registry of constructable monitors, by name.
MONITORS: dict[str, type[ChaosMonitor]] = {
    TransitionMonitor.name: TransitionMonitor,
    EpisodeMonitor.name: EpisodeMonitor,
}
register_kind("monitor", MONITORS)


def make_monitor(spec: "str | ChaosMonitor | None", **params: object) -> ChaosMonitor:
    """Resolve a monitor specification into a fresh (or given) instance."""
    return resolve_component(
        "monitor", spec, MONITORS, ChaosMonitor, ChaosError,
        default=TransitionMonitor.name, **params,
    )
