"""Chaos monitors — virtual-time failure/recovery transition detectors.

A monitor is both a :class:`~repro.api.session.SessionObserver` (wired into
the step loop via :meth:`~repro.api.session.Job.add_observer`) and a
:class:`~repro.ft.inject.FaultInjector` listener (via
:meth:`~repro.ft.inject.FaultInjector.add_listener`), so it sees both halves
of every outage:

* ``failure_initiated`` — the injector lands a kill (SIGKILL on ``proc``,
  simulated fail-stop elsewhere), *before* the control plane notices;
* ``failure_detected`` — the fail-stop surfaces in the step loop as a
  :class:`~repro.errors.ProcessFailedError`;
* ``recovery_started`` / ``protocol_applied`` / ``recovery_completed`` — the
  countermeasure runs;
* ``service_restored`` — the step the failure aborted completes again, i.e.
  the job is back to where it was when the outage began.  This marker — not
  the protocol's return — is what MTTR measures: a global rollback must
  *re-execute* everything back to the crash step at full cost, a localized
  replay fast-forwards suppressed actions at bookkeeping cost, a degraded
  continuation just re-runs the aborted step with the survivors.  That
  accounting is exactly what makes the protocols' recovery-time trade-off
  visible.

Every timestamp is the cluster's **virtual** ``elapsed()`` — no wall clock —
so the event stream of a seeded soak is byte-identical across re-runs and
across the ``sim`` and ``proc`` backends.  Monitors are registry-resolved
under the kind ``"monitor"``: ``"transitions"`` streams every transition,
``"episodes"`` additionally coalesces each outage into one summary event.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.api.session import SessionObserver
from repro.errors import ChaosError
from repro.ft.inject import FiredKill
from repro.registry import register_kind, resolve_component

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from repro.api.session import Job

__all__ = [
    "ChaosMonitor",
    "TransitionMonitor",
    "EpisodeMonitor",
    "MONITORS",
    "make_monitor",
]


class ChaosMonitor(SessionObserver):
    """Base monitor: the transition state machine and the event buffer.

    Subclasses choose what extra structure to emit; the base class owns the
    episode bookkeeping (outage open/close, crash-step tracking, round
    markers).  Events are plain dicts — ``{"type": ..., "t": ...,
    **fields}`` — appended in occurrence order, the exact stream
    :func:`repro.chaos.metrics.write_events` serializes as JSONL.
    """

    name = "abstract"

    def __init__(self) -> None:
        self.events: list[dict] = []
        #: Steps per workload round; set by the soak driver so the monitor
        #: can emit ``round_completed`` markers (0 disables them).
        self.steps_per_round = 0
        self._job: Job | None = None
        self._episode: dict | None = None
        self._max_step_completed = -1

    # ------------------------------------------------------------------
    def bind(self, job: "Job") -> None:
        """Attach to ``job``'s cluster for virtual timestamps."""
        self._job = job

    def _now(self) -> float:
        if self._job is None:
            raise ChaosError("monitor used before bind(job)")
        return self._job.cluster.elapsed()

    def emit(self, type_: str, t: float, **fields) -> None:
        """Append one event (used internally and by the soak driver)."""
        self.events.append({"type": type_, "t": t, **fields})

    # ------------------------------------------------------------------
    # Injector listener
    # ------------------------------------------------------------------
    def on_kill(self, record: FiredKill) -> None:
        """Injector callback: a planned event resolved (fired or skipped)."""
        t = self._now()
        if record.skipped:
            self.emit(
                "failure_skipped", t,
                rank=record.event.rank, after_ops=record.event.after_ops,
            )
            return
        self.emit(
            "failure_initiated", t,
            rank=record.event.rank,
            victims=list(record.victims),
            kind=record.event.kind.value,
            after_ops=record.event.after_ops,
            real=record.real,
        )
        if self._episode is None:
            self._episode = {
                "initiated_t": t,
                "detected_t": None,
                "crash_step": None,
                "victims": list(record.victims),
                "kills": 1,
            }
        else:
            self._episode["kills"] += 1
            for victim in record.victims:
                if victim not in self._episode["victims"]:
                    self._episode["victims"].append(victim)

    # ------------------------------------------------------------------
    # Session observer
    # ------------------------------------------------------------------
    def on_failure_detected(self, rank: int, step: int, t: float) -> None:
        self.emit("failure_detected", t, rank=rank, step=step)
        if self._episode is None:
            # A failure the injector did not initiate (e.g. a virtual-time
            # schedule): the detection opens the episode.
            self._episode = {
                "initiated_t": t, "detected_t": t,
                "crash_step": step, "victims": [rank], "kills": 0,
            }
            return
        if self._episode["detected_t"] is None:
            self._episode["detected_t"] = t
        crash = self._episode["crash_step"]
        self._episode["crash_step"] = step if crash is None else max(crash, step)

    def on_recovery_started(self, step: int, t: float) -> None:
        self.emit("recovery_started", t, step=step)

    def on_protocol_applied(self, outcome, resume_step: int, t: float) -> None:
        self.emit(
            "protocol_applied", t,
            protocol=outcome.protocol,
            kind=outcome.kind,
            failed=list(outcome.failed),
            restored_bytes=outcome.restored_bytes,
            fallback=outcome.fallback,
            resume_step=resume_step,
        )

    def on_recovery_completed(self, resume_step: int, t: float) -> None:
        self.emit("recovery_completed", t, resume_step=resume_step)

    def on_step_completed(self, step: int, t: float) -> None:
        episode = self._episode
        if (
            episode is not None
            and episode["crash_step"] is not None
            and step >= episode["crash_step"]
        ):
            self._close_episode(step, t)
        if (
            self.steps_per_round > 0
            and step > self._max_step_completed
            and (step + 1) % self.steps_per_round == 0
        ):
            self.emit("round_completed", t, round=(step + 1) // self.steps_per_round - 1)
        self._max_step_completed = max(self._max_step_completed, step)

    # ------------------------------------------------------------------
    def _close_episode(self, step: int, t: float) -> None:
        episode = self._episode
        assert episode is not None
        self._episode = None
        detected = episode["detected_t"]
        self.emit(
            "service_restored", t,
            step=step,
            mttr_s=(t - detected) if detected is not None else None,
        )
        self.episode_closed(episode, restored_t=t)

    def episode_closed(self, episode: dict, *, restored_t: float) -> None:
        """Subclass hook: one outage episode fully resolved."""


class TransitionMonitor(ChaosMonitor):
    """The plain monitor: every transition, nothing coalesced."""

    name = "transitions"


class EpisodeMonitor(TransitionMonitor):
    """Transition stream plus one coalesced ``episode`` summary per outage."""

    name = "episodes"

    def episode_closed(self, episode: dict, *, restored_t: float) -> None:
        self.emit(
            "episode", restored_t,
            initiated_t=episode["initiated_t"],
            detected_t=episode["detected_t"],
            restored_t=restored_t,
            victims=episode["victims"],
            kills=episode["kills"],
        )


#: Registry of constructable monitors, by name.
MONITORS: dict[str, type[ChaosMonitor]] = {
    TransitionMonitor.name: TransitionMonitor,
    EpisodeMonitor.name: EpisodeMonitor,
}
register_kind("monitor", MONITORS)


def make_monitor(spec: "str | ChaosMonitor | None", **params: object) -> ChaosMonitor:
    """Resolve a monitor specification into a fresh (or given) instance."""
    return resolve_component(
        "monitor", spec, MONITORS, ChaosMonitor, ChaosError,
        default=TransitionMonitor.name, **params,
    )
