"""``python -m repro.chaos`` — run a long-horizon soak / chaos comparison.

Examples::

    # The default comparison: stencil under Poisson kills, all three
    # countermeasures on identical schedules, markdown table on stdout:
    python -m repro.chaos

    # An hour-equivalent soak of the kv workload under node-level failures
    # on the real-process backend, streaming the event log:
    python -m repro.chaos --workload kv --scenario correlated \\
        --backends proc --rounds 12 --compression 10000 \\
        --events soak.jsonl --output soak.json

    # The CI gate: sim + proc smoke, schema validation, baseline comparison:
    python -m repro.chaos --quick --backends sim,proc \\
        --check-baseline benchmarks/BENCH_chaos_baseline.json

    # What can I put on each axis?
    python -m repro.chaos --list

Exit status 1 when a comparison invariant is violated or the baseline gate
fails.
"""

from __future__ import annotations

import argparse
import json

from repro.chaos.metrics import write_events
from repro.chaos.report import (
    check_against_baseline,
    check_chaos_invariants,
    render_markdown,
    report_json,
)
from repro.chaos.soak import SoakSpec, run_comparison
from repro.cli import (
    add_common_arguments,
    add_report_arguments,
    csv,
    handle_list,
    run_gates,
    trace_run,
    write_outputs,
)
from repro.registry import available

__all__ = ["main"]


def quick_spec() -> SoakSpec:
    """The seconds-long CI soak: small rounds, modest fault load."""
    return SoakSpec(
        workload="stencil",
        scenario="poisson",
        rounds=4,
        interval=6,
        rate_per_round=0.75,
        seed=2026,
        workload_params={"n_local": 16, "iters": 24},
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.chaos",
        description="long-horizon soak engine with accelerated virtual time",
    )
    add_common_arguments(parser, default_seed=2026)
    parser.add_argument("--workload", default="stencil", help="workload to soak")
    parser.add_argument(
        "--scenario", default="poisson",
        help="failure scenario (poisson, correlated, cascade, flaky)",
    )
    parser.add_argument(
        "--backends", type=csv, default=("sim",),
        help="comma-separated backends to compare on identical schedules",
    )
    parser.add_argument(
        "--stores", type=csv, default=("memory",),
        help="comma-separated checkpoint stores to compare",
    )
    parser.add_argument(
        "--countermeasures", type=csv, default=("rollback", "replay", "excise"),
        help="comma-separated countermeasures to compare (default: all three)",
    )
    parser.add_argument(
        "--delivery", default="reliable",
        help=f"delivery mode every cell soaks under "
             f"(registered: {', '.join(available('delivery'))})",
    )
    parser.add_argument(
        "--monitor", default="transitions",
        help="chaos monitor flavor (transitions, episodes)",
    )
    parser.add_argument("--rounds", type=int, default=6, help="workload rounds to soak")
    parser.add_argument(
        "--interval", type=int, default=8, help="checkpoint interval in steps"
    )
    parser.add_argument(
        "--compression", type=float, default=10_000.0,
        help="virtual-time compression factor (default 10000x)",
    )
    parser.add_argument(
        "--rate", type=float, default=0.75, metavar="KILLS_PER_ROUND",
        help="expected kills per workload round (default 0.75)",
    )
    parser.add_argument("--nprocs", type=int, default=8, help="ranks per job")
    parser.add_argument(
        "--procs-per-node", type=int, default=2, help="ranks packed per node"
    )
    parser.add_argument(
        "--executor", choices=("serial", "thread"), default="serial",
        help="how comparison cells are dispatched (report is identical either way)",
    )
    parser.add_argument(
        "--events", default=None, metavar="PATH",
        help="stream the first cell's JSONL event log here",
    )
    add_report_arguments(parser, regression_metric="MTTR/unavailability")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if handle_list(args):
        return 0
    if args.quick:
        base = quick_spec()
    else:
        base = SoakSpec(
            workload=args.workload,
            scenario=args.scenario,
            delivery=args.delivery,
            monitor=args.monitor,
            rounds=args.rounds,
            interval=args.interval,
            compression=args.compression,
            rate_per_round=args.rate,
            seed=args.seed,
            nprocs=args.nprocs,
            procs_per_node=args.procs_per_node,
        )
    with trace_run(args):
        results = run_comparison(
            base,
            countermeasures=args.countermeasures,
            backends=args.backends,
            stores=args.stores,
            executor=args.executor,
        )

    json_text = report_json(results)
    write_outputs(args, render_markdown(results), json_text)
    if args.events:
        write_events(results[0].events, args.events)
        print(f"event log written to {args.events}")
    return run_gates(
        args,
        check_invariants=lambda: check_chaos_invariants(results),
        invariants_message=(
            "invariants hold (replay MTTR < rollback; excise availability > both)"
        ),
        check_baseline=lambda baseline, ratio: check_against_baseline(
            json.loads(json_text), baseline, max_ratio=ratio
        ),
    )


if __name__ == "__main__":
    raise SystemExit(main())
