"""``repro.chaos`` — long-horizon soak engine with accelerated virtual time.

The study engine (:mod:`repro.study`) measures checkpoint *overhead* per
finite run; this package measures *availability* under open-ended load — the
paper's resilience claims restated in the language of site reliability:
MTTF/MTBF/MTTR and the fraction of virtual time the job is serving, degraded
or recovering.  The layers:

* :mod:`repro.chaos.scenarios` — seeded failure-scenario generators that
  generalize :class:`~repro.ft.inject.KillPlan` (independent Poisson kills,
  correlated node failures, cascading multi-rank failures, a flaky-then-dead
  rank), registry-resolved like backends/stores/recovery;
* :mod:`repro.chaos.monitor` — chaos monitors: a
  :class:`~repro.api.session.SessionObserver` plus an injector listener that
  timestamps every ``failure_initiated`` / ``failure_detected`` /
  ``recovery_started`` / ``recovery_completed`` / ``service_restored``
  transition in virtual time and streams them as JSONL;
* :mod:`repro.chaos.soak` — the soak driver: one long session under a
  compressed :class:`~repro.simulator.costs.CostModel` (time fields scaled by
  e.g. 10,000x), a scenario-generated kill plan, and the countermeasure seam
  mapping onto the existing :class:`~repro.ft.protocols.RecoveryProtocol`
  strategies;
* :mod:`repro.chaos.metrics` — the reliability arithmetic: MTTF, MTBF, MTTR,
  availability and state fractions computed from the event log (the log
  round-trips through JSONL losslessly);
* :mod:`repro.chaos.report` — JSON/markdown reports, the cross-config
  comparison invariants and the baseline regression gate behind the
  ``python -m repro.chaos`` CLI (:mod:`repro.chaos.__main__`).

Everything is virtual-time deterministic: a seeded soak produces a
byte-identical event log across re-runs *and* across the ``sim`` and ``proc``
backends, because timestamps come from the cluster's virtual clocks and kill
offsets count the backend-portable completion stream.
"""

from repro.chaos.metrics import ChaosMetrics, compute_metrics, load_events, write_events
from repro.chaos.monitor import ChaosMonitor, EpisodeMonitor, TransitionMonitor, make_monitor
from repro.chaos.report import (
    check_against_baseline,
    check_chaos_invariants,
    render_markdown,
    report_json,
)
from repro.chaos.scenarios import (
    CascadingFailures,
    CorrelatedFailures,
    FlakyRank,
    PoissonKills,
    Scenario,
    make_scenario,
)
from repro.chaos.soak import (
    Countermeasure,
    SoakResult,
    SoakSpec,
    make_countermeasure,
    run_comparison,
    run_soak,
    scaled_cost_model,
)

__all__ = [
    "ChaosMetrics",
    "ChaosMonitor",
    "Countermeasure",
    "EpisodeMonitor",
    "TransitionMonitor",
    "Scenario",
    "PoissonKills",
    "CorrelatedFailures",
    "CascadingFailures",
    "FlakyRank",
    "SoakResult",
    "SoakSpec",
    "check_against_baseline",
    "check_chaos_invariants",
    "compute_metrics",
    "load_events",
    "make_countermeasure",
    "make_monitor",
    "make_scenario",
    "render_markdown",
    "report_json",
    "run_comparison",
    "run_soak",
    "scaled_cost_model",
    "write_events",
]
