"""Reliability arithmetic over chaos event logs: MTTF, MTBF, MTTR, availability.

The metrics computer consumes the event stream a
:class:`~repro.chaos.monitor.ChaosMonitor` produces — either in memory or
round-tripped through the streaming JSONL log (:func:`write_events` /
:func:`load_events`, one canonically-serialized JSON object per line) — and
reduces it to the industry-standard summary:

* **MTTF** (mean time to failure): mean *uptime* preceding each outage;
* **MTBF** (mean time between failures): mean gap between successive outage
  onsets (``MTBF = MTTF + MTTR`` in steady state);
* **MTTR** (mean time to repair): mean ``failure_detected`` →
  ``service_restored`` span — repair ends when the crash-aborted step
  completes again, not when the recovery protocol returns, so re-execution
  (rollback) vs suppressed replay (localized) vs excision (degraded) are
  priced honestly;
* **availability**: ``1 − downtime / total`` where downtime sums every
  ``failure_initiated`` → ``service_restored`` span (an outage still open at
  the end of the soak counts until the end).

All quantities are virtual-time; a seeded soak yields bit-identical metrics
on every backend, executor and machine.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass

from repro.stats import latency_percentiles

__all__ = [
    "ChaosMetrics",
    "compute_metrics",
    "write_events",
    "load_events",
    "event_lines",
]

#: Event types a well-formed chaos log may contain (the JSONL schema's
#: ``type`` enumeration; CI validates logs against this).
EVENT_TYPES = frozenset({
    "soak_started",
    "failure_initiated",
    "failure_skipped",
    "failure_detected",
    "recovery_started",
    "protocol_applied",
    "recovery_completed",
    "service_restored",
    "episode",
    "round_completed",
    "soak_aborted",
    "soak_completed",
})


@dataclass(frozen=True)
class ChaosMetrics:
    """The per-configuration reliability summary of one soak."""

    #: Virtual seconds the soak covered (t of the last event).
    total_s: float
    #: Planned kills that struck at least one live rank.
    kills_fired: int
    #: Planned kills skipped because every victim was already dead/excised.
    kills_skipped: int
    #: Coalesced outage episodes (several near-simultaneous kills may share one).
    episodes: int
    #: Episodes resolved before the soak ended.
    episodes_resolved: int
    #: Completed recovery-protocol runs.
    recoveries: int
    #: Localized recoveries that fell back to a global rollback.
    fallbacks: int
    #: Workload rounds fully completed.
    rounds_completed: int
    #: Mean uptime before each outage, virtual seconds (None without outages).
    mttf_s: float | None
    #: Mean gap between outage onsets (None with fewer than two outages).
    mtbf_s: float | None
    #: Mean detection → service-restored span (None without resolved outages).
    mttr_s: float | None
    #: Serving fraction of virtual time: 1 − downtime / total.
    availability: float | None
    #: Fraction of virtual time spent between detection and restoration.
    recovering_fraction: float | None
    #: Repair-span distribution (nearest-rank, shared estimator with the
    #: serve layer's SLO reports); ``None`` without resolved outages.
    mttr_p50_s: float | None = None
    mttr_p95_s: float | None = None
    mttr_p99_s: float | None = None

    def as_dict(self) -> dict:
        return asdict(self)


def compute_metrics(events: list[dict]) -> ChaosMetrics:
    """Reduce an event stream to its :class:`ChaosMetrics`.

    Accepts the stream of any monitor — the coalesced ``episode`` events of
    an :class:`~repro.chaos.monitor.EpisodeMonitor` are redundant with the
    transitions and are not double-counted.
    """
    total = max((e["t"] for e in events), default=0.0)
    kills_fired = sum(1 for e in events if e["type"] == "failure_initiated")
    kills_skipped = sum(1 for e in events if e["type"] == "failure_skipped")
    recoveries = sum(1 for e in events if e["type"] == "recovery_completed")
    fallbacks = sum(
        1 for e in events if e["type"] == "protocol_applied" and e.get("fallback")
    )
    rounds = sum(1 for e in events if e["type"] == "round_completed")

    # Episode reconstruction from the transition stream: an outage opens at
    # the first failure_initiated/failure_detected while no outage is open,
    # and closes at service_restored.
    episodes: list[tuple[float, float | None, float | None]] = []
    open_init: float | None = None
    open_detect: float | None = None
    for event in events:
        kind = event["type"]
        if kind in ("failure_initiated", "failure_detected") and open_init is None:
            open_init = event["t"]
            open_detect = event["t"] if kind == "failure_detected" else None
        elif kind == "failure_detected" and open_detect is None:
            open_detect = event["t"]
        elif kind == "service_restored" and open_init is not None:
            episodes.append((open_init, open_detect, event["t"]))
            open_init = open_detect = None
    if open_init is not None:  # outage still open when the soak ended
        episodes.append((open_init, open_detect, None))

    resolved = [(i, d, r) for (i, d, r) in episodes if r is not None]
    repair_spans = [r - d for (_, d, r) in resolved if d is not None]
    mttr = sum(repair_spans) / len(repair_spans) if repair_spans else None
    repair_pcts = latency_percentiles(repair_spans)

    onsets = [i for (i, _, _) in episodes]
    gaps = [b - a for a, b in zip(onsets, onsets[1:])]
    mtbf = sum(gaps) / len(gaps) if gaps else None

    uptimes = []
    prev_restored = 0.0
    for init, _, restored in episodes:
        uptimes.append(init - prev_restored)
        prev_restored = restored if restored is not None else total
    mttf = sum(uptimes) / len(uptimes) if uptimes else None

    downtime = sum((r if r is not None else total) - i for (i, _, r) in episodes)
    availability = 1.0 - downtime / total if total > 0 else None
    recovering = (
        sum((r if r is not None else total) - d for (_, d, r) in episodes
            if d is not None) / total
        if total > 0
        else None
    )

    return ChaosMetrics(
        total_s=total,
        kills_fired=kills_fired,
        kills_skipped=kills_skipped,
        episodes=len(episodes),
        episodes_resolved=len(resolved),
        recoveries=recoveries,
        fallbacks=fallbacks,
        rounds_completed=rounds,
        mttf_s=mttf,
        mtbf_s=mtbf,
        mttr_s=mttr,
        availability=availability,
        recovering_fraction=recovering,
        mttr_p50_s=repair_pcts["p50"] if repair_pcts else None,
        mttr_p95_s=repair_pcts["p95"] if repair_pcts else None,
        mttr_p99_s=repair_pcts["p99"] if repair_pcts else None,
    )


# ----------------------------------------------------------------------
# Streaming JSONL log
# ----------------------------------------------------------------------
def event_lines(events: list[dict]):
    """Canonical JSONL lines for ``events`` (sorted keys, no whitespace).

    Canonical serialization is what makes the *log file* — not just the
    in-memory stream — byte-identical across re-runs and backends.
    """
    for event in events:
        yield json.dumps(event, sort_keys=True, separators=(",", ":"))


def write_events(events: list[dict], path: str) -> None:
    """Stream ``events`` to ``path`` as one canonical JSON object per line."""
    with open(path, "w") as fh:
        for line in event_lines(events):
            fh.write(line + "\n")


def load_events(path: str) -> list[dict]:
    """Load a JSONL event log back; the inverse of :func:`write_events`.

    Validates the schema: every line must be a JSON object with a known
    ``type`` and a numeric ``t``.
    """
    from repro.errors import ChaosError

    events = []
    with open(path) as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ChaosError(f"{path}:{lineno}: not valid JSON: {exc}") from exc
            if not isinstance(event, dict):
                raise ChaosError(f"{path}:{lineno}: event must be a JSON object")
            if event.get("type") not in EVENT_TYPES:
                raise ChaosError(
                    f"{path}:{lineno}: unknown event type {event.get('type')!r}"
                )
            if not isinstance(event.get("t"), (int, float)):
                raise ChaosError(f"{path}:{lineno}: event is missing a numeric 't'")
            events.append(event)
    return events
