"""Lightweight counters and gauges for simulation runs.

Protocols, baselines and applications record what they do (operations issued,
bytes logged, checkpoints taken, recoveries performed) in a shared
:class:`MetricsRegistry`.  The benchmark harness turns these into the rows of
the reproduced tables and figures.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterable
from dataclasses import dataclass, field

__all__ = ["MetricsRegistry", "MetricsSnapshot"]


@dataclass
class MetricsSnapshot:
    """An immutable snapshot of the registry, convenient for reporting."""

    totals: dict[str, float] = field(default_factory=dict)
    per_rank: dict[str, dict[int, float]] = field(default_factory=dict)

    def total(self, name: str, default: float = 0.0) -> float:
        """Aggregate value of counter ``name``."""
        return self.totals.get(name, default)

    def rank_value(self, name: str, rank: int, default: float = 0.0) -> float:
        """Per-rank value of counter ``name``."""
        return self.per_rank.get(name, {}).get(rank, default)

    def names(self) -> list[str]:
        """Sorted list of counter names present in the snapshot."""
        return sorted(self.totals)


class MetricsRegistry:
    """Mutable collection of named counters, optionally broken down per rank."""

    def __init__(self) -> None:
        self._totals: dict[str, float] = defaultdict(float)
        self._per_rank: dict[str, dict[int, float]] = defaultdict(lambda: defaultdict(float))

    def incr(self, name: str, value: float = 1.0, rank: int | None = None) -> None:
        """Increment counter ``name`` by ``value`` (optionally for ``rank``)."""
        self._totals[name] += value
        if rank is not None:
            self._per_rank[name][rank] += value

    def set_max(self, name: str, value: float, rank: int | None = None) -> None:
        """Keep the maximum value seen for gauge ``name``."""
        if value > self._totals.get(name, float("-inf")):
            self._totals[name] = value
        if rank is not None:
            current = self._per_rank[name].get(rank, float("-inf"))
            if value > current:
                self._per_rank[name][rank] = value

    def get(self, name: str, default: float = 0.0) -> float:
        """Aggregate value of ``name``."""
        return self._totals.get(name, default)

    def get_rank(self, name: str, rank: int, default: float = 0.0) -> float:
        """Per-rank value of ``name``."""
        return self._per_rank.get(name, {}).get(rank, default)

    def max_over_ranks(self, name: str, ranks: Iterable[int] | None = None) -> float:
        """Maximum per-rank value of ``name`` over ``ranks`` (all known ranks by default)."""
        values = self._per_rank.get(name, {})
        if not values:
            return 0.0
        if ranks is None:
            return max(values.values())
        return max((values.get(r, 0.0) for r in ranks), default=0.0)

    def snapshot(self) -> MetricsSnapshot:
        """Deep-copy the current values into an immutable snapshot."""
        return MetricsSnapshot(
            totals=dict(self._totals),
            per_rank={name: dict(vals) for name, vals in self._per_rank.items()},
        )

    def reset(self) -> None:
        """Clear all counters."""
        self._totals.clear()
        self._per_rank.clear()

    def names(self) -> list[str]:
        """Sorted list of counter names recorded so far."""
        return sorted(self._totals)

    def __contains__(self, name: str) -> bool:
        return name in self._totals
