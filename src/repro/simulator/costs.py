"""Cost model for the simulated cluster.

The model is deliberately simple — a LogGP-flavoured linear model — because the
reproduction only needs *relative* costs to be faithful: remote RMA operations
are far more expensive than local memory traffic, atomics are more expensive
than plain puts, barriers grow logarithmically with the number of processes and
parallel-file-system (PFS) flushes are orders of magnitude slower than
in-memory checkpoints.  Those relations are what produce the shapes of the
paper's Figures 10d, 11a-c and 12.

Default constants are loosely modelled after a Cray XE6 / Gemini network (the
paper's Monte Rosa testbed): ~1.5 us put latency, ~6 GiB/s injection bandwidth
per process, ~2 us atomics, and a PFS delivering ~20 GiB/s aggregate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

__all__ = ["CostModel", "cray_xe6_like", "ethernet_cluster_like"]

GiB = float(1 << 30)
MiB = float(1 << 20)


@dataclass(frozen=True)
class CostModel:
    """Timing parameters of the simulated machine.

    All times are in seconds, bandwidths in bytes/second.
    """

    #: CPU overhead to issue any RMA operation (the "o" in LogGP).
    issue_overhead: float = 0.2e-6
    #: One-way network latency for a remote operation (the "L" in LogGP).
    network_latency: float = 1.5e-6
    #: Per-process injection bandwidth for remote puts/gets.
    network_bandwidth: float = 6.0 * GiB
    #: Additional latency of remote atomic operations (CAS, FAO, accumulate).
    atomic_latency: float = 0.6e-6
    #: Local memory copy bandwidth (used for logging puts locally, tmpfs copies).
    memory_bandwidth: float = 20.0 * GiB
    #: Fixed cost of a local memory operation (allocation, bookkeeping).
    memory_latency: float = 0.05e-6
    #: Base cost of a barrier / gsync.
    barrier_base: float = 2.0e-6
    #: Per-log2(P) factor of a barrier / gsync.
    barrier_per_level: float = 1.0e-6
    #: Cost of a flush towards one target (waiting for remote completion).
    flush_latency: float = 1.2e-6
    #: Cost of acquiring / releasing a remote lock (uncontended).
    lock_latency: float = 2.0e-6
    #: Extra serialization delay per contending process on a lock.
    lock_contention: float = 1.0e-6
    #: Aggregate parallel-file-system bandwidth (shared by all writers).
    pfs_bandwidth: float = 20.0 * GiB
    #: Fixed PFS access latency (metadata, open/close).
    pfs_latency: float = 2.0e-3
    #: Time per floating point operation of the (scalar-equivalent) CPU.
    flop_time: float = 1.0 / 9.2e9
    #: Arbitrary per-element hash cost used by the key-value store app.
    hash_time: float = 8.0e-9
    #: Extra software overhead charged per logged action (bookkeeping).
    log_bookkeeping: float = 0.15e-6
    #: Name for reporting.
    name: str = field(default="cray-xe6-like", compare=False)

    # ------------------------------------------------------------------
    # Derived costs
    # ------------------------------------------------------------------
    def remote_transfer(self, nbytes: int, *, atomic: bool = False) -> float:
        """Time for one remote put/get/accumulate of ``nbytes`` bytes."""
        t = self.issue_overhead + self.network_latency + nbytes / self.network_bandwidth
        if atomic:
            t += self.atomic_latency
        return t

    def local_copy(self, nbytes: int) -> float:
        """Time to copy ``nbytes`` bytes within local memory."""
        return self.memory_latency + nbytes / self.memory_bandwidth

    def barrier(self, nprocs: int) -> float:
        """Time of a dissemination barrier over ``nprocs`` processes."""
        if nprocs <= 1:
            return self.barrier_base
        return self.barrier_base + self.barrier_per_level * math.ceil(math.log2(nprocs))

    def gsync(self, nprocs: int) -> float:
        """Time of a global window synchronization (fence / gsync)."""
        # A gsync both completes outstanding operations and synchronizes,
        # so it is modelled as a flush plus a barrier.
        return self.flush_latency + self.barrier(nprocs)

    def flush(self, pending_ops: int = 0) -> float:
        """Time of a flush completing ``pending_ops`` outstanding operations."""
        return self.flush_latency + 0.1e-6 * pending_ops

    def lock(self, contenders: int = 0) -> float:
        """Time to acquire a remote lock with ``contenders`` other waiters."""
        return self.lock_latency + self.lock_contention * max(0, contenders)

    def unlock(self) -> float:
        """Time to release a remote lock."""
        return self.lock_latency

    def pfs_write(self, nbytes: int, concurrent_writers: int = 1) -> float:
        """Time for one process to write ``nbytes`` to the PFS.

        The aggregate bandwidth is shared among ``concurrent_writers`` so the
        per-writer effective bandwidth shrinks with scale — this is what makes
        SCR-PFS fall behind in Figure 10d.
        """
        writers = max(1, concurrent_writers)
        effective = self.pfs_bandwidth / writers
        return self.pfs_latency + nbytes / effective

    def pfs_read(self, nbytes: int, concurrent_readers: int = 1) -> float:
        """Time for one process to read ``nbytes`` back from the PFS.

        Modelled symmetrically to :meth:`pfs_write` (shared aggregate
        bandwidth, fixed access latency) — restores of disk-spilled
        checkpoints pay this.
        """
        return self.pfs_write(nbytes, concurrent_writers=concurrent_readers)

    def compute(self, flops: float) -> float:
        """Time to execute ``flops`` floating point operations."""
        return flops * self.flop_time

    def with_overrides(self, **kwargs: float) -> "CostModel":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)


def cray_xe6_like() -> CostModel:
    """Cost model resembling the paper's Monte Rosa (Cray XE6, Gemini) testbed."""
    return CostModel(name="cray-xe6-like")


def ethernet_cluster_like() -> CostModel:
    """A slower commodity cluster: 25 us latency, 1 GiB/s per-process bandwidth."""
    return CostModel(
        issue_overhead=1.0e-6,
        network_latency=25.0e-6,
        network_bandwidth=1.0 * GiB,
        atomic_latency=5.0e-6,
        barrier_base=30.0e-6,
        barrier_per_level=10.0e-6,
        flush_latency=20.0e-6,
        lock_latency=30.0e-6,
        lock_contention=15.0e-6,
        pfs_bandwidth=5.0 * GiB,
        pfs_latency=5.0e-3,
        name="ethernet-cluster-like",
    )
