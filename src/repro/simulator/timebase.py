"""Virtual time for the simulated cluster.

Every simulated process owns a :class:`VirtualClock`.  The clock advances when
the process performs work (local computation, issuing RMA operations, copying
checkpoints, waiting for the parallel file system).  Collective operations
synchronize clocks: a barrier sets every participant to the maximum of the
participants' times plus the barrier cost.

The simulation is *deterministic*: given the same program, cost model and
failure schedule, all clock values are bit-identical across runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError

__all__ = ["VirtualClock", "ClockCollection"]


@dataclass
class VirtualClock:
    """A single process's virtual clock, in (simulated) seconds.

    Attributes
    ----------
    now:
        Current virtual time of the owning process.
    busy:
        Accumulated time spent on "useful" application work, used to compute
        overheads (total - busy = protocol + wait time).
    """

    now: float = 0.0
    busy: float = 0.0
    #: Time spent inside fault-tolerance protocol actions (logging, checkpointing).
    protocol: float = 0.0
    #: Time spent blocked in synchronization (barriers, gsyncs, lock waits).
    waiting: float = 0.0
    #: Number of advance() calls, handy for debugging determinism issues.
    ticks: int = field(default=0, repr=False)

    def advance(self, dt: float, *, kind: str = "compute") -> float:
        """Advance the clock by ``dt`` seconds and return the new time.

        Parameters
        ----------
        dt:
            Non-negative duration.
        kind:
            One of ``"compute"``, ``"protocol"``, ``"wait"`` or ``"comm"``.
            ``compute`` counts towards :attr:`busy`; ``protocol`` towards
            :attr:`protocol`; ``wait`` towards :attr:`waiting`.  ``comm`` is
            application communication: it advances time but is not counted as
            protocol overhead.
        """
        if dt < 0:
            raise SimulationError(f"cannot advance clock by negative dt={dt!r}")
        self.now += dt
        self.ticks += 1
        if kind == "compute":
            self.busy += dt
        elif kind == "protocol":
            self.protocol += dt
        elif kind == "wait":
            self.waiting += dt
        elif kind == "comm":
            pass
        else:  # pragma: no cover - defensive
            raise SimulationError(f"unknown clock advance kind {kind!r}")
        return self.now

    def synchronize_to(self, t: float) -> float:
        """Move the clock forward to time ``t`` (no-op if already past it).

        The skipped interval is accounted as waiting time.
        """
        if t > self.now:
            self.waiting += t - self.now
            self.now = t
        return self.now

    def reset(self) -> None:
        """Reset all counters to zero (used when a replacement process spawns)."""
        self.now = 0.0
        self.busy = 0.0
        self.protocol = 0.0
        self.waiting = 0.0
        self.ticks = 0


class ClockCollection:
    """The set of clocks of all processes in a simulated job.

    Provides the collective-time operations used by barriers and gsyncs and
    aggregate statistics used by the benchmark harness.
    """

    def __init__(self, nprocs: int) -> None:
        if nprocs <= 0:
            raise SimulationError("a job needs at least one process")
        self._clocks = [VirtualClock() for _ in range(nprocs)]

    def __len__(self) -> int:
        return len(self._clocks)

    def __getitem__(self, rank: int) -> VirtualClock:
        return self._clocks[rank]

    def clock(self, rank: int) -> VirtualClock:
        """Return the clock of ``rank``."""
        return self._clocks[rank]

    def max_time(self, ranks: list[int] | None = None) -> float:
        """Maximum current time over ``ranks`` (all processes by default)."""
        clocks = self._clocks if ranks is None else [self._clocks[r] for r in ranks]
        return max(c.now for c in clocks)

    def min_time(self, ranks: list[int] | None = None) -> float:
        """Minimum current time over ``ranks`` (all processes by default)."""
        clocks = self._clocks if ranks is None else [self._clocks[r] for r in ranks]
        return min(c.now for c in clocks)

    def synchronize(self, ranks: list[int] | None = None, extra: float = 0.0) -> float:
        """Synchronize ``ranks`` to ``max_time(ranks) + extra`` and return it.

        Models a barrier among the given ranks whose cost is ``extra`` seconds.
        """
        target = self.max_time(ranks) + extra
        clocks = self._clocks if ranks is None else [self._clocks[r] for r in ranks]
        for c in clocks:
            c.synchronize_to(target)
        return target

    def elapsed(self) -> float:
        """Job makespan: maximum time over all processes."""
        return self.max_time()

    def total_busy(self) -> float:
        """Sum of useful-compute time over all processes."""
        return sum(c.busy for c in self._clocks)

    def total_protocol(self) -> float:
        """Sum of protocol-overhead time over all processes."""
        return sum(c.protocol for c in self._clocks)

    def total_waiting(self) -> float:
        """Sum of wait time over all processes."""
        return sum(c.waiting for c in self._clocks)

    def reset_rank(self, rank: int) -> None:
        """Reset the clock of a single rank (replacement process)."""
        self._clocks[rank].reset()
