"""The simulated machine: processes, clocks, placement, failures.

:class:`Cluster` is the substrate on which the RMA runtime
(:mod:`repro.rma.runtime`) and the fault-tolerance protocols are built.  It
knows nothing about RMA semantics — it only provides:

* per-process virtual clocks and a cost model,
* a failure-domain hierarchy with a process placement,
* fail-stop failure injection and detection,
* a metrics registry shared by all layers.

Simulated applications are SPMD: the caller iterates over ranks and issues
work on behalf of each of them; collective operations synchronize the clocks
of the participants.  This keeps the simulation single-threaded and perfectly
deterministic while still exposing per-process timing, which is all the
paper's evaluation needs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ProcessFailedError, SimulationError
from repro.simulator.costs import CostModel, cray_xe6_like
from repro.simulator.failures import FailureInjector, FailureSchedule
from repro.simulator.metrics import MetricsRegistry
from repro.simulator.placement import Placement, block_placement
from repro.simulator.timebase import ClockCollection, VirtualClock
from repro.simulator.topology import FailureDomainHierarchy

__all__ = ["Cluster", "ClusterConfig"]


@dataclass(frozen=True)
class ClusterConfig:
    """Declarative description of a simulated machine and job.

    Attributes
    ----------
    nprocs:
        Number of MPI-like processes in the job.
    procs_per_node:
        Processes packed per compute node (block placement default).
    fdh:
        Failure-domain hierarchy; a flat single-level machine is built when
        omitted.
    cost_model:
        Timing parameters; Cray-XE6-like defaults when omitted.
    """

    nprocs: int
    procs_per_node: int = 32
    fdh: FailureDomainHierarchy | None = None
    cost_model: CostModel | None = None

    def build(
        self,
        failure_schedule: FailureSchedule | None = None,
        placement: Placement | None = None,
    ) -> "Cluster":
        """Instantiate a :class:`Cluster` from this configuration."""
        nodes_needed = -(-self.nprocs // self.procs_per_node)
        fdh = self.fdh or FailureDomainHierarchy.flat(max(1, nodes_needed))
        if placement is None:
            placement = block_placement(fdh, self.nprocs, self.procs_per_node)
        return Cluster(
            nprocs=self.nprocs,
            placement=placement,
            cost_model=self.cost_model or cray_xe6_like(),
            failure_schedule=failure_schedule or FailureSchedule.none(),
        )


class Cluster:
    """A running simulated job on a simulated machine."""

    def __init__(
        self,
        nprocs: int,
        placement: Placement,
        cost_model: CostModel | None = None,
        failure_schedule: FailureSchedule | None = None,
    ) -> None:
        if nprocs <= 0:
            raise SimulationError("nprocs must be positive")
        if placement.nprocs != nprocs:
            raise SimulationError(
                f"placement covers {placement.nprocs} processes but nprocs={nprocs}"
            )
        self.nprocs = nprocs
        self.placement = placement
        self.fdh = placement.fdh
        self.costs = cost_model or cray_xe6_like()
        self.clocks = ClockCollection(nprocs)
        self.metrics = MetricsRegistry()
        self.injector = FailureInjector(failure_schedule or FailureSchedule.none(), placement)
        #: Ranks that crashed and were later replaced; kept for reporting.
        self.recovered_ranks: list[int] = []

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------
    @classmethod
    def simple(
        cls,
        nprocs: int,
        *,
        procs_per_node: int = 32,
        cost_model: CostModel | None = None,
        failure_schedule: FailureSchedule | None = None,
        fdh: FailureDomainHierarchy | None = None,
    ) -> "Cluster":
        """Build a cluster with block placement and sensible defaults."""
        config = ClusterConfig(
            nprocs=nprocs,
            procs_per_node=procs_per_node,
            fdh=fdh,
            cost_model=cost_model,
        )
        return config.build(failure_schedule=failure_schedule)

    # ------------------------------------------------------------------
    # Clock operations
    # ------------------------------------------------------------------
    def clock(self, rank: int) -> VirtualClock:
        """Virtual clock of ``rank``."""
        self._check_rank(rank)
        return self.clocks.clock(rank)

    def now(self, rank: int) -> float:
        """Current virtual time of ``rank``."""
        return self.clock(rank).now

    def advance(self, rank: int, dt: float, *, kind: str = "compute") -> float:
        """Advance the clock of ``rank`` by ``dt`` seconds."""
        return self.clock(rank).advance(dt, kind=kind)

    def elapsed(self) -> float:
        """Job makespan so far (max over all ranks)."""
        return self.clocks.elapsed()

    def barrier(self, ranks: list[int] | None = None, *, cost: float | None = None) -> float:
        """Synchronize clocks of ``ranks`` (all alive ranks by default).

        Returns the post-barrier time.  Failure detection happens here: any
        scheduled failure whose time has passed fires before the barrier
        completes, and if a *participant* has failed the barrier raises
        :class:`ProcessFailedError` naming one failed participant (the caller —
        typically the fault-tolerance layer — handles recovery).
        """
        if ranks is None:
            ranks = self.alive_ranks()
        participants = list(ranks)
        if not participants:
            raise SimulationError("barrier requires at least one participant")
        if cost is None:
            cost = self.costs.barrier(len(participants))
        t = self.clocks.synchronize(participants, extra=cost)
        self.check_failures(t)
        dead = [r for r in participants if self.injector.is_failed(r)]
        if dead:
            raise ProcessFailedError(dead[0], f"barrier observed failed ranks {dead}")
        return t

    # ------------------------------------------------------------------
    # Failures
    # ------------------------------------------------------------------
    def check_failures(self, now: float | None = None) -> list[int]:
        """Fire scheduled failures up to ``now`` and return newly dead ranks."""
        if now is None:
            now = self.elapsed()
        newly = self.injector.newly_failed_ranks(now)
        for rank in newly:
            self.metrics.incr("cluster.failures", rank=rank)
        return newly

    def fail_rank(self, rank: int) -> None:
        """Explicitly fail ``rank`` at its current virtual time.

        Mostly used by tests and examples that want to crash a specific
        process at a specific point of the program rather than relying on a
        time-based :class:`~repro.simulator.failures.FailureSchedule`.
        """
        self._check_rank(rank)
        self.injector._failed_ranks.add(rank)  # noqa: SLF001 - deliberate internal use
        self.metrics.incr("cluster.failures", rank=rank)

    def is_alive(self, rank: int) -> bool:
        """Whether ``rank`` is currently alive."""
        self._check_rank(rank)
        return not self.injector.is_failed(rank)

    def alive_ranks(self) -> list[int]:
        """All currently alive ranks, in rank order."""
        return [r for r in range(self.nprocs) if self.is_alive(r)]

    def failed_ranks(self) -> list[int]:
        """All currently failed (not yet replaced) ranks."""
        return sorted(self.injector.failed_ranks)

    def ensure_alive(self, rank: int) -> None:
        """Raise :class:`ProcessFailedError` if ``rank`` is dead."""
        if not self.is_alive(rank):
            raise ProcessFailedError(rank)

    def respawn_rank(self, rank: int, *, reset_clock: bool = False) -> None:
        """Replace a failed rank with a fresh process ``p_new``.

        The paper assumes an underlying batch system that provides a new
        process in place of the failed one (§4.3).  The replacement inherits
        the rank number; its clock either continues from the current job time
        (default — the replacement starts "now") or is reset to zero.
        """
        self._check_rank(rank)
        if self.is_alive(rank):
            raise SimulationError(f"rank {rank} is alive; nothing to respawn")
        self.injector.revive(rank)
        self.recovered_ranks.append(rank)
        if reset_clock:
            self.clocks.reset_rank(rank)
        else:
            # The new process becomes available at the current makespan.
            self.clock(rank).synchronize_to(self.elapsed())
        self.metrics.incr("cluster.respawns", rank=rank)

    # ------------------------------------------------------------------
    # Topology helpers
    # ------------------------------------------------------------------
    def node_of(self, rank: int) -> int:
        """Compute-node index of ``rank``."""
        return self.placement.node(rank)

    def same_node(self, rank_a: int, rank_b: int) -> bool:
        """Whether two ranks share a compute node."""
        return self.node_of(rank_a) == self.node_of(rank_b)

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.nprocs:
            raise SimulationError(f"rank {rank} out of range 0..{self.nprocs - 1}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Cluster(nprocs={self.nprocs}, nodes={self.fdh.num_nodes}, "
            f"costs={self.costs.name!r}, failed={len(self.failed_ranks())})"
        )
