"""Virtual-time cluster simulator (substrate for the RMA runtime).

This package provides everything below the RMA programming model:

* :mod:`~repro.simulator.timebase` — per-process virtual clocks,
* :mod:`~repro.simulator.costs` — LogGP-style cost model of the machine,
* :mod:`~repro.simulator.topology` — failure-domain hierarchies (FDH, §5),
* :mod:`~repro.simulator.placement` — process-to-node mappings (the paper's M),
* :mod:`~repro.simulator.failures` — fail-stop failure injection,
* :mod:`~repro.simulator.metrics` — counters shared by all layers,
* :mod:`~repro.simulator.cluster` — the simulated job tying it all together.
"""

from repro.simulator.cluster import Cluster, ClusterConfig
from repro.simulator.costs import CostModel, cray_xe6_like, ethernet_cluster_like
from repro.simulator.failures import (
    FailureEvent,
    FailureInjector,
    FailureSchedule,
    exponential_schedule,
)
from repro.simulator.metrics import MetricsRegistry, MetricsSnapshot
from repro.simulator.placement import (
    Placement,
    block_placement,
    custom_placement,
    round_robin_placement,
)
from repro.simulator.timebase import ClockCollection, VirtualClock
from repro.simulator.topology import FailureDomainHierarchy, FDElement

__all__ = [
    "Cluster",
    "ClusterConfig",
    "CostModel",
    "cray_xe6_like",
    "ethernet_cluster_like",
    "FailureEvent",
    "FailureInjector",
    "FailureSchedule",
    "exponential_schedule",
    "MetricsRegistry",
    "MetricsSnapshot",
    "Placement",
    "block_placement",
    "custom_placement",
    "round_robin_placement",
    "ClockCollection",
    "VirtualClock",
    "FailureDomainHierarchy",
    "FDElement",
]
