"""Failure-domain hierarchies (FDH) — hierarchical hardware layouts.

Section 5 of the paper extends the flat fault-tolerance model with a *failure
domain hierarchy*: hardware elements (nodes, power supply units, switch
enclosures, racks, ...) form a tree; a failure of an element at level ``j``
takes down every node (and thus every process) underneath it.

Levels are numbered **from 1 at the bottom** (the smallest failure domain, a
compute node) **to h at the top** (e.g. a rack or cabinet), matching the
paper's notation ``H_{i,j}`` = element ``i`` of level ``j`` and ``H_j`` =
number of elements at level ``j``.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field

from repro.errors import TopologyError

__all__ = ["FDElement", "FailureDomainHierarchy"]


@dataclass(eq=False)
class FDElement:
    """One element of the failure-domain hierarchy (a node, PSU, rack, ...)."""

    level: int
    index: int
    kind: str
    parent: "FDElement | None" = None
    children: list["FDElement"] = field(default_factory=list)

    @property
    def name(self) -> str:
        """Human-readable identifier, e.g. ``"psu[3]"``."""
        return f"{self.kind}[{self.index}]"

    def ancestor(self, level: int) -> "FDElement":
        """Return the enclosing element at ``level`` (may be ``self``)."""
        if level < self.level:
            raise TopologyError(
                f"{self.name} is at level {self.level}; cannot descend to level {level}"
            )
        elem: FDElement = self
        while elem.level < level:
            if elem.parent is None:
                raise TopologyError(f"{self.name} has no ancestor at level {level}")
            elem = elem.parent
        return elem

    def leaves(self) -> Iterator["FDElement"]:
        """Iterate over all level-1 descendants (the nodes under this element)."""
        if self.level == 1:
            yield self
            return
        for child in self.children:
            yield from child.leaves()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FDElement({self.name}, level={self.level})"


class FailureDomainHierarchy:
    """A complete failure-domain hierarchy.

    Parameters
    ----------
    level_names:
        Names of the levels from bottom to top, e.g.
        ``("node", "psu", "switch", "rack")``.  ``level_names[0]`` is level 1.
    branching:
        ``branching[j]`` is the number of level-``j+1`` children per element of
        level ``j+2`` — i.e. the fan-out *below* each element of every level
        above the bottom.  Its length must be ``len(level_names) - 1``.  The
        hierarchy is built top-down starting from ``top_count`` elements of the
        highest level.
    top_count:
        Number of elements at the top level.

    Example
    -------
    ``FailureDomainHierarchy(("node", "blade", "chassis", "rack"), (4, 8, 3), 12)``
    builds 12 racks x 3 chassis x 8 blades x 4 nodes = 1152 nodes.
    """

    def __init__(
        self,
        level_names: Iterable[str],
        branching: Iterable[int],
        top_count: int,
    ) -> None:
        self.level_names: tuple[str, ...] = tuple(level_names)
        self.branching: tuple[int, ...] = tuple(int(b) for b in branching)
        if len(self.level_names) < 1:
            raise TopologyError("a hierarchy needs at least one level")
        if len(self.branching) != len(self.level_names) - 1:
            raise TopologyError(
                "branching must have exactly len(level_names) - 1 entries "
                f"(got {len(self.branching)} for {len(self.level_names)} levels)"
            )
        if top_count <= 0 or any(b <= 0 for b in self.branching):
            raise TopologyError("element counts and branching factors must be positive")

        self.height: int = len(self.level_names)
        # _levels[j-1] is the list of elements at level j, ordered by index.
        self._levels: list[list[FDElement]] = [[] for _ in range(self.height)]
        top_level = self.height
        for i in range(top_count):
            elem = FDElement(level=top_level, index=i, kind=self.level_names[top_level - 1])
            self._levels[top_level - 1].append(elem)
            self._populate_children(elem)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _populate_children(self, parent: FDElement) -> None:
        if parent.level == 1:
            return
        child_level = parent.level - 1
        fanout = self.branching[child_level - 1]
        for _ in range(fanout):
            child = FDElement(
                level=child_level,
                index=len(self._levels[child_level - 1]),
                kind=self.level_names[child_level - 1],
                parent=parent,
            )
            parent.children.append(child)
            self._levels[child_level - 1].append(child)
            self._populate_children(child)

    @classmethod
    def flat(cls, num_nodes: int, kind: str = "node") -> "FailureDomainHierarchy":
        """A single-level hierarchy: ``num_nodes`` independent nodes."""
        return cls((kind,), (), num_nodes)

    @classmethod
    def uniform(
        cls,
        level_names: Iterable[str],
        counts: Iterable[int],
    ) -> "FailureDomainHierarchy":
        """Build from absolute element counts per level (bottom to top).

        ``counts`` must be divisible level over level, e.g. ``(1408, 176, 88, 44)``
        gives 44 racks each holding 2 switches, each holding 2 PSUs, each
        holding 8 nodes.
        """
        names = tuple(level_names)
        nums = tuple(int(c) for c in counts)
        if len(names) != len(nums):
            raise TopologyError("level_names and counts must have the same length")
        if any(c <= 0 for c in nums):
            raise TopologyError("element counts must be positive")
        branching = []
        for lower, upper in zip(nums[:-1], nums[1:]):
            if lower % upper != 0:
                raise TopologyError(
                    f"count {lower} is not divisible by the count {upper} of the level above"
                )
            branching.append(lower // upper)
        return cls(names, branching, nums[-1])

    # ------------------------------------------------------------------
    # Queries (paper notation: H_j, H_{i,j})
    # ------------------------------------------------------------------
    def H(self, level: int) -> int:
        """Number of elements at ``level`` (the paper's ``H_j``)."""
        self._check_level(level)
        return len(self._levels[level - 1])

    def element(self, level: int, index: int) -> FDElement:
        """The paper's ``H_{i,j}``: element ``index`` of ``level``."""
        self._check_level(level)
        try:
            return self._levels[level - 1][index]
        except IndexError as exc:
            raise TopologyError(f"no element {index} at level {level}") from exc

    def elements(self, level: int) -> list[FDElement]:
        """All elements of ``level``, ordered by index."""
        self._check_level(level)
        return list(self._levels[level - 1])

    def level_name(self, level: int) -> str:
        """Name of ``level`` (e.g. ``"psu"``)."""
        self._check_level(level)
        return self.level_names[level - 1]

    def level_of(self, kind: str) -> int:
        """Inverse of :meth:`level_name`."""
        try:
            return self.level_names.index(kind) + 1
        except ValueError as exc:
            raise TopologyError(f"unknown level kind {kind!r}") from exc

    @property
    def num_nodes(self) -> int:
        """Number of level-1 elements (compute nodes)."""
        return self.H(1)

    def node(self, index: int) -> FDElement:
        """Compute node ``index``."""
        return self.element(1, index)

    def ancestor_index(self, node_index: int, level: int) -> int:
        """Index of the level-``level`` element containing node ``node_index``."""
        return self.node(node_index).ancestor(level).index

    def nodes_under(self, level: int, index: int) -> list[int]:
        """Indices of all nodes contained in element ``index`` of ``level``."""
        return [leaf.index for leaf in self.element(level, index).leaves()]

    def total_elements(self) -> int:
        """Total number of elements across all levels (|H| in the paper)."""
        return sum(len(lvl) for lvl in self._levels)

    def describe(self) -> str:
        """A short multi-line description of the hierarchy."""
        lines = [f"FailureDomainHierarchy (h={self.height})"]
        for level in range(self.height, 0, -1):
            lines.append(f"  level {level}: {self.H(level):6d} x {self.level_name(level)}")
        return "\n".join(lines)

    def _check_level(self, level: int) -> None:
        if not 1 <= level <= self.height:
            raise TopologyError(
                f"level {level} out of range 1..{self.height} for this hierarchy"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        counts = "x".join(str(self.H(lvl)) for lvl in range(1, self.height + 1))
        return f"FailureDomainHierarchy({'/'.join(self.level_names)}: {counts})"
