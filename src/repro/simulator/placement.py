"""Process-to-hardware mappings (the paper's mapping function M).

The paper models process placement as a function ``M(p, k)`` that returns the
failure-domain element of level ``k`` on which process ``p`` runs (§5).  The
placement only needs to fix the *node* of every process — the elements at
higher levels follow from the hierarchy.

Two standard strategies are provided:

* :func:`block_placement` — ranks fill node 0, then node 1, ... (the usual
  MPI default of packing by node), and
* :func:`round_robin_placement` — rank ``i`` runs on node ``i mod num_nodes``
  (cyclic placement, which spreads consecutive ranks across failure domains).

T-awareness of *groups* (Eq. 6 of the paper) is a property of the group
construction, implemented in :mod:`repro.ft.groups` on top of a placement.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro.errors import PlacementError
from repro.simulator.topology import FailureDomainHierarchy

__all__ = [
    "Placement",
    "block_placement",
    "round_robin_placement",
    "custom_placement",
]


@dataclass(frozen=True)
class Placement:
    """An immutable mapping from ranks to compute nodes of an FDH."""

    fdh: FailureDomainHierarchy
    node_of_rank: tuple[int, ...]
    strategy: str = "custom"

    def __post_init__(self) -> None:
        num_nodes = self.fdh.num_nodes
        for rank, node in enumerate(self.node_of_rank):
            if not 0 <= node < num_nodes:
                raise PlacementError(
                    f"rank {rank} mapped to node {node}, but the machine has "
                    f"only {num_nodes} nodes"
                )

    @property
    def nprocs(self) -> int:
        """Number of placed processes."""
        return len(self.node_of_rank)

    def node(self, rank: int) -> int:
        """Node index hosting ``rank``."""
        self._check_rank(rank)
        return self.node_of_rank[rank]

    def element(self, rank: int, level: int) -> int:
        """The paper's ``M(p, k)``: index of the level-``level`` element of ``rank``."""
        return self.fdh.ancestor_index(self.node(rank), level)

    def ranks_on(self, level: int, index: int) -> list[int]:
        """All ranks running inside element ``index`` of ``level``."""
        return [
            rank
            for rank in range(self.nprocs)
            if self.element(rank, level) == index
        ]

    def ranks_per_node(self) -> dict[int, list[int]]:
        """Mapping node index -> ranks placed on it (only non-empty nodes)."""
        out: dict[int, list[int]] = {}
        for rank, node in enumerate(self.node_of_rank):
            out.setdefault(node, []).append(rank)
        return out

    def co_located(self, rank_a: int, rank_b: int, level: int) -> bool:
        """Whether two ranks share the same failure domain at ``level``."""
        return self.element(rank_a, level) == self.element(rank_b, level)

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.nprocs:
            raise PlacementError(f"rank {rank} out of range 0..{self.nprocs - 1}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Placement({self.strategy}, nprocs={self.nprocs}, nodes={self.fdh.num_nodes})"


def block_placement(
    fdh: FailureDomainHierarchy,
    nprocs: int,
    procs_per_node: int | None = None,
) -> Placement:
    """Pack ranks onto nodes in blocks of ``procs_per_node``.

    If ``procs_per_node`` is not given it is chosen as the smallest value that
    fits all processes onto the machine.
    """
    num_nodes = fdh.num_nodes
    if nprocs <= 0:
        raise PlacementError("nprocs must be positive")
    if procs_per_node is None:
        procs_per_node = -(-nprocs // num_nodes)  # ceil division
    if procs_per_node <= 0:
        raise PlacementError("procs_per_node must be positive")
    if procs_per_node * num_nodes < nprocs:
        raise PlacementError(
            f"{nprocs} processes do not fit on {num_nodes} nodes "
            f"with {procs_per_node} processes per node"
        )
    mapping = tuple(rank // procs_per_node for rank in range(nprocs))
    return Placement(fdh=fdh, node_of_rank=mapping, strategy="block")


def round_robin_placement(fdh: FailureDomainHierarchy, nprocs: int) -> Placement:
    """Place rank ``i`` on node ``i mod num_nodes`` (cyclic placement)."""
    if nprocs <= 0:
        raise PlacementError("nprocs must be positive")
    num_nodes = fdh.num_nodes
    mapping = tuple(rank % num_nodes for rank in range(nprocs))
    return Placement(fdh=fdh, node_of_rank=mapping, strategy="round-robin")


def custom_placement(
    fdh: FailureDomainHierarchy,
    node_of_rank: Sequence[int] | Callable[[int], int],
    nprocs: int | None = None,
) -> Placement:
    """Build a placement from an explicit sequence or a callable rank->node."""
    if callable(node_of_rank):
        if nprocs is None:
            raise PlacementError("nprocs is required when node_of_rank is a callable")
        mapping = tuple(int(node_of_rank(rank)) for rank in range(nprocs))
    else:
        mapping = tuple(int(n) for n in node_of_rank)
        if nprocs is not None and nprocs != len(mapping):
            raise PlacementError(
                f"nprocs={nprocs} does not match the length {len(mapping)} of node_of_rank"
            )
    return Placement(fdh=fdh, node_of_rank=mapping, strategy="custom")
