"""Fail-stop failure injection.

The paper assumes *fail-stop* faults: a process disappears nondeterministically
but behaves correctly until it does (§2.4).  In the simulator a failure is an
event ``(time, level, element_index)`` — when the virtual time of the job
passes ``time``, every process placed under that failure-domain element is
marked dead.  A process-level failure is expressed as a level-0 event carrying
the rank directly.

Failure schedules can be written by hand (deterministic injection for tests
and examples) or drawn from per-level exponential rates (for resilience
studies), mirroring the exponential distributions the paper fits to the
TSUBAME2.0 failure history (§7.1).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from repro.errors import FailureScheduleError
from repro.simulator.placement import Placement
from repro.simulator.rng import make_rng

__all__ = ["FailureEvent", "FailureSchedule", "FailureInjector", "exponential_schedule"]

#: Pseudo-level used for failures that target a single process (rank) directly.
PROCESS_LEVEL = 0


@dataclass(frozen=True, order=True)
class FailureEvent:
    """One fail-stop event.

    Attributes
    ----------
    time:
        Virtual time (seconds) at which the element fails.
    level:
        FDH level of the failing element; ``0`` means a single process.
    index:
        Element index at that level, or the rank if ``level == 0``.
    """

    time: float
    level: int
    index: int

    def describe(self) -> str:
        """Human-readable one-liner."""
        target = f"rank {self.index}" if self.level == PROCESS_LEVEL else (
            f"level-{self.level} element {self.index}"
        )
        return f"t={self.time:.6f}s: failure of {target}"


@dataclass
class FailureSchedule:
    """An ordered collection of :class:`FailureEvent`."""

    events: list[FailureEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        for ev in self.events:
            self._validate(ev)
        self.events.sort()

    @staticmethod
    def _validate(event: FailureEvent) -> None:
        if event.time < 0:
            raise FailureScheduleError(f"failure time must be non-negative: {event}")
        if event.level < 0 or event.index < 0:
            raise FailureScheduleError(f"failure level/index must be non-negative: {event}")

    # Convenience constructors -------------------------------------------------
    @classmethod
    def none(cls) -> "FailureSchedule":
        """A schedule with no failures (fault-free runs)."""
        return cls([])

    @classmethod
    def single_rank(cls, rank: int, time: float) -> "FailureSchedule":
        """Fail a single process at ``time``."""
        return cls([FailureEvent(time=time, level=PROCESS_LEVEL, index=rank)])

    @classmethod
    def ranks(cls, failures: dict[int, float]) -> "FailureSchedule":
        """Fail each rank of ``failures`` at its associated time."""
        return cls(
            [FailureEvent(time=t, level=PROCESS_LEVEL, index=r) for r, t in failures.items()]
        )

    @classmethod
    def element(cls, level: int, index: int, time: float) -> "FailureSchedule":
        """Fail a whole failure-domain element (node, PSU, rack, ...)."""
        if level <= 0:
            raise FailureScheduleError("element failures require level >= 1")
        return cls([FailureEvent(time=time, level=level, index=index)])

    # Mutation ----------------------------------------------------------------
    def add(self, event: FailureEvent) -> None:
        """Insert one more event, keeping the schedule sorted."""
        self._validate(event)
        heapq.heappush(self.events, event)
        self.events.sort()

    def merged_with(self, other: "FailureSchedule") -> "FailureSchedule":
        """Return a new schedule containing the events of both schedules."""
        return FailureSchedule(list(self.events) + list(other.events))

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)


def exponential_schedule(
    *,
    horizon: float,
    rates_per_level: dict[int, float],
    max_index_per_level: dict[int, int],
    seed: int | np.random.Generator | np.random.SeedSequence = 0,
) -> FailureSchedule:
    """Draw a failure schedule from per-level Poisson processes.

    Parameters
    ----------
    horizon:
        Length of the simulated period in seconds.
    rates_per_level:
        ``{level: failures_per_second}``; levels not listed never fail.
    max_index_per_level:
        ``{level: H_j}`` — how many elements exist at each level; failing
        elements are drawn uniformly among them.
    seed:
        Seed, seed sequence or generator for reproducibility.  Identical
        seeds yield identical schedules, event for event — the property the
        Monte-Carlo campaign's trial seeding and the determinism tests rely
        on.
    """
    if horizon <= 0:
        raise FailureScheduleError("horizon must be positive")
    rng = make_rng(seed)
    events: list[FailureEvent] = []
    for level, rate in sorted(rates_per_level.items()):
        if rate < 0:
            raise FailureScheduleError(f"rate for level {level} must be non-negative")
        if rate == 0:
            continue
        if level not in max_index_per_level:
            raise FailureScheduleError(f"missing element count for level {level}")
        n_elems = max_index_per_level[level]
        t = 0.0
        while True:
            t += rng.exponential(1.0 / rate)
            if t > horizon:
                break
            idx = int(rng.integers(0, n_elems))
            events.append(FailureEvent(time=t, level=level, index=idx))
    return FailureSchedule(events)


class FailureInjector:
    """Applies a :class:`FailureSchedule` to a placed job.

    The cluster driver polls :meth:`newly_failed_ranks` at synchronization
    points (barriers, gsyncs); this models the fact that in RMA a failure is
    only *observed* when some process tries to synchronize with or access the
    failed process.
    """

    def __init__(self, schedule: FailureSchedule, placement: Placement) -> None:
        self.schedule = schedule
        self.placement = placement
        self._pending: list[FailureEvent] = sorted(schedule.events)
        self._failed_ranks: set[int] = set()
        self._failed_elements: list[FailureEvent] = []

    @property
    def failed_ranks(self) -> frozenset[int]:
        """Ranks that have failed so far (and not been replaced)."""
        return frozenset(self._failed_ranks)

    @property
    def triggered_events(self) -> list[FailureEvent]:
        """Events whose time has already passed."""
        return list(self._failed_elements)

    def ranks_of_event(self, event: FailureEvent) -> list[int]:
        """Which ranks die when ``event`` fires."""
        if event.level == PROCESS_LEVEL:
            if event.index >= self.placement.nprocs:
                raise FailureScheduleError(
                    f"failure targets rank {event.index} but the job has only "
                    f"{self.placement.nprocs} processes"
                )
            return [event.index]
        return self.placement.ranks_on(event.level, event.index)

    def newly_failed_ranks(self, now: float) -> list[int]:
        """Fire all events with ``time <= now``; return ranks that just died.

        Ranks that already failed earlier are not reported again.
        """
        newly: list[int] = []
        while self._pending and self._pending[0].time <= now:
            event = self._pending.pop(0)
            self._failed_elements.append(event)
            for rank in self.ranks_of_event(event):
                if rank not in self._failed_ranks:
                    self._failed_ranks.add(rank)
                    newly.append(rank)
        return newly

    def is_failed(self, rank: int) -> bool:
        """Whether ``rank`` is currently marked dead."""
        return rank in self._failed_ranks

    def revive(self, rank: int) -> None:
        """Mark ``rank`` alive again (a replacement process has been spawned)."""
        self._failed_ranks.discard(rank)

    def has_pending(self) -> bool:
        """Whether future failure events remain in the schedule."""
        return bool(self._pending)

    def next_failure_time(self) -> float | None:
        """Time of the next scheduled failure, or ``None``."""
        return self._pending[0].time if self._pending else None
