"""Deterministic random-number helpers.

Every stochastic component of the simulator (failure schedules, synthetic
failure histories, key-value-store workloads) takes an explicit seed and draws
from its own :class:`numpy.random.Generator`, so that simulations are
reproducible and independent components do not perturb each other's streams.
"""

from __future__ import annotations

import numpy as np

__all__ = ["make_rng", "spawn_rngs"]


def make_rng(
    seed: "int | np.random.Generator | np.random.SeedSequence | None",
) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``seed`` may already be a generator (returned unchanged), an integer, a
    :class:`numpy.random.SeedSequence` (how the study campaign derives
    independent per-trial streams from structured entropy), or ``None``
    (fresh OS entropy — only useful for exploratory runs, never used by the
    benchmark harness).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: int, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent generators from one integer seed.

    Used to give each simulated process its own stream (e.g. the random keys
    and think times of the key-value-store benchmark) without any correlation
    between processes.
    """
    seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(count)]
