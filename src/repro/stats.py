"""Shared order-statistics helpers for latency and repair-time reporting.

Percentile edge cases are easy to get wrong in three different places, so
they are fixed once, here: an **empty** sample set has no percentiles and
yields ``None`` (never ``NaN``, which would poison JSON reports and baseline
comparisons), and a **single-sample** set yields that sample for every
percentile.  The estimator is *nearest-rank* (no interpolation): it returns
an actually-observed value, is exact for single samples, and — unlike
interpolating estimators — introduces no floating-point arithmetic whose
rounding could differ across numpy versions, which matters because serve and
chaos reports are gated byte-identical across re-runs and backends.
"""

from __future__ import annotations

import math
from collections.abc import Iterable

__all__ = ["percentile", "latency_percentiles"]

#: The quantiles every latency/repair summary reports, as (key, percent).
STANDARD_PERCENTILES: tuple[tuple[str, float], ...] = (
    ("p50", 50.0),
    ("p95", 95.0),
    ("p99", 99.0),
)


def percentile(sorted_samples: list[float], q: float) -> float:
    """Nearest-rank percentile ``q`` (0 < q <= 100) of pre-sorted samples.

    The nearest-rank definition: the smallest value such that at least
    ``q`` percent of the samples are <= it — ``sorted_samples[ceil(q/100*n)-1]``.
    Raises :class:`ValueError` on an empty sample list or a ``q`` outside
    ``(0, 100]``; callers wanting ``None``-for-empty semantics use
    :func:`latency_percentiles`.
    """
    if not sorted_samples:
        raise ValueError("percentile of an empty sample set is undefined")
    if not 0.0 < q <= 100.0:
        raise ValueError(f"percentile must be in (0, 100], got {q}")
    rank = math.ceil(q / 100.0 * len(sorted_samples))
    return sorted_samples[max(rank, 1) - 1]


def latency_percentiles(
    samples: Iterable[float],
    quantiles: tuple[tuple[str, float], ...] = STANDARD_PERCENTILES,
) -> dict[str, float] | None:
    """p50/p95/p99 (by default) of ``samples`` with defined edge behavior.

    * empty samples → ``None`` (a window with no completed requests has no
      latency distribution — reports render it as "—", gates skip it);
    * one sample → that value for every percentile;
    * never ``NaN``: a NaN sample is rejected loudly rather than silently
      ordered (NaN comparisons would make the sort order undefined).
    """
    xs = sorted(float(x) for x in samples)
    if not xs:
        return None
    if any(math.isnan(x) for x in xs):
        raise ValueError("latency samples must not contain NaN")
    return {key: percentile(xs, q) for key, q in quantiles}
