"""The RMA backend protocol: who owns window storage and executes operations.

The runtime (:class:`~repro.rma.runtime.RmaRuntime`) is a *coordinator*: it
stamps actions with the recovery counters, runs the interceptor chain, tracks
epochs and charges virtual-time costs — but it never touches window memory
itself.  All storage and data movement belong to a :class:`Backend`:

* :meth:`Backend.issue` receives every communication action (wrapped in an
  :class:`~repro.rma.handles.OpHandle`) the moment it is issued;
* :meth:`Backend.complete` / :meth:`Backend.complete_rank` are called by the
  runtime's completion points (flush, unlock, flush_all, gsync, and the
  blocking wrappers) and must return the completed handles in issue order —
  with every effect applied to the window buffers by the time they return.

A backend may execute ops eagerly at issue (:class:`~repro.backends.sim.SimBackend`,
the historical behavior) or queue them per ``(src, trg)`` epoch and apply them
in batches at completion (:class:`~repro.backends.vector.VectorBackend`); the
model permits both because actions within one epoch are unordered (§2.2).
Whatever the strategy, the *completion stream* — the issue-ordered sequence of
handles returned from the completion hooks — must be identical across
backends, which is what keeps fault-tolerance interceptors (who observe that
stream) and recorded traces bit-identical.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.errors import BackendError, RmaError
from repro.rma.actions import CommAction, OpKind, apply_accumulate
from repro.rma.handles import OpHandle
from repro.rma.window import Window, WindowRegistry

__all__ = ["Backend", "apply_action"]


def apply_action(action: CommAction, win: Window) -> None:
    """Execute one communication action against ``win``, in place.

    Get-like actions deposit the fetched values into ``action.data`` (the
    handle exposes them after completion); put-like actions mutate the
    target's buffer.  Before a get-like atomic overwrites ``data`` with the
    fetched previous values, the issued operand is preserved in
    ``action.operand`` so the fault-tolerance log can later re-apply the
    action to a restored window (log-based recovery, §7).  Shared by all
    backends so the per-op semantics cannot drift between them.
    """
    if action.kind.is_put_like and action.operand is None:
        action.operand = action.data
    if action.kind is OpKind.PUT:
        win.write(action.trg, action.offset, action.data)
    elif action.kind is OpKind.GET:
        action.data = win.read(action.trg, action.offset, action.count)
    elif action.kind is OpKind.COMPARE_AND_SWAP:
        view = win.view(action.trg, action.offset, action.count)
        previous = view.copy()
        if np.array_equal(previous, action.compare):
            view[...] = action.data
        action.data = previous
    elif action.kind.is_atomic:
        view = win.view(action.trg, action.offset, action.count)
        previous = apply_accumulate(view, action.data, action.op)
        if action.kind.is_get_like:
            action.data = previous
    else:  # pragma: no cover - defensive
        raise RmaError(f"unknown operation kind {action.kind!r}")


class Backend(abc.ABC):
    """Owner of window storage and operation execution for one runtime."""

    #: Registry name of the backend ("sim", "vector", ...).
    name: str = "abstract"

    def __init__(self) -> None:
        self.windows = WindowRegistry()
        self.nprocs = 0

    # ------------------------------------------------------------------
    # Lifecycle and window storage
    # ------------------------------------------------------------------
    def bind(self, nprocs: int) -> None:
        """Attach the backend to a job of ``nprocs`` ranks.

        A backend instance belongs to exactly one runtime: it owns that job's
        window storage and pending queues, so rebinding would leak one job's
        state into another.  Construct a fresh instance per job instead.
        """
        if self.nprocs:
            raise BackendError(
                f"backend {self.name!r} is already bound to a {self.nprocs}-rank "
                f"job; backends hold job state (windows, queues) and cannot be "
                f"reused — construct a fresh instance per job"
            )
        self.nprocs = nprocs

    def create_window(self, name: str, size: int, dtype: np.dtype) -> Window:
        """Allocate one window (a buffer per rank) in backend-owned storage."""
        return self.windows.create(name, size, dtype, self.nprocs)

    def invalidate_rank(self, rank: int) -> None:
        """A rank failed: its buffers are lost in every window."""
        self.windows.invalidate_rank(rank)

    def set_capture_undo(self, enabled: bool) -> None:
        """Ask the backend to make :meth:`discard_pending` effect-free.

        Recovery protocols that keep survivor state (localized replay,
        degraded continuation) require that discarding uncommitted operations
        leaves window memory exactly as if they were never issued.  A backend
        that defers all effects to completion time already satisfies this and
        may ignore the request; an eager backend must capture undo data at
        issue time while the flag is set.
        """

    def reallocate_rank(self, rank: int) -> None:
        """A replacement process arrived: give it fresh buffers everywhere."""
        self.windows.reallocate_rank(rank)

    # ------------------------------------------------------------------
    # Real-failure plumbing (no-ops for in-process backends)
    # ------------------------------------------------------------------
    def poll_failures(self) -> list[int]:
        """Ranks whose *execution vehicle* died since the last poll.

        In-process backends have no vehicle to lose — failures only ever
        enter through the cluster's injector — so the default reports
        nothing.  A backend that runs ranks as real OS processes reports
        each dead worker exactly once per incarnation here; the runtime
        folds the report into :meth:`~repro.rma.runtime.RmaRuntime.
        observe_failures`, so real deaths surface through the *same*
        fail-stop path (window invalidation, interceptor notification,
        :class:`~repro.errors.ProcessFailedError`) as simulated ones.
        """
        return []

    def respawn_rank(self, rank: int) -> None:
        """Provide a fresh execution vehicle for a respawned ``rank``.

        Called by the runtime's respawn notification (the recovery path) —
        *not* by :meth:`reallocate_rank`, which also serves excised ranks
        that must never get a new process.
        """

    def close(self) -> None:
        """Release backend-owned resources (processes, shared memory).

        Called by :meth:`~repro.rma.runtime.RmaRuntime.finalize`.  Must be
        idempotent.  Window buffers must stay readable afterwards (results
        are often gathered after a session closed), so a backend with
        external storage swaps in private copies before releasing it.
        """

    def describe_rank(self, rank: int) -> str:
        """One-line execution-vehicle state of ``rank`` for diagnostics."""
        return "in-process"

    # ------------------------------------------------------------------
    # Operation execution
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def issue(self, handle: OpHandle, win: Window) -> None:
        """Accept one issued operation (apply eagerly or queue it)."""

    @abc.abstractmethod
    def complete(self, src: int, trg: int) -> list[OpHandle]:
        """Complete all outstanding ``src -> trg`` operations, in issue order."""

    @abc.abstractmethod
    def complete_rank(self, src: int) -> list[OpHandle]:
        """Complete all outstanding operations of ``src``, in issue order."""

    @abc.abstractmethod
    def pending_ops(self, src: int | None = None) -> int:
        """Outstanding (issued, not completed) operations of ``src`` (or all)."""

    @abc.abstractmethod
    def discard_pending(self) -> list[OpHandle]:
        """Drop every outstanding operation without applying it (rollback).

        Returns the discarded handles so the runtime can poison them; a
        backend that already applied the ops eagerly still discards the
        *handles* — the rolled-back window contents are restored from the
        checkpoint by the recovery path.
        """

    def discard_rank(self, src: int) -> list[OpHandle]:
        """Drop every outstanding operation of origin ``src``, effect-free.

        Used by failure-tolerant delivery modes (:mod:`repro.qos`): a
        suspended rank's in-flight queue is abandoned without application —
        an eager backend must roll back what it already applied (the
        :meth:`set_capture_undo` contract), a deferring backend just drops
        its queue.  Only called while such a mode is installed; backends
        that cannot honor it refuse loudly instead of diverging.
        """
        raise BackendError(
            f"backend {self.name!r} does not support failure-tolerant "
            f"delivery (discard_rank)"
        )

    def discard_targeting(self, src: int, trgs: frozenset[int]) -> list[OpHandle]:
        """Drop ``src``'s outstanding operations toward the ranks in ``trgs``.

        The complement of :meth:`discard_rank`: a *surviving* origin's
        in-flight operations toward freshly-suspended targets must leave the
        queue without being applied (there is no memory to apply them to),
        so the runtime can resolve them through the delivery mode instead.
        Returns the removed handles in issue order.
        """
        raise BackendError(
            f"backend {self.name!r} does not support failure-tolerant "
            f"delivery (discard_targeting)"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(nprocs={self.nprocs}, "
            f"windows={len(self.windows)}, pending={self.pending_ops()})"
        )
