"""The vectorizing backend — queues issued ops, applies them in batches.

Nonblocking operations are not executed when issued: they are queued per
origin in issue order and applied only when the runtime completes the epoch
(flush, unlock, gsync, or a blocking wrapper).  At completion time the queue
is *coalesced*: maximal runs of plain puts that write contiguous ranges of
the same target's window collapse into a single numpy slice assignment, so a
halo exchange or a chunked stream of small puts costs one vectorized write
instead of one bounds-checked write per message — the batching that makes the
nonblocking path measurably faster than the eager per-op path
(``benchmarks/bench_rma.py``).

Correctness note: within one epoch the model imposes no order between actions
(§2.2), but the backend still applies the queue in issue order — overlapping
puts and atomics therefore land exactly as the eager backend lands them, and
gets read at the same completion point on every backend.  The two backends
are bit-identical for every program that observes results only after the
epoch completing them (which is all the model defines: intra-epoch races are
unordered by §2.2), and tests diff their traces directly.
"""

from __future__ import annotations

import numpy as np

from repro.backends.base import Backend, apply_action
from repro.rma.actions import OpKind
from repro.rma.handles import OpHandle
from repro.rma.window import Window

__all__ = ["VectorBackend"]


class VectorBackend(Backend):
    """Deferred execution: queue per epoch, coalesced batch apply at completion."""

    name = "vector"

    def __init__(self) -> None:
        super().__init__()
        #: Issued-but-unapplied (handle, window) pairs per origin, issue order.
        self._queues: dict[int, list[tuple[OpHandle, Window]]] = {}

    # ------------------------------------------------------------------
    def issue(self, handle: OpHandle, win: Window) -> None:
        self._queues.setdefault(handle.action.src, []).append((handle, win))

    def complete(self, src: int, trg: int) -> list[OpHandle]:
        queue = self._queues.get(src)
        if not queue:
            return []
        batch = [(h, w) for h, w in queue if h.action.trg == trg]
        if not batch:
            return []
        self._queues[src] = [(h, w) for h, w in queue if h.action.trg != trg]
        self._apply_batch(batch)
        return [h for h, _ in batch]

    def complete_rank(self, src: int) -> list[OpHandle]:
        batch = self._queues.pop(src, [])
        self._apply_batch(batch)
        return [h for h, _ in batch]

    def pending_ops(self, src: int | None = None) -> int:
        if src is not None:
            return len(self._queues.get(src, []))
        return sum(len(queue) for queue in self._queues.values())

    def discard_pending(self) -> list[OpHandle]:
        discarded = [h for queue in self._queues.values() for h, _ in queue]
        self._queues.clear()
        return discarded

    def discard_rank(self, src: int) -> list[OpHandle]:
        # Nothing was applied yet: dropping the queue is already effect-free.
        return [h for h, _ in self._queues.pop(src, [])]

    def discard_targeting(self, src: int, trgs: frozenset[int]) -> list[OpHandle]:
        queue = self._queues.get(src)
        if not queue:
            return []
        dropped = [h for h, _ in queue if h.action.trg in trgs]
        if dropped:
            self._queues[src] = [
                (h, w) for h, w in queue if h.action.trg not in trgs
            ]
        return dropped

    # ------------------------------------------------------------------
    def _apply_batch(self, batch: list[tuple[OpHandle, Window]]) -> None:
        """Apply a queued batch in issue order, coalescing contiguous puts."""
        i = 0
        n = len(batch)
        while i < n:
            handle, win = batch[i]
            action = handle.action
            if action.kind is not OpKind.PUT:
                apply_action(action, win)
                i += 1
                continue
            # Grow a maximal run of puts writing back-to-back ranges of the
            # same window (same trg by construction of the queue).
            j = i + 1
            end = action.offset + action.count
            while j < n:
                nxt, nxt_win = batch[j]
                if (
                    nxt.action.kind is not OpKind.PUT
                    or nxt_win is not win
                    or nxt.action.trg != action.trg
                    or nxt.action.offset != end
                ):
                    break
                end += nxt.action.count
                j += 1
            if j - i == 1:
                win.write(action.trg, action.offset, action.data)
            else:
                payload = np.concatenate([batch[k][0].action.data for k in range(i, j)])
                win.write(action.trg, action.offset, payload)
            i = j
