"""The eager simulator backend — applies write effects at issue time.

This is the historical execution strategy of the runtime, factored out behind
the :class:`~repro.backends.base.Backend` protocol: every put-like action is
executed against the window buffers the moment it is issued, so writes are
visible to direct buffer reads immediately.  Pure *gets* read at completion
time instead — the same moment every other backend reads — so a ``get_nb``
buffer observes the target exactly as it stands when the epoch closes, on
every backend alike.  Completion (handle state, interceptor ``after_comm``)
is likewise deferred to the runtime's completion points, which is what makes
the completion stream identical to batching backends.

Eager execution means discarded (issued-but-uncompleted) operations have
already touched memory.  A coordinated rollback does not care — the restore
overwrites everything — but recovery protocols that keep survivor state
(localized replay, degraded continuation) do: when
:meth:`~repro.backends.base.Backend.set_capture_undo` is enabled, the backend
snapshots the overwritten range of every put-like action at issue time and
:meth:`discard_pending` rolls those writes back in reverse issue order, so a
discard is effect-free exactly as it is on a deferring backend.
"""

from __future__ import annotations

import numpy as np

from repro.backends.base import Backend, apply_action
from repro.rma.actions import OpKind
from repro.rma.handles import OpHandle
from repro.rma.window import Window

__all__ = ["SimBackend"]


class SimBackend(Backend):
    """Eager execution: writes happen at issue, one op at a time."""

    name = "sim"

    def __init__(self) -> None:
        super().__init__()
        #: Issued-but-not-completed (handle, window, undo) triples per origin;
        #: write effects are already applied, pure gets read at completion.
        #: ``undo`` is the overwritten range (or ``None`` when capture is off).
        self._pending: dict[int, list[tuple[OpHandle, Window, np.ndarray | None]]] = {}
        self._capture_undo = False

    # ------------------------------------------------------------------
    def set_capture_undo(self, enabled: bool) -> None:
        self._capture_undo = enabled

    def issue(self, handle: OpHandle, win: Window) -> None:
        action = handle.action
        undo: np.ndarray | None = None
        if action.kind is not OpKind.GET:
            if self._capture_undo and action.kind.is_put_like:
                undo = win.read(action.trg, action.offset, action.count)
            apply_action(action, win)
        self._pending.setdefault(action.src, []).append((handle, win, undo))

    def complete(self, src: int, trg: int) -> list[OpHandle]:
        queue = self._pending.get(src)
        if not queue:
            return []
        done = [entry for entry in queue if entry[0].action.trg == trg]
        if done:
            self._pending[src] = [e for e in queue if e[0].action.trg != trg]
        return self._finish(done)

    def complete_rank(self, src: int) -> list[OpHandle]:
        return self._finish(self._pending.pop(src, []))

    def pending_ops(self, src: int | None = None) -> int:
        if src is not None:
            return len(self._pending.get(src, []))
        return sum(len(queue) for queue in self._pending.values())

    def discard_pending(self) -> list[OpHandle]:
        entries = [entry for queue in self._pending.values() for entry in queue]
        self._pending.clear()
        return self._unwind(entries)

    def discard_rank(self, src: int) -> list[OpHandle]:
        return self._unwind(self._pending.pop(src, []))

    def discard_targeting(self, src: int, trgs: frozenset[int]) -> list[OpHandle]:
        queue = self._pending.get(src)
        if not queue:
            return []
        dropped = [e for e in queue if e[0].action.trg in trgs]
        if dropped:
            self._pending[src] = [e for e in queue if e[0].action.trg not in trgs]
        return self._unwind(dropped)

    @staticmethod
    def _unwind(
        entries: list[tuple[OpHandle, Window, np.ndarray | None]]
    ) -> list[OpHandle]:
        """Roll back eagerly-applied effects of dropped entries, in issue order.

        Undo newest-first so overlapping ranges land back on their pre-issue
        contents.  Invalidated (failed) targets are skipped: their memory is
        lost and will be restored from a checkpoint (or stays zeroed under a
        best-effort delivery mode).
        """
        for handle, win, undo in sorted(
            entries, key=lambda e: e[0].action.seq, reverse=True
        ):
            if undo is not None and not win.is_invalidated(handle.action.trg):
                win.write(handle.action.trg, handle.action.offset, undo)
        return [handle for handle, _, _ in entries]

    # ------------------------------------------------------------------
    @staticmethod
    def _finish(batch: list[tuple[OpHandle, Window, np.ndarray | None]]) -> list[OpHandle]:
        """Perform the deferred reads of pure gets; return handles in issue order."""
        for handle, win, _ in batch:
            if handle.action.kind is OpKind.GET:
                apply_action(handle.action, win)
        return [handle for handle, _, _ in batch]
