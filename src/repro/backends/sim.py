"""The eager simulator backend — applies write effects at issue time.

This is the historical execution strategy of the runtime, factored out behind
the :class:`~repro.backends.base.Backend` protocol: every put-like action is
executed against the window buffers the moment it is issued, so writes are
visible to direct buffer reads immediately.  Pure *gets* read at completion
time instead — the same moment every other backend reads — so a ``get_nb``
buffer observes the target exactly as it stands when the epoch closes, on
every backend alike.  Completion (handle state, interceptor ``after_comm``)
is likewise deferred to the runtime's completion points, which is what makes
the completion stream identical to batching backends.
"""

from __future__ import annotations

from repro.backends.base import Backend, apply_action
from repro.rma.actions import OpKind
from repro.rma.handles import OpHandle
from repro.rma.window import Window

__all__ = ["SimBackend"]


class SimBackend(Backend):
    """Eager execution: writes happen at issue, one op at a time."""

    name = "sim"

    def __init__(self) -> None:
        super().__init__()
        #: Issued-but-not-completed (handle, window) pairs per origin; write
        #: effects are already applied, pure gets read at completion.
        self._pending: dict[int, list[tuple[OpHandle, Window]]] = {}

    # ------------------------------------------------------------------
    def issue(self, handle: OpHandle, win: Window) -> None:
        if handle.action.kind is not OpKind.GET:
            apply_action(handle.action, win)
        self._pending.setdefault(handle.action.src, []).append((handle, win))

    def complete(self, src: int, trg: int) -> list[OpHandle]:
        queue = self._pending.get(src)
        if not queue:
            return []
        done = [(h, w) for h, w in queue if h.action.trg == trg]
        if done:
            self._pending[src] = [(h, w) for h, w in queue if h.action.trg != trg]
        return self._finish(done)

    def complete_rank(self, src: int) -> list[OpHandle]:
        return self._finish(self._pending.pop(src, []))

    def pending_ops(self, src: int | None = None) -> int:
        if src is not None:
            return len(self._pending.get(src, []))
        return sum(len(queue) for queue in self._pending.values())

    def discard_pending(self) -> list[OpHandle]:
        discarded = [h for queue in self._pending.values() for h, _ in queue]
        self._pending.clear()
        return discarded

    # ------------------------------------------------------------------
    @staticmethod
    def _finish(batch: list[tuple[OpHandle, Window]]) -> list[OpHandle]:
        """Perform the deferred reads of pure gets; return handles in issue order."""
        for handle, win in batch:
            if handle.action.kind is OpKind.GET:
                apply_action(handle.action, win)
        return [h for h, _ in batch]
