"""The real-process backend — ranks are OS processes, windows live in shm.

Every other backend executes RMA operations inside the coordinating Python
process; a simulated failure is just an exception.  :class:`ProcBackend`
makes the paper's fail-stop model *physical*:

* window storage is allocated in POSIX shared memory
  (:class:`multiprocessing.shared_memory.SharedMemory`): one segment per
  window holding ``nprocs`` contiguous per-rank slabs, mapped by the
  supervisor and by every worker;
* each rank gets a **worker**: a forked OS process that owns the rank's
  execution vehicle.  Queued operations of origin ``src`` are shipped to
  ``src``'s worker at completion time (pickled
  :class:`~repro.rma.actions.CommAction` batches over a pipe) and applied
  there with the *same* :func:`~repro.backends.base.apply_action` the
  in-process backends use, so per-op semantics cannot drift;
* the supervisor keeps the control plane — scheduler, runtime, counters,
  interceptors, checkpoint stores — in its own heap.  Checkpoint copies
  therefore survive any worker's death by construction, which is exactly the
  paper's requirement that recovery data outlive the failed process.

Death detection is *physical* too: a worker killed with ``SIGKILL`` (see
:mod:`repro.ft.inject`) is noticed through its process sentinel — either
synchronously, when a batch dispatch finds the pipe dead, or via
:meth:`ProcBackend.poll_failures`, which the runtime folds into
:meth:`~repro.rma.runtime.RmaRuntime.observe_failures`.  Both routes converge
on the same fail-stop surfacing (:class:`~repro.errors.ProcessFailedError`,
window invalidation, interceptor notification) that simulated failures use,
so the fault-tolerance protocols cannot tell a real kill from an injected
exception — which is what makes the sim backend a valid oracle for killed
runs (the differential harness in ``tests/test_differential.py``).

A batch interrupted mid-apply by a kill leaves partial writes in shared
memory; the supervisor snapshots every target range before dispatching and
rolls the partial effects back, so a killed completion is effect-free —
matching the queue-discard semantics recovery relies on.
"""

from __future__ import annotations

import atexit
import functools
import multiprocessing
import os
import signal
import time
from dataclasses import dataclass
from multiprocessing import connection, shared_memory

import numpy as np

from repro.backends.base import Backend, apply_action
from repro.errors import BackendError, ProcessFailedError, WatchdogError, WindowError
from repro.rma.handles import OpHandle
from repro.rma.window import Window

__all__ = ["ProcBackend", "SharedWindow", "proc_available"]

#: Segments whose close() hit a live exported view (e.g. an in-flight
#: exception's traceback frames holding window views while the session tears
#: down).  Parking them here keeps their __del__ from retrying — and warning —
#: at some arbitrary GC point; they are re-tried once the views are gone.
_deferred_closes: list[shared_memory.SharedMemory] = []


def _drain_deferred_closes() -> None:
    for seg in _deferred_closes[:]:
        try:
            seg.close()
        except BufferError:  # pragma: no cover - views still alive
            continue
        _deferred_closes.remove(seg)


atexit.register(_drain_deferred_closes)


@functools.lru_cache(maxsize=1)
def proc_available() -> bool:
    """Whether this platform supports the real-process backend.

    Requires the ``fork`` start method (workers inherit the loaded modules
    and the supervisor's file descriptors) and working POSIX shared memory.
    """
    if "fork" not in multiprocessing.get_all_start_methods():
        return False
    try:
        probe = shared_memory.SharedMemory(create=True, size=8)
    except (OSError, ValueError):  # pragma: no cover - platform dependent
        return False
    probe.close()
    probe.unlink()
    return True


class SharedWindow(Window):
    """A :class:`Window` whose per-rank buffers are slabs of one shm segment.

    The segment is owned (created and unlinked) by the supervisor; workers
    attach by name.  All state transitions write *in place* — replacing a
    buffer with a fresh private array, as the base class does, would silently
    detach the supervisor's view from the memory the workers keep writing.
    """

    def __init__(self, name: str, size: int, dtype: np.dtype, nprocs: int) -> None:
        dtype = np.dtype(dtype)
        self.shm: shared_memory.SharedMemory | None = shared_memory.SharedMemory(
            create=True, size=max(1, size * dtype.itemsize * nprocs)
        )
        flat = np.frombuffer(self.shm.buf, dtype=dtype, count=size * nprocs)
        flat[...] = 0
        buffers = {r: flat[r * size : (r + 1) * size] for r in range(nprocs)}
        super().__init__(
            name=name, size=size, dtype=dtype, nprocs=nprocs, buffers=buffers
        )

    @property
    def segment_name(self) -> str:
        """Name workers attach the underlying segment by."""
        if self.shm is None:
            raise WindowError(f"window {self.name!r} detached from shared memory")
        return self.shm.name

    # In-place variants of the failure/restore transitions ----------------
    def restore(self, rank: int, data: np.ndarray) -> None:
        data = np.asarray(data, dtype=self.dtype).ravel()
        if data.size != self.size:
            raise WindowError(
                f"restore payload has {data.size} elements, window has {self.size}"
            )
        self._check_rank(rank)
        self.buffers[rank][...] = data
        self._invalidated.discard(rank)

    def invalidate(self, rank: int) -> None:
        self._check_rank(rank)
        self.buffers[rank][...] = 0
        self._invalidated.add(rank)

    def reallocate(self, rank: int) -> None:
        self._check_rank(rank)
        self.buffers[rank][...] = 0
        self._invalidated.discard(rank)

    def detach(self) -> None:
        """Swap buffers to private copies; close and unlink the segment.

        Idempotent.  Results gathered after a session closed keep reading
        the preserved copies.
        """
        if self.shm is None:
            return
        for rank in list(self.buffers):
            self.buffers[rank] = self.buffers[rank].copy()
        seg, self.shm = self.shm, None
        _drain_deferred_closes()
        try:
            seg.close()
        except BufferError:
            # Someone still holds a view (typically traceback frames of an
            # exception in flight through kernel code).  Unlinking below is
            # name-based and works regardless; the mapping itself is parked
            # and closed once the views die.
            _deferred_closes.append(seg)
        try:
            seg.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass


class _ShmSlab:
    """Worker-side view of one shared window: just the three access methods
    :func:`~repro.backends.base.apply_action` needs, no liveness bookkeeping
    (the supervisor owns that)."""

    __slots__ = ("buffers", "dtype")

    def __init__(
        self, shm: shared_memory.SharedMemory, size: int, dtype: np.dtype, nprocs: int
    ) -> None:
        flat = np.frombuffer(shm.buf, dtype=dtype, count=size * nprocs)
        self.buffers = {r: flat[r * size : (r + 1) * size] for r in range(nprocs)}
        self.dtype = dtype

    def write(self, rank: int, offset: int, data: np.ndarray) -> None:
        data = np.asarray(data, dtype=self.dtype).ravel()
        self.buffers[rank][offset : offset + data.size] = data

    def read(self, rank: int, offset: int, count: int) -> np.ndarray:
        return self.buffers[rank][offset : offset + count].copy()

    def view(self, rank: int, offset: int, count: int) -> np.ndarray:
        return self.buffers[rank][offset : offset + count]


def _worker_main(rank: int, conn) -> None:
    """Loop of one rank's worker process.

    The parent owns every shm segment, so the child must not register
    attachments with its resource tracker — a SIGKILLed child would leak the
    registration and the tracker would spuriously unlink live segments.
    Exits via :func:`os._exit`: the forked interpreter inherited the
    supervisor's objects (windows, pipes) whose destructors must not run
    here.
    """
    from multiprocessing import resource_tracker

    resource_tracker.register = lambda *a, **k: None  # parent owns the segments
    slabs: dict[str, _ShmSlab] = {}
    segments: list[shared_memory.SharedMemory] = []
    try:
        while True:
            msg = conn.recv()
            tag = msg[0]
            if tag == "exit":
                break
            try:
                if tag == "attach":
                    _, win_name, seg_name, size, dtype_str, nprocs = msg
                    seg = shared_memory.SharedMemory(name=seg_name)
                    segments.append(seg)
                    slabs[win_name] = _ShmSlab(seg, size, np.dtype(dtype_str), nprocs)
                    continue  # pipe ordering makes an ack unnecessary
                if tag == "apply":
                    _, actions, die_after = msg
                    results = []
                    for i, action in enumerate(actions):
                        if die_after is not None and i == die_after:
                            os.kill(os.getpid(), signal.SIGKILL)
                        apply_action(action, slabs[action.window])
                        if action.kind.is_get_like:
                            results.append((i, action.data))
                    conn.send(("ok", results))
                elif tag == "ping":
                    conn.send(("pong", os.getpid()))
                elif tag == "sleep":  # test hook: simulate a wedged worker
                    time.sleep(msg[1])
                    conn.send(("ok", []))
                else:
                    conn.send(("err", f"unknown message tag {tag!r}"))
            except Exception as exc:  # noqa: BLE001 - report, don't die silently
                conn.send(("err", f"{type(exc).__name__}: {exc}"))
    except (EOFError, OSError):
        pass
    finally:
        try:
            conn.close()
        except OSError:
            pass
        os._exit(0)


@dataclass
class _Worker:
    """Supervisor-side handle of one rank's worker process."""

    rank: int
    process: multiprocessing.process.BaseProcess
    conn: connection.Connection


class ProcBackend(Backend):
    """Deferred execution by real per-rank OS processes over shared memory."""

    name = "proc"

    #: Seconds a batch dispatch waits for the worker's ack before declaring
    #: the job wedged (a real deadlock raises a diagnostic
    #: :class:`~repro.errors.WatchdogError` instead of hanging CI).
    DEFAULT_ACK_TIMEOUT = 60.0

    def __init__(self, *, ack_timeout: float = DEFAULT_ACK_TIMEOUT) -> None:
        if not proc_available():  # pragma: no cover - platform dependent
            raise BackendError(
                "backend 'proc' needs the fork start method and POSIX shared "
                "memory; neither is available on this platform"
            )
        super().__init__()
        self.ack_timeout = ack_timeout
        self._ctx = multiprocessing.get_context("fork")
        #: Issued-but-unapplied (handle, window) pairs per origin, issue order.
        self._queues: dict[int, list[tuple[OpHandle, Window]]] = {}
        self._workers: dict[int, _Worker] = {}
        #: Worker deaths already reported through poll_failures (cleared on
        #: respawn, so each incarnation is reported at most once).
        self._reported_dead: set[int] = set()
        #: Deaths discovered by a dispatch (pipe EOF/sentinel) but not yet
        #: reported.  ``is_alive()`` can lag the pipe by microseconds after a
        #: SIGKILL, so poll_failures must not depend on it alone.
        self._discovered_dead: set[int] = set()
        #: Pending self-kill instrumentation: rank -> ops to apply first.
        self._armed_kills: dict[int, int] = {}
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle and window storage
    # ------------------------------------------------------------------
    def bind(self, nprocs: int) -> None:
        super().bind(nprocs)
        for rank in range(nprocs):
            self._workers[rank] = self._spawn(rank)

    def create_window(self, name: str, size: int, dtype: np.dtype) -> Window:
        window = self.windows.create(
            name, size, dtype, self.nprocs, factory=SharedWindow
        )
        assert isinstance(window, SharedWindow)
        for worker in self._workers.values():
            if worker.process.is_alive():
                self._send_attach(worker, window)
        return window

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for worker in self._workers.values():
            if worker.process.is_alive():
                try:
                    worker.conn.send(("exit",))
                except (BrokenPipeError, OSError):
                    pass
            worker.process.join(timeout=2.0)
            if worker.process.is_alive():  # pragma: no cover - stuck worker
                worker.process.kill()
                worker.process.join(timeout=2.0)
            try:
                worker.conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
            worker.process.close()
        self._workers.clear()
        for window in self.windows.all():
            if isinstance(window, SharedWindow):
                window.detach()

    def __del__(self) -> None:  # pragma: no cover - interpreter-shutdown guard
        try:
            self.close()
        except Exception:  # noqa: BLE001 - never raise from a destructor
            pass

    # ------------------------------------------------------------------
    # Real-failure plumbing
    # ------------------------------------------------------------------
    def poll_failures(self) -> list[int]:
        dead = []
        for rank, worker in self._workers.items():
            if rank in self._reported_dead:
                continue
            if rank in self._discovered_dead or not worker.process.is_alive():
                self._reported_dead.add(rank)
                self._discovered_dead.discard(rank)
                self._note_death(rank)
                dead.append(rank)
        return dead

    def respawn_rank(self, rank: int) -> None:
        old = self._workers.get(rank)
        if old is not None:
            if old.process.is_alive():
                # A *virtually*-failed rank (time-scheduled event, no SIGKILL)
                # still has a live OS worker; the replacement takes over the
                # rank, so the stale vehicle is terminated rather than joined.
                old.process.kill()
            old.process.join(timeout=2.0)
            try:
                old.conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
            old.process.close()
        worker = self._workers[rank] = self._spawn(rank)
        self._reported_dead.discard(rank)
        self._discovered_dead.discard(rank)
        for window in self.windows.all():
            if isinstance(window, SharedWindow):
                self._send_attach(worker, window)

    def worker_pid(self, rank: int) -> int:
        """OS pid of ``rank``'s current worker (the kill target)."""
        worker = self._require_worker(rank)
        pid = worker.process.pid
        assert pid is not None
        return pid

    def wait_dead(self, rank: int, timeout: float = 10.0) -> bool:
        """Block until ``rank``'s worker has terminated (sentinel wait).

        A confirmed death is recorded for :meth:`poll_failures`: the sentinel
        can fire microseconds before the process becomes waitable, so a
        subsequent ``is_alive()`` is allowed to lag behind the truth.
        """
        worker = self._require_worker(rank)
        dead = not worker.process.is_alive() or bool(
            connection.wait([worker.process.sentinel], timeout)
        )
        if dead:
            self._note_death(rank)
        return dead

    def arm_kill(self, rank: int, after_ops: int) -> None:
        """Make ``rank``'s worker SIGKILL itself mid-batch.

        The worker dies immediately before applying the ``after_ops``-th
        operation of its subsequently dispatched batches (counted across
        batches) — the instrumentation the kill-timing stress tests use to
        hit the partial-batch rollback path deterministically.
        """
        if after_ops < 0:
            raise BackendError("after_ops must be non-negative")
        self._armed_kills[rank] = after_ops

    def ping(self, rank: int) -> bool:
        """Round-trip liveness probe of ``rank``'s worker."""
        worker = self._require_worker(rank)
        try:
            worker.conn.send(("ping",))
        except (BrokenPipeError, OSError):
            return False
        reply = self._await_reply(worker)
        return reply is not None and reply[0] == "pong"

    def describe_rank(self, rank: int) -> str:
        worker = self._workers.get(rank)
        if worker is None:
            return "no worker"
        process = worker.process
        known_dead = rank in self._reported_dead or rank in self._discovered_dead
        if process.is_alive() and not known_dead:
            state = f"pid={process.pid} alive"
        else:
            state = f"pid={process.pid} dead exitcode={process.exitcode}"
        return f"{state} pending={self.pending_ops(rank)}"

    # ------------------------------------------------------------------
    # Operation execution
    # ------------------------------------------------------------------
    def issue(self, handle: OpHandle, win: Window) -> None:
        self._queues.setdefault(handle.action.src, []).append((handle, win))

    def complete(self, src: int, trg: int) -> list[OpHandle]:
        queue = self._queues.get(src)
        if not queue:
            return []
        batch = [(h, w) for h, w in queue if h.action.trg == trg]
        if not batch:
            return []
        self._dispatch(src, batch)
        # Pop only after a successful apply: a dispatch aborted by the
        # worker's death leaves the queue intact for recovery's discard
        # (which poisons the handles exactly as on the in-process backends).
        self._queues[src] = [(h, w) for h, w in queue if h.action.trg != trg]
        return [h for h, _ in batch]

    def complete_rank(self, src: int) -> list[OpHandle]:
        batch = self._queues.get(src)
        if not batch:
            return []
        self._dispatch(src, batch)
        self._queues.pop(src)
        return [h for h, _ in batch]

    def pending_ops(self, src: int | None = None) -> int:
        if src is not None:
            return len(self._queues.get(src, []))
        return sum(len(queue) for queue in self._queues.values())

    def discard_pending(self) -> list[OpHandle]:
        discarded = [h for queue in self._queues.values() for h, _ in queue]
        self._queues.clear()
        return discarded

    def discard_rank(self, src: int) -> list[OpHandle]:
        # The queue was never shipped to the (now dead) worker: dropping it
        # supervisor-side is effect-free by construction.
        return [h for h, _ in self._queues.pop(src, [])]

    def discard_targeting(self, src: int, trgs: frozenset[int]) -> list[OpHandle]:
        queue = self._queues.get(src)
        if not queue:
            return []
        dropped = [h for h, _ in queue if h.action.trg in trgs]
        if dropped:
            self._queues[src] = [
                (h, w) for h, w in queue if h.action.trg not in trgs
            ]
        return dropped

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _spawn(self, rank: int) -> _Worker:
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_worker_main,
            args=(rank, child_conn),
            name=f"repro-proc-rank-{rank}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        return _Worker(rank=rank, process=process, conn=parent_conn)

    @staticmethod
    def _send_attach(worker: _Worker, window: SharedWindow) -> None:
        try:
            worker.conn.send(
                (
                    "attach",
                    window.name,
                    window.segment_name,
                    window.size,
                    str(window.dtype),
                    window.nprocs,
                )
            )
        except (BrokenPipeError, OSError):  # dead worker: poll reports it
            pass

    def _require_worker(self, rank: int) -> _Worker:
        worker = self._workers.get(rank)
        if worker is None:
            raise BackendError(f"no worker exists for rank {rank} (backend unbound?)")
        return worker

    def _note_death(self, rank: int) -> None:
        """Record a death discovered by a dispatch and reap the zombie.

        The death stays queued for :meth:`poll_failures` (it must still reach
        the cluster through the ordinary observation path); only a report or
        a respawn clears it.
        """
        if rank not in self._reported_dead:
            self._discovered_dead.add(rank)
        worker = self._workers.get(rank)
        if worker is not None:
            worker.process.join(timeout=0)  # reap the zombie

    def _dispatch(self, src: int, batch: list[tuple[OpHandle, Window]]) -> None:
        """Ship a batch to ``src``'s worker and fold its results back.

        Raises :class:`~repro.errors.ProcessFailedError` — with the canonical
        fail-stop message, so exception identity holds across backends — when
        the worker is (or dies) instead of acking; partial effects of a
        mid-batch death are rolled back first.
        """
        worker = self._workers.get(src)
        if worker is None or not worker.process.is_alive():
            self._note_death(src)
            raise ProcessFailedError(src)
        actions = [h.action for h, _ in batch]
        undo = [
            (win, a.trg, a.offset, win.buffers[a.trg][a.offset : a.offset + a.count].copy())
            for (h, win), a in zip(batch, actions)
            if a.kind.is_put_like
        ]
        die_after = self._armed_kills.pop(src, None)
        if die_after is not None and die_after >= len(actions):
            # Not reached within this batch: keep the remainder armed.
            self._armed_kills[src] = die_after - len(actions)
            die_after = None
        try:
            worker.conn.send(("apply", actions, die_after))
        except (BrokenPipeError, OSError):
            self._note_death(src)
            raise ProcessFailedError(src) from None
        reply = self._await_reply(worker)
        if reply is None:
            # The worker died mid-batch: partial writes are already in shared
            # memory.  Restore the snapshots (newest first) so the aborted
            # completion is effect-free, like a discarded queue.
            for win, trg, offset, saved in reversed(undo):
                win.buffers[trg][offset : offset + saved.size] = saved
            self._note_death(src)
            raise ProcessFailedError(src)
        tag, payload = reply
        if tag == "err":
            raise BackendError(f"proc worker {src} failed to apply a batch: {payload}")
        # The worker applied the ops to its *pickled copies*: mirror the two
        # mutations apply_action makes onto the supervisor's originals — the
        # issued operand is preserved for the replay log, then get-like data
        # is overwritten with the fetched values.
        for action in actions:
            if action.kind.is_put_like and action.operand is None:
                action.operand = action.data
        for index, data in payload:
            actions[index].data = np.asarray(data)

    def _await_reply(self, worker: _Worker):
        """Wait for the worker's ack, its death, or the watchdog timeout."""
        ready = connection.wait(
            [worker.conn, worker.process.sentinel], self.ack_timeout
        )
        if worker.conn in ready:
            try:
                return worker.conn.recv()
            except (EOFError, OSError):
                return None
        if ready:  # sentinel fired: the worker died
            return None
        raise WatchdogError(
            f"proc worker of rank {worker.rank} sent no reply within "
            f"{self.ack_timeout:.1f}s; worker states:\n"
            + "\n".join(
                f"  rank {r}: {self.describe_rank(r)}" for r in sorted(self._workers)
            )
        )
