"""Pluggable RMA backends: window storage + operation execution strategies.

A backend decides *where window memory lives* and *when issued operations
execute*; the runtime above it only coordinates epochs, counters, interceptors
and virtual-time costs.  Two backends ship:

* :class:`SimBackend` (``"sim"``, the default) — eager per-op execution at
  issue time, the historical runtime behavior;
* :class:`VectorBackend` (``"vector"``) — queues nonblocking operations per
  epoch and applies them as coalesced numpy batch writes at completion time;
* :class:`ProcBackend` (``"proc"``, POSIX platforms) — each rank is a real OS
  process applying its queued operations to windows in shared memory; real
  ``SIGKILL`` deaths surface through the same fail-stop path as simulated
  failures (registered only where :func:`proc_available` holds).

Select one with ``repro.launch(..., backend="vector")`` or
``RmaRuntime(cluster, backend=...)``; both accept a name or a ready
:class:`Backend` instance, resolved by :func:`make_backend`.
"""

from __future__ import annotations

from repro.backends.base import Backend, apply_action
from repro.backends.proc import ProcBackend, SharedWindow, proc_available
from repro.backends.sim import SimBackend
from repro.backends.vector import VectorBackend
from repro.errors import BackendError
from repro.registry import register_kind, resolve_component

__all__ = [
    "Backend",
    "SimBackend",
    "VectorBackend",
    "ProcBackend",
    "SharedWindow",
    "proc_available",
    "BACKENDS",
    "make_backend",
    "apply_action",
]

#: Registry of constructable backends, by name.
BACKENDS: dict[str, type[Backend]] = {
    SimBackend.name: SimBackend,
    VectorBackend.name: VectorBackend,
}
if proc_available():  # an unsupported platform gets a clean unknown-name error
    BACKENDS[ProcBackend.name] = ProcBackend
register_kind("backend", BACKENDS)


def make_backend(spec: "str | Backend | None") -> Backend:
    """Resolve a backend specification into a fresh (or given) instance.

    ``None`` means the default (``"sim"``); a string is looked up in
    :data:`BACKENDS`; a :class:`Backend` instance is passed through so tests
    and instrumented runs can inject custom implementations.
    """
    return resolve_component(
        "backend", spec, BACKENDS, Backend, BackendError, default=SimBackend.name
    )
