"""Seeded Monte-Carlo resilience campaigns — the paper's §7 evaluation engine.

A campaign sweeps the full configuration space the repository exposes —
``{workload × backend × store × recovery × failure rate × interval}`` — and
runs each cell under ``trials`` independently-seeded stochastic
:func:`~repro.simulator.failures.exponential_schedule` fault loads, exactly
the methodology behind the paper's Figures 10/11: per-level exponential
failure processes scaled to the configuration's own failure-free makespan,
survival and bit-identity checked per trial, measured overhead reported next
to the analytic model's prediction (:mod:`repro.study.model`).

Determinism is preserved under concurrency: every trial's schedule seed is a
pure function of ``(campaign seed, cell coordinates, trial index)`` — the
*recovery* coordinate deliberately excluded, so ``global`` and ``localized``
cells face identical fault loads and their restored-bytes can be compared
trial by trial — and each trial runs its own single-threaded, virtual-time
session.  Trials therefore parallelize embarrassingly over a
:mod:`concurrent.futures` executor while the resulting JSON report stays
**byte-identical** to a serial run (results are assembled in sweep order and
contain no wall-clock).

Entry points: :func:`run_campaign`, :func:`render_markdown`,
:func:`check_invariants`, :func:`check_against_baseline`, and the
``python -m repro.study`` CLI (:mod:`repro.study.__main__`).
"""

from __future__ import annotations

import json
from collections.abc import Mapping
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from itertools import product

import numpy as np

from repro.api.policy import FaultTolerancePolicy
from repro.errors import CampaignError, FaultToleranceError, ProcessFailedError
from repro.registry import available, plural
from repro.simulator.costs import cray_xe6_like
from repro.simulator.failures import exponential_schedule
from repro.study.model import IntervalModel
from repro.study.workloads import Workload, make_workload
from repro.trace.tracer import trace_label

__all__ = [
    "CampaignSpec",
    "run_campaign",
    "report_json",
    "render_markdown",
    "check_invariants",
    "check_against_baseline",
    "quick_spec",
]


@dataclass(frozen=True)
class CampaignSpec:
    """Declarative description of one Monte-Carlo resilience campaign.

    Attributes
    ----------
    workloads / backends / stores / recoveries:
        Registry names swept on each axis (see
        :func:`repro.registry.available`).
    mean_failures:
        Expected number of fail-stop events per failure-free makespan —
        each value ``m`` becomes a node-level exponential process of rate
        ``m / horizon`` (§7.1).  ``0`` probes the failure-free column.
    intervals:
        Checkpoint intervals swept: positive step counts and/or ``"auto"``
        (the analytic Young/Daly resolution).
    trials:
        Independently-seeded stochastic schedules per cell.
    seed:
        Campaign master seed; every trial seed derives from it.
    nprocs / procs_per_node:
        Job shape shared by every cell.
    workload_params:
        Optional per-workload constructor overrides, e.g.
        ``{"stencil": {"n_local": 16, "iters": 24}}``.
    """

    workloads: tuple[str, ...] = ("stencil", "allreduce")
    backends: tuple[str, ...] = ("sim",)
    stores: tuple[str, ...] = ("memory",)
    recoveries: tuple[str, ...] = ("global", "localized")
    #: Delivery mode every cell runs under (registry kind ``"delivery"``).
    #: A single knob, not a sweep axis — the delivery × store comparison
    #: harness is :mod:`repro.qos`.
    delivery: str = "reliable"
    mean_failures: tuple[float, ...] = (2.0,)
    intervals: tuple[int | str, ...] = ("auto",)
    trials: int = 4
    seed: int = 0
    nprocs: int = 8
    procs_per_node: int = 2
    workload_params: Mapping[str, Mapping[str, int]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for axis in ("workloads", "backends", "stores", "recoveries",
                     "mean_failures", "intervals"):
            if not getattr(self, axis):
                raise CampaignError(f"campaign sweep axis {axis!r} is empty")
        for kind, names in (
            ("workload", self.workloads),
            ("backend", self.backends),
            ("store", self.stores),
            ("recovery", self.recoveries),
            ("delivery", (self.delivery,)),
        ):
            known = available(kind)
            for name in names:
                if name not in known:
                    listing = ", ".join(repr(k) for k in known)
                    raise CampaignError(
                        f"unknown {kind} {name!r} in campaign spec; "
                        f"registered {plural(kind)} are: {listing}"
                    )
        for interval in self.intervals:
            if isinstance(interval, str):
                if interval != "auto":
                    raise CampaignError(
                        f"interval sweep entries must be positive ints or "
                        f"'auto', got {interval!r}"
                    )
            elif interval < 1:
                raise CampaignError("fixed intervals must be at least 1 step")
        if self.trials < 1:
            raise CampaignError("a campaign needs at least one trial per cell")
        if any(m < 0 for m in self.mean_failures):
            raise CampaignError("mean_failures entries must be non-negative")
        if self.nprocs < 2 or self.procs_per_node < 1:
            raise CampaignError("campaigns need nprocs >= 2 and procs_per_node >= 1")

    @property
    def nnodes(self) -> int:
        """Compute nodes of every cell's simulated machine."""
        return -(-self.nprocs // self.procs_per_node)


@dataclass(frozen=True)
class _Cell:
    """One point of the sweep, with its axis coordinates (for seeding)."""

    workload: str
    backend: str
    store: str
    recovery: str
    mean_failures: float
    interval: int | str
    coords: tuple[int, int, int, int, int]  # (wi, bi, si, mfi, ii) — no recovery!

    @property
    def key(self) -> str:
        interval = self.interval if isinstance(self.interval, str) else str(self.interval)
        return (
            f"{self.workload}/{self.backend}/{self.store}/{self.recovery}"
            f"/mf={self.mean_failures:g}/int={interval}"
        )


def _cells(spec: CampaignSpec) -> list[_Cell]:
    cells = []
    for (wi, w), (bi, b), (si, s), r, (mfi, mf), (ii, iv) in product(
        enumerate(spec.workloads),
        enumerate(spec.backends),
        enumerate(spec.stores),
        spec.recoveries,
        enumerate(spec.mean_failures),
        enumerate(spec.intervals),
    ):
        cells.append(_Cell(w, b, s, r, mf, iv, (wi, bi, si, mfi, ii)))
    return cells


def _trial_seed(spec: CampaignSpec, cell: _Cell, trial: int) -> int:
    """Deterministic per-trial schedule seed.

    Derived from the campaign seed, the cell's axis coordinates and the trial
    index through a :class:`numpy.random.SeedSequence`, so trials are
    independent streams.  The recovery axis is *not* part of the entropy:
    paired ``global``/``localized`` cells draw identical schedules.
    """
    entropy = (spec.seed, *cell.coords, trial)
    return int(np.random.SeedSequence(entropy).generate_state(1)[0])


def _build_workload(spec: CampaignSpec, name: str) -> Workload:
    params = dict(spec.workload_params.get(name, {}))
    return make_workload(name, nprocs=spec.nprocs, **params)


def _policy(
    cell: _Cell, rates: dict[int, float], delivery: str = "reliable"
) -> FaultTolerancePolicy:
    return FaultTolerancePolicy(
        interval=cell.interval,
        store=cell.store,
        recovery=cell.recovery,
        delivery=delivery,
        failure_rates=rates or None,
    )


def _campaign_cost_model():
    """The one cost model every campaign session *and* analytic prediction
    uses — resolved here once so the predicted-vs-measured comparison can
    never silently describe two different machines."""
    return cray_xe6_like()


# ----------------------------------------------------------------------
# Cell baseline and trial execution (module-level: picklable for processes)
# ----------------------------------------------------------------------
def _base_key(cell: _Cell) -> tuple:
    """The unprotected reference run depends only on these coordinates."""
    return (cell.workload, cell.backend)


def _ft_free_key(cell: _Cell) -> tuple:
    """The protected failure-free run additionally depends on the FT policy —
    but *not* on the recovery axis: protocols only act when a failure fires,
    so paired ``global``/``localized`` cells share one horizon (which is also
    what makes their identically-seeded fault loads identical in time)."""
    return (cell.workload, cell.backend, cell.store, cell.mean_failures, cell.interval)


def _run_base(args: tuple[CampaignSpec, _Cell]) -> dict:
    """The unprotected failure-free reference run of one ``_base_key`` group:
    the bit-exact reference digest and the overhead denominator."""
    spec, cell = args
    workload = _build_workload(spec, cell.workload)
    with trace_label(f"base/{cell.workload}/{cell.backend}"):
        base = workload.run(
            backend=cell.backend,
            procs_per_node=spec.procs_per_node,
            cost_model=_campaign_cost_model(),
        )
    return {
        "reference_digest": base.digest,
        "base_elapsed_s": base.report.elapsed,
        "steps": workload.steps,
        "bytes_per_rank": base.bytes_per_rank,
    }


def _run_ft_free(args: tuple[CampaignSpec, _Cell, dict]) -> dict:
    """The protected failure-free run of one ``_ft_free_key`` group: the
    fault-load horizon (failures should land while *this* configuration is
    still computing) and the checkpointing-only overhead."""
    spec, cell, base = args
    workload = _build_workload(spec, cell.workload)
    rates0 = (
        {1: cell.mean_failures / base["base_elapsed_s"]}
        if cell.mean_failures > 0
        else {}
    )
    with trace_label(f"ft-free/{'/'.join(map(str, _ft_free_key(cell)))}"):
        ft_free = workload.run(
            ft=_policy(cell, rates0, spec.delivery),
            backend=cell.backend,
            procs_per_node=spec.procs_per_node,
            cost_model=_campaign_cost_model(),
        )
    horizon = ft_free.report.elapsed
    rates = {1: cell.mean_failures / horizon} if cell.mean_failures > 0 else {}
    return {
        **base,
        "ft_free_elapsed_s": horizon,
        "ft_free_overhead": horizon / base["base_elapsed_s"] - 1.0,
        "ft_free_resolved_interval": ft_free.resolved_interval,
        "rates_per_level": rates,
    }


def _run_trial(args: tuple[CampaignSpec, _Cell, dict, int]) -> dict:
    """One stochastic trial of one cell, under its own seeded fault load."""
    spec, cell, baseline, trial = args
    workload = _build_workload(spec, cell.workload)
    rates = {int(k): v for k, v in baseline["rates_per_level"].items()}
    schedule = exponential_schedule(
        horizon=baseline["ft_free_elapsed_s"],
        rates_per_level=rates,
        max_index_per_level={1: spec.nnodes} if rates else {},
        seed=_trial_seed(spec, cell, trial),
    )
    record: dict = {
        "trial": trial,
        "events": [[ev.time, ev.level, ev.index] for ev in schedule],
    }
    try:
        # Label the session by cell and trial so a run-wide trace hub merges
        # thread-executor runs in deterministic order (identical to serial).
        with trace_label(f"{cell.key}/t{trial}"):
            run = workload.run(
                ft=_policy(cell, rates, spec.delivery),
                failures=schedule,
                backend=cell.backend,
                procs_per_node=spec.procs_per_node,
                cost_model=_campaign_cost_model(),
            )
    except (FaultToleranceError, ProcessFailedError) as exc:
        # The configuration could not carry this fault load (rank + buddy
        # lost, no usable version, ...) — a legitimate campaign outcome.
        record.update(survived=False, failure=type(exc).__name__)
        return record
    report = run.report
    record.update(
        survived=True,
        bit_identical=run.digest == baseline["reference_digest"],
        digest=run.digest,
        elapsed_s=report.elapsed,
        overhead=report.elapsed / baseline["base_elapsed_s"] - 1.0,
        steps_executed=report.steps_executed,
        checkpoints=report.checkpoints,
        demand_checkpoints=report.demand_checkpoints,
        recoveries=report.recoveries,
        localized_recoveries=report.localized_recoveries,
        recovery_fallbacks=report.recovery_fallbacks,
        excised_ranks=report.excised_ranks,
        checkpoint_bytes=int(report.metrics.total("ft.checkpoint_bytes")),
        restored_bytes=int(report.metrics.total("ft.restored_bytes")),
        resolved_interval=run.resolved_interval,
    )
    return record


def _run_trial_batch(args: tuple[CampaignSpec, _Cell, dict, int, int]) -> list[dict]:
    """Run a contiguous range of one cell's trials; return their records.

    Batching is what makes the process executor worth having: the
    ``(spec, cell, baseline)`` payload crosses the process boundary once per
    chunk instead of once per trial, and only the compact per-trial record
    dicts travel back.  Trials inside a chunk run in submission order, so the
    flattened result is byte-identical to the serial sweep.
    """
    spec, cell, baseline, start, stop = args
    return [_run_trial((spec, cell, baseline, trial)) for trial in range(start, stop)]


def _trial_batches(
    spec: CampaignSpec, cells: list[_Cell], baselines: list[dict], workers: int
) -> list[tuple[CampaignSpec, _Cell, dict, int, int]]:
    """Chunk every cell's trials into contiguous per-worker batches.

    One batch per cell is enough when there are at least as many cells as
    workers; with a wide pool and few cells each cell is split further so no
    worker sits idle.  Chunk boundaries never affect results — only how the
    identical trial sequence is sliced across dispatches.
    """
    cells_n = max(1, len(cells))
    chunks_per_cell = max(1, min(spec.trials, -(-workers // cells_n)))
    chunk = -(-spec.trials // chunks_per_cell)
    return [
        (spec, cell, baseline, start, min(start + chunk, spec.trials))
        for cell, baseline in zip(cells, baselines)
        for start in range(0, spec.trials, chunk)
    ]


def _summarize_cell(
    spec: CampaignSpec, cell: _Cell, baseline: dict, trials: list[dict]
) -> dict:
    """Aggregate one cell's trials and attach the analytic prediction."""
    surviving = [t for t in trials if t["survived"]]
    resolved = next(
        (t["resolved_interval"] for t in surviving
         if t.get("resolved_interval") is not None),
        baseline["ft_free_resolved_interval"],
    )
    model = IntervalModel(
        cost_model=_campaign_cost_model(),
        nprocs=spec.nprocs,
        bytes_per_rank=baseline["bytes_per_rank"],
        store=cell.store,
        rates_per_level={int(k): v for k, v in baseline["rates_per_level"].items()},
    )
    step_seconds = baseline["base_elapsed_s"] / baseline["steps"]
    interval_used = resolved if cell.interval == "auto" else cell.interval
    summary = {
        "workload": cell.workload,
        "backend": cell.backend,
        "store": cell.store,
        "recovery": cell.recovery,
        "mean_failures": cell.mean_failures,
        "interval": cell.interval,
        "resolved_interval": resolved,
        "predicted_overhead": model.predicted_overhead(interval_used, step_seconds),
        "survival_rate": len(surviving) / len(trials),
        "bit_identical_rate": (
            sum(1 for t in surviving if t["bit_identical"]) / len(surviving)
            if surviving
            else 0.0
        ),
        "mean_measured_overhead": (
            sum(t["overhead"] for t in surviving) / len(surviving)
            if surviving
            else None
        ),
        "mean_checkpoint_bytes": (
            sum(t["checkpoint_bytes"] for t in surviving) / len(surviving)
            if surviving
            else None
        ),
        "mean_restored_bytes": (
            sum(t["restored_bytes"] for t in surviving) / len(surviving)
            if surviving
            else None
        ),
        "recoveries": sum(t.get("recoveries", 0) for t in surviving),
        **{k: baseline[k] for k in (
            "reference_digest", "base_elapsed_s", "ft_free_elapsed_s",
            "ft_free_overhead", "rates_per_level",
        )},
        "trials": trials,
    }
    return summary


def _make_executor(executor: str, max_workers: int | None) -> Executor | None:
    if executor == "serial":
        return None
    if executor == "thread":
        return ThreadPoolExecutor(max_workers=max_workers)
    if executor == "process":
        return ProcessPoolExecutor(max_workers=max_workers)
    raise CampaignError(
        f"unknown executor {executor!r}; choose 'serial', 'thread' or 'process'"
    )


def run_campaign(
    spec: CampaignSpec,
    *,
    executor: str = "thread",
    max_workers: int | None = None,
) -> dict:
    """Run the full campaign and return the structured report document.

    ``executor`` selects how cells' baselines and trials are dispatched:
    ``"serial"``, ``"thread"`` (default) or ``"process"`` — each trial is an
    isolated deterministic session, so the three produce **byte-identical**
    reports (``benchmarks/bench_study.py`` measures the wall-clock gap).
    Trials are submitted as contiguous per-cell chunks rather than one task
    per trial, so the process pool pickles each cell's payload once per chunk
    and receives only compact record dicts back.
    """
    cells = _cells(spec)
    pool = _make_executor(executor, max_workers)

    def dispatch(fn, args_list):
        if pool is None:
            return [fn(args) for args in args_list]
        return list(pool.map(fn, args_list))

    try:
        # Shared reference runs are computed once per *group*, not per cell:
        # the unprotected base depends only on (workload, backend), the
        # protected failure-free run additionally on store/rate/interval but
        # not on the recovery axis.
        base_groups: dict[tuple, _Cell] = {}
        for cell in cells:
            base_groups.setdefault(_base_key(cell), cell)
        bases = dict(zip(
            base_groups,
            dispatch(_run_base, [(spec, cell) for cell in base_groups.values()]),
        ))
        ff_groups: dict[tuple, _Cell] = {}
        for cell in cells:
            ff_groups.setdefault(_ft_free_key(cell), cell)
        baselines_by_key = dict(zip(
            ff_groups,
            dispatch(
                _run_ft_free,
                [
                    (spec, cell, bases[_base_key(cell)])
                    for cell in ff_groups.values()
                ],
            ),
        ))
        baselines = [baselines_by_key[_ft_free_key(cell)] for cell in cells]
        workers = 1 if pool is None else (getattr(pool, "_max_workers", None) or 1)
        trial_records = [
            record
            for batch in dispatch(
                _run_trial_batch, _trial_batches(spec, cells, baselines, workers)
            )
            for record in batch
        ]
    finally:
        if pool is not None:
            pool.shutdown()
    report: dict = {
        "meta": {
            "engine": "repro.study",
            "seed": spec.seed,
            "trials": spec.trials,
            "nprocs": spec.nprocs,
            "procs_per_node": spec.procs_per_node,
            "workloads": list(spec.workloads),
            "backends": list(spec.backends),
            "stores": list(spec.stores),
            "recoveries": list(spec.recoveries),
            "mean_failures": list(spec.mean_failures),
            "intervals": list(spec.intervals),
            "workload_params": {k: dict(v) for k, v in spec.workload_params.items()},
        },
        "cells": {},
    }
    for idx, (cell, baseline) in enumerate(zip(cells, baselines)):
        trials = trial_records[idx * spec.trials : (idx + 1) * spec.trials]
        report["cells"][cell.key] = _summarize_cell(spec, cell, baseline, trials)
    return report


def report_json(report: dict) -> str:
    """Canonical serialization — byte-identical across re-runs and executors."""
    return json.dumps(report, indent=2, sort_keys=True) + "\n"


# ----------------------------------------------------------------------
# Reporting
# ----------------------------------------------------------------------
def render_markdown(report: dict) -> str:
    """The campaign as a markdown summary table (a Figure 10/11-shaped artifact)."""
    lines = [
        "| workload | backend | store | recovery | mean fails | interval | survival "
        "| bit-identical | ckpt bytes | restored bytes | overhead (measured) "
        "| overhead (predicted) |",
        "|---|---|---|---|---|---|---|---|---|---|---|---|",
    ]

    def fmt_bytes(value: float | None) -> str:
        return "—" if value is None else f"{value:,.0f}"

    def fmt_pct(value: float | None) -> str:
        return "—" if value is None else f"{value * 100.0:.2f}%"

    for key in sorted(report["cells"]):
        cell = report["cells"][key]
        interval = cell["interval"]
        if interval == "auto":
            interval = f"auto→{cell['resolved_interval']}"
        lines.append(
            "| {workload} | {backend} | {store} | {recovery} | {mf:g} | {interval} "
            "| {survival:.0%} | {bit:.0%} | {ckpt} | {restored} | {meas} | {pred} |".format(
                workload=cell["workload"],
                backend=cell["backend"],
                store=cell["store"],
                recovery=cell["recovery"],
                mf=cell["mean_failures"],
                interval=interval,
                survival=cell["survival_rate"],
                bit=cell["bit_identical_rate"],
                ckpt=fmt_bytes(cell["mean_checkpoint_bytes"]),
                restored=fmt_bytes(cell["mean_restored_bytes"]),
                meas=fmt_pct(cell["mean_measured_overhead"]),
                pred=fmt_pct(cell["predicted_overhead"]),
            )
        )
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Gates
# ----------------------------------------------------------------------
def check_invariants(report: dict) -> list[str]:
    """Protocol invariants every report must satisfy; returns violations.

    * **Localized restores strictly fewer bytes** — for every trial in which
      both the ``global`` and the ``localized`` cell of the same
      configuration (identical fault load by construction) survived *and*
      recovered, the localized trial must have restored strictly fewer bytes.
    * **Auto is competitive** — for every configuration swept with ``"auto"``
      plus at least one fixed interval, the auto cell's mean measured
      overhead must be within 2x of the best fixed interval's.
    """
    failures: list[str] = []
    cells = report["cells"]

    def cfg_key(cell: dict) -> tuple:
        return (
            cell["workload"], cell["backend"], cell["store"],
            cell["mean_failures"], str(cell["interval"]),
        )

    by_cfg: dict[tuple, dict[str, dict]] = {}
    for cell in cells.values():
        by_cfg.setdefault(cfg_key(cell), {})[cell["recovery"]] = cell
    for cfg, pair in sorted(by_cfg.items()):
        glob, loc = pair.get("global"), pair.get("localized")
        if not glob or not loc:
            continue
        for gt, lt in zip(glob["trials"], loc["trials"]):
            if not (gt["survived"] and lt["survived"]):
                continue
            if not (gt["recoveries"] > 0 and lt["recoveries"] > 0):
                continue
            if lt["restored_bytes"] >= gt["restored_bytes"]:
                failures.append(
                    f"{'/'.join(map(str, cfg))} trial {gt['trial']}: localized "
                    f"restored {lt['restored_bytes']} bytes, not strictly fewer "
                    f"than the global rollback's {gt['restored_bytes']}"
                )

    def auto_key(cell: dict) -> tuple:
        return (
            cell["workload"], cell["backend"], cell["store"],
            cell["recovery"], cell["mean_failures"],
        )

    by_auto: dict[tuple, dict] = {}
    for cell in cells.values():
        by_auto.setdefault(auto_key(cell), {})[str(cell["interval"])] = cell
    for cfg, group in sorted(by_auto.items()):
        auto = group.get("auto")
        fixed = [c for name, c in group.items() if name != "auto"]
        if auto is None or not fixed:
            continue
        auto_ov = auto["mean_measured_overhead"]
        fixed_ovs = [
            c["mean_measured_overhead"] for c in fixed
            if c["mean_measured_overhead"] is not None
        ]
        if auto_ov is None:
            failures.append(
                f"{'/'.join(map(str, cfg))}: no surviving trial in the "
                f"interval='auto' cell"
            )
            continue
        if not fixed_ovs:
            continue
        best = min(fixed_ovs)
        if best > 0 and auto_ov > 2.0 * best:
            failures.append(
                f"{'/'.join(map(str, cfg))}: auto interval overhead "
                f"{auto_ov:.4f} exceeds 2x the best fixed interval's {best:.4f}"
            )
    return failures


def check_against_baseline(
    report: dict, baseline: dict, *, max_ratio: float = 2.0
) -> list[str]:
    """Regression gate against a checked-in baseline report; returns failures.

    Deterministic integer outcomes (survival, recoveries, byte counts) must
    match exactly; measured overheads may drift but not regress past
    ``max_ratio`` — the same tolerance pattern as the ``bench_rma`` /
    ``bench_ft`` wall-clock gates.
    """
    failures: list[str] = []
    for key, base in baseline.get("cells", {}).items():
        current = report["cells"].get(key)
        if current is None:
            failures.append(f"{key}: cell missing from current report")
            continue
        for exact in ("survival_rate", "bit_identical_rate", "recoveries",
                      "mean_checkpoint_bytes", "mean_restored_bytes"):
            if current.get(exact) != base.get(exact):
                failures.append(
                    f"{key}: {exact} changed from {base.get(exact)!r} to "
                    f"{current.get(exact)!r}"
                )
        cur_ov, base_ov = current.get("mean_measured_overhead"), base.get(
            "mean_measured_overhead"
        )
        if (
            cur_ov is not None
            and base_ov is not None
            and base_ov > 0
            and cur_ov / base_ov > max_ratio
        ):
            failures.append(
                f"{key}: measured overhead {cur_ov:.4f} is "
                f"{cur_ov / base_ov:.2f}x the baseline's {base_ov:.4f} "
                f"(allowed {max_ratio:.1f}x)"
            )
    return failures


def quick_spec() -> CampaignSpec:
    """The tiny CI campaign: 2 workloads × 2 protocols × 4 seeded trials.

    Small sizes keep the smoke run in seconds while still exercising
    ``interval="auto"`` against two fixed intervals (the 2x-competitiveness
    gate needs both) and the localized-vs-global restored-bytes invariant.
    """
    return CampaignSpec(
        workloads=("stencil", "allreduce"),
        backends=("sim",),
        stores=("memory",),
        recoveries=("global", "localized"),
        mean_failures=(2.0,),
        intervals=("auto", 4, 12),
        trials=4,
        seed=0,
        workload_params={"stencil": {"n_local": 16, "iters": 36}},
    )
