"""The resilience-study engine — the paper's evaluation methodology (§5–§7).

This package turns the mechanism stack below it (backends × stores ×
protocols under the :mod:`repro.api` session) into an *experiment engine*:

* :mod:`~repro.study.workloads` — the registry-resolved workload catalog
  (``"stencil"``, ``"allreduce"``, ``"kv"``) with parameterizable sizes and
  bit-exact result digests;
* :mod:`~repro.study.model` — the analytic Young/Daly interval and overhead
  model driven by per-level exponential failure rates and the simulator's
  cost model; what ``FaultTolerancePolicy(interval="auto")`` resolves
  through;
* :mod:`~repro.study.campaign` — the seeded Monte-Carlo campaign runner
  sweeping ``{workload × backend × store × recovery × failure rate ×
  interval}`` over independently-seeded stochastic fault loads, concurrent
  via :mod:`concurrent.futures` yet byte-identical in its JSON report.

Run one from the command line::

    python -m repro.study --trials 4 --output report.json --markdown report.md
"""

from repro.study.campaign import (
    CampaignSpec,
    check_against_baseline,
    check_invariants,
    quick_spec,
    render_markdown,
    report_json,
    run_campaign,
)
from repro.study.model import (
    IntervalModel,
    checkpoint_seconds,
    optimal_interval_seconds,
    overhead_curve,
    predicted_overhead,
    restart_seconds,
    system_failure_rate,
)
from repro.study.workloads import (
    WORKLOADS,
    HeatStencil,
    KvUpdate,
    RingAllreduce,
    Workload,
    WorkloadRun,
    make_workload,
)

__all__ = [
    "CampaignSpec",
    "run_campaign",
    "report_json",
    "render_markdown",
    "check_invariants",
    "check_against_baseline",
    "quick_spec",
    "IntervalModel",
    "checkpoint_seconds",
    "restart_seconds",
    "system_failure_rate",
    "optimal_interval_seconds",
    "predicted_overhead",
    "overhead_curve",
    "Workload",
    "WorkloadRun",
    "HeatStencil",
    "RingAllreduce",
    "KvUpdate",
    "WORKLOADS",
    "make_workload",
]
