"""Analytic checkpoint-interval and overhead model (§5–§7).

The paper does not just build fault-tolerance mechanisms — it *models* them:
per-level failure rates fitted to a real cluster failure history (§7.1) feed
an analytic expression of checkpoint/recovery overhead (§5), which picks the
checkpoint interval and predicts how the memory / disk / parity schemes
compare before a single trial runs.  This module reproduces that methodology
on top of the simulator's :class:`~repro.simulator.costs.CostModel`:

* :func:`checkpoint_seconds` / :func:`restart_seconds` — the per-store cost
  of placing one coordinated checkpoint and of restoring from it, derived
  from the same cost-model primitives the stores charge
  (:mod:`repro.ft.stores`);
* :func:`system_failure_rate` — the aggregate fail-stop rate ``λ = Σ_j λ_j``
  of per-level exponential processes, the paper's Eq. 9-shaped input;
* :func:`optimal_interval_seconds` — the Young/Daly optimal coordinated-
  checkpoint interval ``τ_opt ≈ sqrt(2·C·M)`` (with Daly's higher-order
  correction), where ``C`` is the checkpoint cost and ``M = 1/λ`` the MTBF;
* :func:`predicted_overhead` — the first-order expected overhead of running
  with a given interval: checkpoint time per interval plus expected rework
  and restart per failure — the quantity behind the paper's overhead curves;
* :class:`IntervalModel` — all of the above bundled for one machine/job
  configuration, which is what ``FaultTolerancePolicy(interval="auto")``
  resolves through at session launch.

Everything is closed-form and deterministic; the Monte-Carlo campaign
(:mod:`repro.study.campaign`) reports these predictions next to the measured
overheads so the model can be judged exactly as the paper judges its own.
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

from repro.errors import StudyError
from repro.registry import available
from repro.simulator.costs import CostModel

__all__ = [
    "IntervalModel",
    "REPLAY_COST_FRACTION",
    "checkpoint_seconds",
    "restart_seconds",
    "level_capture_seconds",
    "system_failure_rate",
    "optimal_interval_seconds",
    "predicted_overhead",
    "overhead_curve",
]

#: Group size assumed for the parity store's cost estimate when none is given
#: (matches :attr:`repro.ft.stores.ParityStore.DEFAULT_MAX_GROUP`).
DEFAULT_PARITY_GROUP = 4

#: Fraction of a re-executed step's full cost that a localized *replay* pays:
#: suppressed actions are charged bookkeeping instead of network transfers
#: (:attr:`repro.simulator.costs.CostModel.log_bookkeeping` vs
#: :meth:`~repro.simulator.costs.CostModel.remote_transfer`), so fast-forward
#: rework is roughly an order of magnitude cheaper than global re-execution.
REPLAY_COST_FRACTION = 0.15


def system_failure_rate(rates_per_level: Mapping[int, float]) -> float:
    """Aggregate fail-stop rate ``λ = Σ_j λ_j`` in failures/second.

    ``rates_per_level`` maps FDH levels to the *system-wide* rate of the
    exponential failure process at that level — the same shape
    :func:`repro.simulator.failures.exponential_schedule` consumes.  An empty
    mapping (or all-zero rates) means a failure-free machine: rate ``0.0``,
    infinite MTBF.
    """
    total = 0.0
    for level, rate in rates_per_level.items():
        if rate < 0:
            raise StudyError(f"failure rate for level {level} must be non-negative")
        total += rate
    return total


def checkpoint_seconds(
    store: str,
    *,
    bytes_per_rank: int,
    nprocs: int,
    cost_model: CostModel,
    parity_group: int = DEFAULT_PARITY_GROUP,
) -> float:
    """Analytic cost ``C`` of one coordinated checkpoint, per the store's placement.

    The estimate follows each store's critical path as charged by
    :mod:`repro.ft.stores` — a rank's own copy work plus the transfer of the
    redundant copy — and adds the two coordination barriers bracketing every
    coordinated checkpoint:

    * ``"memory"`` — local copy + buddy transfer + the buddy writing it down
      (2x placement, §3.1/§5);
    * ``"disk"`` — one shared-bandwidth PFS write of the rank's snapshot with
      all ranks writing concurrently (the SCR-PFS baseline of §7);
    * ``"parity"`` — local copy + the rank's contribution to the group XOR
      reduction + its ``1/k`` parity chunk being written (§3.3);
    * ``"multilevel"`` — the base level's every-checkpoint cost (its default
      base is the memory scheme); the rarer upper-level captures are
      amortized separately by
      :meth:`IntervalModel.multilevel_intervals`, not paid per checkpoint.
    """
    if bytes_per_rank < 0:
        raise StudyError("bytes_per_rank must be non-negative")
    if nprocs < 1:
        raise StudyError("nprocs must be at least 1")
    costs = cost_model
    nbytes = int(bytes_per_rank)
    if store in ("memory", "multilevel"):
        place = (
            costs.local_copy(nbytes)
            + costs.remote_transfer(nbytes)
            + costs.local_copy(nbytes)
        )
    elif store == "disk":
        place = costs.pfs_write(nbytes, concurrent_writers=nprocs)
    elif store == "parity":
        k = max(2, parity_group)
        place = (
            costs.local_copy(nbytes)
            + costs.remote_transfer(nbytes)
            + costs.local_copy(-(-nbytes // k))
        )
    else:
        known = ", ".join(repr(name) for name in available("store"))
        raise StudyError(
            f"no analytic checkpoint-cost model for store {store!r}; "
            f"modelled stores are: {known}"
        )
    return place + 2.0 * costs.barrier(nprocs)


def restart_seconds(
    store: str,
    *,
    bytes_per_rank: int,
    nprocs: int,
    cost_model: CostModel,
) -> float:
    """Analytic cost ``R`` of restoring one failed rank after a fail-stop.

    Mirrors what :meth:`~repro.ft.stores.CheckpointStore.fetch` charges: a
    buddy transfer for ``"memory"``, a PFS read for ``"disk"``, a group
    reconstruction transfer for ``"parity"`` — plus the recovery barrier.
    """
    if bytes_per_rank < 0:
        raise StudyError("bytes_per_rank must be non-negative")
    costs = cost_model
    nbytes = int(bytes_per_rank)
    if store in ("memory", "multilevel"):
        # The multilevel common case restores from its base level; upper-level
        # fetches are rarer and priced like the disk/parity stores they mirror.
        fetch = costs.remote_transfer(nbytes)
    elif store == "disk":
        fetch = costs.pfs_read(nbytes)
    elif store == "parity":
        fetch = costs.remote_transfer(nbytes)
    else:
        known = ", ".join(repr(name) for name in available("store"))
        raise StudyError(
            f"no analytic restart-cost model for store {store!r}; "
            f"modelled stores are: {known}"
        )
    return fetch + costs.barrier(nprocs)


def level_capture_seconds(
    kind: str,
    *,
    bytes_per_rank: int,
    nprocs: int,
    cost_model: CostModel,
    dirty_fraction: float = 1.0,
) -> float:
    """Analytic cost of one upper-level *incremental* capture (§5).

    A :class:`~repro.ft.stores.MultiLevelStore` upper level ships only the
    bytes dirtied since its last capture; ``dirty_fraction`` scales the
    per-rank footprint accordingly (``1.0`` = assume everything changed — the
    conservative default when no measurement exists).  ``"parity"``-class
    levels pay a cross-domain transfer, ``"disk"``-class levels a
    shared-bandwidth PFS write.
    """
    if not 0.0 < dirty_fraction <= 1.0:
        raise StudyError("dirty_fraction must be in (0, 1]")
    nbytes = max(1, int(bytes_per_rank * dirty_fraction))
    if kind == "parity":
        return cost_model.remote_transfer(nbytes)
    if kind == "disk":
        return cost_model.pfs_write(nbytes, concurrent_writers=nprocs)
    raise StudyError(
        f"no analytic capture-cost model for level kind {kind!r}; "
        f"modelled kinds are: 'parity', 'disk'"
    )


def optimal_interval_seconds(checkpoint_s: float, mtbf_s: float) -> float:
    """Young/Daly optimal coordinated-checkpoint interval ``τ_opt`` in seconds.

    For ``C < 2M`` uses Daly's higher-order expansion

    ``τ = sqrt(2·C·M) · [1 + (1/3)·sqrt(C/(2M)) + (1/9)·(C/(2M))] − C``

    and degenerates to ``τ = M`` when checkpoints are so expensive that
    ``C ≥ 2M``.  An infinite MTBF (failure-free machine) yields ``inf`` —
    never checkpoint periodically.
    """
    if checkpoint_s <= 0:
        raise StudyError("checkpoint cost must be positive")
    if mtbf_s <= 0:
        raise StudyError("MTBF must be positive")
    if math.isinf(mtbf_s):
        return math.inf
    ratio = checkpoint_s / (2.0 * mtbf_s)
    if ratio >= 1.0:
        return mtbf_s
    tau = math.sqrt(2.0 * checkpoint_s * mtbf_s)
    tau *= 1.0 + math.sqrt(ratio) / 3.0 + ratio / 9.0
    return max(tau - checkpoint_s, checkpoint_s)


def predicted_overhead(
    interval_s: float,
    *,
    checkpoint_s: float,
    restart_s: float,
    mtbf_s: float,
) -> float:
    """First-order expected overhead fraction of running with interval ``τ``.

    ``overhead = C/τ + ((τ + C)/2 + R) / M`` — checkpoint time amortized over
    the interval, plus (per failure, i.e. per MTBF) the expected half-interval
    of lost work and the restart cost.  ``0 ≤ overhead`` and failure-free
    machines pay only the ``C/τ`` term.  ``τ = inf`` (no periodic
    checkpoints) pays no checkpoint or rework term here — the lost work per
    failure is the whole run, which a steady-state model cannot represent —
    only the restart cost per MTBF; the campaign measures the rest of that
    gamble empirically.
    """
    if interval_s <= 0:
        raise StudyError("interval must be positive")
    if math.isinf(interval_s):
        return 0.0 if math.isinf(mtbf_s) else restart_s / mtbf_s
    overhead = checkpoint_s / interval_s
    if not math.isinf(mtbf_s):
        overhead += ((interval_s + checkpoint_s) / 2.0 + restart_s) / mtbf_s
    return overhead


def overhead_curve(
    intervals_s: Sequence[float],
    *,
    checkpoint_s: float,
    restart_s: float,
    mtbf_s: float,
) -> list[float]:
    """Predicted overhead at each interval — the paper's §5-style curves."""
    return [
        predicted_overhead(
            tau, checkpoint_s=checkpoint_s, restart_s=restart_s, mtbf_s=mtbf_s
        )
        for tau in intervals_s
    ]


@dataclass(frozen=True)
class IntervalModel:
    """The analytic model instantiated for one machine/job configuration.

    This is what ``FaultTolerancePolicy(interval="auto")`` resolves through:
    the session builds an :class:`IntervalModel` from its topology's cost
    model, the declared store, the measured per-rank window footprint and the
    declared (or estimated) per-level failure rates, then asks for
    :meth:`optimal_interval_steps` given the measured per-step cost.
    """

    cost_model: CostModel
    nprocs: int
    bytes_per_rank: int
    store: str = "memory"
    rates_per_level: Mapping[int, float] = field(default_factory=dict)
    parity_group: int = DEFAULT_PARITY_GROUP

    # ------------------------------------------------------------------
    @property
    def failure_rate(self) -> float:
        """Aggregate fail-stop rate λ in failures/second."""
        return system_failure_rate(self.rates_per_level)

    @property
    def mtbf_seconds(self) -> float:
        """Mean time between failures ``M = 1/λ`` (``inf`` when failure-free)."""
        rate = self.failure_rate
        return math.inf if rate == 0.0 else 1.0 / rate

    @property
    def checkpoint_cost_seconds(self) -> float:
        """Analytic per-checkpoint cost ``C`` for the configured store."""
        return checkpoint_seconds(
            self.store,
            bytes_per_rank=self.bytes_per_rank,
            nprocs=self.nprocs,
            cost_model=self.cost_model,
            parity_group=self.parity_group,
        )

    @property
    def restart_cost_seconds(self) -> float:
        """Analytic per-failure restart cost ``R`` for the configured store."""
        return restart_seconds(
            self.store,
            bytes_per_rank=self.bytes_per_rank,
            nprocs=self.nprocs,
            cost_model=self.cost_model,
        )

    # ------------------------------------------------------------------
    def optimal_interval_seconds(self) -> float:
        """Young/Daly ``τ_opt`` in virtual seconds (``inf`` when failure-free)."""
        return optimal_interval_seconds(self.checkpoint_cost_seconds, self.mtbf_seconds)

    def optimal_interval_steps(
        self, step_seconds: float, *, max_steps: int | None = None
    ) -> int | None:
        """``τ_opt`` converted to whole job steps of measured cost ``step_seconds``.

        Returns ``None`` for a failure-free machine — take no periodic
        checkpoints at all (the session still takes its initial one).  The
        result is clamped to ``[1, max_steps]`` when a bound is given.
        """
        if step_seconds <= 0:
            raise StudyError("step_seconds must be positive")
        tau = self.optimal_interval_seconds()
        if math.isinf(tau):
            return None
        steps = max(1, round(tau / step_seconds))
        if max_steps is not None:
            steps = min(steps, max(1, max_steps))
        return steps

    def multilevel_intervals(
        self,
        kinds: Sequence[str] = ("parity", "disk"),
        *,
        level_rates: Sequence[float] | None = None,
        dirty_fraction: float = 1.0,
    ) -> list[int | None]:
        """Per-level capture cadences — the multi-level optimum of §5–§7.

        Extends Young/Daly level by level: upper level ``j`` (guarding the
        failures its base cannot survive) has its own capture cost ``C_j``
        (:func:`level_capture_seconds`, scaled by ``dirty_fraction``) and its
        own guarded rate ``λ_j``, giving ``τ_j = sqrt(2·C_j·M_j)``; the
        cadence is ``n_j = round(τ_j / τ_0)`` base checkpoints, at least 1.

        ``level_rates`` gives ``λ_j`` per upper level explicitly; by default
        the model's :attr:`rates_per_level` are assigned in ascending FDH
        order — the base absorbs the lowest level, each upper level guards
        the next one up, the last absorbs every remaining level.  A level
        with rate 0 (nothing to guard) gets cadence ``None``: capture once
        (the seeding full image) and never refresh.  Feed the result to
        :meth:`repro.ft.stores.MultiLevelStore.set_level_intervals`
        (mapping ``None`` to "leave the default").
        """
        if level_rates is not None:
            if len(level_rates) != len(kinds):
                raise StudyError(
                    f"expected {len(kinds)} level rates, got {len(level_rates)}"
                )
            rates = [float(rate) for rate in level_rates]
        else:
            by_level = [
                self.rates_per_level[lvl]
                for lvl in sorted(self.rates_per_level)
            ]
            guarded = by_level[1:]  # the base level absorbs the lowest
            rates = []
            for idx in range(len(kinds)):
                if idx == len(kinds) - 1:
                    rates.append(sum(guarded[idx:]))
                elif idx < len(guarded):
                    rates.append(guarded[idx])
                else:
                    rates.append(0.0)
        tau_base = self.optimal_interval_seconds()
        cadences: list[int | None] = []
        for kind, rate in zip(kinds, rates):
            if rate < 0:
                raise StudyError("level failure rates must be non-negative")
            if rate == 0.0 or math.isinf(tau_base):
                cadences.append(None)
                continue
            capture = level_capture_seconds(
                kind,
                bytes_per_rank=self.bytes_per_rank,
                nprocs=self.nprocs,
                cost_model=self.cost_model,
                dirty_fraction=dirty_fraction,
            )
            tau = optimal_interval_seconds(capture, 1.0 / rate)
            cadences.append(max(1, round(tau / tau_base)))
        return cadences

    def predicted_overhead(self, interval_steps: int | None, step_seconds: float) -> float:
        """Predicted overhead fraction of checkpointing every ``interval_steps``.

        ``None`` means no periodic checkpoints (``τ = inf``).
        """
        if step_seconds <= 0:
            raise StudyError("step_seconds must be positive")
        tau = math.inf if interval_steps is None else interval_steps * step_seconds
        return predicted_overhead(
            tau,
            checkpoint_s=self.checkpoint_cost_seconds,
            restart_s=self.restart_cost_seconds,
            mtbf_s=self.mtbf_seconds,
        )

    def overhead_curve(
        self, intervals_steps: Sequence[int], step_seconds: float
    ) -> list[float]:
        """Predicted overhead at each step interval — §5-style store curves."""
        return [self.predicted_overhead(steps, step_seconds) for steps in intervals_steps]

    # ------------------------------------------------------------------
    # Predicted repair time and availability (the chaos layer's yardstick)
    # ------------------------------------------------------------------
    def predicted_mttr_seconds(
        self,
        recovery: str,
        *,
        step_seconds: float,
        interval_steps: int | None,
    ) -> float:
        """Predicted detection → service-restored time for one failure.

        *Repair* ends when the crash-aborted step completes again (the chaos
        monitor's ``service_restored`` marker), so the estimate prices the
        protocol's rework, not just its restore:

        * ``"global"`` — restore ``R`` plus re-executing the expected
          half-interval of lost work at full cost, plus the aborted step;
        * ``"localized"`` — restore ``R`` plus the same rework at
          :data:`REPLAY_COST_FRACTION` of full cost (suppressed actions are
          bookkeeping, not transfers), plus the aborted step;
        * ``"degraded"`` — no restore at all: a membership barrier and the
          aborted step re-run by the survivors.

        An unprotected interval (``None`` — only the initial checkpoint) has
        expected rework of half the MTBF-worth of steps.
        """
        if step_seconds <= 0:
            raise StudyError("step_seconds must be positive")
        if interval_steps is not None and interval_steps < 1:
            raise StudyError("interval_steps must be at least 1 (or None)")
        if interval_steps is not None:
            lost_work = interval_steps * step_seconds / 2.0
        else:
            mtbf = self.mtbf_seconds
            lost_work = 0.0 if math.isinf(mtbf) else mtbf / 2.0
        restart = self.restart_cost_seconds
        barrier = self.cost_model.barrier(self.nprocs)
        if recovery == "global":
            return restart + lost_work + step_seconds
        if recovery == "localized":
            return restart + REPLAY_COST_FRACTION * lost_work + step_seconds
        if recovery == "degraded":
            return barrier + step_seconds
        known = ", ".join(repr(name) for name in available("recovery"))
        raise StudyError(
            f"no analytic MTTR model for recovery {recovery!r}; "
            f"modelled recoveries are: {known}"
        )

    def predicted_availability(
        self,
        recovery: str,
        *,
        step_seconds: float,
        interval_steps: int | None,
    ) -> float:
        """Predicted steady-state availability ``M / (M + MTTR)``.

        ``M`` is the configured MTBF; a failure-free machine is fully
        available.  Compared against the chaos soak's *observed*
        availability in the ``python -m repro.chaos`` report.
        """
        mtbf = self.mtbf_seconds
        if math.isinf(mtbf):
            return 1.0
        mttr = self.predicted_mttr_seconds(
            recovery, step_seconds=step_seconds, interval_steps=interval_steps
        )
        return mtbf / (mtbf + mttr)
