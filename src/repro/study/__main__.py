"""``python -m repro.study`` — run a Monte-Carlo resilience campaign.

Examples::

    # The default small campaign, markdown summary on stdout:
    python -m repro.study

    # A custom sweep, JSON + markdown artifacts, 8 worker threads:
    python -m repro.study --workloads stencil,allreduce,kv \\
        --stores memory,disk,parity --recoveries global,localized \\
        --rates 0,2,4 --intervals auto,4,12 --trials 8 --seed 7 \\
        --executor thread --jobs 8 --output report.json --markdown report.md

    # The CI gate: tiny grid, invariants + baseline comparison:
    python -m repro.study --quick \\
        --check-baseline benchmarks/BENCH_study_baseline.json

    # What can I put on each axis?
    python -m repro.study --list

Exit status 1 when an invariant is violated or the baseline gate fails.
"""

from __future__ import annotations

import argparse
import sys

from repro.registry import available, render_available
from repro.study.campaign import (
    CampaignSpec,
    check_against_baseline,
    check_invariants,
    quick_spec,
    render_markdown,
    report_json,
    run_campaign,
)

__all__ = ["main"]


def _csv(value: str) -> tuple[str, ...]:
    return tuple(item.strip() for item in value.split(",") if item.strip())


def _intervals(value: str) -> tuple[int | str, ...]:
    out: list[int | str] = []
    for item in _csv(value):
        out.append(item if item == "auto" else int(item))
    return tuple(out)


def _floats(value: str) -> tuple[float, ...]:
    return tuple(float(item) for item in _csv(value))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.study",
        description="Monte-Carlo resilience-study campaign runner",
    )
    parser.add_argument(
        "--list", action="store_true",
        help="print every registered component of every kind and exit",
    )
    parser.add_argument(
        "--workloads", type=_csv, default=("stencil", "allreduce"),
        help=f"comma-separated workload names (registered: {', '.join(available('workload'))})",
    )
    parser.add_argument(
        "--backends", type=_csv, default=("sim",),
        help=f"comma-separated backends (registered: {', '.join(available('backend'))})",
    )
    parser.add_argument(
        "--stores", type=_csv, default=("memory",),
        help=f"comma-separated stores (registered: {', '.join(available('store'))})",
    )
    parser.add_argument(
        "--recoveries", type=_csv, default=("global", "localized"),
        help=f"comma-separated protocols (registered: {', '.join(available('recovery'))})",
    )
    parser.add_argument(
        "--rates", type=_floats, default=(2.0,), metavar="MEANS",
        help="comma-separated expected failures per failure-free makespan (default 2)",
    )
    parser.add_argument(
        "--intervals", type=_intervals, default=("auto",),
        help="comma-separated checkpoint intervals: step counts and/or 'auto'",
    )
    parser.add_argument("--trials", type=int, default=4, help="seeded trials per cell")
    parser.add_argument("--seed", type=int, default=0, help="campaign master seed")
    parser.add_argument("--nprocs", type=int, default=8, help="ranks per job")
    parser.add_argument(
        "--procs-per-node", type=int, default=2, help="ranks packed per node"
    )
    parser.add_argument(
        "--executor", choices=("serial", "thread", "process"), default="thread",
        help="how cells/trials are dispatched (report is identical either way)",
    )
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N", help="max executor workers"
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="run the tiny CI campaign grid (overrides the sweep options)",
    )
    parser.add_argument(
        "--output", default=None, metavar="PATH", help="write the JSON report here"
    )
    parser.add_argument(
        "--markdown", default=None, metavar="PATH",
        help="write the markdown summary table here (always printed to stdout)",
    )
    parser.add_argument(
        "--check-baseline", default=None, metavar="PATH",
        help="compare against a baseline JSON report and exit 1 on regression",
    )
    parser.add_argument(
        "--max-regression", type=float, default=2.0,
        help="tolerated overhead ratio against the baseline (default 2.0)",
    )
    parser.add_argument(
        "--skip-invariants", action="store_true",
        help="do not gate on the report invariants (debugging only)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list:
        print(render_available())
        return 0
    if args.quick:
        spec = quick_spec()
    else:
        spec = CampaignSpec(
            workloads=args.workloads,
            backends=args.backends,
            stores=args.stores,
            recoveries=args.recoveries,
            mean_failures=args.rates,
            intervals=args.intervals,
            trials=args.trials,
            seed=args.seed,
            nprocs=args.nprocs,
            procs_per_node=args.procs_per_node,
        )
    report = run_campaign(spec, executor=args.executor, max_workers=args.jobs)

    markdown = render_markdown(report)
    print(markdown, end="")
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(report_json(report))
        print(f"report written to {args.output}")
    if args.markdown:
        with open(args.markdown, "w") as fh:
            fh.write(markdown)
        print(f"summary written to {args.markdown}")

    status = 0
    if not args.skip_invariants:
        violations = check_invariants(report)
        for violation in violations:
            print(f"INVARIANT: {violation}", file=sys.stderr)
        if violations:
            status = 1
        else:
            print("invariants hold (localized < global restored bytes; auto within 2x)")
    if args.check_baseline:
        import json

        with open(args.check_baseline) as fh:
            baseline = json.load(fh)
        failures = check_against_baseline(
            report, baseline, max_ratio=args.max_regression
        )
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        if failures:
            status = 1
        else:
            print(
                f"baseline check passed against {args.check_baseline} "
                f"(tolerance {args.max_regression:.1f}x)"
            )
    return status


if __name__ == "__main__":
    raise SystemExit(main())
