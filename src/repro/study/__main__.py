"""``python -m repro.study`` — run a Monte-Carlo resilience campaign.

Examples::

    # The default small campaign, markdown summary on stdout:
    python -m repro.study

    # A custom sweep, JSON + markdown artifacts, 8 worker threads:
    python -m repro.study --workloads stencil,allreduce,kv \\
        --stores memory,disk,parity --recoveries global,localized \\
        --rates 0,2,4 --intervals auto,4,12 --trials 8 --seed 7 \\
        --executor thread --jobs 8 --output report.json --markdown report.md

    # The CI gate: tiny grid, invariants + baseline comparison:
    python -m repro.study --quick \\
        --check-baseline benchmarks/BENCH_study_baseline.json

    # What can I put on each axis?
    python -m repro.study --list

Exit status 1 when an invariant is violated or the baseline gate fails.
"""

from __future__ import annotations

import argparse

from repro.cli import (
    add_common_arguments,
    add_report_arguments,
    csv,
    handle_list,
    run_gates,
    trace_run,
    write_outputs,
)
from repro.registry import available
from repro.study.campaign import (
    CampaignSpec,
    check_against_baseline,
    check_invariants,
    quick_spec,
    render_markdown,
    report_json,
    run_campaign,
)

__all__ = ["main"]


def _intervals(value: str) -> tuple[int | str, ...]:
    out: list[int | str] = []
    for item in csv(value):
        out.append(item if item == "auto" else int(item))
    return tuple(out)


def _floats(value: str) -> tuple[float, ...]:
    return tuple(float(item) for item in csv(value))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.study",
        description="Monte-Carlo resilience-study campaign runner",
    )
    add_common_arguments(parser, default_seed=0)
    parser.add_argument(
        "--workloads", type=csv, default=("stencil", "allreduce"),
        help=f"comma-separated workload names (registered: {', '.join(available('workload'))})",
    )
    parser.add_argument(
        "--backends", type=csv, default=("sim",),
        help=f"comma-separated backends (registered: {', '.join(available('backend'))})",
    )
    parser.add_argument(
        "--stores", type=csv, default=("memory",),
        help=f"comma-separated stores (registered: {', '.join(available('store'))})",
    )
    parser.add_argument(
        "--recoveries", type=csv, default=("global", "localized"),
        help=f"comma-separated protocols (registered: {', '.join(available('recovery'))})",
    )
    parser.add_argument(
        "--delivery", default="reliable",
        help=f"delivery mode every cell runs under "
             f"(registered: {', '.join(available('delivery'))})",
    )
    parser.add_argument(
        "--rates", type=_floats, default=(2.0,), metavar="MEANS",
        help="comma-separated expected failures per failure-free makespan (default 2)",
    )
    parser.add_argument(
        "--intervals", type=_intervals, default=("auto",),
        help="comma-separated checkpoint intervals: step counts and/or 'auto'",
    )
    parser.add_argument("--trials", type=int, default=4, help="seeded trials per cell")
    parser.add_argument("--nprocs", type=int, default=8, help="ranks per job")
    parser.add_argument(
        "--procs-per-node", type=int, default=2, help="ranks packed per node"
    )
    parser.add_argument(
        "--executor", choices=("serial", "thread", "process"), default="thread",
        help="how cells/trials are dispatched (report is identical either way)",
    )
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N", help="max executor workers"
    )
    add_report_arguments(parser, regression_metric="overhead")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if handle_list(args):
        return 0
    if args.quick:
        spec = quick_spec()
    else:
        spec = CampaignSpec(
            workloads=args.workloads,
            backends=args.backends,
            stores=args.stores,
            recoveries=args.recoveries,
            delivery=args.delivery,
            mean_failures=args.rates,
            intervals=args.intervals,
            trials=args.trials,
            seed=args.seed,
            nprocs=args.nprocs,
            procs_per_node=args.procs_per_node,
        )
    with trace_run(args):
        report = run_campaign(spec, executor=args.executor, max_workers=args.jobs)
    write_outputs(args, render_markdown(report), report_json(report))
    return run_gates(
        args,
        check_invariants=lambda: check_invariants(report),
        invariants_message=(
            "invariants hold (localized < global restored bytes; auto within 2x)"
        ),
        check_baseline=lambda baseline, ratio: check_against_baseline(
            report, baseline, max_ratio=ratio
        ),
    )


if __name__ == "__main__":
    raise SystemExit(main())
