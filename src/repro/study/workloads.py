"""The workload catalog: registry-resolved SPMD kernels for resilience studies.

The paper evaluates its protocols on concrete applications (§7); this module
promotes the three example kernels of the repository into first-class,
parameterizable workloads so the study engine (:mod:`repro.study.campaign`)
— and any script — can resolve them by name, exactly like
``backend="sim"|"vector"``, ``store=...`` and ``recovery=...``:

* ``"stencil"`` — the 1-D Jacobi heat stencil (nonblocking halo exchange, a
  mid-step ``gsync``);
* ``"allreduce"`` — the two-phase ring allreduce (combining accumulates, the
  paper's ``M``-flag hazard);
* ``"kv"`` — GUPS-style lock-protected random-access key-value updates
  (blocking fetch-and-ops under locks, the Locks-scheme path).

Every workload knows how to set a job up, which kernel to run for how many
steps, how to collect its result, and how to reduce that result to a
**bit-exact digest** — the equality test campaigns use to decide whether a
recovered trial finished identical to the failure-free reference.
"""

from __future__ import annotations

import abc
import hashlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, ClassVar

import numpy as np

from repro.api.policy import FaultTolerancePolicy, Topology
from repro.api.session import Job, JobReport, launch
from repro.errors import StudyError
from repro.registry import register_kind, resolve_component
from repro.simulator.costs import CostModel
from repro.simulator.failures import FailureSchedule

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from repro.api.scheduler import Kernel
    from repro.backends import Backend
    from repro.ft.inject import KillPlan

__all__ = [
    "Workload",
    "WorkloadRun",
    "HeatStencil",
    "RingAllreduce",
    "KvUpdate",
    "WORKLOADS",
    "make_workload",
]


@dataclass(frozen=True)
class WorkloadRun:
    """Outcome of one complete workload execution."""

    #: Registry name of the workload that ran.
    workload: str
    #: The collected result array (field / vectors / table).
    result: np.ndarray
    #: Bit-exact digest of ``result`` (dtype, shape and raw bytes).
    digest: str
    #: The session's counters at the end of the run.
    report: JobReport
    #: The periodic checkpoint interval the session actually used — the
    #: analytic-model resolution when the policy said ``interval="auto"``.
    resolved_interval: int | None
    #: Per-rank window footprint in bytes (the analytic model's ``B``).
    bytes_per_rank: int

    def describe(self) -> str:
        """Human-readable one-liner."""
        return f"{self.workload}: {self.report.describe()}"


class Workload(abc.ABC):
    """One catalog entry: a parameterized SPMD program with a digestible result.

    Subclasses define the window setup, the kernel, the step count and the
    result collection; the base class owns the digest and the one-call
    :meth:`run` driver used by campaigns, benchmarks and tests.
    """

    #: Registry name ("stencil", "allreduce", "kv", ...).
    name: ClassVar[str] = "abstract"
    #: Whether the session should close every step with an implicit gsync
    #: (kernels with a mid-step collective synchronize themselves).
    sync_each_step: ClassVar[bool] = True

    def __init__(self, *, nprocs: int = 8) -> None:
        if nprocs < 2:
            raise StudyError(f"workload {self.name!r} needs at least 2 ranks")
        self.nprocs = nprocs

    # ------------------------------------------------------------------
    # The catalog contract
    # ------------------------------------------------------------------
    @property
    @abc.abstractmethod
    def steps(self) -> int:
        """Number of job steps one run executes."""

    @abc.abstractmethod
    def setup(self, job: Job) -> None:
        """Allocate and deterministically initialize the job's windows."""

    @abc.abstractmethod
    def kernel(self) -> "Kernel":
        """The per-rank kernel to drive for :attr:`steps` steps."""

    @abc.abstractmethod
    def collect(self, job: Job) -> np.ndarray:
        """Gather the result array out of the finished job."""

    # ------------------------------------------------------------------
    # Shared machinery
    # ------------------------------------------------------------------
    def digest(self, result: np.ndarray) -> str:
        """Bit-exact digest of a result: dtype, shape and raw bytes."""
        arr = np.ascontiguousarray(result)
        h = hashlib.sha256()
        h.update(str(arr.dtype).encode())
        h.update(str(arr.shape).encode())
        h.update(arr.tobytes())
        return h.hexdigest()

    def result_quality(self, result: np.ndarray, reference: np.ndarray) -> float:
        """How close ``result`` is to the failure-free ``reference``, in [0, 1].

        Bit-exact results (the digest test campaigns use) score exactly
        ``1.0`` — reliable delivery with rollback recovery must land here.
        Anything else scores by normalized L1 distance,
        ``1 − ‖result − reference‖₁ / (‖reference‖₁ + ε)``, floored at 0 —
        the *quality* axis of the :mod:`repro.qos` trade-off, where
        best-effort delivery trades exactness for makespan.
        """
        if self.digest(result) == self.digest(reference):
            return 1.0
        a = np.asarray(result, dtype=np.float64).ravel()
        b = np.asarray(reference, dtype=np.float64).ravel()
        if a.shape != b.shape:
            return 0.0
        denom = float(np.abs(b).sum()) + 1e-12
        return max(0.0, 1.0 - float(np.abs(a - b).sum()) / denom)

    def bytes_per_rank(self) -> int:
        """Per-rank window footprint in bytes — the analytic model's ``B``.

        Measured by setting the workload up on a throwaway session (no steps
        are executed), so catalog entries never have to duplicate their
        window arithmetic.
        """
        with launch(self.nprocs, sync_each_step=self.sync_each_step) as job:
            self.setup(job)
            return sum(w.nbytes_per_rank for w in job.runtime.windows.all())

    def run(
        self,
        *,
        ft: FaultTolerancePolicy | None = None,
        failures: FailureSchedule | None = None,
        backend: "str | Backend" = "sim",
        procs_per_node: int = 2,
        cost_model: CostModel | None = None,
        record: bool = False,
        kill_plan: "KillPlan | None" = None,
        watchdog: float | None = None,
    ) -> WorkloadRun:
        """Launch a session, run the workload to completion, digest the result.

        ``kill_plan`` installs a :class:`~repro.ft.inject.FaultInjector` for
        the plan before the step loop starts: real SIGKILLs on the
        real-process backend, simulated fail-stop elsewhere, at identical
        completion-stream positions — the lever of the differential harness.
        ``watchdog`` is passed through to :func:`~repro.api.session.launch`.
        """
        with launch(
            self.nprocs,
            topology=Topology(procs_per_node=procs_per_node, cost_model=cost_model),
            ft=ft,
            failures=failures,
            record=record,
            sync_each_step=self.sync_each_step,
            backend=backend,
            watchdog=watchdog,
        ) as job:
            self.setup(job)
            if kill_plan is not None:
                from repro.ft.inject import install_injector

                install_injector(job, kill_plan)
            report = job.run(self.kernel(), steps=self.steps)
            result = self.collect(job)
            resolved = job.resolved_interval
            footprint = sum(w.nbytes_per_rank for w in job.runtime.windows.all())
        return WorkloadRun(
            workload=self.name,
            result=result,
            digest=self.digest(result),
            report=report,
            resolved_interval=resolved,
            bytes_per_rank=footprint,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(nprocs={self.nprocs}, steps={self.steps})"


class HeatStencil(Workload):
    """1-D Jacobi heat stencil with nonblocking halo exchange (examples/heat_stencil_ft).

    Each rank owns ``n_local`` interior cells of a rod in a window ``u`` with
    one ghost cell per side; every step puts the boundary cells into the
    neighbours' ghost cells, suspends at a ``gsync`` and updates the interior.
    """

    name = "stencil"
    sync_each_step = False  # the kernel's mid-step gsync is the only sync

    ALPHA = 0.1  # diffusion coefficient of the explicit update

    def __init__(self, *, nprocs: int = 8, n_local: int = 32, iters: int = 60) -> None:
        super().__init__(nprocs=nprocs)
        if n_local < 1 or iters < 1:
            raise StudyError("stencil needs n_local >= 1 and iters >= 1")
        self.n_local = n_local
        self.iters = iters

    @property
    def steps(self) -> int:
        return self.iters

    def initial_field(self) -> np.ndarray:
        """Deterministic initial temperature: a sine profile plus a hot spot."""
        n_global = self.nprocs * self.n_local
        x = np.arange(n_global, dtype=np.float64)
        field = np.sin(2.0 * np.pi * x / n_global)
        field[n_global // 3] += 2.0
        return field

    def setup(self, job: Job) -> None:
        job.allocate("u", self.n_local + 2)
        initial = self.initial_field()
        n = self.n_local
        for ctx in job.contexts:
            ctx.local("u")[1 : n + 1] = initial[ctx.rank * n : (ctx.rank + 1) * n]

    def kernel(self) -> "Kernel":
        n_local = self.n_local
        alpha = self.ALPHA

        def kernel(ctx, step):
            u = ctx.win("u")
            mine = u.local
            # Halo exchange: nonblocking puts of the boundary cells into the
            # neighbours' ghost cells; the gsync below completes them (a
            # batching backend is free to coalesce them until then).
            if ctx.rank > 0:
                u.put_nb(ctx.rank - 1, n_local + 1, mine[1:2])
            if ctx.rank < ctx.nranks - 1:
                u.put_nb(ctx.rank + 1, 0, mine[n_local : n_local + 1])
            yield ctx.gsync()  # halos are visible from here on
            interior = mine[1 : n_local + 1]
            mine[1 : n_local + 1] = interior + alpha * (
                mine[0:n_local] - 2.0 * interior + mine[2 : n_local + 2]
            )
            ctx.compute(4.0 * n_local)

        return kernel

    def collect(self, job: Job) -> np.ndarray:
        return job.gather("u", part=slice(1, self.n_local + 1))


class RingAllreduce(Workload):
    """Two-phase ring allreduce (examples/ring_allreduce_ft).

    Reduce-scatter hops *accumulate* chunks into the right neighbour —
    exactly the combining operations a naive log re-application would
    double-apply (the paper's ``M`` flag, §3.2.3) — then allgather hops
    forward the reduced chunks with plain puts.
    """

    name = "allreduce"

    def __init__(self, *, nprocs: int = 8, chunk: int = 16) -> None:
        super().__init__(nprocs=nprocs)
        if chunk < 1:
            raise StudyError("allreduce needs chunk >= 1")
        self.chunk = chunk

    @property
    def steps(self) -> int:
        return 2 * self.nprocs - 2

    def initial_vector(self, rank: int) -> np.ndarray:
        """Deterministic per-rank input vector."""
        x = np.arange(self.nprocs * self.chunk, dtype=np.float64)
        return np.sin(x * (rank + 1)) + rank

    def expected(self) -> np.ndarray:
        """The element-wise sum every rank must end with."""
        return np.sum([self.initial_vector(r) for r in range(self.nprocs)], axis=0)

    def setup(self, job: Job) -> None:
        job.allocate("vec", self.nprocs * self.chunk)
        for ctx in job.contexts:
            ctx.local("vec")[:] = self.initial_vector(ctx.rank)

    def kernel(self) -> "Kernel":
        chunk = self.chunk

        def kernel(ctx, step):
            vec = ctx.win("vec")
            nranks = ctx.nranks
            right = (ctx.rank + 1) % nranks
            if step < nranks - 1:
                # Reduce-scatter hop: combine my partial chunk into the neighbour's.
                c = (ctx.rank - step) % nranks
                vec.accumulate_nb(right, c * chunk, vec.local[c * chunk : (c + 1) * chunk])
            else:
                # Allgather hop: forward the already-reduced chunk.
                t = step - (nranks - 1)
                c = (ctx.rank + 1 - t) % nranks
                vec.put_nb(right, c * chunk, vec.local[c * chunk : (c + 1) * chunk])
            ctx.compute(2.0 * chunk)

        return kernel

    def collect(self, job: Job) -> np.ndarray:
        return np.stack([job.local(r, "vec").copy() for r in range(self.nprocs)])


class KvUpdate(Workload):
    """GUPS-style lock-protected random-access key-value updates (examples/kv_update_ft).

    Each step every rank draws a deterministic pseudo-random batch of
    ``(key, delta)`` updates — seeded purely by ``(seed, step, rank)``, so a
    replayed step draws exactly the same batch — and applies each with a
    lock-protected atomic ``fetch_and_op(SUM)`` on the owner rank.
    """

    name = "kv"

    def __init__(
        self,
        *,
        nprocs: int = 8,
        slots: int = 24,
        updates_per_step: int = 8,
        steps: int = 24,
        seed: int = 11,
    ) -> None:
        super().__init__(nprocs=nprocs)
        if slots < 1 or updates_per_step < 1 or steps < 1:
            raise StudyError("kv needs slots, updates_per_step and steps all >= 1")
        self.slots = slots
        self.updates_per_step = updates_per_step
        self.nsteps = steps
        self.seed = seed

    @property
    def steps(self) -> int:
        return self.nsteps

    def batch(self, step: int, rank: int) -> tuple[np.ndarray, np.ndarray]:
        """The update batch of ``rank`` at ``step``: pure function of its inputs."""
        rng = np.random.default_rng((self.seed, step, rank))
        keys = rng.integers(0, self.nprocs * self.slots, size=self.updates_per_step)
        deltas = rng.integers(1, 10, size=self.updates_per_step).astype(np.float64)
        return keys, deltas

    def expected(self) -> np.ndarray:
        """Replay every batch locally, in the scheduler's (step, rank) order."""
        table = np.zeros(self.nprocs * self.slots, dtype=np.float64)
        for step in range(self.nsteps):
            for rank in range(self.nprocs):
                keys, deltas = self.batch(step, rank)
                for key, delta in zip(keys, deltas):
                    table[int(key)] += delta
        return table

    def setup(self, job: Job) -> None:
        job.allocate("table", self.slots)

    def kernel(self) -> "Kernel":
        slots = self.slots
        updates = self.updates_per_step
        batch = self.batch

        def kernel(ctx, step):
            keys, deltas = batch(step, ctx.rank)
            for key, delta in zip(keys, deltas):
                owner, offset = divmod(int(key), slots)
                ctx.lock(owner)
                ctx.fetch_and_op(owner, "table", offset, float(delta))
                ctx.unlock(owner)
            ctx.compute(10.0 * updates)

        return kernel

    def collect(self, job: Job) -> np.ndarray:
        return job.gather("table")


#: Registry of constructable workloads, by name.
WORKLOADS: dict[str, type[Workload]] = {
    HeatStencil.name: HeatStencil,
    RingAllreduce.name: RingAllreduce,
    KvUpdate.name: KvUpdate,
}
register_kind("workload", WORKLOADS)


def make_workload(spec: "str | Workload | None", **params: object) -> Workload:
    """Resolve a workload specification into a fresh (or given) instance.

    ``None`` means the default (``"stencil"``); a string is looked up in
    :data:`WORKLOADS` (an unknown name raises :class:`StudyError` listing the
    registered choices); a :class:`Workload` instance passes through, its own
    parameters winning over ``params``.
    """
    return resolve_component(
        "workload", spec, WORKLOADS, Workload, StudyError,
        default=HeatStencil.name, **params,
    )
