"""Sessions: launch an SPMD job, run kernels, survive failures transparently.

:func:`launch` is the single entry point of the high-level API::

    import repro

    with repro.launch(nprocs=8, ft=repro.FaultTolerancePolicy(interval=10)) as job:
        job.allocate("u", 64)
        for ctx in job.contexts:
            ctx.local("u")[:] = ctx.rank
        report = job.run(kernel, steps=100)

The session — not the application — owns the fault-tolerance wiring: it
installs the action-log interceptor and the coordinated checkpointer as
declared by the :class:`~repro.api.policy.FaultTolerancePolicy`, takes
periodic and demand checkpoints between steps, and when a
:class:`~repro.errors.ProcessFailedError` surfaces anywhere in a step it runs
the :class:`~repro.ft.recovery.RecoveryManager` and restarts the step loop
from the last committed checkpoint.  Kernels therefore contain **zero**
recovery logic; because the cooperative schedule is deterministic, a
recovered run finishes bit-identical to a failure-free one.
"""

from __future__ import annotations

import signal
import threading
from dataclasses import dataclass

import numpy as np

from repro.api.context import RankContext
from repro.api.policy import FaultTolerancePolicy, Topology
from repro.api.scheduler import CooperativeScheduler, Kernel
from repro.backends import BACKENDS, Backend
from repro.errors import (
    ApiError,
    PolicyError,
    ProcessFailedError,
    RecoveryError,
    WatchdogError,
)
from repro.ft.protocols import RecoveryProtocol
from repro.ft.stack import FtStack
from repro.registry import resolve_component
from repro.rma.runtime import RmaRuntime
from repro.rma.window import Window
from repro.simulator.failures import FailureSchedule
from repro.simulator.metrics import MetricsSnapshot
from repro.trace.telemetry import Telemetry
from repro.trace.tracer import Tracer, current_trace_hub, install_trace

__all__ = ["Job", "JobReport", "SessionObserver", "launch"]


class SessionObserver:
    """No-op base class for session lifecycle observers (chaos monitors).

    Register instances with :meth:`Job.add_observer`.  Every hook carries the
    job's *virtual* timestamp (``cluster.elapsed()``), so observer-built event
    logs are byte-identical across backends and re-runs.  Hooks run inline in
    the step loop and must not raise.
    """

    def on_step_completed(self, step: int, t: float) -> None:
        """Step ``step`` finished (post-sync; counting re-executions)."""

    def on_checkpoint(self, step: int, t_start: float, t_end: float, demand: bool) -> None:
        """A coordinated checkpoint committed between ``t_start`` and ``t_end``.

        Covers periodic, phase-opening and demand checkpoints (``demand``
        distinguishes the latter).  The window is what lets observers segment
        other measurements — e.g. request latencies — into steady-state vs
        during-checkpoint time.  A checkpoint aborted by a failure emits no
        event; its span is subsumed by the recovery that follows."""

    def on_failure_detected(self, rank: int, step: int, t: float) -> None:
        """A :class:`ProcessFailedError` for ``rank`` surfaced during ``step``."""

    def on_recovery_started(self, step: int, t: float) -> None:
        """The session is about to run its recovery protocol."""

    def on_protocol_applied(self, outcome, resume_step: int, t: float) -> None:
        """One recovery attempt completed with ``outcome``
        (a :class:`~repro.ft.protocols.RecoveryOutcome`)."""

    def on_recovery_completed(self, resume_step: int, t: float) -> None:
        """Recovery finished; the step loop resumes at ``resume_step``."""


@dataclass(frozen=True)
class JobReport:
    """Snapshot of a session's counters, as returned by :meth:`Job.run`.

    All counters are cumulative over the session's lifetime: a second
    :meth:`Job.run` call on the same job reports the totals of both phases
    (diff two :meth:`Job.report` snapshots for per-phase numbers).
    """

    #: Kernel steps actually executed, counting re-executions after rollback.
    steps_executed: int
    #: Coordinated checkpoints taken so far (periodic, initial and demand).
    checkpoints: int
    #: Demand checkpoints among them.
    demand_checkpoints: int
    #: Completed recoveries (each may cover several simultaneous failures).
    recoveries: int
    #: Localized (log-based) recoveries among them.
    localized_recoveries: int
    #: Localized recoveries that had to fall back to a global rollback.
    recovery_fallbacks: int
    #: Ranks permanently excised by a degraded continuation.
    excised_ranks: int
    #: Job makespan in virtual seconds.
    elapsed: float
    #: Full metrics snapshot for detailed reporting.
    metrics: MetricsSnapshot

    def describe(self) -> str:
        """Human-readable one-liner."""
        degraded = f", {self.excised_ranks} ranks excised" if self.excised_ranks else ""
        return (
            f"{self.steps_executed} steps executed, "
            f"{self.checkpoints} checkpoints ({self.demand_checkpoints} on demand), "
            f"{self.recoveries} recoveries{degraded}, "
            f"makespan {self.elapsed * 1e3:.3f} ms (virtual)"
        )


class Job:
    """A launched SPMD session: cluster + runtime + scheduler + FT policy.

    Prefer :func:`launch` over constructing this directly.  Use as a context
    manager so the runtime is finalized (interceptor statistics flushed) on
    exit.
    """

    def __init__(
        self,
        nprocs: int = 8,
        *,
        topology: Topology | None = None,
        ft: FaultTolerancePolicy | None = None,
        failures: FailureSchedule | None = None,
        record: bool = False,
        sync_each_step: bool = True,
        backend: str | Backend | None = None,
        watchdog: float | None = None,
        trace: "Tracer | None" = None,
    ) -> None:
        if watchdog is not None and watchdog <= 0:
            raise ApiError("watchdog must be a positive number of seconds (or None)")
        self.watchdog = watchdog
        self.topology = topology or Topology()
        self.policy = ft
        self.cluster = self.topology.build(nprocs, failure_schedule=failures)
        # Resolve the backend at the session boundary so a typo fails here,
        # as a PolicyError naming the registered choices, before any cluster
        # state exists.
        resolved_backend = resolve_component(
            "backend", backend, BACKENDS, Backend, PolicyError, default="sim"
        )
        self.runtime = RmaRuntime(self.cluster, record=record, backend=resolved_backend)
        self.contexts: list[RankContext] = [
            RankContext(self.runtime, rank) for rank in range(nprocs)
        ]
        self.scheduler = CooperativeScheduler(self.runtime, self.contexts)
        self.sync_each_step = sync_each_step
        self.ft: FtStack | None = ft.install(self.runtime) if ft is not None else None
        # interval="auto" resolves through the analytic Young/Daly model once
        # the first step's cost has been measured (see _resolve_auto_interval);
        # a numeric/None interval is in effect immediately.
        self._auto_interval = ft is not None and ft.interval == "auto"
        self._auto_pending = False
        self._interval: int | None = (
            ft.interval if ft is not None and not self._auto_interval else None  # type: ignore[assignment]
        )
        self._have_checkpoint = False
        self._steps_executed = 0
        self._closed = False
        self._observers: list[SessionObserver] = []
        # Tracing last, so the trace interceptor sits behind the FT stack's
        # (replay suppression and action logging stay ahead of
        # instrumentation).  An explicit tracer wins; otherwise an active
        # trace hub (``tracing()`` block, e.g. an engine CLI's ``--trace``)
        # supplies one.  With neither, tracing costs one hub check here.
        self.trace: "Tracer | None" = None
        if trace is None:
            hub = current_trace_hub()
            if hub is not None:
                trace = hub.tracer()
        if trace is not None:
            install_trace(self, trace)

    def telemetry(self) -> Telemetry:
        """One queryable registry over every counter this job produced.

        Folds the cluster ``MetricsRegistry`` (``rma.*``, ``ft.*``,
        ``qos.*``, ``inject.*``) together with ``trace.*`` rollups from the
        installed tracer (time in recovery, checkpoint bytes by store
        level, kill counts) into a flat, glob-queryable namespace.
        """
        return Telemetry.from_job(self)

    def add_observer(self, observer: SessionObserver) -> None:
        """Attach a :class:`SessionObserver` to the step loop's lifecycle."""
        self._observers.append(observer)

    def _notify(self, method: str, *args) -> None:
        for observer in self._observers:
            getattr(observer, method)(*args)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def nranks(self) -> int:
        """Number of ranks in the job."""
        return self.cluster.nprocs

    def __enter__(self) -> "Job":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def close(self) -> None:
        """Finish the session and tear the fault-tolerance stack down.

        Flushes interceptor statistics, then fully uninstalls the FT stack
        (interceptors removed, store closed — releasing disk-spill scratch
        directories — recovery manager detached).  Idempotent: entering the
        job as a context manager and also calling ``close()`` explicitly is
        fine.
        """
        if self._closed:
            return
        self._closed = True
        self.runtime.finalize()
        if self.ft is not None:
            self.ft.uninstall(self.runtime)

    def finalize(self) -> None:
        """Finish the session (idempotent).  Alias of :meth:`close`."""
        self.close()

    @property
    def closed(self) -> bool:
        """Whether the session has been closed."""
        return self._closed

    # ------------------------------------------------------------------
    # Windows and data
    # ------------------------------------------------------------------
    def allocate(self, name: str, size: int, dtype=np.float64) -> Window:
        """Collectively allocate a window of ``size`` elements on every rank."""
        return self.runtime.win_allocate(name, size, np.dtype(dtype))

    def local(self, rank: int, window: str) -> np.ndarray:
        """Mutable view of ``rank``'s buffer of ``window`` (initialization/IO)."""
        return self.runtime.local_view(rank, window)

    def each_rank(self, fn) -> None:
        """Run ``fn(ctx)`` once per rank in rank order (initialization helper)."""
        for ctx in self.contexts:
            fn(ctx)

    def gather(self, window: str, part: slice | None = None) -> np.ndarray:
        """Concatenate every rank's (sliced) buffer of ``window``, rank-major."""
        sl = part if part is not None else slice(None)
        return np.concatenate(
            [self.local(rank, window)[sl].copy() for rank in range(self.nranks)]
        )

    # ------------------------------------------------------------------
    # The step loop — transparent fault tolerance lives here
    # ------------------------------------------------------------------
    def run(self, kernel: Kernel, steps: int, *, start_step: int = 0) -> JobReport:
        """Drive ``kernel`` for ``steps`` SPMD steps, recovering failures.

        Between steps the session takes coordinated checkpoints per the
        declared policy (every ``interval`` steps; on demand when the put/get
        log passes the threshold; always one before the first step so
        rollback is possible).  A failure observed anywhere — inside a
        kernel, a collective, or a checkpoint — rolls the job back to the
        last committed checkpoint and resumes; kernels are simply re-entered
        at the restored step number, so all cross-step state must live in
        windows (which is what makes the replay bit-identical).

        Every ``run`` call opens with a checkpoint at ``start_step``, so a
        rollback never crosses back into a previous phase that may have used
        a different kernel.  Two failure modes are not transparently
        recoverable and surface to the caller: a failure striking before the
        phase's first checkpoint has committed, while no usable version from
        an earlier phase exists either
        (:class:`~repro.errors.RecoveryError`), and the loss of a rank
        together with its buddy
        (:class:`~repro.errors.CatastrophicFailure`).  Without a
        fault-tolerance policy, failures propagate to the caller unchanged.

        With a ``watchdog`` configured on the session (wall-clock seconds; off
        by default), every step must complete within the limit or the run
        fails with a :class:`~repro.errors.WatchdogError` carrying
        :meth:`describe_ranks` — so a wedged real-process rendezvous produces
        a diagnosis instead of a hung test suite.
        """
        if steps < 0:
            raise ApiError("steps must be non-negative")
        # Open the phase with a fresh checkpoint: rollback targets must not
        # predate start_step, or they would be replayed with this kernel.
        self._have_checkpoint = False
        # An "auto" interval is re-resolved per run(): the per-step cost is a
        # property of this phase's kernel, which the previous phase cannot
        # know.  Until resolution the phase runs on its initial checkpoint.
        self._auto_pending = self._auto_interval
        if self._auto_interval:
            self._interval = None
        end = start_step + steps
        step = start_step
        arm_watchdog = self._arm_watchdog()
        try:
            while step < end:
                arm_watchdog()
                try:
                    self._checkpoint_hook(step)
                    # Measure the first completed ordinary step (checkpoint cost
                    # excluded, replayed steps skipped — their suppressed actions
                    # are cheaper than real ones) to feed the analytic model.
                    measuring = self._auto_pending and not self.runtime.replaying
                    step_began = self.cluster.elapsed() if measuring else 0.0
                    self.scheduler.run_step(kernel, step)
                    # Boundary bookkeeping runs twice: once when the kernels have
                    # finished (their local stores are in), and once more after
                    # the step-closing sync (which may complete — and log — the
                    # step's outstanding nonblocking operations).  A crash inside
                    # that sync thus finds the log marked *after* the kernels'
                    # local work, so a localized replay never re-applies it.
                    self._step_boundary_hook()
                    if self.sync_each_step:
                        self.runtime.gsync()
                        self._step_boundary_hook()
                    # Under a tolerant delivery mode, ranks that failed during
                    # the step were merely suspended; repair them now so the
                    # next step starts at full membership (and the job never
                    # ends with invalidated window buffers).
                    self._qos_repair_hook()
                    step += 1
                    self._steps_executed += 1
                    if self._observers:
                        self._notify("on_step_completed", step - 1, self.cluster.elapsed())
                    if measuring and not self.runtime.replaying:
                        self._resolve_auto_interval(
                            self.cluster.elapsed() - step_began, max_steps=steps
                        )
                except ProcessFailedError as failure:
                    if self._observers:
                        self._notify(
                            "on_failure_detected",
                            failure.rank,
                            step,
                            self.cluster.elapsed(),
                        )
                    if self.ft is None:
                        raise
                    if self._observers:
                        self._notify("on_recovery_started", step, self.cluster.elapsed())
                    step = self._recover(start_step, step)
                    if self._observers:
                        self._notify(
                            "on_recovery_completed", step, self.cluster.elapsed()
                        )
        finally:
            self._disarm_watchdog()
        return self.report()

    def describe_ranks(self) -> str:
        """Per-rank diagnostic dump: liveness, clock, pending ops, vehicle.

        The "vehicle" column is the backend's execution-vehicle state — the
        worker pid/liveness on the real-process backend, a constant for the
        in-process ones.
        """
        lines = []
        for rank in range(self.nranks):
            if rank in self.runtime.excised:
                state = "excised"
            elif self.cluster.is_alive(rank):
                state = "alive"
            else:
                state = "failed"
            lines.append(
                f"  rank {rank}: {state}, t={self.cluster.now(rank):.6f}s, "
                f"pending_nb={self.runtime.pending_nb_ops(rank)}, "
                f"vehicle: {self.runtime.backend.describe_rank(rank)}"
            )
        return "\n".join(lines)

    # ------------------------------------------------------------------
    def _arm_watchdog(self):
        """Per-step wall-clock watchdog via ``SIGALRM`` (POSIX main thread).

        Returns a callable re-arming the timer, a no-op when the watchdog is
        off or unarmable (no ``SIGALRM``, or :meth:`run` called off the main
        thread — then only the backend's own ack timeout protects the run).
        """
        if (
            self.watchdog is None
            or not hasattr(signal, "SIGALRM")
            or threading.current_thread() is not threading.main_thread()
        ):
            self._watchdog_prev = None
            return lambda: None

        def _on_alarm(signum, frame):
            raise WatchdogError(
                f"job step exceeded the {self.watchdog:.1f}s watchdog; "
                f"per-rank states:\n{self.describe_ranks()}"
            )

        self._watchdog_prev = signal.signal(signal.SIGALRM, _on_alarm)
        return lambda: signal.setitimer(signal.ITIMER_REAL, self.watchdog)

    def _disarm_watchdog(self) -> None:
        prev = getattr(self, "_watchdog_prev", None)
        if prev is not None:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, prev)
            self._watchdog_prev = None

    def report(self) -> JobReport:
        """Current counters of the session as an immutable report."""
        metrics = self.cluster.metrics
        return JobReport(
            steps_executed=self._steps_executed,
            checkpoints=int(metrics.get("ft.checkpoints")),
            demand_checkpoints=int(metrics.get("ft.demand_checkpoints")),
            recoveries=int(metrics.get("ft.recoveries")),
            localized_recoveries=int(metrics.get("ft.localized_recoveries")),
            recovery_fallbacks=int(metrics.get("ft.recovery_fallbacks")),
            excised_ranks=len(self.runtime.excised),
            elapsed=self.cluster.elapsed(),
            metrics=metrics.snapshot(),
        )

    @property
    def resolved_interval(self) -> int | None:
        """The periodic checkpoint interval currently in effect.

        For a numeric policy this is the declared value; for
        ``interval="auto"`` it is the analytic-model resolution (``None``
        until the first step of a run has been measured, and ``None``
        permanently on a failure-free machine — no periodic checkpoints).
        """
        return self._interval

    # ------------------------------------------------------------------
    def _resolve_auto_interval(self, step_seconds: float, *, max_steps: int) -> None:
        """Resolve ``interval="auto"`` through the analytic Young/Daly model.

        Inputs, per the paper's §5–§7 methodology: the per-checkpoint cost
        ``C`` derived from the topology's cost model, the declared store and
        the job's measured window footprint; the MTBF from the policy's
        per-level failure rates (or, absent those, an aggregate rate
        estimated from the injected failure schedule); and the measured cost
        of the step just executed.
        """
        from repro.study.model import IntervalModel

        assert self.ft is not None and self.policy is not None
        self._auto_pending = False
        rates = self.policy.failure_rates
        if rates is None:
            rates = self._estimated_failure_rates()
        bytes_per_rank = sum(w.nbytes_per_rank for w in self.runtime.windows.all())
        if step_seconds <= 0.0:
            # A step that charged nothing (empty kernel): fall back to the
            # smallest meaningful unit of work, one synchronization.
            step_seconds = self.cluster.costs.barrier(self.nranks)
        model = IntervalModel(
            cost_model=self.cluster.costs,
            nprocs=self.nranks,
            bytes_per_rank=bytes_per_rank,
            store=self.ft.store.name,
            rates_per_level=dict(rates),
        )
        self._interval = model.optimal_interval_steps(step_seconds, max_steps=max_steps)
        self.cluster.metrics.set_max(
            "study.auto_interval_steps",
            float(self._interval) if self._interval is not None else 0.0,
        )

    def _estimated_failure_rates(self) -> dict[int, float]:
        """Aggregate failure rate estimated from the injected schedule.

        The event count over the schedule's own horizon — crude, but the
        right fallback when no fitted per-level rates were declared.  A
        failure-free schedule estimates rate zero (infinite MTBF).
        """
        events = self.cluster.injector.schedule.events
        if not events:
            return {}
        horizon = max(event.time for event in events)
        if horizon <= 0.0:
            return {}
        return {0: len(events) / horizon}

    # ------------------------------------------------------------------
    def _checkpoint_hook(self, step: int) -> None:
        """Apply the declared checkpoint policy at the start of ``step``.

        The step boundary is also a failure observation point: a failure that
        fired since the last synchronization must surface as
        :class:`ProcessFailedError` (driving recovery), not as a
        :class:`~repro.errors.CheckpointError` out of the checkpointer.
        """
        if self.ft is None:
            return
        if self.runtime.replaying:
            # A localized recovery's replay is re-executing logged work; the
            # log being replayed must not be truncated by a fresh checkpoint
            # until the re-execution has caught up with the crash point.
            return
        self.runtime.observe_failures()
        # A failure may have fired between the previous step's repair and this
        # boundary (time-based schedules fire at observation points): repair
        # it before snapshotting, or the checkpoint would trip over the
        # suspended rank's invalidated buffers.  After the repair any rank
        # still dead is genuinely non-tolerated and fails the step as before.
        self._qos_repair_hook()
        dead = [
            r for r in self.cluster.failed_ranks() if r not in self.runtime.excised
        ]
        if dead:
            raise ProcessFailedError(
                dead[0], f"step {step} observed failed ranks {dead}"
            )
        policy = self.policy
        assert policy is not None
        interval_due = self._interval is not None and step % self._interval == 0
        if interval_due or not self._have_checkpoint:
            began = self.cluster.elapsed()
            self._tolerating_suspension(
                lambda: self.ft.checkpointer.checkpoint(tag=step)
            )
            self._have_checkpoint = True
            if self._observers:
                self._notify(
                    "on_checkpoint", step, began, self.cluster.elapsed(), False
                )
        elif policy.demand_threshold_bytes is not None:
            began = self.cluster.elapsed()
            taken = self._tolerating_suspension(
                lambda: self.ft.checkpointer.maybe_checkpoint(tag=step)
            )
            if taken is not None and self._observers:
                self._notify(
                    "on_checkpoint", step, began, self.cluster.elapsed(), True
                )

    def _tolerating_suspension(self, attempt):
        """Run a checkpoint attempt, repairing tolerated mid-attempt failures.

        The checkpoint's own barriers advance virtual time and can fire a
        scheduled failure, surfacing as :class:`ProcessFailedError`.  Under a
        tolerant delivery mode such a failure is a *suspension*, not a
        rollback trigger: repair the rank and retry the attempt.  Any failure
        the mode does not tolerate re-raises and drives recovery as before.
        """
        while True:
            try:
                return attempt()
            except ProcessFailedError:
                assert self.ft is not None
                if not self.ft.delivery.tolerates_failures:
                    raise
                self.runtime.observe_failures()
                suspended = self.runtime.suspended_ranks()
                if not suspended or any(
                    r not in suspended
                    for r in self.cluster.failed_ranks()
                    if r not in self.runtime.excised
                ):
                    raise
                self._qos_repair_hook()

    def _qos_repair_hook(self) -> None:
        """Repair suspended ranks in place (tolerant delivery modes only).

        Best-effort repair is the anti-rollback: each suspended rank is
        respawned and *only its* windows are restored, from the newest
        checkpoint version that still holds a copy for it (fresh zeroed
        buffers when none does — possible only before the first commit).
        Survivors keep their state and their clocks; nothing is re-executed.
        The repaired rank simply rejoins at the next step, its lost
        post-checkpoint progress being exactly the result quality the mode
        trades for never stalling admission.
        """
        if self.ft is None or not self.ft.delivery.tolerates_failures:
            return
        runtime = self.runtime
        suspended = sorted(runtime.suspended_ranks())
        if not suspended:
            return
        delivery = self.ft.delivery
        store = self.ft.store
        runtime.quiesce_suspended()
        RecoveryProtocol._respawn(runtime, suspended)
        for rank in suspended:
            version = next(
                (v for v in reversed(store.versions) if store.available(v, rank)),
                None,
            )
            if version is not None:
                RecoveryProtocol._restore_rank(runtime, store, version, rank)
            delivery.metrics.count("repairs", rank)
            self.cluster.metrics.incr("qos.repairs", rank=rank)

    def _step_boundary_hook(self) -> None:
        """Bookkeeping at the end of every completed step.

        Step boundaries anchor the localized-recovery machinery: during a
        replay they advance the cursor's phases (and end replay mode once the
        log has drained); in normal execution they mark the put/get log so a
        later replay knows where the fully-completed steps end.
        """
        if self.ft is None:
            return
        if self.runtime.replaying:
            self.runtime.replay_step_boundary()
            # The boundary that *ends* a replay completes the crash-aborted
            # step — a boundary the original execution never got to mark.
            # Record it now: without the mark, a later localized recovery
            # would fold this step's actions into the partial phase of its
            # cursor, restore the survivor snapshot one boundary too early
            # and re-apply survivor-local work twice.
            if not self.runtime.replaying and self.ft.log is not None:
                self.ft.log.mark_step()
        elif self.ft.log is not None:
            self.ft.log.mark_step()

    def _recover(self, start_step: int, current_step: int) -> int:
        """Run the declared recovery protocol; return the step to resume at.

        A further failure can strike *during* recovery (its closing barrier
        observes it); recovery is retried until one attempt completes — the
        checkpoint store survives across attempts.  The resume step depends
        on the protocol's outcome: rollback and replay resume at the restored
        checkpoint's step (replay under an active cursor, so survivors'
        completed work is suppressed rather than redone); a degraded
        continuation re-executes the aborted step with the shrunk membership.
        """
        assert self.ft is not None
        while True:
            try:
                outcome = self.ft.recovery.recover()
            except ProcessFailedError:
                continue
            if outcome.kind == "degraded":
                if self._observers:
                    self._notify(
                        "on_protocol_applied", outcome, current_step, self.cluster.elapsed()
                    )
                return current_step
            step = int(outcome.tag)
            if self._observers:
                self._notify("on_protocol_applied", outcome, step, self.cluster.elapsed())
            if step < start_step:
                # Only possible when the phase-opening checkpoint itself was
                # interrupted: the restored state belongs to an earlier phase
                # whose kernel this run() does not know, so replaying it here
                # would be silently wrong.
                raise RecoveryError(
                    f"recovery rolled back to step {step}, before this run's "
                    f"start_step {start_step}; the restored state predates "
                    f"the current phase and cannot be replayed with its kernel"
                )
            return step

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        ft = "ft" if self.ft is not None else "no-ft"
        return f"Job(nranks={self.nranks}, {ft}, steps_executed={self._steps_executed})"


def launch(
    nprocs: int = 8,
    *,
    topology: Topology | None = None,
    ft: FaultTolerancePolicy | None = None,
    failures: FailureSchedule | None = None,
    record: bool = False,
    sync_each_step: bool = True,
    backend: str | Backend | None = None,
    watchdog: float | None = None,
    trace: Tracer | None = None,
) -> Job:
    """Launch an SPMD session of ``nprocs`` ranks on a simulated cluster.

    Parameters
    ----------
    nprocs:
        Number of ranks.
    topology:
        Machine shape (:class:`~repro.api.policy.Topology`); two processes
        per node by default so buddy checkpointing has domains to spread over.
    ft:
        Declarative fault-tolerance policy.  ``None`` runs unprotected:
        failures propagate out of :meth:`Job.run`.
    failures:
        Fail-stop schedule to inject (tests, resilience studies).
    record:
        Record every action in the runtime's
        :class:`~repro.rma.ordering.OrderRecorder` (trace/determinism tests).
    sync_each_step:
        Close every job step with an implicit ``gsync`` — the BSP-style
        superstep boundary where failures are usually observed.  Disable for
        kernels that synchronize explicitly.
    backend:
        RMA execution backend: ``"sim"`` (default, eager per-op execution),
        ``"vector"`` (queued nonblocking ops applied as coalesced numpy
        batches at completion), or a fresh
        :class:`~repro.backends.base.Backend` instance (one per job — a
        backend owns its job's window storage).  Traces, clocks and results
        are bit-identical across backends for every program that observes
        operation results only after the epoch completing them — i.e. any
        program without intra-epoch data races, which the model leaves
        unordered anyway (§2.2).
    watchdog:
        Wall-clock seconds each job step may take before the run fails with
        a :class:`~repro.errors.WatchdogError` and a per-rank state dump.
        ``None`` (the default) disables the step watchdog — the virtual-time
        backends cannot deadlock, and the real-process backend keeps its own
        per-dispatch ack timeout regardless.
    trace:
        A :class:`~repro.trace.Tracer` to install across every seam of the
        job (RMA interceptor, session observer, store placement, delivery
        decisions).  ``None`` still joins an active ``tracing()`` hub —
        e.g. an engine CLI's ``--trace`` — and is free otherwise.
    """
    return Job(
        nprocs,
        topology=topology,
        ft=ft,
        failures=failures,
        record=record,
        sync_each_step=sync_each_step,
        backend=backend,
        watchdog=watchdog,
        trace=trace,
    )
