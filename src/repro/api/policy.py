"""Declarative specifications consumed by :func:`repro.api.launch`.

Instead of hand-wiring ``Cluster`` + ``RmaRuntime`` + ``ActionLog`` +
``CoordinatedCheckpointer`` + ``RecoveryManager``, a program *declares* what
it wants:

* :class:`Topology` — the shape of the simulated machine (processes per node,
  an optional failure-domain hierarchy, an optional cost model);
* :class:`FaultTolerancePolicy` — how the session should protect the run
  (checkpoint interval, demand threshold, buddy level, versions kept).

The session turns these into the concrete stack via
:meth:`Topology.build` and :meth:`FaultTolerancePolicy.install`; user code
never sees the underlying objects.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import PolicyError
from repro.ft.protocols import PROTOCOLS, RecoveryProtocol
from repro.ft.stack import FtStack, build_ft_stack
from repro.ft.stores import STORES, CheckpointStore
from repro.qos.delivery import DELIVERY_MODES, DeliveryMode
from repro.registry import resolve_component
from repro.simulator.cluster import Cluster
from repro.simulator.costs import CostModel
from repro.simulator.failures import FailureSchedule
from repro.simulator.topology import FailureDomainHierarchy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from repro.rma.runtime import RmaRuntime

__all__ = ["FaultTolerancePolicy", "Topology"]


@dataclass(frozen=True)
class Topology:
    """Shape of the simulated machine a session runs on.

    The default packs two processes per node so that even small jobs span
    several failure domains — a prerequisite for buddy checkpointing at node
    level (``buddy_level=1``).
    """

    procs_per_node: int = 2
    fdh: FailureDomainHierarchy | None = None
    cost_model: CostModel | None = None

    def __post_init__(self) -> None:
        if self.procs_per_node < 1:
            raise PolicyError("procs_per_node must be at least 1")

    def build(
        self, nprocs: int, failure_schedule: FailureSchedule | None = None
    ) -> Cluster:
        """Instantiate the simulated cluster for an ``nprocs``-process job."""
        if nprocs < 1:
            raise PolicyError("a job needs at least one process")
        return Cluster.simple(
            nprocs,
            procs_per_node=self.procs_per_node,
            cost_model=self.cost_model,
            failure_schedule=failure_schedule,
            fdh=self.fdh,
        )


@dataclass(frozen=True)
class FaultTolerancePolicy:
    """How a session protects a run — the whole ftRMA protocol, declaratively.

    Attributes
    ----------
    interval:
        Take a coordinated checkpoint every ``interval`` job steps (§3.1).
        ``None`` disables periodic checkpoints; the session still takes one
        initial checkpoint so recovery is always possible.  The string
        ``"auto"`` asks the session to resolve the interval through the
        analytic Young/Daly model (:class:`repro.study.model.IntervalModel`)
        from the topology's cost model, the declared store, the job's window
        footprint, the measured per-step cost and :attr:`failure_rates`; the
        resolution is exposed as :attr:`repro.api.session.Job.resolved_interval`.
    failure_rates:
        Per-FDH-level exponential failure rates ``{level: failures/second}``
        feeding the ``interval="auto"`` resolution (§7.1).  ``None`` falls
        back to estimating an aggregate rate from the session's injected
        :class:`~repro.simulator.failures.FailureSchedule` (zero on a
        failure-free schedule — "auto" then takes no periodic checkpoints).
        Ignored for numeric intervals.
    demand_threshold_bytes:
        Per-rank put/get-log volume that triggers a demand checkpoint (§6.2);
        ``None`` disables demand checkpoints.
    buddy_level:
        FDH level across which checkpoint buddies are spread (§5); ``1``
        means "a different compute node".
    keep_versions:
        Committed checkpoint versions the store retains.
    log_actions:
        Whether to keep the put/get :class:`~repro.ft.checkpoint.ActionLog`;
        forced on when ``demand_threshold_bytes`` is set or when
        ``recovery="localized"`` (the log is what it replays).
    store:
        Checkpoint placement strategy — ``"memory"`` (default; local + buddy
        copies, §3.1/§5), ``"disk"`` (spill to a directory, survives node
        loss), ``"parity"`` (XOR stripe across t-aware groups, §3.3), or a
        ready :class:`~repro.ft.stores.CheckpointStore` instance.
    recovery:
        Recovery protocol strategy — ``"global"`` (default; coordinated
        rollback of every rank, §4.2), ``"localized"`` (only failed ranks
        restore, survivors keep state, the log replays, §7), ``"degraded"``
        (failed ranks are excised, survivors continue best-effort), or a
        ready :class:`~repro.ft.protocols.RecoveryProtocol` instance.
    delivery:
        Delivery mode under failure (:mod:`repro.qos`) — ``"reliable"``
        (default; any operation touching a failed rank raises and the
        recovery protocol runs) or ``"best_effort"`` (failed ranks are
        *suspended*: operations toward them deterministically drop or serve
        stale checkpoint data, survivors never stall, and the session repairs
        the suspended ranks at step boundaries — result quality traded for
        makespan).  A ready :class:`~repro.qos.delivery.DeliveryMode`
        instance also works (e.g. ``BestEffort(seed=7, stale_fraction=0.8)``).
    """

    interval: int | str | None = 10
    demand_threshold_bytes: int | None = None
    buddy_level: int = 1
    keep_versions: int = 2
    log_actions: bool = True
    store: "CheckpointStore | str" = "memory"
    recovery: "RecoveryProtocol | str" = "global"
    delivery: "DeliveryMode | str" = "reliable"
    failure_rates: Mapping[int, float] | None = None

    def __post_init__(self) -> None:
        if isinstance(self.interval, str):
            if self.interval != "auto":
                raise PolicyError(
                    f"interval must be a positive int, None, or 'auto'; "
                    f"got {self.interval!r}"
                )
        elif self.interval is not None and self.interval < 1:
            raise PolicyError("checkpoint interval must be at least 1 step")
        if self.failure_rates is not None:
            for level, rate in self.failure_rates.items():
                if rate < 0:
                    raise PolicyError(
                        f"failure rate for level {level} must be non-negative"
                    )
        if self.demand_threshold_bytes is not None and self.demand_threshold_bytes < 1:
            raise PolicyError("demand_threshold_bytes must be positive")
        if self.buddy_level < 1:
            raise PolicyError("buddy_level must be at least 1")
        if self.keep_versions < 1:
            raise PolicyError("keep_versions must be at least 1")
        # Reject unknown names at declaration time, through the same shared
        # resolver every seam uses (same error shape, nothing instantiated).
        resolve_component(
            "store", self.store, STORES, CheckpointStore, PolicyError, dry_run=True
        )
        resolve_component(
            "recovery", self.recovery, PROTOCOLS, RecoveryProtocol, PolicyError,
            dry_run=True,
        )
        resolve_component(
            "delivery", self.delivery, DELIVERY_MODES, DeliveryMode, PolicyError,
            dry_run=True,
        )

    def install(self, runtime: "RmaRuntime") -> FtStack:
        """Wire the protocol onto ``runtime`` (log, store, checkpointer, recovery)."""
        return build_ft_stack(
            runtime,
            buddy_level=self.buddy_level,
            demand_threshold_bytes=self.demand_threshold_bytes,
            keep_versions=self.keep_versions,
            log_actions=self.log_actions,
            store=self.store,
            recovery=self.recovery,
            delivery=self.delivery,
        )
