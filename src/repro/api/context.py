"""Per-rank views of a running job: what an SPMD kernel sees.

A kernel is written from the perspective of *one* rank::

    def kernel(ctx, step):
        w = ctx.win("u")                 # window handle of this rank
        w[ctx.rank + 1, 0:4] = data      # one-sided put into a peer
        yield ctx.gsync()                # suspend at the collective
        total = w.local.sum()            # plain numpy on the own buffer

The :class:`RankContext` binds every runtime operation to its rank, so no
``src`` argument is ever threaded through application code.  Collectives
(:meth:`RankContext.gsync`, :meth:`RankContext.barrier`) return a
:class:`Collective` token that a generator kernel must ``yield``; the
cooperative scheduler performs the operation once, when every rank of the
phase has arrived (see :mod:`repro.api.scheduler`).
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import SchedulerError, WindowError
from repro.rma.actions import AccumulateOp, CommAction, SyncAction
from repro.rma.handles import OpHandle

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from repro.rma.runtime import RmaRuntime

__all__ = ["Collective", "RankContext", "WindowHandle"]


class Collective(enum.Enum):
    """Suspension tokens for collective operations inside kernels."""

    GSYNC = "gsync"
    BARRIER = "barrier"


class WindowHandle:
    """Numpy-flavoured view of one window, bound to one origin rank.

    ``w[trg, off:off+k]`` reads ``k`` elements from rank ``trg`` (a one-sided
    get); ``w[trg, off:off+k] = data`` writes them (a one-sided put).  Integer
    indices address single elements.  :attr:`local` is a mutable numpy view of
    the origin's own buffer — plain loads and stores, no runtime call.

    The indexing forms are *blocking* (issue + immediate completion).  The
    ``*_nb`` methods issue nonblocking operations returning
    :class:`~repro.rma.handles.OpHandle`; their effects and buffers
    materialize when a ``flush``/``unlock``/``gsync`` closes the epoch, and a
    batching backend may coalesce them into vectorized writes in between.
    """

    __slots__ = ("_ctx", "name")

    def __init__(self, ctx: "RankContext", name: str) -> None:
        self._ctx = ctx
        self.name = name

    @property
    def size(self) -> int:
        """Elements per rank in this window."""
        return self._ctx._runtime.window(self.name).size

    @property
    def local(self) -> np.ndarray:
        """Mutable view of the origin rank's own buffer."""
        return self._ctx._runtime.local_view(self._ctx.rank, self.name)

    def _where(self) -> str:
        """Locator suffix used by every handle-level error message."""
        return f"window {self.name!r} (origin rank {self._ctx.rank})"

    def _check_trg(self, trg: int) -> int:
        """Validate a target rank before it ever reaches the runtime."""
        trg = int(trg)
        if not 0 <= trg < self._ctx.nranks:
            raise WindowError(
                f"target rank {trg} out of range 0..{self._ctx.nranks - 1} "
                f"for {self._where()}"
            )
        return trg

    def _resolve(self, index: int | slice) -> tuple[int, int]:
        """Normalize an element index/slice into ``(offset, count)``."""
        size = self.size
        if isinstance(index, slice):
            if index.step not in (None, 1):
                raise WindowError(
                    f"only unit-stride slices are supported on {self._where()}, "
                    f"got {index!r}"
                )
            offset, stop, _ = index.indices(size)
            count = stop - offset
            if count <= 0:
                raise WindowError(
                    f"zero-length slice {index!r} on {self._where()}"
                )
            return offset, count
        offset = int(index)
        if offset < 0:
            offset += size
        if not 0 <= offset < size:
            raise WindowError(
                f"index {index} out of bounds for {self._where()} of size {size}"
            )
        return offset, 1

    def _check_offset(self, offset: int, count: int) -> int:
        """Validate an explicit ``(offset, count)`` pair of the *_nb methods."""
        offset = int(offset)
        if offset < 0:
            raise WindowError(
                f"negative offset {offset} into {self._where()}"
            )
        if count <= 0:
            raise WindowError(
                f"zero-length access (count={count}) on {self._where()}"
            )
        return offset

    def __getitem__(self, key: tuple[int, int | slice]) -> np.ndarray | float:
        """``w[trg, index]`` — one-sided get from rank ``trg``."""
        trg, index = key
        trg = self._check_trg(trg)
        offset, count = self._resolve(index)
        data = self._ctx.get(trg, self.name, offset, count)
        return float(data[0]) if isinstance(index, int) else data

    def __setitem__(self, key: tuple[int, int | slice], value) -> None:
        """``w[trg, index] = value`` — one-sided put into rank ``trg``."""
        trg, index = key
        trg = self._check_trg(trg)
        offset, count = self._resolve(index)
        payload = np.broadcast_to(np.asarray(value), (count,))
        self._ctx.put(trg, self.name, offset, payload)

    def accumulate(
        self,
        trg: int,
        offset: int,
        data: np.ndarray,
        op: AccumulateOp = AccumulateOp.SUM,
    ) -> CommAction:
        """Combining put into rank ``trg`` at ``offset`` (MPI_Accumulate)."""
        return self._ctx.accumulate(self._check_trg(trg), self.name, offset, data, op)

    # --- nonblocking variants -------------------------------------------
    def put_nb(self, trg: int, offset: int, data: np.ndarray) -> OpHandle:
        """Nonblocking put into rank ``trg``; completes at flush/unlock/gsync."""
        trg = self._check_trg(trg)
        data = np.asarray(data).ravel()
        offset = self._check_offset(offset, data.size)
        return self._ctx.put_nb(trg, self.name, offset, data)

    def get_nb(self, trg: int, offset: int, count: int) -> OpHandle:
        """Nonblocking get from rank ``trg``; the handle's buffer materializes
        at the next flush/unlock/gsync towards ``trg``."""
        trg = self._check_trg(trg)
        offset = self._check_offset(offset, count)
        return self._ctx.get_nb(trg, self.name, offset, count)

    def accumulate_nb(
        self,
        trg: int,
        offset: int,
        data: np.ndarray,
        op: AccumulateOp = AccumulateOp.SUM,
    ) -> OpHandle:
        """Nonblocking combining put into rank ``trg``."""
        trg = self._check_trg(trg)
        data = np.asarray(data).ravel()
        offset = self._check_offset(offset, data.size)
        return self._ctx.accumulate_nb(trg, self.name, offset, data, op)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"WindowHandle({self.name!r}, rank={self._ctx.rank})"


class RankContext:
    """Everything one rank of an SPMD job may do, with its rank pre-bound."""

    __slots__ = ("_runtime", "rank", "nranks", "_issued")

    def __init__(self, runtime: "RmaRuntime", rank: int) -> None:
        self._runtime = runtime
        self.rank = rank
        self.nranks = runtime.nprocs
        #: Collective tokens issued but not yet yielded to the scheduler.
        self._issued: list[Collective] = []

    # ------------------------------------------------------------------
    # Windows
    # ------------------------------------------------------------------
    def win(self, name: str) -> WindowHandle:
        """Handle on window ``name``, bound to this rank."""
        return WindowHandle(self, name)

    def local(self, window: str) -> np.ndarray:
        """Mutable numpy view of this rank's own buffer of ``window``."""
        return self._runtime.local_view(self.rank, window)

    # ------------------------------------------------------------------
    # Communication (origin = this rank)
    # ------------------------------------------------------------------
    def put(self, trg: int, window: str, offset: int, data: np.ndarray) -> CommAction:
        """One-sided write into rank ``trg`` (MPI_Put)."""
        return self._runtime.put(self.rank, trg, window, offset, data)

    def get(self, trg: int, window: str, offset: int, count: int) -> np.ndarray:
        """One-sided read from rank ``trg`` (MPI_Get)."""
        return self._runtime.get(self.rank, trg, window, offset, count)

    def accumulate(
        self,
        trg: int,
        window: str,
        offset: int,
        data: np.ndarray,
        op: AccumulateOp = AccumulateOp.SUM,
    ) -> CommAction:
        """Combining put into rank ``trg`` (MPI_Accumulate)."""
        return self._runtime.accumulate(self.rank, trg, window, offset, data, op)

    # --- nonblocking variants (complete at flush/unlock/gsync) ----------
    def put_nb(self, trg: int, window: str, offset: int, data: np.ndarray) -> OpHandle:
        """Issue a nonblocking one-sided write into rank ``trg``."""
        return self._runtime.put_nb(self.rank, trg, window, offset, data)

    def get_nb(self, trg: int, window: str, offset: int, count: int) -> OpHandle:
        """Issue a nonblocking one-sided read from rank ``trg``.

        The returned handle's :meth:`~repro.rma.handles.OpHandle.result`
        raises until a ``flush``/``unlock``/``gsync`` completes the epoch.
        """
        return self._runtime.get_nb(self.rank, trg, window, offset, count)

    def accumulate_nb(
        self,
        trg: int,
        window: str,
        offset: int,
        data: np.ndarray,
        op: AccumulateOp = AccumulateOp.SUM,
    ) -> OpHandle:
        """Issue a nonblocking combining put into rank ``trg``."""
        return self._runtime.accumulate_nb(self.rank, trg, window, offset, data, op)

    def get_accumulate(
        self,
        trg: int,
        window: str,
        offset: int,
        data: np.ndarray,
        op: AccumulateOp = AccumulateOp.SUM,
    ) -> np.ndarray:
        """Atomic combine returning the previous target values."""
        return self._runtime.get_accumulate(self.rank, trg, window, offset, data, op)

    def fetch_and_op(
        self,
        trg: int,
        window: str,
        offset: int,
        value: float,
        op: AccumulateOp = AccumulateOp.SUM,
    ) -> float:
        """Single-element atomic fetch-and-op (MPI_Fetch_and_op)."""
        return self._runtime.fetch_and_op(self.rank, trg, window, offset, value, op)

    def compare_and_swap(
        self, trg: int, window: str, offset: int, compare: float, value: float
    ) -> float:
        """Single-element atomic CAS; returns the previous target value."""
        return self._runtime.compare_and_swap(
            self.rank, trg, window, offset, compare, value
        )

    # ------------------------------------------------------------------
    # Point-to-point synchronization
    # ------------------------------------------------------------------
    def lock(self, trg: int, structure: str | None = None) -> SyncAction:
        """Acquire a lock on rank ``trg``."""
        return self._runtime.lock(self.rank, trg, structure)

    def unlock(self, trg: int, structure: str | None = None) -> SyncAction:
        """Release a lock on rank ``trg``."""
        return self._runtime.unlock(self.rank, trg, structure)

    def flush(self, trg: int) -> SyncAction:
        """Complete all outstanding operations towards rank ``trg``."""
        return self._runtime.flush(self.rank, trg)

    def flush_all(self) -> SyncAction:
        """Complete all outstanding operations of this rank."""
        return self._runtime.flush_all(self.rank)

    # ------------------------------------------------------------------
    # Collectives — suspension tokens for the cooperative scheduler
    # ------------------------------------------------------------------
    def gsync(self) -> Collective:
        """Request a global window synchronization; ``yield`` the result.

        The returned token must be yielded by the kernel; the scheduler
        performs one :meth:`~repro.rma.runtime.RmaRuntime.gsync` when every
        rank of the phase has yielded it.
        """
        self._issued.append(Collective.GSYNC)
        return Collective.GSYNC

    def barrier(self) -> Collective:
        """Request a plain barrier; ``yield`` the result."""
        self._issued.append(Collective.BARRIER)
        return Collective.BARRIER

    # ------------------------------------------------------------------
    # Compute and clocks
    # ------------------------------------------------------------------
    def compute(self, flops: float) -> float:
        """Charge ``flops`` of application compute on this rank's clock."""
        return self._runtime.compute(self.rank, flops)

    def now(self) -> float:
        """Current virtual time of this rank."""
        return self._runtime.cluster.now(self.rank)

    # ------------------------------------------------------------------
    # Scheduler bookkeeping
    # ------------------------------------------------------------------
    def _consume_token(self, token: object) -> Collective:
        """Validate a value yielded by this rank's kernel."""
        if not isinstance(token, Collective):
            raise SchedulerError(
                f"rank {self.rank} yielded {token!r}; kernels may only yield "
                f"collective tokens (`yield ctx.gsync()` / `yield ctx.barrier()`)"
            )
        if not self._issued or self._issued[0] is not token:
            raise SchedulerError(
                f"rank {self.rank} yielded {token} without issuing it via the "
                f"context; call `yield ctx.{token.value}()`"
            )
        self._issued.pop(0)
        return token

    def _check_no_pending_collective(self) -> None:
        """A finished kernel must not leave un-yielded collectives behind."""
        if self._issued:
            pending = self._issued[0]
            self._issued.clear()
            raise SchedulerError(
                f"rank {self.rank} called ctx.{pending.value}() without yielding "
                f"it; collectives suspend the kernel, so write it as a generator "
                f"(`yield ctx.{pending.value}()`)"
            )

    def _reset(self) -> None:
        """Drop pending tokens (the step was aborted by a failure)."""
        self._issued.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RankContext(rank={self.rank}, nranks={self.nranks})"
