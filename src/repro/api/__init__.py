"""The rank-centric session API — how programs are written against the runtime.

This package is the application-facing redesign of the reproduction: instead
of hand-wiring ``Cluster`` + ``RmaRuntime`` + ``ActionLog`` +
``CoordinatedCheckpointer`` + ``RecoveryManager`` and hand-rolling the
catch/rollback/resume loop, a program declares a topology and a
fault-tolerance policy, launches a session, and expresses its computation as
plain per-rank kernels::

    import repro

    def kernel(ctx, step):
        w = ctx.win("u")
        w[(ctx.rank + 1) % ctx.nranks, 0] = w.local[1]   # one-sided put
        yield ctx.gsync()                                 # collective
        w.local[1:-1] += 0.5

    with repro.launch(nprocs=8, ft=repro.FaultTolerancePolicy(interval=10)) as job:
        job.allocate("u", 34)
        job.run(kernel, steps=100)

* :mod:`~repro.api.policy` — :class:`FaultTolerancePolicy` and
  :class:`Topology`, the declarative session inputs;
* :mod:`~repro.api.context` — :class:`RankContext` and :class:`WindowHandle`,
  the per-rank view kernels program against;
* :mod:`~repro.api.scheduler` — the deterministic cooperative scheduler
  round-robining kernels over alive ranks;
* :mod:`~repro.api.session` — :func:`launch`, :class:`Job` and
  :class:`JobReport`; the session owns checkpointing and recovery, exactly as
  the paper's library does via PMPI interposition (§6.1).
"""

from repro.api.context import Collective, RankContext, WindowHandle
from repro.api.policy import FaultTolerancePolicy, Topology
from repro.api.scheduler import CooperativeScheduler, Kernel
from repro.api.session import Job, JobReport, SessionObserver, launch

__all__ = [
    "Collective",
    "RankContext",
    "WindowHandle",
    "FaultTolerancePolicy",
    "Topology",
    "CooperativeScheduler",
    "Kernel",
    "Job",
    "JobReport",
    "SessionObserver",
    "launch",
]
