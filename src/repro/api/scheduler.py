"""The deterministic cooperative scheduler driving SPMD kernels.

One driver thread executes all ranks.  For each job step the scheduler calls
``kernel(ctx, step)`` for every alive rank, in ascending rank order:

* a **plain function** runs to completion immediately — fine for kernels
  whose per-rank bodies are independent within a step (atomics, puts into
  disjoint locations);
* a **generator function** is advanced cooperatively: it runs until it yields
  a :class:`~repro.api.context.Collective` token, the scheduler moves on to
  the next rank, and once *every* still-active rank has yielded a matching
  token the collective is performed exactly once on the shared runtime and
  all ranks resume.  This round-robin over suspension points is what makes
  ``yield ctx.gsync()`` inside a kernel behave like a real SPMD collective.

The schedule is a pure function of (kernel, policy, seed, failure schedule):
rank order is fixed, phases advance in lockstep, and the virtual clocks of
the underlying cluster provide the only notion of time — so two runs with
identical inputs produce bit-identical traces and clocks.

Failures are *not* handled here: a :class:`~repro.errors.ProcessFailedError`
raised by any action or collective aborts the step (open generators are
closed so their ``finally`` blocks run) and propagates to the session, which
owns recovery.  The one exception is a failure-tolerant delivery mode
(:mod:`repro.qos`): its :class:`~repro.errors.RankSuspendedError` names a
single suspended rank, so only *that* rank's kernel is abandoned for the
step — survivors keep running, and the session repairs the suspended rank at
the next step boundary.
"""

from __future__ import annotations

import inspect
from collections.abc import Callable, Generator
from typing import TYPE_CHECKING

from repro.api.context import Collective, RankContext
from repro.errors import RankSuspendedError, SchedulerError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from repro.rma.runtime import RmaRuntime

__all__ = ["CooperativeScheduler", "Kernel"]

#: A kernel: plain function or generator function of ``(ctx, step)``.
Kernel = Callable[[RankContext, int], object]


class CooperativeScheduler:
    """Round-robin driver of per-rank kernels over a shared runtime."""

    def __init__(self, runtime: "RmaRuntime", contexts: list[RankContext]) -> None:
        self.runtime = runtime
        self.contexts = contexts

    # ------------------------------------------------------------------
    def run_step(self, kernel: Kernel, step: int) -> None:
        """Execute ``kernel(ctx, step)`` for every rank, one full SPMD step.

        Raises whatever the kernels or collectives raise — notably
        :class:`~repro.errors.ProcessFailedError` on an observed failure —
        after closing all suspended generators and clearing context state.
        """
        active: list[tuple[RankContext, Generator]] = []
        excised = self.runtime.excised
        try:
            for ctx in self.contexts:
                if ctx.rank in excised:
                    # Ranks removed by a degraded continuation have no
                    # replacement process; the shrunk membership simply skips
                    # them (best-effort mode).
                    continue
                try:
                    result = kernel(ctx, step)
                except RankSuspendedError as exc:
                    if exc.rank != ctx.rank:
                        raise
                    self._note_suspended(ctx)
                    continue
                if inspect.isgenerator(result):
                    active.append((ctx, result))
                else:
                    ctx._check_no_pending_collective()
            while active:
                active = self._run_phase(active)
        except BaseException:
            for ctx, gen in active:
                gen.close()
            for ctx in self.contexts:
                ctx._reset()
            raise

    # ------------------------------------------------------------------
    def _run_phase(
        self, active: list[tuple[RankContext, Generator]]
    ) -> list[tuple[RankContext, Generator]]:
        """Advance every active generator to its next suspension point.

        Returns the ranks still suspended after performing their requested
        collective (once), in rank order.
        """
        requests: list[Collective] = []
        still_active: list[tuple[RankContext, Generator]] = []
        for ctx, gen in active:
            try:
                token = next(gen)
            except StopIteration:
                ctx._check_no_pending_collective()
                continue
            except RankSuspendedError as exc:
                if exc.rank != ctx.rank:
                    raise
                gen.close()
                ctx._reset()
                self._note_suspended(ctx)
                continue
            requests.append(ctx._consume_token(token))
            still_active.append((ctx, gen))
        if not still_active:
            return []
        kinds = set(requests)
        if len(kinds) != 1:
            ranks = [ctx.rank for ctx, _ in still_active]
            raise SchedulerError(
                f"ranks {ranks} yielded mismatched collectives "
                f"{sorted(k.value for k in kinds)} in the same phase; SPMD "
                f"kernels must reach collectives uniformly"
            )
        self._perform(kinds.pop())
        return still_active

    def _note_suspended(self, ctx: RankContext) -> None:
        """Count one abandoned kernel turn of a suspended rank (qos metrics)."""
        delivery = self.runtime.delivery
        if delivery is not None:
            delivery.metrics.count("suspended_steps", ctx.rank)
            self.runtime.cluster.metrics.incr(
                "qos.suspended_steps", rank=ctx.rank
            )

    def _perform(self, kind: Collective) -> None:
        """Execute one collective on the shared runtime."""
        if kind is Collective.GSYNC:
            self.runtime.gsync()
        elif kind is Collective.BARRIER:
            self.runtime.barrier()
        else:  # pragma: no cover - defensive
            raise SchedulerError(f"unknown collective {kind!r}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CooperativeScheduler(nranks={len(self.contexts)})"
