"""Shared component-registry resolution.

Every pluggable seam of the library — RMA execution backends, checkpoint
stores, recovery protocols — follows the same convention: a module-level
``dict`` mapping short names to classes, and a keyword argument that accepts
either such a name or a ready instance.  :func:`resolve_component` implements
the lookup once so every seam produces the same error shape: an unknown name
raises the *caller's* error class naming the bad value **and listing every
registered choice** (never a bare ``KeyError``), and a value of the wrong
type says what was expected.
"""

from __future__ import annotations

from typing import TypeVar

T = TypeVar("T")

__all__ = ["resolve_component"]


def resolve_component(
    kind: str,
    spec: object,
    registry: dict[str, type[T]],
    base: type[T],
    error: type[Exception],
    *,
    default: str | None = None,
    dry_run: bool = False,
    **kwargs: object,
) -> T:
    """Resolve ``spec`` into a fresh (or given) instance of ``base``.

    Parameters
    ----------
    kind:
        Human name of the seam ("backend", "checkpoint store", ...) used in
        error messages.
    spec:
        ``None`` (use ``default``), a registered name, or an instance of
        ``base`` passed through unchanged (so tests and instrumented runs can
        inject custom implementations).
    registry:
        The seam's name → class registry.
    base:
        The protocol class instances must satisfy.
    error:
        Exception class raised on an unknown name or a wrong-typed value.
    default:
        Registry name substituted for ``spec=None``.
    dry_run:
        Validate only: an unknown name or wrong-typed value still raises,
        but nothing is constructed and ``None`` is returned for names.  Used
        by declarative policies to fail at declaration time without
        instantiating anything.
    kwargs:
        Constructor arguments forwarded when a *name* is instantiated;
        ignored for pass-through instances (their own configuration wins).
    """
    if spec is None:
        if default is None:
            raise error(f"a {kind} is required (none given and no default)")
        spec = default
    if isinstance(spec, base):
        return spec
    if isinstance(spec, str):
        cls = registry.get(spec)
        if cls is None:
            known = ", ".join(repr(name) for name in sorted(registry))
            raise error(
                f"unknown {kind} {spec!r}; registered {kind}s are: {known} "
                f"(or pass a {base.__name__} instance)"
            )
        if dry_run:
            return None  # type: ignore[return-value]
        return cls(**kwargs)  # type: ignore[call-arg]
    raise error(
        f"{kind} must be a registered name or a {base.__name__} instance, "
        f"got {spec!r}"
    )
