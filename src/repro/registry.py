"""Shared component-registry resolution and introspection.

Every pluggable seam of the library — RMA execution backends, checkpoint
stores, recovery protocols, study workloads — follows the same convention: a
module-level ``dict`` mapping short names to classes, and a keyword argument
that accepts either such a name or a ready instance.  This module implements
the two shared halves of that convention:

* :func:`resolve_component` — the lookup, done once so every seam produces
  the same error shape: an unknown name raises the *caller's* error class
  naming the bad value **and listing every registered choice** (never a bare
  ``KeyError``), and a value of the wrong type says what was expected;
* :func:`available` — read-only introspection: the registered names of a
  seam, by kind (``"backend"``, ``"store"``, ``"recovery"``,
  ``"workload"``).  Error messages and user-facing listings both come from
  here, so they can never drift apart.

Seam modules declare themselves with :func:`register_kind` at import time;
:func:`available` lazily imports the built-in seams so it works without the
caller having touched them first.
"""

from __future__ import annotations

from typing import TypeVar

T = TypeVar("T")

__all__ = [
    "all_kinds",
    "available",
    "plural",
    "register_kind",
    "render_available",
    "resolve_component",
]

#: kind -> (name -> class), populated by :func:`register_kind`.
_KINDS: dict[str, dict[str, type]] = {}

#: Modules that register the built-in kinds, imported lazily by
#: :func:`available` so introspection works before any seam has been used.
_BUILTIN_KIND_MODULES = (
    "repro.backends",
    "repro.ft.stores",
    "repro.ft.protocols",
    "repro.study.workloads",
    "repro.chaos.scenarios",
    "repro.chaos.monitor",
    "repro.chaos.soak",
    "repro.serve.service",
    "repro.qos.delivery",
)

#: Whether every built-in seam module has been imported already (memoized so
#: introspection paths can call :func:`_import_builtins` unconditionally).
_builtins_loaded = False


def _import_builtins() -> None:
    global _builtins_loaded
    if _builtins_loaded:
        return
    import importlib

    for module in _BUILTIN_KIND_MODULES:
        importlib.import_module(module)
    _builtins_loaded = True


def register_kind(kind: str, registry: dict[str, type]) -> None:
    """Declare ``registry`` as the name → class table of seam ``kind``.

    Called once at import time by each seam module.  The *same dict object*
    the seam resolves against is registered, so :func:`available` can never
    disagree with :func:`resolve_component`.
    """
    _KINDS[kind] = registry


def available(kind: str) -> tuple[str, ...]:
    """Sorted names registered for seam ``kind`` (read-only introspection).

    ``kind`` is one of ``"backend"``, ``"store"``, ``"recovery"``,
    ``"workload"`` (plus any kind registered by third-party extensions).
    Raises :class:`KeyError` naming the known kinds for an unknown one.

    Always loads the built-in seam modules first: some of them *extend* a
    registry another module created (``repro.serve.service`` adds its
    workload to the study catalog), so the kind being present is not proof
    the listing is complete.
    """
    _import_builtins()
    registry = _KINDS.get(kind)
    if registry is None:
        known = ", ".join(repr(name) for name in sorted(_KINDS))
        raise KeyError(f"unknown component kind {kind!r}; registered kinds are: {known}")
    return tuple(sorted(registry))


def _known_names(kind: str, registry: dict[str, type[T]]) -> tuple[str, ...]:
    """The listing used in error messages: :func:`available` when the seam is
    registered under ``kind``, the raw registry otherwise (custom seams)."""
    if _KINDS.get(kind) is registry:
        return available(kind)
    return tuple(sorted(registry))


def all_kinds() -> tuple[str, ...]:
    """Sorted names of every registered seam kind (imports the built-ins)."""
    _import_builtins()
    return tuple(sorted(_KINDS))


def render_available() -> str:
    """Multi-line listing of every kind and its registered names.

    Shared by the ``--list`` flags of ``python -m repro.study`` and
    ``python -m repro.chaos`` so both CLIs print the same catalog.
    """
    lines = []
    for kind in all_kinds():
        lines.append(f"{plural(kind)}: {', '.join(available(kind))}")
    return "\n".join(lines)


def plural(kind: str) -> str:
    """Plural form of a kind name for error messages ("recovery" → "recoveries")."""
    return kind[:-1] + "ies" if kind.endswith("y") else kind + "s"


def resolve_component(
    kind: str,
    spec: object,
    registry: dict[str, type[T]],
    base: type[T],
    error: type[Exception],
    *,
    default: str | None = None,
    dry_run: bool = False,
    **kwargs: object,
) -> T:
    """Resolve ``spec`` into a fresh (or given) instance of ``base``.

    Parameters
    ----------
    kind:
        Name of the seam ("backend", "store", ...) used in error messages and
        matched against :func:`register_kind` declarations.
    spec:
        ``None`` (use ``default``), a registered name, or an instance of
        ``base`` passed through unchanged (so tests and instrumented runs can
        inject custom implementations).
    registry:
        The seam's name → class registry.
    base:
        The protocol class instances must satisfy.
    error:
        Exception class raised on an unknown name or a wrong-typed value.
    default:
        Registry name substituted for ``spec=None``.
    dry_run:
        Validate only: an unknown name or wrong-typed value still raises,
        but nothing is constructed and ``None`` is returned for names.  Used
        by declarative policies to fail at declaration time without
        instantiating anything.
    kwargs:
        Constructor arguments forwarded when a *name* is instantiated;
        ignored for pass-through instances (their own configuration wins).
    """
    if spec is None:
        if default is None:
            raise error(f"a {kind} is required (none given and no default)")
        spec = default
    if isinstance(spec, base):
        return spec
    if isinstance(spec, str):
        cls = registry.get(spec)
        if cls is None and _KINDS.get(kind) is registry:
            # A built-in seam module may extend this registry without having
            # been imported yet (e.g. "kv_service" lives in repro.serve but
            # registers into the study workload catalog): load the built-ins
            # and look again before declaring the name unknown.
            _import_builtins()
            cls = registry.get(spec)
        if cls is None:
            known = ", ".join(repr(name) for name in _known_names(kind, registry))
            raise error(
                f"unknown {kind} {spec!r}; registered {plural(kind)} are: {known} "
                f"(or pass a {base.__name__} instance)"
            )
        if dry_run:
            return None  # type: ignore[return-value]
        return cls(**kwargs)  # type: ignore[call-arg]
    raise error(
        f"{kind} must be a registered name or a {base.__name__} instance, "
        f"got {spec!r}"
    )
