"""Shared command-line conventions of the ``repro`` engines.

Four engines ship a ``python -m`` entry point — :mod:`repro.study`,
:mod:`repro.chaos`, :mod:`repro.serve` and :mod:`repro.qos` — and they follow
one contract: ``--list`` prints the component registry and exits, ``--quick``
swaps in the engine's seconds-long CI configuration, ``--seed`` seeds every
stochastic choice, and the report epilogue (markdown to stdout, optional JSON
artifact, invariant gate, baseline gate) behaves identically everywhere.
This module is that contract in one place; the per-engine ``__main__``
modules only contribute their sweep axes and their gate functions.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Callable, Iterator
from contextlib import contextmanager

from repro.registry import render_available

__all__ = [
    "csv",
    "add_common_arguments",
    "add_report_arguments",
    "handle_list",
    "trace_run",
    "write_outputs",
    "run_gates",
]


def csv(value: str) -> tuple[str, ...]:
    """``argparse`` type for comma-separated name lists (blanks dropped)."""
    return tuple(item.strip() for item in value.split(",") if item.strip())


def add_common_arguments(parser: argparse.ArgumentParser, *, default_seed: int) -> None:
    """The flags every engine answers identically.

    ``default_seed`` preserves each engine's historical default (and thereby
    its checked-in baselines); everything else about ``--seed``, ``--quick``
    and ``--list`` is shared behavior.
    """
    parser.add_argument(
        "--list", action="store_true",
        help="print every registered component of every kind and exit",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="run the engine's seconds-long CI configuration "
             "(overrides the sweep options)",
    )
    parser.add_argument(
        "--seed", type=int, default=default_seed,
        help=f"master seed for every stochastic choice (default {default_seed})",
    )
    parser.add_argument(
        "--trace", default=None, metavar="PATH",
        help="dump a full-run virtual-time trace (canonical JSONL; inspect "
             "with `python -m repro.trace`)",
    )


@contextmanager
def trace_run(args: argparse.Namespace) -> Iterator[None]:
    """Activate a run-wide trace hub when ``--trace PATH`` was given.

    Engines wrap their run call in this context; every session they launch
    inside joins the hub (labelled by comparison cell), and the merged
    trace is written — atomically, even when the run raises — on exit.
    Without ``--trace`` this is a no-op.
    """
    path = getattr(args, "trace", None)
    if not path:
        yield
        return
    from repro.trace.tracer import tracing

    with tracing(path=path):
        yield
    print(f"trace written to {path}")


def add_report_arguments(
    parser: argparse.ArgumentParser, *, regression_metric: str
) -> None:
    """The shared report/gate flags (``--output`` … ``--skip-invariants``)."""
    parser.add_argument(
        "--output", default=None, metavar="PATH", help="write the JSON report here"
    )
    parser.add_argument(
        "--markdown", default=None, metavar="PATH",
        help="write the markdown summary here (always printed to stdout)",
    )
    parser.add_argument(
        "--check-baseline", default=None, metavar="PATH",
        help="compare against a baseline JSON report and exit 1 on regression",
    )
    parser.add_argument(
        "--max-regression", type=float, default=2.0,
        help=f"tolerated {regression_metric} ratio against the baseline "
             f"(default 2.0)",
    )
    parser.add_argument(
        "--skip-invariants", action="store_true",
        help="do not gate on the report invariants (debugging only)",
    )


def handle_list(args: argparse.Namespace) -> bool:
    """Serve ``--list`` (returns True when the caller should exit 0)."""
    if getattr(args, "list", False):
        print(render_available())
        return True
    return False


def write_outputs(args: argparse.Namespace, markdown: str, json_text: str) -> None:
    """The shared artifact epilogue: markdown to stdout, files on request."""
    print(markdown, end="")
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(json_text)
        print(f"report written to {args.output}")
    if args.markdown:
        with open(args.markdown, "w") as fh:
            fh.write(markdown)
        print(f"summary written to {args.markdown}")


def run_gates(
    args: argparse.Namespace,
    *,
    check_invariants: Callable[[], list[str]],
    invariants_message: str,
    check_baseline: Callable[[dict, float], list[str]],
) -> int:
    """The shared gate epilogue; returns the process exit status.

    ``check_invariants`` is called unless ``--skip-invariants``;
    ``check_baseline(baseline_doc, max_ratio)`` is called when
    ``--check-baseline`` names a file.  Violations go to stderr, prefixed
    ``INVARIANT:`` / ``REGRESSION:`` — the strings CI greps for.
    """
    status = 0
    if not args.skip_invariants:
        violations = check_invariants()
        for violation in violations:
            print(f"INVARIANT: {violation}", file=sys.stderr)
        if violations:
            status = 1
        else:
            print(invariants_message)
    if args.check_baseline:
        with open(args.check_baseline) as fh:
            baseline = json.load(fh)
        failures = check_baseline(baseline, args.max_regression)
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        if failures:
            status = 1
        else:
            print(
                f"baseline check passed against {args.check_baseline} "
                f"(tolerance {args.max_regression:.1f}x)"
            )
    return status
