"""The trace event bus: one tracer per job, one hub per run.

A :class:`Tracer` is the single instrumentation source for a job.  It
plugs into every existing seam at once —

* an :class:`~repro.rma.interceptor.RmaInterceptor` for the op
  issue/completion stream, window creation, runtime-observed failures,
  respawns and finalization;
* a duck-typed ``SessionObserver`` for step/checkpoint/recovery spans;
* a :class:`~repro.ft.inject.FaultInjector` listener for kill events;
* the checkpoint-store placement hook for per-level bytes;
* the delivery-mode metrics hook for drop/stale decisions

— and emits schema-validated events stamped with ``cluster.elapsed()``.
Because every seam fires at runtime level (before backend-specific cost
accounting diverges in wall time), the resulting event stream is
byte-identical across the sim, vector and proc backends for the same
seed; host-specific facts live under the segregated ``rt`` sub-object.

Downstream consumers subscribe to the bus (``tracer.subscribe(fn)``):
``ChaosMonitor`` and the serve ``WindowTracker`` are driven this way
instead of registering their own observer/listener stacks.

A :class:`TraceHub` collects the tracers of a whole multi-job run
(probe sessions, every comparison cell) into one merged trace file.
Engines label their sessions with :func:`trace_label` using the cell
key, and the hub orders the merged stream by ``(label, index)`` — never
by wall-clock arrival — so serial and thread executors produce
byte-identical files.  (Process-pool executors run jobs in children
that cannot see the parent's hub; those jobs are simply absent from the
merged trace.)
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import TYPE_CHECKING, Callable, Iterator

from repro.errors import TraceError
from repro.rma.interceptor import RmaInterceptor
from repro.trace.events import write_trace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.api.session import Job
    from repro.ft.inject import FiredKill

__all__ = [
    "Tracer",
    "TraceHub",
    "current_trace_hub",
    "install_trace",
    "trace_label",
    "tracing",
]

#: Detail levels: ``"full"`` records the per-op interceptor stream,
#: ``"lifecycle"`` keeps only session/fault/store/qos events (what the
#: chaos and serve monitors need, at near-zero volume).
_DETAIL_LEVELS = ("full", "lifecycle")


class Tracer:
    """Deterministic event bus for one job."""

    def __init__(
        self,
        *,
        detail: str = "full",
        job: str = "main",
        order: tuple[str, int] | None = None,
    ) -> None:
        if detail not in _DETAIL_LEVELS:
            raise TraceError(
                f"unknown trace detail {detail!r}; expected one of {_DETAIL_LEVELS}"
            )
        self.detail = detail
        self.job = job
        self.order = order if order is not None else (job, 0)
        self.events: list[dict] = []
        self.interceptor = _TraceInterceptor(self)
        self.observer = _TraceObserver(self)
        self._seq = 0
        self._cluster = None
        self._subscribers: list[Callable[[dict], None]] = []
        self._wall_started: float | None = None

    # ------------------------------------------------------------------
    # Bus plumbing
    # ------------------------------------------------------------------
    @property
    def full(self) -> bool:
        """Whether the per-op interceptor stream is recorded."""
        return self.detail == "full"

    def subscribe(self, fn: Callable[[dict], None]) -> None:
        """Deliver every subsequent event to ``fn``, synchronously."""
        self._subscribers.append(fn)

    def bind(self, job: Job) -> None:
        """Point virtual-time stamps at ``job``'s cluster clock."""
        if self._cluster is not None and self._cluster is not job.cluster:
            raise TraceError(
                f"tracer {self.job!r} is already bound to another job; "
                "use one tracer per job"
            )
        self._cluster = job.cluster
        self._wall_started = time.perf_counter()

    def _now(self) -> float:
        if self._cluster is None:
            raise TraceError(
                f"tracer {self.job!r} is not bound to a job; "
                "install it with install_trace() or Job(trace=...)"
            )
        return self._cluster.elapsed()

    def emit(self, type_: str, t: float, *, rt: dict | None = None, **fields) -> dict:
        """Append one event to the stream and fan it out to subscribers."""
        event = {"type": type_, "t": float(t), "seq": self._seq, "job": self.job}
        event.update(fields)
        if rt:
            event["rt"] = rt
        self._seq += 1
        self.events.append(event)
        for fn in self._subscribers:
            fn(event)
        return event

    # ------------------------------------------------------------------
    # Listener entry points for the non-interceptor seams
    # ------------------------------------------------------------------
    def on_kill(self, record: FiredKill) -> None:
        """Fault-injector listener: one event per fired or skipped kill."""
        t = self._now()
        if record.skipped:
            self.emit(
                "kill_skipped",
                t,
                rank=record.event.rank,
                kind=record.event.kind.value,
                after_ops=record.event.after_ops,
            )
        else:
            self.emit(
                "kill_fired",
                t,
                rank=record.event.rank,
                victims=list(record.victims),
                kind=record.event.kind.value,
                after_ops=record.event.after_ops,
                rt={"real": bool(record.real)},
            )

    def on_store_placement(
        self, store: str, level: str, rank: int, nbytes: int, incremental: bool
    ) -> None:
        """Checkpoint-store hook: bytes placed at one level for one rank."""
        self.emit(
            "checkpoint_stored",
            self._now(),
            store=store,
            level=level,
            rank=rank,
            nbytes=int(nbytes),
            incremental=bool(incremental),
        )

    def on_qos_decision(self, decision: str, rank: int, n: int) -> None:
        """Delivery-mode hook: one drop/stale/repair decision."""
        self.emit("qos_decision", self._now(), decision=decision, rank=rank, n=int(n))

    def _emit_job_finished(self) -> None:
        rt = None
        if self._wall_started is not None:
            rt = {"wall_s": time.perf_counter() - self._wall_started}
        self.emit("job_finished", self._now(), rt=rt)


class _TraceInterceptor(RmaInterceptor):
    """Runtime-seam adapter: RMA ops, windows, failures, finalization."""

    name = "trace"

    def __init__(self, tracer: Tracer) -> None:
        self._tracer = tracer

    def on_window_create(self, window) -> None:
        t = self._tracer
        if t.full:
            t.emit(
                "window_created",
                t._now(),
                window=window.name,
                size=int(window.size),
                dtype=str(window.dtype),
                nbytes_per_rank=int(window.nbytes_per_rank),
            )

    def before_comm(self, action) -> None:
        t = self._tracer
        if t.full:
            t.emit("op_issued", t._now(), **_comm_fields(action))

    def after_comm(self, action) -> None:
        t = self._tracer
        if t.full:
            t.emit("op_completed", t._now(), **_comm_fields(action))

    def after_sync(self, action) -> None:
        t = self._tracer
        if t.full:
            t.emit(
                "sync_completed",
                t._now(),
                kind=action.kind.value,
                src=action.src,
                trg=action.trg,
            )

    def on_failure_detected(self, rank: int) -> None:
        t = self._tracer
        t.emit("rank_failed", t._now(), rank=rank)

    def on_respawn(self, rank: int) -> None:
        t = self._tracer
        t.emit("rank_respawned", t._now(), rank=rank)

    def on_finalize(self) -> None:
        self._tracer._emit_job_finished()


def _comm_fields(action) -> dict:
    return {
        "kind": action.kind.value,
        "src": action.src,
        "trg": action.trg,
        "window": action.window,
        "offset": int(action.offset),
        "count": int(action.count),
    }


class _TraceObserver:
    """Session-seam adapter: step/checkpoint/recovery lifecycle spans.

    Duck-typed against ``SessionObserver`` — ``Job._notify`` dispatches
    by attribute, so no subclassing (and no api → trace import cycle).
    """

    def __init__(self, tracer: Tracer) -> None:
        self._tracer = tracer

    def on_step_completed(self, step: int, t: float) -> None:
        self._tracer.emit("step_completed", t, step=step)

    def on_checkpoint(self, step: int, t_start: float, t_end: float, demand: bool) -> None:
        self._tracer.emit(
            "checkpoint_committed",
            t_end,
            step=step,
            t_start=t_start,
            t_end=t_end,
            demand=bool(demand),
        )

    def on_failure_detected(self, rank: int, step: int, t: float) -> None:
        self._tracer.emit("failure_detected", t, rank=rank, step=step)

    def on_recovery_started(self, step: int, t: float) -> None:
        self._tracer.emit("recovery_started", t, step=step)

    def on_protocol_applied(self, outcome, resume_step: int, t: float) -> None:
        self._tracer.emit(
            "protocol_applied",
            t,
            protocol=outcome.protocol,
            kind=outcome.kind,
            failed=list(outcome.failed),
            restored_bytes=int(outcome.restored_bytes),
            fallback=bool(outcome.fallback),
            resume_step=resume_step,
        )

    def on_recovery_completed(self, resume_step: int, t: float) -> None:
        self._tracer.emit("recovery_completed", t, resume_step=resume_step)


def install_trace(job: Job, tracer: Tracer) -> Tracer:
    """Wire ``tracer`` into every seam of ``job``; returns the tracer.

    Called by ``Job.__init__`` when a tracer is supplied (or a trace hub
    is active); the interceptor lands *after* the fault-tolerance
    stack's, so replay suppression and action logging stay ahead of
    instrumentation, and the fault injector's listener (wired by
    ``install_injector``) fires after the op stream has been stamped.
    """
    tracer.bind(job)
    job.trace = tracer
    tracer.emit(
        "job_started",
        job.cluster.elapsed(),
        nprocs=job.nranks,
        rt={"backend": job.runtime.backend.name},
    )
    job.runtime.add_interceptor(tracer.interceptor)
    job.add_observer(tracer.observer)
    if job.ft is not None:
        job.ft.store.add_placement_listener(tracer.on_store_placement)
        job.ft.delivery.metrics.listener = tracer.on_qos_decision
    return tracer


# ---------------------------------------------------------------------------
# The run-wide hub
# ---------------------------------------------------------------------------

_HUB_LOCK = threading.Lock()
_ACTIVE_HUB: TraceHub | None = None
_TLS = threading.local()


class TraceHub:
    """Collects the tracers of a whole run into one deterministic file.

    Jobs created while a hub is active pull a tracer from it; each
    tracer is tagged ``(label, index)`` where the label comes from the
    enclosing :func:`trace_label` block (engines use the comparison cell
    key) and the index counts jobs within that label.  The merged stream
    sorts by that tag, not by completion order, so thread-pool executors
    produce the same bytes as serial execution.
    """

    def __init__(self, *, path: str | None = None, detail: str = "full") -> None:
        self.path = path
        self.detail = detail
        self._lock = threading.Lock()
        self._tracers: list[Tracer] = []
        self._counts: dict[str, int] = {}

    def tracer(self) -> Tracer:
        """A fresh tracer tagged with the current thread's label."""
        label = getattr(_TLS, "label", None) or "main"
        with self._lock:
            index = self._counts.get(label, 0)
            self._counts[label] = index + 1
            tracer = Tracer(
                detail=self.detail, job=f"{label}#{index}", order=(label, index)
            )
            self._tracers.append(tracer)
        return tracer

    def events(self) -> list[dict]:
        """The merged stream, ordered by ``(label, index)`` then ``seq``."""
        with self._lock:
            ordered = sorted(self._tracers, key=lambda tracer: tracer.order)
        return [event for tracer in ordered for event in tracer.events]

    def finish(self) -> int:
        """Write the merged trace to ``path`` (if set); return the count."""
        events = self.events()
        if self.path is not None:
            write_trace(events, self.path)
        return len(events)


def current_trace_hub() -> TraceHub | None:
    """The hub activated by the innermost :func:`tracing` block, if any."""
    return _ACTIVE_HUB


@contextmanager
def tracing(path: str | None = None, *, detail: str = "full") -> Iterator[TraceHub]:
    """Activate a run-wide trace hub; write the merged trace on exit.

    The merged file is published even when the block raises — a partial
    trace of an aborted run is exactly what post-mortems need — and the
    staging temp file never outlives the block either way.
    """
    global _ACTIVE_HUB
    if detail not in _DETAIL_LEVELS:
        raise TraceError(
            f"unknown trace detail {detail!r}; expected one of {_DETAIL_LEVELS}"
        )
    hub = TraceHub(path=path, detail=detail)
    with _HUB_LOCK:
        if _ACTIVE_HUB is not None:
            raise TraceError("a trace hub is already active; tracing() does not nest")
        _ACTIVE_HUB = hub
    try:
        yield hub
    except BaseException:
        with _HUB_LOCK:
            _ACTIVE_HUB = None
        try:
            hub.finish()
        except Exception:  # noqa: BLE001 - don't mask the original failure
            pass
        raise
    else:
        with _HUB_LOCK:
            _ACTIVE_HUB = None
        hub.finish()


@contextmanager
def trace_label(label: str) -> Iterator[None]:
    """Label tracers pulled from the hub on this thread (nest-safe)."""
    previous = getattr(_TLS, "label", None)
    _TLS.label = str(label)
    try:
        yield
    finally:
        _TLS.label = previous
