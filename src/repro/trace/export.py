"""Chrome-trace / Perfetto export for visual timelines.

Converts a trace into the Trace Event Format consumed by
``chrome://tracing`` and https://ui.perfetto.dev: each job becomes a
process row (named via metadata events), each rank a thread row.  RMA
ops and recovery/checkpoint windows become complete (``"X"``) duration
events by pairing their issue/completion bus events; kills, steps and
respawns become instants.  Virtual seconds map to microseconds.
"""

from __future__ import annotations

from collections import deque

__all__ = ["to_chrome_trace"]

_US = 1_000_000.0


def _op_key(event: dict) -> tuple:
    return (
        event["job"],
        event["kind"],
        event["src"],
        event["trg"],
        event["window"],
        event["offset"],
        event["count"],
    )


def to_chrome_trace(events: list[dict]) -> dict:
    """Build a Trace Event Format document from a trace event stream."""
    pids: dict[str, int] = {}
    rows: list[dict] = []

    def pid_of(job: str) -> int:
        if job not in pids:
            pids[job] = len(pids) + 1
            rows.append(
                {
                    "ph": "M",
                    "name": "process_name",
                    "pid": pids[job],
                    "tid": 0,
                    "args": {"name": job},
                }
            )
        return pids[job]

    issued: dict[tuple, deque] = {}
    recovery_open: dict[str, float] = {}
    for event in events:
        type_ = event["type"]
        pid = pid_of(event["job"])
        ts = event["t"] * _US
        if type_ == "op_issued":
            issued.setdefault(_op_key(event), deque()).append(event["t"])
        elif type_ == "op_completed":
            queue = issued.get(_op_key(event))
            began = queue.popleft() if queue else event["t"]
            rows.append(
                {
                    "ph": "X",
                    "name": event["kind"],
                    "cat": "rma",
                    "pid": pid,
                    "tid": event["src"],
                    "ts": began * _US,
                    "dur": (event["t"] - began) * _US,
                    "args": {"trg": event["trg"], "window": event["window"]},
                }
            )
        elif type_ == "sync_completed":
            rows.append(
                {
                    "ph": "i",
                    "name": f"sync:{event['kind']}",
                    "cat": "rma",
                    "pid": pid,
                    "tid": event["src"],
                    "ts": ts,
                    "s": "t",
                }
            )
        elif type_ == "checkpoint_committed":
            rows.append(
                {
                    "ph": "X",
                    "name": "checkpoint",
                    "cat": "ft",
                    "pid": pid,
                    "tid": 0,
                    "ts": event["t_start"] * _US,
                    "dur": (event["t_end"] - event["t_start"]) * _US,
                    "args": {"step": event["step"], "demand": event["demand"]},
                }
            )
        elif type_ == "recovery_started":
            recovery_open[event["job"]] = event["t"]
        elif type_ == "recovery_completed":
            began = recovery_open.pop(event["job"], event["t"])
            rows.append(
                {
                    "ph": "X",
                    "name": "recovery",
                    "cat": "ft",
                    "pid": pid,
                    "tid": 0,
                    "ts": began * _US,
                    "dur": (event["t"] - began) * _US,
                    "args": {"resume_step": event["resume_step"]},
                }
            )
        elif type_ == "request_completed":
            arrival = event.get("arrival_t", event["t"])
            rows.append(
                {
                    "ph": "X",
                    "name": f"req:{event['op']}",
                    "cat": "serve",
                    "pid": pid,
                    "tid": event.get("frontend", 0),
                    "ts": arrival * _US,
                    "dur": max(0.0, event["t"] - arrival) * _US,
                    "args": {"status": event["status"], "key": event.get("key")},
                }
            )
        elif type_ in ("kill_fired", "kill_skipped", "failure_detected",
                       "rank_failed", "rank_respawned", "step_completed"):
            tid = event.get("rank", 0)
            rows.append(
                {
                    "ph": "i",
                    "name": type_,
                    "cat": "fault" if type_ != "step_completed" else "app",
                    "pid": pid,
                    "tid": tid,
                    "ts": ts,
                    "s": "p",
                    "args": {
                        key: value
                        for key, value in event.items()
                        if key not in ("type", "t", "seq", "job", "rt")
                    },
                }
            )
    return {"traceEvents": rows, "displayTimeUnit": "ms"}
