"""repro.trace — deterministic end-to-end tracing over one event bus.

The observability layer of the reproduction: every seam the stack
already exposes (RMA interceptors, session observers, injector
listeners, store placement hooks, delivery-mode decisions, serve
request lifecycles) feeds a single :class:`Tracer` whose events are
stamped in virtual time — byte-identical across the sim, vector and
proc backends and across serial/thread executors, with host-specific
facts segregated under ``rt``.  On top of the bus sit canonical JSONL
persistence, span rollups (:func:`summarize`), first-divergence
localization (:func:`first_divergence`), a Chrome-trace export and the
unified :class:`Telemetry` facade behind ``Job.telemetry()``.

CLI: ``python -m repro.trace summarize|diff|export``.
"""

from repro.trace.diff import Divergence, first_divergence, render_divergence
from repro.trace.events import (
    TRACE_EVENT_TYPES,
    TraceWriter,
    canonical_event,
    event_line,
    event_lines,
    load_trace,
    validate_event,
    write_trace,
)
from repro.trace.export import to_chrome_trace
from repro.trace.summary import render_summary, summarize
from repro.trace.telemetry import Telemetry
from repro.trace.tracer import (
    TraceHub,
    Tracer,
    current_trace_hub,
    install_trace,
    trace_label,
    tracing,
)

__all__ = [
    "Divergence",
    "TRACE_EVENT_TYPES",
    "Telemetry",
    "TraceHub",
    "TraceWriter",
    "Tracer",
    "canonical_event",
    "current_trace_hub",
    "event_line",
    "event_lines",
    "first_divergence",
    "install_trace",
    "load_trace",
    "render_divergence",
    "render_summary",
    "summarize",
    "to_chrome_trace",
    "trace_label",
    "tracing",
    "validate_event",
    "write_trace",
]
