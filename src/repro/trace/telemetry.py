"""The unified telemetry facade behind ``Job.telemetry()``.

Today's counters live in several places: the cluster-level
``MetricsRegistry`` (``rma.*``, ``ft.*``, ``qos.*``, ``inject.*``), the
delivery-mode ``QosMetrics``, chaos episodes and serve SLO windows.
:class:`Telemetry` folds them into one flat, glob-queryable namespace —
the registry counters verbatim, plus ``trace.*`` rollups derived from
the job's tracer (time in recovery, checkpoint bytes by store level,
kill counts) when one is installed.
"""

from __future__ import annotations

from fnmatch import fnmatchcase
from typing import TYPE_CHECKING

from repro.trace.summary import summarize

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.api.session import Job

__all__ = ["Telemetry"]


class Telemetry:
    """One queryable registry over every counter a job produced."""

    def __init__(
        self,
        totals: dict[str, float] | None = None,
        per_rank: dict[str, dict[int, float]] | None = None,
    ) -> None:
        self._totals = dict(totals or {})
        self._per_rank = {name: dict(ranks) for name, ranks in (per_rank or {}).items()}

    @classmethod
    def from_job(cls, job: Job) -> Telemetry:
        """Snapshot ``job``'s metrics registry and trace into one facade."""
        snapshot = job.cluster.metrics.snapshot()
        telemetry = cls(snapshot.totals, snapshot.per_rank)
        if job.trace is not None:
            telemetry.update(_trace_rollups(job.trace.events))
        return telemetry

    # ------------------------------------------------------------------
    # Query API
    # ------------------------------------------------------------------
    def names(self) -> list[str]:
        """Every counter name, sorted."""
        return sorted(self._totals)

    def get(self, name: str, default: float = 0.0) -> float:
        """The total for ``name`` (``default`` when never counted)."""
        return self._totals.get(name, default)

    def per_rank(self, name: str) -> dict[int, float]:
        """Per-rank breakdown of ``name`` (empty for job-level counters)."""
        return dict(self._per_rank.get(name, {}))

    def query(self, pattern: str) -> dict[str, float]:
        """All counters whose name matches a glob, e.g. ``"ft.*"``."""
        return {
            name: value
            for name, value in sorted(self._totals.items())
            if fnmatchcase(name, pattern)
        }

    def update(self, totals: dict[str, float]) -> None:
        """Merge additional namespaced counters into the facade."""
        self._totals.update(totals)

    def as_dict(self) -> dict:
        """JSON-ready view: totals plus per-rank breakdowns."""
        return {
            "totals": dict(sorted(self._totals.items())),
            "per_rank": {
                name: {str(rank): value for rank, value in sorted(ranks.items())}
                for name, ranks in sorted(self._per_rank.items())
            },
        }

    def __contains__(self, name: str) -> bool:
        return name in self._totals

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Telemetry({len(self._totals)} counters)"


def _trace_rollups(events: list[dict]) -> dict[str, float]:
    """Flatten a trace summary into ``trace.*`` namespaced counters."""
    summary = summarize(events)
    rollups = {
        "trace.events": float(summary["events"]),
        "trace.steps": float(summary["steps"]),
        "trace.kills_fired": float(summary["kills"]["fired"]),
        "trace.kills_skipped": float(summary["kills"]["skipped"]),
        "trace.checkpoints": float(summary["checkpoints"]["count"]),
        "trace.checkpoint_seconds": summary["checkpoints"]["seconds"],
        "trace.recovery_episodes": float(summary["recovery"]["episodes"]),
        "trace.recovery_seconds": summary["recovery"]["seconds"],
        "trace.ops": float(summary["ops"]["total"]),
    }
    for level, nbytes in summary["checkpoints"]["bytes_by_level"].items():
        rollups[f"trace.checkpoint_bytes.{level}"] = float(nbytes)
    for decision, count in summary["qos"].items():
        rollups[f"trace.qos.{decision}"] = float(count)
    if summary["requests"]["count"]:
        rollups["trace.requests"] = float(summary["requests"]["count"])
        for status, count in summary["requests"]["by_status"].items():
            rollups[f"trace.requests.{status}"] = float(count)
    return rollups
