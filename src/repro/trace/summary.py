"""Span rollups over a trace: the ``summarize`` half of the CLI.

Aggregates a (possibly multi-job) event stream into the quantities a
performance post-mortem starts from: time in recovery, checkpoint bytes
by store level, op histograms per rank, kill and QoS decision counts,
and serve request outcomes.  Everything is computed from the events
alone, so the same rollup works on a live ``Tracer``, a loaded JSONL
file, or a hub-merged comparison trace.
"""

from __future__ import annotations

from collections import Counter

__all__ = ["render_summary", "summarize"]


def summarize(events: list[dict]) -> dict:
    """Roll a trace up into one nested summary dict (JSON-ready)."""
    by_type = Counter(event["type"] for event in events)
    ops_by_kind: Counter = Counter()
    ops_by_rank: Counter = Counter()
    sync_by_kind: Counter = Counter()
    bytes_by_level: Counter = Counter()
    qos_by_decision: Counter = Counter()
    requests_by_status: Counter = Counter()
    checkpoint_seconds = 0.0
    recovery_seconds = 0.0
    recovery_open: dict[str, float] = {}
    for event in events:
        type_ = event["type"]
        if type_ == "op_completed":
            ops_by_kind[event["kind"]] += 1
            ops_by_rank[event["src"]] += 1
        elif type_ == "sync_completed":
            sync_by_kind[event["kind"]] += 1
        elif type_ == "checkpoint_committed":
            checkpoint_seconds += event["t_end"] - event["t_start"]
        elif type_ == "checkpoint_stored":
            bytes_by_level[event["level"]] += event["nbytes"]
        elif type_ == "qos_decision":
            qos_by_decision[event["decision"]] += event["n"]
        elif type_ == "request_completed":
            requests_by_status[event["status"]] += 1
        elif type_ == "recovery_started":
            recovery_open[event["job"]] = event["t"]
        elif type_ == "recovery_completed":
            started = recovery_open.pop(event["job"], None)
            if started is not None:
                recovery_seconds += event["t"] - started
    return {
        "events": len(events),
        "jobs": by_type["job_started"],
        "steps": by_type["step_completed"],
        "kills": {
            "fired": by_type["kill_fired"],
            "skipped": by_type["kill_skipped"],
        },
        "checkpoints": {
            "count": by_type["checkpoint_committed"],
            "seconds": checkpoint_seconds,
            "bytes_by_level": {
                level: int(n) for level, n in sorted(bytes_by_level.items())
            },
        },
        "recovery": {
            "episodes": by_type["recovery_started"],
            "completed": by_type["recovery_completed"],
            "seconds": recovery_seconds,
        },
        "ops": {
            "total": by_type["op_completed"],
            "by_kind": {kind: int(n) for kind, n in sorted(ops_by_kind.items())},
            "by_rank": {
                str(rank): int(n) for rank, n in sorted(ops_by_rank.items())
            },
        },
        "sync": {kind: int(n) for kind, n in sorted(sync_by_kind.items())},
        "qos": {kind: int(n) for kind, n in sorted(qos_by_decision.items())},
        "requests": {
            "count": by_type["request_completed"],
            "by_status": {
                status: int(n) for status, n in sorted(requests_by_status.items())
            },
        },
    }


def _rows(summary: dict) -> list[tuple[str, str]]:
    rows = [
        ("events", f"{summary['events']}"),
        ("jobs", f"{summary['jobs']}"),
        ("steps", f"{summary['steps']}"),
        ("kills fired / skipped", f"{summary['kills']['fired']} / {summary['kills']['skipped']}"),
        ("checkpoints", f"{summary['checkpoints']['count']}"),
        ("time in checkpoint", f"{summary['checkpoints']['seconds']:.3f} s"),
        ("recovery episodes", f"{summary['recovery']['episodes']}"),
        ("time in recovery", f"{summary['recovery']['seconds']:.3f} s"),
        ("ops completed", f"{summary['ops']['total']}"),
    ]
    for level, nbytes in summary["checkpoints"]["bytes_by_level"].items():
        rows.append((f"bytes @ {level}", f"{nbytes}"))
    for kind, count in summary["ops"]["by_kind"].items():
        rows.append((f"ops[{kind}]", f"{count}"))
    for rank, count in summary["ops"]["by_rank"].items():
        rows.append((f"ops @ rank {rank}", f"{count}"))
    for kind, count in summary["sync"].items():
        rows.append((f"sync[{kind}]", f"{count}"))
    for decision, count in summary["qos"].items():
        rows.append((f"qos[{decision}]", f"{count}"))
    if summary["requests"]["count"]:
        rows.append(("requests", f"{summary['requests']['count']}"))
        for status, count in summary["requests"]["by_status"].items():
            rows.append((f"requests[{status}]", f"{count}"))
    return rows


def render_summary(summary: dict) -> str:
    """Render the rollup as a two-column markdown table."""
    rows = _rows(summary)
    width = max(len(name) for name, _ in rows)
    lines = [
        f"| {'metric'.ljust(width)} | value |",
        f"|-{'-' * width}-|-------|",
    ]
    for name, value in rows:
        lines.append(f"| {name.ljust(width)} | {value} |")
    return "\n".join(lines)
