"""First-divergence localization between two traces.

The house invariant says two runs of the same seeded schedule produce
byte-identical traces modulo the segregated ``rt`` fields.  When that
invariant breaks, a final-digest comparison only says *that* it broke;
:func:`first_divergence` walks the two canonical streams in lockstep and
pins down the first event where they disagree, field by field, together
with the surrounding span context — which op, which step, which rank.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.trace.events import canonical_event, event_line

__all__ = ["Divergence", "first_divergence", "render_divergence"]


@dataclass(frozen=True)
class Divergence:
    """The first point where two traces disagree."""

    #: Index into both streams of the first divergent event.
    index: int
    #: Human-readable description of the disagreement.
    reason: str
    #: The event at ``index`` on each side (``None`` past end of stream).
    left: dict | None
    right: dict | None
    #: The events common to both streams immediately before ``index``.
    context: tuple[dict, ...] = field(default_factory=tuple)


def _field_diffs(left: dict, right: dict) -> list[str]:
    _MISSING = object()
    diffs = []
    for key in sorted(set(left) | set(right)):
        lval = left.get(key, _MISSING)
        rval = right.get(key, _MISSING)
        if lval != rval:
            lrepr = "<absent>" if lval is _MISSING else repr(lval)
            rrepr = "<absent>" if rval is _MISSING else repr(rval)
            diffs.append(f"{key}: {lrepr} != {rrepr}")
    return diffs


def first_divergence(
    left: list[dict], right: list[dict], *, context: int = 3
) -> Divergence | None:
    """The first divergent event between two traces, or ``None`` if equal.

    Comparison is on :func:`canonical_event` — the segregated ``rt``
    fields (wall clock, real-SIGKILL flag, backend identity) are allowed
    to differ.  ``context`` events preceding the divergence are attached
    for span context.
    """
    for index in range(min(len(left), len(right))):
        lcanon = canonical_event(left[index])
        rcanon = canonical_event(right[index])
        if lcanon == rcanon:
            continue
        diffs = _field_diffs(lcanon, rcanon)
        return Divergence(
            index=index,
            reason=f"event {index} differs — " + "; ".join(diffs),
            left=left[index],
            right=right[index],
            context=tuple(left[max(0, index - context) : index]),
        )
    if len(left) != len(right):
        index = min(len(left), len(right))
        shorter, longer = ("left", "right") if len(left) < len(right) else ("right", "left")
        extra = right[index] if len(left) < len(right) else left[index]
        return Divergence(
            index=index,
            reason=(
                f"{shorter} trace ends after {index} events; {longer} "
                f"continues with {extra['type']!r}"
            ),
            left=left[index] if index < len(left) else None,
            right=right[index] if index < len(right) else None,
            context=tuple(left[max(0, index - context) : index]),
        )
    return None


def render_divergence(divergence: Divergence) -> str:
    """Multi-line report: span context, then both sides of the split."""
    lines = [f"first divergence at event {divergence.index}: {divergence.reason}"]
    if divergence.context:
        lines.append("span context (common prefix):")
        start = divergence.index - len(divergence.context)
        for offset, event in enumerate(divergence.context):
            lines.append(f"  [{start + offset}] {event_line(event, canonical=True)}")
    for side, event in (("left", divergence.left), ("right", divergence.right)):
        rendered = "<end of trace>" if event is None else event_line(event, canonical=True)
        lines.append(f"  {side:>5}: {rendered}")
    return "\n".join(lines)
