"""``python -m repro.trace`` — summarize, diff and export trace files.

Subcommands:

* ``summarize TRACE`` — span rollups (time-in-recovery, bytes by store
  level, op histograms per rank) as a table, optionally as JSON.
* ``diff LEFT RIGHT`` — first-divergence localization between two
  traces; exits 1 when they diverge, printing the first divergent event
  with its span context.
* ``export TRACE -o OUT.json`` — Chrome-trace/Perfetto timeline.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.errors import TraceError
from repro.trace.diff import first_divergence, render_divergence
from repro.trace.events import load_trace
from repro.trace.export import to_chrome_trace
from repro.trace.summary import render_summary, summarize


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.trace",
        description="Inspect deterministic run traces (JSONL).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_sum = sub.add_parser("summarize", help="span rollups for one trace")
    p_sum.add_argument("trace", help="trace JSONL file")
    p_sum.add_argument(
        "--output", default=None, metavar="PATH",
        help="also write the rollup as JSON",
    )

    p_diff = sub.add_parser("diff", help="localize the first divergent event")
    p_diff.add_argument("left", help="reference trace JSONL file")
    p_diff.add_argument("right", help="candidate trace JSONL file")
    p_diff.add_argument(
        "--context", type=int, default=3,
        help="common-prefix events to show before the divergence (default 3)",
    )

    p_exp = sub.add_parser("export", help="Chrome-trace/Perfetto timeline")
    p_exp.add_argument("trace", help="trace JSONL file")
    p_exp.add_argument(
        "--output", "-o", required=True, metavar="PATH",
        help="where to write the Trace Event Format JSON",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "summarize":
            summary = summarize(load_trace(args.trace))
            print(render_summary(summary))
            if args.output:
                with open(args.output, "w") as fh:
                    json.dump(summary, fh, indent=2, sort_keys=True)
                    fh.write("\n")
                print(f"summary written to {args.output}")
            return 0
        if args.command == "diff":
            left = load_trace(args.left)
            right = load_trace(args.right)
            divergence = first_divergence(left, right, context=args.context)
            if divergence is None:
                print(f"traces are identical ({len(left)} events)")
                return 0
            print(render_divergence(divergence))
            return 1
        if args.command == "export":
            document = to_chrome_trace(load_trace(args.trace))
            with open(args.output, "w") as fh:
                json.dump(document, fh)
                fh.write("\n")
            print(
                f"{len(document['traceEvents'])} timeline events "
                f"written to {args.output}"
            )
            return 0
    except (TraceError, OSError) as exc:
        print(f"TRACE: {exc}", file=sys.stderr)
        return 2
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    raise SystemExit(main())
