"""Trace event schema, canonical serialization and JSONL persistence.

Every trace event is a flat JSON object stamped in **virtual time**:

``{"type": ..., "t": ..., "seq": ..., "job": ..., <type-specific fields>}``

plus an optional ``"rt"`` sub-object that segregates everything tied to
the host rather than the schedule — wall-clock seconds, whether a kill
used a real SIGKILL, which backend executed the run.  Identity between
two traces is defined on :func:`canonical_event` (the event *minus*
``rt``), so traces from the sim, vector and proc backends of the same
seeded run compare byte-identical while still recording how long the
host actually took.  This is the same real/virtual segregation the chaos
event log uses (:mod:`repro.chaos.metrics`).

Files are canonical JSONL: one event per line, sorted keys, compact
separators, trailing newline.  Writers stage into a ``repro-trace-*``
temp file in the destination directory and publish with an atomic
rename, so an aborted run leaves either nothing or a complete prefix —
never a torn file (the same cleanup discipline as ``DiskStore``).
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Iterable

from repro.errors import TraceError

#: Prefix for staging files; the ``proc_hygiene`` fixture asserts none leak.
TRACE_TMP_PREFIX = "repro-trace-"

#: The closed event vocabulary.  ``validate_event`` rejects anything else.
TRACE_EVENT_TYPES = frozenset(
    {
        # Session lifecycle (SessionObserver + interceptor seams).
        "job_started",
        "job_finished",
        "step_completed",
        "checkpoint_committed",
        "failure_detected",
        "recovery_started",
        "protocol_applied",
        "recovery_completed",
        # Runtime-level interceptor stream.
        "window_created",
        "op_issued",
        "op_completed",
        "sync_completed",
        "rank_failed",
        "rank_respawned",
        # Fault-injector listener stream.
        "kill_fired",
        "kill_skipped",
        # Store placement hook (per-level checkpoint bytes).
        "checkpoint_stored",
        # Delivery-mode hook (drop/stale decisions).
        "qos_decision",
        # Serve request lifecycle.
        "request_completed",
    }
)

#: Fields every event carries, in this order, before type-specific fields.
_REQUIRED_FIELDS = ("type", "t", "seq", "job")


def validate_event(event: dict) -> None:
    """Raise :class:`TraceError` unless ``event`` matches the trace schema."""
    if not isinstance(event, dict):
        raise TraceError(f"trace event must be a dict, got {type(event).__name__}")
    for field in _REQUIRED_FIELDS:
        if field not in event:
            raise TraceError(f"trace event missing required field {field!r}: {event}")
    type_ = event["type"]
    if type_ not in TRACE_EVENT_TYPES:
        raise TraceError(f"unknown trace event type {type_!r}")
    if not isinstance(event["t"], (int, float)) or isinstance(event["t"], bool):
        raise TraceError(f"trace event 't' must be a number, got {event['t']!r}")
    if not isinstance(event["seq"], int) or isinstance(event["seq"], bool):
        raise TraceError(f"trace event 'seq' must be an int, got {event['seq']!r}")
    if not isinstance(event["job"], str):
        raise TraceError(f"trace event 'job' must be a string, got {event['job']!r}")
    rt = event.get("rt")
    if rt is not None and not isinstance(rt, dict):
        raise TraceError(f"trace event 'rt' must be a dict, got {rt!r}")


def canonical_event(event: dict) -> dict:
    """The deterministic identity of ``event``: everything but ``rt``."""
    return {key: value for key, value in event.items() if key != "rt"}


def event_line(event: dict, *, canonical: bool = False) -> str:
    """Serialize one event as a canonical JSON line (no trailing newline)."""
    payload = canonical_event(event) if canonical else event
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def event_lines(events: Iterable[dict], *, canonical: bool = False) -> list[str]:
    """Canonical JSON lines for ``events`` (validated, stable ordering)."""
    lines = []
    for event in events:
        validate_event(event)
        lines.append(event_line(event, canonical=canonical))
    return lines


class TraceWriter:
    """Streaming JSONL trace writer with atomic publication.

    Events are appended to a ``repro-trace-*`` staging file next to the
    destination; :meth:`close` publishes it with ``os.replace``.  Closing
    with ``discard=True`` — or closing after ``__exit__`` saw an
    exception before anything was written — removes the staging file
    instead, so aborted runs never leak temp files.
    """

    def __init__(self, path: str) -> None:
        self.path = str(path)
        directory = os.path.dirname(self.path) or "."
        fd, self._tmp_path = tempfile.mkstemp(
            prefix=TRACE_TMP_PREFIX, suffix=".part", dir=directory
        )
        self._fh = os.fdopen(fd, "w")
        self.count = 0

    def write(self, event: dict) -> None:
        if self._fh is None:
            raise TraceError(f"trace writer for {self.path!r} is closed")
        validate_event(event)
        self._fh.write(event_line(event))
        self._fh.write("\n")
        self.count += 1

    def write_all(self, events: Iterable[dict]) -> None:
        for event in events:
            self.write(event)

    def close(self, *, discard: bool = False) -> None:
        """Publish (or discard) the staged trace.  Idempotent."""
        if self._fh is None:
            return
        self._fh.flush()
        self._fh.close()
        self._fh = None
        if discard:
            os.unlink(self._tmp_path)
        else:
            os.replace(self._tmp_path, self.path)

    def __enter__(self) -> TraceWriter:
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # A trace that aborted mid-run is still evidence: publish whatever
        # complete prefix was staged unless nothing at all was written.
        self.close(discard=exc_type is not None and self.count == 0)


def write_trace(events: Iterable[dict], path: str) -> int:
    """Write ``events`` to ``path`` as canonical JSONL; return the count."""
    with TraceWriter(path) as writer:
        writer.write_all(events)
        return writer.count


def load_trace(path: str) -> list[dict]:
    """Load and validate a JSONL trace written by :func:`write_trace`."""
    events = []
    with open(path) as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TraceError(f"{path}:{lineno}: not valid JSON: {exc}") from exc
            try:
                validate_event(event)
            except TraceError as exc:
                raise TraceError(f"{path}:{lineno}: {exc}") from exc
            events.append(event)
    return events
