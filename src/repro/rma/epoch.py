"""Epoch tracking (§2.2).

The period between two consecutive memory-consistency actions (flush, unlock,
gsync) issued by process ``p`` towards the same target ``q`` is an *epoch*.
Every such action closes the current epoch and opens a new one, i.e.
increments ``E(p -> q)``.  A gsync is collective and increments the epochs of
every pair at every process.

Epochs induce the consistency order ``co``: actions issued by ``p`` towards
``q`` in different epochs are ordered; actions within one epoch are not.
"""

from __future__ import annotations

import copy
from collections import defaultdict
from dataclasses import dataclass, field

__all__ = ["EpochTracker", "EpochState"]


@dataclass
class EpochState:
    """Epoch bookkeeping of a single origin process."""

    #: ``E(p -> q)`` for every target ``q`` this process has communicated with.
    epoch_of_target: dict[int, int] = field(default_factory=lambda: defaultdict(int))
    #: Outstanding (not yet completed) operations per target in the current epoch.
    pending_ops: dict[int, int] = field(default_factory=lambda: defaultdict(int))
    #: Total number of epochs this process has closed (any target).
    epochs_closed: int = 0


class EpochTracker:
    """Tracks ``E(p -> q)`` and outstanding operations for all processes."""

    def __init__(self, nprocs: int) -> None:
        self.nprocs = nprocs
        self._states = [EpochState() for _ in range(nprocs)]

    def state(self, rank: int) -> EpochState:
        """Epoch state of ``rank``."""
        return self._states[rank]

    def epoch(self, src: int, trg: int) -> int:
        """Current epoch number ``E(src -> trg)``."""
        return self._states[src].epoch_of_target[trg]

    def record_access(self, src: int, trg: int) -> int:
        """Note an outstanding access of ``src`` towards ``trg``; return its epoch."""
        state = self._states[src]
        state.pending_ops[trg] += 1
        return state.epoch_of_target[trg]

    def pending(self, src: int, trg: int | None = None) -> int:
        """Outstanding operations of ``src`` towards ``trg`` (or all targets)."""
        state = self._states[src]
        if trg is not None:
            return state.pending_ops[trg]
        return sum(state.pending_ops.values())

    def close_epoch(self, src: int, trg: int) -> int:
        """Close the epoch ``src -> trg`` (flush or unlock) and return the new epoch."""
        state = self._states[src]
        state.epoch_of_target[trg] += 1
        state.pending_ops[trg] = 0
        state.epochs_closed += 1
        return state.epoch_of_target[trg]

    def close_all_epochs(self, src: int) -> None:
        """Close every open epoch of ``src`` (flush_all)."""
        state = self._states[src]
        for trg in list(state.epoch_of_target):
            state.epoch_of_target[trg] += 1
        for trg in list(state.pending_ops):
            state.pending_ops[trg] = 0
        state.epochs_closed += 1

    def close_global_epoch(self) -> None:
        """Close all epochs at all processes (gsync)."""
        for rank in range(self.nprocs):
            self.close_all_epochs(rank)

    def clear_pending(self, src: int | None = None) -> None:
        """Zero the outstanding-operation counts of ``src`` (or every rank).

        Used when issued-but-uncompleted operations are *discarded* by a
        recovery rollback: the operations no longer exist, but the epochs they
        were issued in stay open (no consistency action was performed).
        """
        ranks = range(self.nprocs) if src is None else (src,)
        for rank in ranks:
            self._states[rank].pending_ops.clear()

    def has_pending(self, src: int) -> bool:
        """Whether ``src`` has any outstanding operation in an open epoch."""
        return any(v > 0 for v in self._states[src].pending_ops.values())

    def reset_rank(self, rank: int) -> None:
        """Forget all epoch state of ``rank`` (its replacement starts fresh)."""
        self._states[rank] = EpochState()

    def snapshot(self) -> list[EpochState]:
        """Deep-copy the epoch state of every rank (checkpoint payload)."""
        return [copy.deepcopy(state) for state in self._states]

    def restore(self, states: list[EpochState]) -> None:
        """Roll every rank's epoch state back to a :meth:`snapshot`."""
        self._states = [copy.deepcopy(state) for state in states]
