"""The SPMD RMA runtime — the execution layer of the reproduction (§6).

:class:`RmaRuntime` binds the formal model (:mod:`repro.rma`) to the virtual
cluster (:mod:`repro.simulator`):

* every ``put``/``get``/atomic is materialized as a
  :class:`~repro.rma.actions.CommAction` stamped with the recovery counters
  (EC, GC, SC, GNC), dispatched through the registered
  :class:`~repro.rma.interceptor.RmaInterceptor` chain, applied to the target
  :class:`~repro.rma.window.Window` buffer and charged on the origin's virtual
  clock via the cluster's :class:`~repro.simulator.costs.CostModel`;
* every ``lock``/``unlock``/``flush``/``gsync`` maintains the epoch and
  counter state exactly as §2.2 and §4.1 prescribe (unlock and flush close the
  ``src -> trg`` epoch, a gsync closes all epochs everywhere and bumps GNC);
* fail-stop failures surface as
  :class:`~repro.errors.ProcessFailedError` the moment an action touches a
  dead process or a collective observes one — the fault-tolerance layer
  (:mod:`repro.ft`) catches it and drives recovery.

The driver is SPMD-by-iteration: a single thread issues actions on behalf of
each rank (``src`` is an explicit argument), which keeps the simulation
deterministic while preserving per-rank timing.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ProcessFailedError, RmaError, SynchronizationError
from repro.rma.actions import (
    AccumulateOp,
    CommAction,
    Counters,
    OpKind,
    SyncAction,
    SyncKind,
    apply_accumulate,
)
from repro.rma.counters import CounterBoard
from repro.rma.epoch import EpochTracker
from repro.rma.interceptor import InterceptorChain, RmaInterceptor
from repro.rma.ordering import OrderRecorder
from repro.rma.window import Window, WindowRegistry
from repro.simulator.cluster import Cluster

__all__ = ["RmaRuntime"]


class RmaRuntime:
    """Executes RMA programs of an SPMD job on a simulated cluster."""

    def __init__(self, cluster: Cluster, *, record: bool = False) -> None:
        self.cluster = cluster
        self.nprocs = cluster.nprocs
        self.windows = WindowRegistry()
        self.epochs = EpochTracker(cluster.nprocs)
        self.counters = CounterBoard(cluster.nprocs)
        self.interceptors = InterceptorChain()
        self.recorder = OrderRecorder(enabled=record)
        self._finalized = False
        #: Failures already propagated to windows and interceptors.
        self._known_failed: set[int] = set()

    # ------------------------------------------------------------------
    # Interceptors (the PMPI-interposition analogue, §6.1)
    # ------------------------------------------------------------------
    def add_interceptor(self, interceptor: RmaInterceptor) -> None:
        """Register ``interceptor``; its hooks fire on every subsequent action."""
        self.interceptors.add(interceptor, self)

    def remove_interceptor(self, interceptor: RmaInterceptor) -> None:
        """Unregister ``interceptor``."""
        self.interceptors.remove(interceptor)

    # ------------------------------------------------------------------
    # Window lifecycle
    # ------------------------------------------------------------------
    def win_allocate(self, name: str, size: int, dtype: np.dtype = np.float64) -> Window:
        """Collectively allocate a window on every rank (MPI_Win_allocate).

        Charged as a barrier plus the local allocation cost at each rank.
        """
        self._ensure_all_alive("win_allocate")
        window = self.windows.create(name, size, np.dtype(dtype), self.nprocs)
        alloc_cost = self.cluster.costs.local_copy(window.nbytes_per_rank)
        for rank in self.cluster.alive_ranks():
            self.cluster.advance(rank, alloc_cost, kind="comm")
        self.cluster.barrier()
        self.interceptors.on_window_create(window)
        self.cluster.metrics.incr("rma.windows_allocated")
        return window

    def window(self, name: str) -> Window:
        """Look up a window by name."""
        return self.windows.get(name)

    def local(self, rank: int, window: str) -> np.ndarray:
        """The local window buffer of ``rank`` (direct load/store access)."""
        self.cluster.ensure_alive(rank)
        return self.windows.get(window).local(rank)

    def local_view(
        self, rank: int, window: str, offset: int = 0, count: int | None = None
    ) -> np.ndarray:
        """A mutable view of ``count`` elements of ``rank``'s own buffer.

        Context-friendly entry point used by :mod:`repro.api`: per-rank
        contexts hand kernels numpy views of their own window slice so local
        loads/stores need no runtime call at all.  ``count=None`` means "to
        the end of the window".
        """
        self.cluster.ensure_alive(rank)
        win = self.windows.get(window)
        if count is None:
            count = win.size - offset
        return win.view(rank, offset, count)

    # ------------------------------------------------------------------
    # Communication actions
    # ------------------------------------------------------------------
    def put(
        self,
        src: int,
        trg: int,
        window: str,
        offset: int,
        data: np.ndarray,
    ) -> CommAction:
        """Write ``data`` into ``trg``'s window at ``offset`` (MPI_Put)."""
        win = self.windows.get(window)
        payload = self._coerce_payload(data, win)
        action = self._make_comm(
            OpKind.PUT, src, trg, window, offset, payload.size, combine=False,
            data=payload,
        )
        return self._issue_comm(action, win)

    def get(
        self, src: int, trg: int, window: str, offset: int, count: int
    ) -> np.ndarray:
        """Read ``count`` elements from ``trg``'s window at ``offset`` (MPI_Get)."""
        win = self.windows.get(window)
        action = self._make_comm(
            OpKind.GET, src, trg, window, offset, count, combine=False,
        )
        completed = self._issue_comm(action, win)
        assert completed.data is not None
        return completed.data

    def accumulate(
        self,
        src: int,
        trg: int,
        window: str,
        offset: int,
        data: np.ndarray,
        op: AccumulateOp = AccumulateOp.SUM,
    ) -> CommAction:
        """Combine ``data`` into ``trg``'s window (MPI_Accumulate)."""
        win = self.windows.get(window)
        payload = self._coerce_payload(data, win)
        action = self._make_comm(
            OpKind.ACCUMULATE, src, trg, window, offset, payload.size,
            combine=op.combining, data=payload, op=op,
        )
        return self._issue_comm(action, win)

    def get_accumulate(
        self,
        src: int,
        trg: int,
        window: str,
        offset: int,
        data: np.ndarray,
        op: AccumulateOp = AccumulateOp.SUM,
    ) -> np.ndarray:
        """Atomically combine ``data`` and return the previous target values."""
        win = self.windows.get(window)
        payload = self._coerce_payload(data, win)
        action = self._make_comm(
            OpKind.GET_ACCUMULATE, src, trg, window, offset, payload.size,
            combine=op.combining, data=payload, op=op,
        )
        completed = self._issue_comm(action, win)
        assert completed.data is not None
        return completed.data

    def fetch_and_op(
        self,
        src: int,
        trg: int,
        window: str,
        offset: int,
        value: float,
        op: AccumulateOp = AccumulateOp.SUM,
    ) -> float:
        """Single-element atomic fetch-and-op (MPI_Fetch_and_op)."""
        win = self.windows.get(window)
        payload = np.asarray([value], dtype=win.dtype)
        action = self._make_comm(
            OpKind.FETCH_AND_OP, src, trg, window, offset, 1,
            combine=op.combining, data=payload, op=op,
        )
        completed = self._issue_comm(action, win)
        assert completed.data is not None
        return completed.data[0]

    def compare_and_swap(
        self,
        src: int,
        trg: int,
        window: str,
        offset: int,
        compare: float,
        value: float,
    ) -> float:
        """Single-element atomic CAS; returns the previous target value."""
        win = self.windows.get(window)
        payload = np.asarray([value], dtype=win.dtype)
        cmp = np.asarray([compare], dtype=win.dtype)
        action = self._make_comm(
            OpKind.COMPARE_AND_SWAP, src, trg, window, offset, 1,
            combine=True, data=payload, compare=cmp,
        )
        completed = self._issue_comm(action, win)
        assert completed.data is not None
        return completed.data[0]

    # ------------------------------------------------------------------
    # Synchronization actions
    # ------------------------------------------------------------------
    def lock(self, src: int, trg: int, structure: str | None = None) -> SyncAction:
        """Acquire a lock on ``trg``; fetches-and-increments ``SC_trg`` (§4.1 C)."""
        self._pre_action(src, trg)
        sc = self.counters.on_lock(src, trg, structure)
        action = SyncAction(
            kind=SyncKind.LOCK, src=src, trg=trg,
            counters=self._stamp(src, trg, sc=sc), structure=structure,
        )
        return self._issue_sync(action, cost=self.cluster.costs.lock())

    def unlock(self, src: int, trg: int, structure: str | None = None) -> SyncAction:
        """Release a lock on ``trg``; completes and closes the epoch (§2.2)."""
        self._pre_action(src, trg)
        self.counters.on_unlock(src, trg, structure)
        action = SyncAction(
            kind=SyncKind.UNLOCK, src=src, trg=trg,
            counters=self._stamp(src, trg), structure=structure,
        )
        result = self._issue_sync(action, cost=self.cluster.costs.unlock())
        self.epochs.close_epoch(src, trg)
        return result

    def flush(self, src: int, trg: int) -> SyncAction:
        """Complete all outstanding ``src -> trg`` operations (MPI_Win_flush).

        Closes the epoch and increments ``GC_src`` (§4.1 B).
        """
        self._pre_action(src, trg)
        pending = self.epochs.pending(src, trg)
        self.counters.on_flush(src)
        action = SyncAction(
            kind=SyncKind.FLUSH, src=src, trg=trg,
            counters=self._stamp(src, trg),
        )
        result = self._issue_sync(action, cost=self.cluster.costs.flush(pending))
        self.epochs.close_epoch(src, trg)
        return result

    def flush_all(self, src: int) -> SyncAction:
        """Complete all outstanding operations of ``src`` (MPI_Win_flush_all)."""
        self.observe_failures()
        self.cluster.ensure_alive(src)
        pending = self.epochs.pending(src)
        gc = self.counters.on_flush(src)
        action = SyncAction(
            kind=SyncKind.FLUSH_ALL, src=src, trg=None,
            counters=Counters(gc=gc, gnc=self.counters.gnc(src)),
        )
        result = self._issue_sync(action, cost=self.cluster.costs.flush(pending))
        self.epochs.close_all_epochs(src)
        return result

    def gsync(self) -> list[SyncAction]:
        """Global window synchronization (MPI_Win_fence / upc_barrier).

        Collective over all ranks: completes every outstanding operation,
        closes every epoch at every process and increments every ``GNC``
        (§4.1 E).  Raises :class:`~repro.errors.ProcessFailedError` if any
        participant has failed — this is where failures are usually observed.
        """
        self._ensure_all_alive("gsync")
        if any(self.counters.holds_any_lock(r) for r in self.cluster.alive_ranks()):
            raise SynchronizationError("gsync while a lock is held")
        cost = self.cluster.costs.gsync(self.nprocs)
        self.cluster.barrier(cost=cost)  # raises on failed participants
        self.counters.on_gsync()
        self.epochs.close_global_epoch()
        actions = []
        for rank in self.cluster.alive_ranks():
            action = SyncAction(
                kind=SyncKind.GSYNC, src=rank, trg=None,
                counters=Counters(
                    gc=self.counters.gc(rank), gnc=self.counters.gnc(rank),
                ),
            )
            self.interceptors.before_sync(action)
            self.recorder.record(action)
            self.interceptors.after_sync(action)
            actions.append(action)
        self.cluster.metrics.incr("rma.gsyncs")
        return actions

    def barrier(self) -> float:
        """Plain barrier (no window synchronization, no epoch effect)."""
        self._ensure_all_alive("barrier")
        return self.cluster.barrier()

    # ------------------------------------------------------------------
    # Compute and lifecycle
    # ------------------------------------------------------------------
    def compute(self, rank: int, flops: float) -> float:
        """Charge ``flops`` of application compute on ``rank``'s clock."""
        self.cluster.ensure_alive(rank)
        return self.cluster.advance(rank, self.cluster.costs.compute(flops))

    def finalize(self) -> None:
        """Finish the run: flush interceptor statistics (idempotent)."""
        if not self._finalized:
            self._finalized = True
            self.interceptors.on_finalize()

    # ------------------------------------------------------------------
    # Failure plumbing
    # ------------------------------------------------------------------
    def observe_failures(self, now: float | None = None) -> list[int]:
        """Fire scheduled failures and propagate them to windows/interceptors.

        Diffing against the runtime's own known-failed set also catches ranks
        killed directly with :meth:`~repro.simulator.cluster.Cluster.fail_rank`
        (not just time-scheduled events): their window buffers are invalidated
        and every interceptor's ``on_failure_detected`` fires exactly once.
        """
        self.cluster.check_failures(now if now is not None else self.cluster.elapsed())
        newly = sorted(set(self.cluster.failed_ranks()) - self._known_failed)
        for rank in newly:
            self._known_failed.add(rank)
            self.windows.invalidate_rank(rank)
            self.interceptors.on_failure_detected(rank)
        return newly

    def notify_respawn(self, rank: int) -> None:
        """Tell the runtime a replacement process took over ``rank``.

        Called by the recovery path (:mod:`repro.ft.recovery`) after the
        cluster respawned the rank: resets the rank's epoch and counter state
        and notifies interceptors.
        """
        self._known_failed.discard(rank)
        self.epochs.reset_rank(rank)
        self.counters.reset_rank(rank)
        self.interceptors.on_respawn(rank)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _ensure_all_alive(self, what: str) -> None:
        """Collectives observe pending failures and fail when any rank is dead.

        A collective involves every rank, so a process that already failed —
        even one whose failure was observed earlier — makes it raise; this is
        how the paper's applications learn they must recover before
        synchronizing again (§2.4).
        """
        self.observe_failures()
        dead = self.cluster.failed_ranks()
        if dead:
            raise ProcessFailedError(dead[0], f"{what} observed failed ranks {dead}")

    def _pre_action(self, src: int, trg: int) -> None:
        """Failure check before any targeted action: src then trg must be alive."""
        self.observe_failures(self.cluster.now(src))
        self.cluster.ensure_alive(src)
        self.cluster.ensure_alive(trg)

    @staticmethod
    def _coerce_payload(data: np.ndarray, win: Window) -> np.ndarray:
        """Copy a user payload into a flat array of the window's dtype.

        The copy decouples the action from the caller's buffer: actions
        retained by interceptors or the recorder must keep the values the
        operation actually transferred, even if the caller mutates its array
        afterwards (the stencil passes live window slices, for example).
        """
        return np.array(data, dtype=win.dtype, copy=True).ravel()

    def _stamp(self, src: int, trg: int, *, sc: int | None = None) -> Counters:
        """Counters a fresh ``src -> trg`` action carries (Eq. 1/3)."""
        return Counters(
            ec=self.epochs.epoch(src, trg),
            gc=self.counters.gc(src),
            sc=self.counters.sc_held(src, trg) if sc is None else sc,
            gnc=self.counters.gnc(src),
        )

    def _make_comm(
        self,
        kind: OpKind,
        src: int,
        trg: int,
        window: str,
        offset: int,
        count: int,
        *,
        combine: bool,
        data: np.ndarray | None = None,
        compare: np.ndarray | None = None,
        op: AccumulateOp = AccumulateOp.REPLACE,
    ) -> CommAction:
        self._pre_action(src, trg)
        return CommAction(
            kind=kind, src=src, trg=trg, window=window, offset=offset,
            count=count, combine=combine, counters=self._stamp(src, trg),
            op=op, data=data, compare=compare,
        )

    def _issue_comm(self, action: CommAction, win: Window) -> CommAction:
        """Apply ``action`` to the window and charge its network cost."""
        self.interceptors.before_comm(action)
        if action.kind is OpKind.PUT:
            win.write(action.trg, action.offset, action.data)
        elif action.kind is OpKind.GET:
            action = action.with_data(win.read(action.trg, action.offset, action.count))
        elif action.kind is OpKind.COMPARE_AND_SWAP:
            view = win.view(action.trg, action.offset, action.count)
            previous = view.copy()
            if np.array_equal(previous, action.compare):
                view[...] = action.data
            action = action.with_data(previous)
        elif action.kind.is_atomic:
            view = win.view(action.trg, action.offset, action.count)
            previous = apply_accumulate(view, action.data, action.op)
            if action.kind.is_get_like:
                action = action.with_data(previous)
        else:  # pragma: no cover - defensive
            raise RmaError(f"unknown operation kind {action.kind!r}")
        nbytes = action.count * win.itemsize
        cost = self.cluster.costs.remote_transfer(nbytes, atomic=action.kind.is_atomic)
        self.cluster.advance(action.src, cost, kind="comm")
        self.epochs.record_access(action.src, action.trg)
        self.recorder.record(action)
        self.interceptors.after_comm(action)
        self.cluster.metrics.incr(f"rma.{action.kind.value}", rank=action.src)
        self.cluster.metrics.incr("rma.bytes_moved", nbytes, rank=action.src)
        return action

    def _issue_sync(self, action: SyncAction, *, cost: float) -> SyncAction:
        self.interceptors.before_sync(action)
        self.cluster.advance(action.src, cost, kind="comm")
        self.recorder.record(action)
        self.interceptors.after_sync(action)
        self.cluster.metrics.incr(f"rma.{action.kind.value}", rank=action.src)
        return action

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RmaRuntime(nprocs={self.nprocs}, windows={len(self.windows)}, "
            f"interceptors={len(self.interceptors)})"
        )
