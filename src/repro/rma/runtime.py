"""The SPMD RMA runtime — the coordination layer of the reproduction (§6).

:class:`RmaRuntime` binds the formal model (:mod:`repro.rma`) to the virtual
cluster (:mod:`repro.simulator`) and to a pluggable execution
:class:`~repro.backends.base.Backend` that owns window storage:

* every ``put``/``get``/atomic is materialized as a
  :class:`~repro.rma.actions.CommAction` stamped with the recovery counters
  (EC, GC, SC, GNC), announced to the registered
  :class:`~repro.rma.interceptor.RmaInterceptor` chain and handed to the
  backend as an :class:`~repro.rma.handles.OpHandle`.  Nonblocking variants
  (``put_nb``/``get_nb``/``accumulate_nb``) stop there — their effects and
  buffers materialize when a completion point (``flush``/``unlock``/
  ``gsync``) closes the epoch; the blocking calls are the same issue path
  followed by an immediate completion of the ``src -> trg`` queue;
* every ``lock``/``unlock``/``flush``/``gsync`` maintains the epoch and
  counter state exactly as §2.2 and §4.1 prescribe (unlock and flush complete
  outstanding operations and close the ``src -> trg`` epoch, a gsync
  completes and closes everything everywhere and bumps GNC);
* interceptors observe the *completion stream*: ``before_comm`` fires at
  issue, ``after_comm`` when the operation completes — so fault-tolerance
  logging sees exactly the operations whose effects are part of the
  consistent state, independent of how the backend batches or reorders
  execution internally;
* fail-stop failures surface as
  :class:`~repro.errors.ProcessFailedError` the moment an action touches a
  dead process or a collective observes one — the fault-tolerance layer
  (:mod:`repro.ft`) catches it and drives recovery.

The driver is SPMD-by-iteration: a single thread issues actions on behalf of
each rank (``src`` is an explicit argument), which keeps the simulation
deterministic while preserving per-rank timing.  Determinism is
backend-independent: costs, counters, recording and failure observation all
happen here, so two backends given the same program produce bit-identical
traces and clocks.
"""

from __future__ import annotations

from collections import defaultdict
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import (
    LockError,
    ProcessFailedError,
    RankSuspendedError,
    SynchronizationError,
)
from repro.rma.actions import (
    AccumulateOp,
    CommAction,
    Counters,
    OpKind,
    SyncAction,
    SyncKind,
)
from repro.rma.counters import CounterBoard
from repro.rma.epoch import EpochTracker
from repro.rma.handles import OpHandle
from repro.rma.interceptor import InterceptorChain, RmaInterceptor
from repro.rma.ordering import OrderRecorder
from repro.rma.replay import ReplayCursor, replay_apply
from repro.rma.window import Window, WindowRegistry
from repro.simulator.cluster import Cluster

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from repro.backends.base import Backend
    from repro.qos.delivery import DeliveryMode

__all__ = ["RmaRuntime"]


class _Accrual:
    """Virtual cost and metrics of issued-but-uncompleted ops of one (src, trg).

    Nonblocking issues are cheap on purpose: instead of advancing the origin
    clock and bumping metrics once per operation, the runtime accrues both
    here and charges them in one stroke when the pair's queue completes —
    the accounting analogue of the backend's batched execution.  Totals are
    identical to per-op charging; only the number of bookkeeping calls drops.
    """

    __slots__ = ("cost", "nbytes", "kinds")

    def __init__(self) -> None:
        self.cost = 0.0
        self.nbytes = 0
        self.kinds: dict[str, int] = defaultdict(int)


class RmaRuntime:
    """Coordinates RMA programs of an SPMD job over a backend and a cluster."""

    def __init__(
        self,
        cluster: Cluster,
        *,
        record: bool = False,
        backend: "str | Backend | None" = None,
    ) -> None:
        # Deferred import: repro.backends needs the rma model modules, which
        # this module's package pulls in — importing it lazily keeps every
        # entry-point import order (repro, repro.rma, repro.backends) valid.
        from repro.backends import make_backend

        self.cluster = cluster
        self.nprocs = cluster.nprocs
        self.backend = make_backend(backend)
        self.backend.bind(cluster.nprocs)
        self.epochs = EpochTracker(cluster.nprocs)
        self.counters = CounterBoard(cluster.nprocs)
        self.interceptors = InterceptorChain()
        self.recorder = OrderRecorder(enabled=record)
        self._finalized = False
        #: Failures already propagated to windows and interceptors.
        self._known_failed: set[int] = set()
        #: Uncharged cost/metrics of outstanding nonblocking ops per (src, trg).
        self._accrued: dict[tuple[int, int], _Accrual] = {}
        #: Active log-driven replay of a localized recovery (None = normal).
        self._replay: ReplayCursor | None = None
        #: Ranks permanently removed by a degraded continuation: they are
        #: never respawned, their kernels are skipped, operations targeting
        #: them are dropped and reads observe zeroed buffers.
        self.excised: frozenset[int] = frozenset()
        #: Installed delivery mode (:mod:`repro.qos`); ``None`` behaves
        #: exactly like the reliable mode — every failure path is fatal.
        self.delivery: "DeliveryMode | None" = None

    @property
    def windows(self) -> WindowRegistry:
        """The backend-owned window registry (storage lives with the backend)."""
        return self.backend.windows

    # ------------------------------------------------------------------
    # Interceptors (the PMPI-interposition analogue, §6.1)
    # ------------------------------------------------------------------
    def add_interceptor(self, interceptor: RmaInterceptor) -> None:
        """Register ``interceptor``; its hooks fire on every subsequent action."""
        self.interceptors.add(interceptor, self)

    def remove_interceptor(self, interceptor: RmaInterceptor) -> None:
        """Unregister ``interceptor``."""
        self.interceptors.remove(interceptor)

    # ------------------------------------------------------------------
    # Delivery modes (repro.qos)
    # ------------------------------------------------------------------
    def set_delivery(self, mode: "DeliveryMode | None") -> None:
        """Install the delivery mode consulted on every failure path.

        ``None`` (the default) and the reliable mode are indistinguishable:
        any touch of a failed rank raises.  A tolerant mode (best-effort)
        turns failed non-excised ranks into *suspended* ones — operations
        toward them drop or serve stale data, the suspended rank's own calls
        raise :class:`~repro.errors.RankSuspendedError` (which the scheduler
        catches per rank), and the session repairs them at step boundaries.
        """
        self.delivery = mode

    def suspended_ranks(self) -> frozenset[int]:
        """Failed ranks the installed delivery mode tolerates (usually empty).

        Backend-independent at every point of the program: the failed set
        only changes at injector-controlled completion-stream positions,
        which are identical across sim/vector/proc by construction.
        """
        if self.delivery is None:
            return frozenset()
        return self.delivery.suspended(self)

    # ------------------------------------------------------------------
    # Window lifecycle
    # ------------------------------------------------------------------
    def win_allocate(self, name: str, size: int, dtype: np.dtype = np.float64) -> Window:
        """Collectively allocate a window on every rank (MPI_Win_allocate).

        Charged as a barrier plus the local allocation cost at each rank.
        """
        self._ensure_all_alive("win_allocate")
        window = self.backend.create_window(name, size, np.dtype(dtype))
        alloc_cost = self.cluster.costs.local_copy(window.nbytes_per_rank)
        for rank in self.cluster.alive_ranks():
            self.cluster.advance(rank, alloc_cost, kind="comm")
        self.cluster.barrier()
        self.interceptors.on_window_create(window)
        self.cluster.metrics.incr("rma.windows_allocated")
        return window

    def window(self, name: str) -> Window:
        """Look up a window by name."""
        return self.windows.get(name)

    def local(self, rank: int, window: str) -> np.ndarray:
        """The local window buffer of ``rank`` (direct load/store access).

        An excised rank's buffer stays readable (it was reallocated to zeros
        when the rank was removed), so degraded jobs can still gather results.
        """
        if rank not in self.excised:
            if rank in self.suspended_ranks():
                raise RankSuspendedError(rank)
            self.cluster.ensure_alive(rank)
        return self.windows.get(window).local(rank)

    def local_view(
        self, rank: int, window: str, offset: int = 0, count: int | None = None
    ) -> np.ndarray:
        """A mutable view of ``count`` elements of ``rank``'s own buffer.

        Context-friendly entry point used by :mod:`repro.api`: per-rank
        contexts hand kernels numpy views of their own window slice so local
        loads/stores need no runtime call at all.  ``count=None`` means "to
        the end of the window".
        """
        if rank not in self.excised:
            if rank in self.suspended_ranks():
                raise RankSuspendedError(rank)
            self.cluster.ensure_alive(rank)
        win = self.windows.get(window)
        if count is None:
            count = win.size - offset
        return win.view(rank, offset, count)

    # ------------------------------------------------------------------
    # Nonblocking communication actions
    # ------------------------------------------------------------------
    def put_nb(
        self, src: int, trg: int, window: str, offset: int, data: np.ndarray
    ) -> OpHandle:
        """Issue a nonblocking write into ``trg``'s window (MPI_Put).

        The write becomes visible when the next ``flush``/``unlock``/``gsync``
        completes the ``src -> trg`` epoch.
        """
        win = self.windows.get(window)
        payload = self._coerce_payload(data, win)
        action = self._make_comm(
            OpKind.PUT, src, trg, win, offset, payload.size, combine=False,
            data=payload,
        )
        return self._issue_nb(action, win)

    def get_nb(
        self, src: int, trg: int, window: str, offset: int, count: int
    ) -> OpHandle:
        """Issue a nonblocking read of ``trg``'s window (MPI_Get).

        The handle's buffer (:meth:`~repro.rma.handles.OpHandle.result`)
        materializes at the next completion point; reading it earlier raises.
        """
        win = self.windows.get(window)
        action = self._make_comm(
            OpKind.GET, src, trg, win, offset, count, combine=False,
        )
        return self._issue_nb(action, win)

    def accumulate_nb(
        self,
        src: int,
        trg: int,
        window: str,
        offset: int,
        data: np.ndarray,
        op: AccumulateOp = AccumulateOp.SUM,
    ) -> OpHandle:
        """Issue a nonblocking combining put into ``trg`` (MPI_Accumulate)."""
        win = self.windows.get(window)
        payload = self._coerce_payload(data, win)
        action = self._make_comm(
            OpKind.ACCUMULATE, src, trg, win, offset, payload.size,
            combine=op.combining, data=payload, op=op,
        )
        return self._issue_nb(action, win)

    # ------------------------------------------------------------------
    # Blocking communication actions (issue + immediate completion)
    # ------------------------------------------------------------------
    def put(
        self,
        src: int,
        trg: int,
        window: str,
        offset: int,
        data: np.ndarray,
    ) -> CommAction:
        """Write ``data`` into ``trg``'s window at ``offset`` (MPI_Put)."""
        handle = self.put_nb(src, trg, window, offset, data)
        self._complete_pair(handle.action.src, handle.action.trg)
        return handle.action

    def get(
        self, src: int, trg: int, window: str, offset: int, count: int
    ) -> np.ndarray:
        """Read ``count`` elements from ``trg``'s window at ``offset`` (MPI_Get)."""
        handle = self.get_nb(src, trg, window, offset, count)
        self._complete_pair(src, trg)
        data = handle.result()
        assert data is not None
        return data

    def accumulate(
        self,
        src: int,
        trg: int,
        window: str,
        offset: int,
        data: np.ndarray,
        op: AccumulateOp = AccumulateOp.SUM,
    ) -> CommAction:
        """Combine ``data`` into ``trg``'s window (MPI_Accumulate)."""
        handle = self.accumulate_nb(src, trg, window, offset, data, op)
        self._complete_pair(src, trg)
        return handle.action

    def get_accumulate(
        self,
        src: int,
        trg: int,
        window: str,
        offset: int,
        data: np.ndarray,
        op: AccumulateOp = AccumulateOp.SUM,
    ) -> np.ndarray:
        """Atomically combine ``data`` and return the previous target values."""
        win = self.windows.get(window)
        payload = self._coerce_payload(data, win)
        action = self._make_comm(
            OpKind.GET_ACCUMULATE, src, trg, win, offset, payload.size,
            combine=op.combining, data=payload, op=op,
        )
        handle = self._issue_nb(action, win)
        self._complete_pair(src, trg)
        data = handle.result()
        assert data is not None
        return data

    def fetch_and_op(
        self,
        src: int,
        trg: int,
        window: str,
        offset: int,
        value: float,
        op: AccumulateOp = AccumulateOp.SUM,
    ) -> float:
        """Single-element atomic fetch-and-op (MPI_Fetch_and_op)."""
        win = self.windows.get(window)
        payload = np.asarray([value], dtype=win.dtype)
        action = self._make_comm(
            OpKind.FETCH_AND_OP, src, trg, win, offset, 1,
            combine=op.combining, data=payload, op=op,
        )
        handle = self._issue_nb(action, win)
        self._complete_pair(src, trg)
        data = handle.result()
        assert data is not None
        return data[0]

    def compare_and_swap(
        self,
        src: int,
        trg: int,
        window: str,
        offset: int,
        compare: float,
        value: float,
    ) -> float:
        """Single-element atomic CAS; returns the previous target value."""
        win = self.windows.get(window)
        payload = np.asarray([value], dtype=win.dtype)
        cmp = np.asarray([compare], dtype=win.dtype)
        action = self._make_comm(
            OpKind.COMPARE_AND_SWAP, src, trg, win, offset, 1,
            combine=True, data=payload, compare=cmp,
        )
        handle = self._issue_nb(action, win)
        self._complete_pair(src, trg)
        data = handle.result()
        assert data is not None
        return data[0]

    # ------------------------------------------------------------------
    # Synchronization actions
    # ------------------------------------------------------------------
    def lock(self, src: int, trg: int, structure: str | None = None) -> SyncAction:
        """Acquire a lock on ``trg``; fetches-and-increments ``SC_trg`` (§4.1 C).

        Toward a rank suspended by a tolerant delivery mode the sync *drops*:
        there is no lock manager to talk to on dead hardware, no ``SC`` is
        consumed, and the caller proceeds against stale/zero data (counted in
        the mode's :class:`~repro.qos.delivery.QosMetrics`).
        """
        self._pre_action(src, trg)
        if self.delivery is not None and trg in self.suspended_ranks():
            action = SyncAction(
                kind=SyncKind.LOCK, src=src, trg=trg,
                counters=self._stamp(src, trg), structure=structure,
            )
            self.delivery.metrics.count("dropped_syncs", src)
            self.cluster.metrics.incr("qos.dropped_syncs", rank=src)
            return action
        sc = self.counters.on_lock(src, trg, structure)
        action = SyncAction(
            kind=SyncKind.LOCK, src=src, trg=trg,
            counters=self._stamp(src, trg, sc=sc), structure=structure,
        )
        return self._issue_sync(action, cost=self.cluster.costs.lock())

    def unlock(self, src: int, trg: int, structure: str | None = None) -> SyncAction:
        """Release a lock on ``trg``; completes and closes the epoch (§2.2).

        Toward a suspended rank the release degrades gracefully: a lock
        acquired before the target died is released locally, one whose
        acquisition was itself dropped unwinds without error, and the pair's
        in-flight operations resolve through the delivery mode.
        """
        self._pre_action(src, trg)
        if self.delivery is not None and trg in self.suspended_ranks():
            try:
                self.counters.on_unlock(src, trg, structure)
            except LockError:
                pass  # the matching lock itself was dropped
            self._complete_pair(src, trg)  # resolves in-flights via the mode
            self.epochs.close_epoch(src, trg)
            action = SyncAction(
                kind=SyncKind.UNLOCK, src=src, trg=trg,
                counters=self._stamp(src, trg), structure=structure,
            )
            self.delivery.metrics.count("dropped_syncs", src)
            self.cluster.metrics.incr("qos.dropped_syncs", rank=src)
            return action
        self.counters.on_unlock(src, trg, structure)
        self._complete_pair(src, trg)
        action = SyncAction(
            kind=SyncKind.UNLOCK, src=src, trg=trg,
            counters=self._stamp(src, trg), structure=structure,
        )
        result = self._issue_sync(action, cost=self.cluster.costs.unlock())
        self.epochs.close_epoch(src, trg)
        return result

    def flush(self, src: int, trg: int) -> SyncAction:
        """Complete all outstanding ``src -> trg`` operations (MPI_Win_flush).

        Completes the pair's queued operations at the backend, closes the
        epoch and increments ``GC_src`` (§4.1 B).
        """
        self._pre_action(src, trg)
        self._complete_pair(src, trg)
        pending = self.epochs.pending(src, trg)
        self.counters.on_flush(src)
        action = SyncAction(
            kind=SyncKind.FLUSH, src=src, trg=trg,
            counters=self._stamp(src, trg),
        )
        result = self._issue_sync(action, cost=self.cluster.costs.flush(pending))
        self.epochs.close_epoch(src, trg)
        return result

    def flush_all(self, src: int) -> SyncAction:
        """Complete all outstanding operations of ``src`` (MPI_Win_flush_all)."""
        self.observe_failures()
        suspended = self.suspended_ranks()
        if src in suspended:
            raise RankSuspendedError(src)
        self.cluster.ensure_alive(src)
        # Completing towards a dead target must fail *before* any effect is
        # applied, on every backend alike — an eager backend already wrote the
        # bytes, a batching one has not, so the liveness check (not the apply)
        # has to be the common failure point.  Suspended targets are exempt:
        # their in-flight operations resolve through the delivery mode.
        for pair_src, trg in list(self._accrued):
            if pair_src == src and trg not in suspended:
                self.cluster.ensure_alive(trg)
        self._complete_rank(src)
        pending = self.epochs.pending(src)
        gc = self.counters.on_flush(src)
        action = SyncAction(
            kind=SyncKind.FLUSH_ALL, src=src, trg=None,
            counters=Counters(gc=gc, gnc=self.counters.gnc(src)),
        )
        result = self._issue_sync(action, cost=self.cluster.costs.flush(pending))
        self.epochs.close_all_epochs(src)
        return result

    def gsync(self) -> list[SyncAction]:
        """Global window synchronization (MPI_Win_fence / upc_barrier).

        Collective over all ranks: completes every outstanding operation,
        closes every epoch at every process and increments every ``GNC``
        (§4.1 E).  Raises :class:`~repro.errors.ProcessFailedError` if any
        participant has failed — this is where failures are usually observed.
        """
        self._ensure_all_alive("gsync")
        if any(self.counters.holds_any_lock(r) for r in self.cluster.alive_ranks()):
            raise SynchronizationError("gsync while a lock is held")
        for rank in range(self.nprocs):
            self._complete_rank(rank)
        # A failure that fired *during* the completion loop (an injected kill
        # counts completions) must surface here, before any rank resumes past
        # the collective: the closing barrier below only synchronizes ranks
        # alive at its entry, so it cannot observe this one — and a rank that
        # resumed would perform post-sync local stores the action log never
        # sees, which a localized replay could then not reconstruct.
        self.observe_failures()
        suspended = self.suspended_ranks()
        failed = [
            r for r in self.cluster.failed_ranks()
            if r not in self.excised and r not in suspended
        ]
        if failed:
            raise ProcessFailedError(
                failed[0], f"gsync observed failed ranks {failed} (fail-stop)"
            )
        cost = self.cluster.costs.gsync(self.nprocs)
        self._collective_barrier(cost=cost)  # raises on failed participants
        self.counters.on_gsync()
        self.epochs.close_global_epoch()
        actions = []
        for rank in self.cluster.alive_ranks():
            action = SyncAction(
                kind=SyncKind.GSYNC, src=rank, trg=None,
                counters=Counters(
                    gc=self.counters.gc(rank), gnc=self.counters.gnc(rank),
                ),
            )
            self.interceptors.before_sync(action)
            self.recorder.record(action)
            self.interceptors.after_sync(action)
            actions.append(action)
        self.cluster.metrics.incr("rma.gsyncs")
        return actions

    def barrier(self) -> float:
        """Plain barrier (no window synchronization, no epoch effect)."""
        self._ensure_all_alive("barrier")
        return self._collective_barrier()

    def _collective_barrier(self, cost: float | None = None) -> float:
        """Cluster barrier that tolerates mid-barrier suspensions.

        Advancing the survivors' clocks to the barrier point can itself fire
        a time-scheduled failure, which :meth:`~repro.simulator.cluster.
        Cluster.barrier` reports as :class:`ProcessFailedError`.  Under a
        tolerant delivery mode a participant that merely became *suspended*
        must not abort the collective: the failure is folded into the
        suspended set and the survivors re-synchronize without it.  The
        retry's time points are injector-controlled, hence identical across
        backends — determinism is unaffected.
        """
        while True:
            try:
                return self.cluster.barrier(cost=cost)
            except ProcessFailedError:
                self.observe_failures()
                suspended = self.suspended_ranks()
                if not suspended:
                    raise
                failed = [
                    r for r in self.cluster.failed_ranks()
                    if r not in self.excised and r not in suspended
                ]
                if failed:
                    raise

    # ------------------------------------------------------------------
    # Compute and lifecycle
    # ------------------------------------------------------------------
    def compute(self, rank: int, flops: float) -> float:
        """Charge ``flops`` of application compute on ``rank``'s clock.

        During a log-driven replay only the *restoring* ranks do real work
        (their lost computation is re-executed); survivors merely re-derive
        values they already hold, so their charge is suppressed — in a real
        system they would be waiting for the recovering processes (§4.2).
        """
        if rank in self.suspended_ranks():
            raise RankSuspendedError(rank)
        self.cluster.ensure_alive(rank)
        if self._replay is not None and rank not in self._replay.restoring:
            return self.cluster.now(rank)
        return self.cluster.advance(rank, self.cluster.costs.compute(flops))

    def finalize(self) -> None:
        """Finish the run: flush interceptor statistics, release the backend.

        Idempotent.  Backend teardown (worker processes, shared-memory
        segments of the real-process backend) happens here; window contents
        stay readable afterwards so results can still be gathered.
        """
        if not self._finalized:
            self._finalized = True
            self.interceptors.on_finalize()
            self.backend.close()

    # ------------------------------------------------------------------
    # Failure plumbing
    # ------------------------------------------------------------------
    def observe_failures(self, now: float | None = None) -> list[int]:
        """Fire scheduled failures and propagate them to windows/interceptors.

        Diffing against the runtime's own known-failed set also catches ranks
        killed directly with :meth:`~repro.simulator.cluster.Cluster.fail_rank`
        (not just time-scheduled events): their window buffers are invalidated
        and every interceptor's ``on_failure_detected`` fires exactly once.

        Backends whose ranks have a *real* execution vehicle (the OS worker
        processes of the ``proc`` backend) report vehicle deaths here too —
        folded into the cluster's failed set first, so a SIGKILLed worker
        surfaces through exactly the same path as a scheduled failure.
        """
        for rank in self.backend.poll_failures():
            if self.cluster.is_alive(rank):
                self.cluster.fail_rank(rank)
        self.cluster.check_failures(now if now is not None else self.cluster.elapsed())
        newly = sorted(set(self.cluster.failed_ranks()) - self._known_failed)
        for rank in newly:
            self._known_failed.add(rank)
            self.backend.invalidate_rank(rank)
            self.interceptors.on_failure_detected(rank)
        return newly

    def notify_respawn(self, rank: int) -> None:
        """Tell the runtime a replacement process took over ``rank``.

        Called by the recovery path (:mod:`repro.ft.recovery`) after the
        cluster respawned the rank: resets the rank's epoch and counter state,
        gives the backend a chance to provide a fresh execution vehicle (a new
        worker process on the ``proc`` backend) and notifies interceptors.
        """
        self._known_failed.discard(rank)
        self.epochs.reset_rank(rank)
        self.counters.reset_rank(rank)
        self.backend.respawn_rank(rank)
        self.interceptors.on_respawn(rank)

    def pending_nb_ops(self, src: int | None = None) -> int:
        """Issued-but-uncompleted nonblocking operations of ``src`` (or all)."""
        return self.backend.pending_ops(src)

    def discard_pending(self) -> int:
        """Drop every outstanding nonblocking operation (recovery rollback).

        The dropped operations were issued after the checkpoint being restored
        and never completed, so no committed state reflects them; their
        handles are poisoned so a later ``result()`` raises instead of
        reporting rolled-back data.  Returns the number of discarded ops.
        """
        discarded = self.backend.discard_pending()
        for handle in discarded:
            handle._mark_discarded()
        self._accrued.clear()
        self.epochs.clear_pending()
        return len(discarded)

    def quiesce_suspended(self) -> None:
        """Drain in-flight operations involving suspended ranks, effect-free.

        Called by the session immediately before *repairing* suspended ranks
        (:mod:`repro.qos`): an operation still queued toward a rank about to
        be respawned-and-restored would otherwise apply after the restore on
        deferring backends but before it on the eager one, breaking backend
        identity.  Survivor operations toward the suspended ranks resolve
        through the delivery mode (drop/stale, same deterministic hash as
        post-failure issues); the suspended ranks' own queues are abandoned.
        """
        suspended = self.suspended_ranks()
        if not suspended:
            return
        for src in range(self.cluster.nprocs):
            if src in suspended:
                self._discard_from(src)
            elif self.backend.pending_ops(src):
                self._discard_toward(src, suspended)

    # ------------------------------------------------------------------
    # Log-driven replay (localized recovery, §7)
    # ------------------------------------------------------------------
    @property
    def replaying(self) -> bool:
        """Whether a localized recovery's replay is currently active."""
        return self._replay is not None

    @property
    def replay_restoring(self) -> frozenset[int]:
        """Ranks being reconstructed by the active replay (empty when none).

        During a localized replay only these ranks perform real work;
        survivors re-derive values they already hold.  Instrumented kernels
        (e.g. the KV service's latency recorder) use this to keep survivors'
        original measurements instead of overwriting them with replay-time
        clocks.
        """
        return self._replay.restoring if self._replay is not None else frozenset()

    def begin_replay(self, cursor: ReplayCursor) -> None:
        """Enter replay mode: issued actions matching ``cursor`` are suppressed.

        Installed by :class:`~repro.ft.protocols.LocalizedReplay` after it
        restored the failed ranks; the deterministic re-execution then drains
        the cursor and the runtime drops back to normal execution by itself.
        """
        if cursor.exhausted:
            return
        self._replay = cursor

    def end_replay(self) -> ReplayCursor | None:
        """Abort replay mode (a further failure interrupted it); return the cursor."""
        cursor, self._replay = self._replay, None
        return cursor

    def replay_step_boundary(self) -> None:
        """Advance the replay across a job-step boundary (session-driven).

        Step boundaries are where the cursor's phases align with the original
        execution: the survivors' crash-time windows are restored once the
        fully-completed steps have drained, and replay mode ends when the
        partial crash step has drained too.
        """
        if self._replay is None:
            return
        if self._replay.step_boundary(self):
            self._replay = None
            self.cluster.metrics.incr("ft.replays_completed")

    # ------------------------------------------------------------------
    # Degraded continuation (best-effort mode)
    # ------------------------------------------------------------------
    def excise_rank(self, rank: int) -> None:
        """Permanently remove a failed rank from the job (best-effort mode).

        The rank is *not* respawned: its window buffers are reallocated to
        zeros so survivors' reads observe a defined value, operations
        targeting it are silently dropped, and the scheduler skips its
        kernels.  Used by :class:`~repro.ft.protocols.ContinueDegraded`.
        """
        if self.cluster.is_alive(rank):
            raise ProcessFailedError(rank, f"rank {rank} is alive; cannot excise it")
        self.backend.reallocate_rank(rank)
        self.counters.release_all_locks(rank)
        self.excised = self.excised | {rank}
        self.cluster.metrics.incr("ft.excised_ranks", rank=rank)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _ensure_all_alive(self, what: str) -> None:
        """Collectives observe pending failures and fail when any rank is dead.

        A collective involves every rank, so a process that already failed —
        even one whose failure was observed earlier — makes it raise; this is
        how the paper's applications learn they must recover before
        synchronizing again (§2.4).  Excised ranks are no longer members of
        the (shrunk) job and do not count — and neither do ranks a tolerant
        delivery mode merely *suspends* (they are repaired at the next step
        boundary; the survivors' collective proceeds without them).
        """
        self.observe_failures()
        suspended = self.suspended_ranks()
        dead = [
            r for r in self.cluster.failed_ranks()
            if r not in self.excised and r not in suspended
        ]
        if dead:
            raise ProcessFailedError(dead[0], f"{what} observed failed ranks {dead}")

    def _pre_action(self, src: int, trg: int) -> None:
        """Failure check before any targeted action: src then trg must be alive.

        A target excised by a degraded continuation is exempt — operations
        towards it are dropped later rather than raising, which is what lets
        survivors keep running without recovery code.  A target *suspended*
        by a tolerant delivery mode is likewise exempt (the issue path will
        resolve the operation as a drop or stale read); a suspended *source*
        raises :class:`~repro.errors.RankSuspendedError` so the scheduler
        skips just that rank's turn.
        """
        self.observe_failures(self.cluster.now(src))
        suspended = self.suspended_ranks()
        if src in suspended:
            raise RankSuspendedError(src)
        self.cluster.ensure_alive(src)
        if trg not in self.excised and trg not in suspended:
            self.cluster.ensure_alive(trg)

    @staticmethod
    def _coerce_payload(data: np.ndarray, win: Window) -> np.ndarray:
        """Copy a user payload into a flat array of the window's dtype.

        The copy decouples the action from the caller's buffer: a nonblocking
        operation applied only at flush time, and actions retained by
        interceptors or the recorder, must keep the values the operation was
        issued with even if the caller mutates its array afterwards (the
        stencil passes live window slices, for example).
        """
        return np.array(data, dtype=win.dtype, copy=True).ravel()

    def _stamp(self, src: int, trg: int, *, sc: int | None = None) -> Counters:
        """Counters a fresh ``src -> trg`` action carries (Eq. 1/3)."""
        return Counters(
            ec=self.epochs.epoch(src, trg),
            gc=self.counters.gc(src),
            sc=self.counters.sc_held(src, trg) if sc is None else sc,
            gnc=self.counters.gnc(src),
        )

    def _make_comm(
        self,
        kind: OpKind,
        src: int,
        trg: int,
        win: Window,
        offset: int,
        count: int,
        *,
        combine: bool,
        data: np.ndarray | None = None,
        compare: np.ndarray | None = None,
        op: AccumulateOp = AccumulateOp.REPLACE,
    ) -> CommAction:
        # Window-addressing errors first (they name the rank and window), then
        # liveness: a malformed nonblocking op must fail at its call site,
        # identically on every backend, not at the flush that would apply it.
        win.check_access(trg, offset, count)
        self._pre_action(src, trg)
        window = win.name
        return CommAction(
            kind=kind, src=src, trg=trg, window=window, offset=offset,
            count=count, combine=combine, counters=self._stamp(src, trg),
            op=op, data=data, compare=compare,
        )

    def _issue_nb(self, action: CommAction, win: Window) -> OpHandle:
        """Issue one communication action: interceptors, backend, accrual.

        The action's network cost and metrics are *accrued*, not charged —
        they hit the origin's clock when the pair's queue completes, mirroring
        how the backend may defer execution itself.

        Two special paths bypass the normal pipeline entirely (no
        interceptors, no backend, no accrual — the action is not part of new
        committed state):

        * a target excised by a degraded continuation: the operation is
          *dropped* — the handle completes immediately, get-like results
          observe the excised rank's zeroed buffer (best-effort semantics);
        * an active :class:`~repro.rma.replay.ReplayCursor` that matches the
          action: the operation already happened before the crash — its
          logged effect is re-applied only to restoring ranks' windows and
          logged get data is served, so survivors are never touched twice.
        """
        if action.trg in self.excised:
            handle = OpHandle(action)
            if action.kind.is_get_like:
                action.data = np.zeros(action.count, dtype=win.dtype)
            handle._mark_completed()
            self.cluster.metrics.incr("ft.dropped_ops", rank=action.src)
            return handle
        if self.delivery is not None and action.trg in self.suspended_ranks():
            # Tolerated by the delivery mode: resolved right here (drop or
            # stale service) — the operation never reaches the backend, the
            # action log, the epochs or the accrual, exactly like the excised
            # path above; it is not part of any committed state.
            handle = OpHandle(action)
            self.delivery.resolve(action, win, self)
            handle._mark_completed()
            return handle
        if self._replay is not None:
            logged = self._replay.consume(action)
            if logged is not None:
                return self._suppress_replayed(action, logged, win)
        self.interceptors.before_comm(action)
        handle = OpHandle(action)
        self.backend.issue(handle, win)
        accrual = self._accrued.get((action.src, action.trg))
        if accrual is None:
            accrual = self._accrued[(action.src, action.trg)] = _Accrual()
        nbytes = action.count * win.itemsize
        accrual.cost += self.cluster.costs.remote_transfer(
            nbytes, atomic=action.kind.is_atomic
        )
        accrual.nbytes += nbytes
        accrual.kinds[action.kind.value] += 1
        self.epochs.record_access(action.src, action.trg)
        self.recorder.record(action)
        return handle

    def _suppress_replayed(
        self, action: CommAction, logged: CommAction, win: Window
    ) -> OpHandle:
        """Complete a re-issued action from its logged twin instead of executing it."""
        assert self._replay is not None
        handle = OpHandle(action)
        if action.kind.is_get_like and logged.data is not None:
            action.data = np.array(logged.data, copy=True)
        if action.is_put_like and logged.trg in self._replay.restoring:
            nbytes = replay_apply(logged, win)
            self.cluster.advance(
                logged.trg, self.cluster.costs.local_copy(nbytes), kind="protocol"
            )
            self.cluster.metrics.incr("ft.replayed_bytes", nbytes, rank=logged.trg)
        handle._mark_completed()
        return handle

    def _complete_pair(self, src: int, trg: int) -> None:
        """Complete all outstanding ``src -> trg`` ops: apply, notify, charge."""
        if trg in self.suspended_ranks():
            self._discard_toward(src, frozenset((trg,)))
            return
        self._retire(self.backend.complete(src, trg))
        self._charge_accrued(src, trg)

    def _complete_rank(self, src: int) -> None:
        """Complete all outstanding ops of ``src`` across every target.

        Fail-stop: a process that died after issuing but before completing
        performs no further operations — its queue stays pending for
        recovery's discard.  The real-process backend enforces this naturally
        (the dead worker cannot apply its batch); raising here makes the
        in-process backends refuse at the exact same point, so completion
        streams — and everything downstream, like the action log a localized
        replay trusts — stay bit-identical across backends.

        Under a tolerant delivery mode the same two situations resolve
        without raising: a suspended origin's queue is abandoned (poisoned
        handles, like a rollback's discard), and a surviving origin's
        in-flight operations toward suspended targets are resolved through
        the mode (drop or stale service) instead of being applied.
        """
        suspended = self.suspended_ranks()
        if src in suspended:
            self._discard_from(src)
            return
        if suspended:
            self._discard_toward(src, suspended)
        if (
            src not in self.excised
            and not self.cluster.is_alive(src)
            and self.backend.pending_ops(src)
        ):
            raise ProcessFailedError(src)
        self._retire(self.backend.complete_rank(src))
        for key in [k for k in self._accrued if k[0] == src]:
            self._charge_accrued(*key)

    def _discard_toward(self, src: int, trgs: frozenset[int]) -> None:
        """Resolve ``src``'s in-flight ops toward suspended targets, effect-free.

        The operations were issued while their target was still alive; under
        a tolerant delivery mode their completion becomes a drop/stale
        resolution (there is no memory to apply them to) with the same
        deterministic hash as operations issued after the failure.  Their
        accrued network cost is dropped with them: the message was never
        delivered.
        """
        assert self.delivery is not None
        for handle in self.backend.discard_targeting(src, trgs):
            action = handle.action
            self.delivery.resolve(action, self.windows.get(action.window), self)
            handle._mark_completed()
        for trg in trgs:
            self._accrued.pop((src, trg), None)

    def _discard_from(self, src: int) -> None:
        """Abandon a suspended origin's whole in-flight queue (fail-stop).

        The dead rank performs no further operations: its handles are
        poisoned exactly as a rollback's discard poisons them, and nothing
        is charged to its clock — the repair at the next step boundary
        restores it from the newest checkpoint instead.
        """
        assert self.delivery is not None
        handles = self.backend.discard_rank(src)
        for handle in handles:
            handle._mark_discarded()
        if handles:
            self.delivery.metrics.count("discarded_inflight", src, len(handles))
            self.cluster.metrics.incr(
                "qos.discarded_inflight", len(handles), rank=src
            )
        for key in [k for k in self._accrued if k[0] == src]:
            del self._accrued[key]

    def _retire(self, handles: list[OpHandle]) -> None:
        """Mark completed handles and emit the completion stream to interceptors."""
        for handle in handles:
            handle._mark_completed()
            self.interceptors.after_comm(handle.action)

    def _charge_accrued(self, src: int, trg: int) -> None:
        """Charge the accrued cost/metrics of a completed ``(src, trg)`` batch."""
        accrual = self._accrued.pop((src, trg), None)
        if accrual is None:
            return
        self.cluster.advance(src, accrual.cost, kind="comm")
        metrics = self.cluster.metrics
        for kind, count in accrual.kinds.items():
            metrics.incr(f"rma.{kind}", count, rank=src)
        metrics.incr("rma.bytes_moved", accrual.nbytes, rank=src)

    def _issue_sync(self, action: SyncAction, *, cost: float) -> SyncAction:
        self.interceptors.before_sync(action)
        self.cluster.advance(action.src, cost, kind="comm")
        self.recorder.record(action)
        self.interceptors.after_sync(action)
        self.cluster.metrics.incr(f"rma.{action.kind.value}", rank=action.src)
        return action

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RmaRuntime(nprocs={self.nprocs}, backend={self.backend.name!r}, "
            f"windows={len(self.windows)}, interceptors={len(self.interceptors)})"
        )
