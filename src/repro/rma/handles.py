"""Nonblocking operation handles — issue/completion decoupled (§2.2).

The paper's model is *nonblocking*: a communication action becomes visible to
the rest of the job only when a memory-consistency action (flush, unlock,
gsync) completes the epoch it was issued in.  :class:`OpHandle` is the
API-level object carrying that distinction: ``put_nb``/``get_nb``/
``accumulate_nb`` return a handle immediately, and the handle's buffer
materializes only when the runtime completes it at the next
``flush``/``unlock``/``gsync`` towards the target.

Reading :meth:`OpHandle.result` before completion raises
:class:`~repro.errors.OpHandleError` — by design, since within an open epoch
the operation's effect is not yet part of the consistent state (§2.2), and a
backend is free to delay or batch its execution arbitrarily until the epoch
closes.  A recovery rollback *discards* issued-but-uncompleted handles: their
effects were never part of any committed checkpoint, so their results must
not be observed either.
"""

from __future__ import annotations

import numpy as np

from repro.errors import OpHandleError
from repro.rma.actions import CommAction

__all__ = ["OpHandle"]


class OpHandle:
    """Handle on one issued nonblocking communication action."""

    __slots__ = ("action", "_completed", "_discarded")

    def __init__(self, action: CommAction) -> None:
        self.action = action
        self._completed = False
        self._discarded = False

    # ------------------------------------------------------------------
    @property
    def completed(self) -> bool:
        """Whether a flush/unlock/gsync has completed this operation."""
        return self._completed

    @property
    def discarded(self) -> bool:
        """Whether a recovery rollback discarded this operation before completion."""
        return self._discarded

    @property
    def kind(self):
        """The :class:`~repro.rma.actions.OpKind` of the underlying action."""
        return self.action.kind

    @property
    def window(self) -> str:
        """Name of the window the operation targets."""
        return self.action.window

    # ------------------------------------------------------------------
    def result(self) -> np.ndarray | None:
        """The operation's buffer, available only after completion.

        For get-like operations this is the data read from the target; for
        pure puts it is ``None`` (completion only guarantees the write is
        visible).  Raises :class:`~repro.errors.OpHandleError` while the
        handle is still in its open epoch or after a rollback discarded it.
        """
        if self._discarded:
            raise OpHandleError(
                f"handle of {self.action.describe()} was discarded by a recovery "
                f"rollback; its effect was never committed"
            )
        if not self._completed:
            raise OpHandleError(
                f"{self.action.describe()} is not completed; its buffer "
                f"materializes at the next flush/unlock/gsync towards rank "
                f"{self.action.trg}"
            )
        if self.action.kind.is_get_like:
            return self.action.data
        return None

    # Runtime-internal state transitions --------------------------------------
    def _mark_completed(self) -> None:
        self._completed = True

    def _mark_discarded(self) -> None:
        self._discarded = True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "completed" if self._completed else (
            "discarded" if self._discarded else "issued"
        )
        return f"OpHandle({self.action.describe()}, {state})"
