"""RMA windows — the shared memory regions of the model (§2).

Following the paper's implementation section (§6) we assume each process
exposes one (or more) contiguous regions of memory of equal size; in MPI-3
terms every such region is a *window*.  In the simulator a window is simply a
numpy array per rank, owned by the runtime, that remote processes read and
write through :class:`~repro.rma.runtime.RmaRuntime`.

A window buffer is *invalidated* when its owner fails (fail-stop: the memory
content is lost) and *reallocated* when a replacement process is spawned.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ProcessFailedError, WindowError

__all__ = ["Window", "WindowRegistry"]


@dataclass
class Window:
    """One shared memory window replicated over all ranks."""

    name: str
    size: int
    dtype: np.dtype
    nprocs: int
    buffers: dict[int, np.ndarray] = field(default_factory=dict)
    _invalidated: set[int] = field(default_factory=set)

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise WindowError("window size must be positive")
        if self.nprocs <= 0:
            raise WindowError("window needs at least one process")
        self.dtype = np.dtype(self.dtype)
        for rank in range(self.nprocs):
            if rank not in self.buffers:
                self.buffers[rank] = np.zeros(self.size, dtype=self.dtype)

    # ------------------------------------------------------------------
    # Local access
    # ------------------------------------------------------------------
    @property
    def itemsize(self) -> int:
        """Bytes per element."""
        return int(self.dtype.itemsize)

    @property
    def nbytes_per_rank(self) -> int:
        """Window size in bytes at each rank."""
        return self.size * self.itemsize

    def local(self, rank: int) -> np.ndarray:
        """The full local buffer of ``rank`` (a view, not a copy)."""
        self._check_rank(rank)
        self._check_alive(rank)
        return self.buffers[rank]

    def read(self, rank: int, offset: int, count: int) -> np.ndarray:
        """Copy ``count`` elements starting at ``offset`` from ``rank``'s buffer."""
        self._check_range(rank, offset, count)
        self._check_alive(rank)
        return self.buffers[rank][offset : offset + count].copy()

    def write(self, rank: int, offset: int, data: np.ndarray) -> None:
        """Overwrite ``rank``'s buffer at ``offset`` with ``data``."""
        data = np.asarray(data, dtype=self.dtype).ravel()
        self._check_range(rank, offset, data.size)
        self._check_alive(rank)
        self.buffers[rank][offset : offset + data.size] = data

    def view(self, rank: int, offset: int, count: int) -> np.ndarray:
        """A mutable view into ``rank``'s buffer (used by atomics)."""
        self._check_range(rank, offset, count)
        self._check_alive(rank)
        return self.buffers[rank][offset : offset + count]

    def check_access(self, rank: int, offset: int, count: int) -> None:
        """Validate a prospective access without performing it.

        Called by the runtime at *issue* time so a malformed nonblocking
        operation fails where it was written, identically on every backend —
        not at the flush that would eventually have applied it.
        """
        self._check_range(rank, offset, count)

    def snapshot(self, rank: int) -> np.ndarray:
        """A deep copy of ``rank``'s entire buffer (checkpoint payload)."""
        self._check_rank(rank)
        self._check_alive(rank)
        return self.buffers[rank].copy()

    def restore(self, rank: int, data: np.ndarray) -> None:
        """Replace ``rank``'s entire buffer with checkpointed ``data``."""
        data = np.asarray(data, dtype=self.dtype).ravel()
        if data.size != self.size:
            raise WindowError(
                f"restore payload has {data.size} elements, window has {self.size}"
            )
        self._check_rank(rank)
        # Restoring is allowed even while the rank is marked invalid: it is
        # exactly how a replacement process re-populates its memory.
        self.buffers[rank] = data.copy()
        self._invalidated.discard(rank)

    # ------------------------------------------------------------------
    # Failure handling
    # ------------------------------------------------------------------
    def invalidate(self, rank: int) -> None:
        """Drop ``rank``'s buffer contents (its memory is lost on failure)."""
        self._check_rank(rank)
        self.buffers[rank] = np.zeros(self.size, dtype=self.dtype)
        self._invalidated.add(rank)

    def reallocate(self, rank: int) -> None:
        """Give a replacement process a fresh zeroed buffer."""
        self._check_rank(rank)
        self.buffers[rank] = np.zeros(self.size, dtype=self.dtype)
        self._invalidated.discard(rank)

    def is_invalidated(self, rank: int) -> bool:
        """Whether ``rank``'s buffer content has been lost and not restored."""
        return rank in self._invalidated

    # ------------------------------------------------------------------
    # Validation helpers
    # ------------------------------------------------------------------
    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.nprocs:
            raise WindowError(
                f"rank {rank} out of range 0..{self.nprocs - 1} for window "
                f"{self.name!r}"
            )

    def _check_alive(self, rank: int) -> None:
        if rank in self._invalidated:
            raise ProcessFailedError(
                rank, f"window {self.name!r} at rank {rank} is invalidated (owner failed)"
            )

    def _check_range(self, rank: int, offset: int, count: int) -> None:
        self._check_rank(rank)
        if count <= 0:
            raise WindowError(
                f"zero-length access (count={count}) on window {self.name!r} "
                f"at rank {rank}; counts must be positive"
            )
        if offset < 0:
            raise WindowError(
                f"negative offset {offset} into window {self.name!r} at rank "
                f"{rank}"
            )
        if offset + count > self.size:
            raise WindowError(
                f"access [{offset}, {offset + count}) out of bounds for window "
                f"{self.name!r} of size {self.size} at rank {rank}"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Window({self.name!r}, size={self.size}, dtype={self.dtype}, "
            f"nprocs={self.nprocs})"
        )


class WindowRegistry:
    """All windows created by a runtime, addressable by name."""

    def __init__(self) -> None:
        self._windows: dict[str, Window] = {}

    def create(
        self,
        name: str,
        size: int,
        dtype: np.dtype,
        nprocs: int,
        *,
        factory: type[Window] = Window,
    ) -> Window:
        """Create and register a new window.

        ``factory`` lets a backend substitute a :class:`Window` subclass whose
        buffers live in backend-owned storage (e.g. POSIX shared memory for
        the real-process backend) while the registry bookkeeping stays common.
        """
        if name in self._windows:
            raise WindowError(f"window {name!r} already exists")
        window = factory(name=name, size=size, dtype=np.dtype(dtype), nprocs=nprocs)
        self._windows[name] = window
        return window

    def get(self, name: str) -> Window:
        """Look a window up by name."""
        try:
            return self._windows[name]
        except KeyError as exc:
            raise WindowError(f"unknown window {name!r}") from exc

    def all(self) -> list[Window]:
        """All registered windows."""
        return list(self._windows.values())

    def invalidate_rank(self, rank: int) -> None:
        """Invalidate ``rank``'s buffers in every window (process failure)."""
        for window in self._windows.values():
            window.invalidate(rank)

    def reallocate_rank(self, rank: int) -> None:
        """Reallocate ``rank``'s buffers in every window (process respawn)."""
        for window in self._windows.values():
            window.reallocate(rank)

    def __contains__(self, name: str) -> bool:
        return name in self._windows

    def __len__(self) -> int:
        return len(self._windows)
