"""Log-driven replay of a deterministic re-execution (§7, log-based recovery).

Localized recovery restores *only* the failed ranks from the checkpoint and
keeps every survivor's state.  The job then re-executes its deterministic
step loop from the checkpoint's step — but most of that re-execution already
happened: every communication action that *completed* before the crash is in
the put/get :class:`~repro.ft.checkpoint.ActionLog`, its effects are already
part of the survivors' memory, and re-applying it would corrupt them (the
paper's ``M`` flag problem for combining puts, §3.2.3).

A :class:`ReplayCursor` installed on the runtime solves this by *suppressing*
re-issued actions that match the log:

* because the schedule is deterministic, a re-execution issues, per
  ``(src, trg)`` pair, exactly the sequence of actions the log recorded for
  that pair — the cursor matches each issued action against the head of its
  pair's queue (payloads recomputed from divergent survivor state do not
  matter: the *logged* action is what gets applied or served);
* a matched **put-like** action is not executed again against survivors; if
  its target is one of the *restoring* ranks, its logged operand is applied
  directly to the restored window — this is the replay that reconstructs the
  failed ranks' post-checkpoint state;
* a matched **get-like** action is served its logged data, so the re-executed
  program observes the values of the original execution even though survivor
  windows have advanced past them.

The cursor is *step-aligned*.  The log carries a marker per completed job
step — the session records one when the kernels of a step have finished and
another after the step-closing sync — splitting it into fully-completed
steps and the partial work of the step the crash aborted.  While the full steps replay, survivors' windows are
scratch space — their re-executed local stores write on top of post-crash
state and produce garbage, but nothing reads it (gets are served from the
log).  At the boundary where the full steps are drained, the survivors'
windows are restored from the crash-time snapshot taken at recovery, which
by construction is exactly their state at that boundary; the partial step
then replays its completed prefix the same way and normal execution resumes
seamlessly where the original left off.

Only the failed ranks perform real work during replay (their lost computation
is re-executed for real); survivors merely re-derive values they already hold,
so the runtime suppresses their compute charges — in a real system they would
be waiting for the recovering processes (§4.2).

Contract: replay is exact for deterministic kernels whose local window
stores within a step precede any operation of that step that completes
*later* than the stores (the shipped kernels and the session's step
structure satisfy this by construction: completions happen at collectives
and blocking calls, and the boundary markers bracket the kernels' local
work).  A kernel that interleaves a local store *after* an operation that
only completes at the step-closing sync would re-apply that store if the
crash hit exactly that sync — prefer ``GlobalRollback`` for such kernels.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import RecoveryError
from repro.rma.actions import CommAction, OpKind, apply_accumulate
from repro.rma.window import Window

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from repro.rma.runtime import RmaRuntime

__all__ = ["ReplayCursor", "replay_apply"]

#: ``rank -> window -> data``: survivor window contents at crash time.
SurvivorSnapshot = dict[int, dict[str, np.ndarray]]


def replay_apply(logged: CommAction, win: Window) -> int:
    """Re-apply one logged put-like action to a restored window.

    Uses the *operand* the action was issued with (completion may have
    overwritten ``data`` with fetched values).  Pure gets mutate nothing.
    Returns the number of bytes written.
    """
    operand = logged.operand if logged.operand is not None else logged.data
    if logged.kind is OpKind.GET:
        return 0
    if logged.kind is OpKind.PUT:
        win.write(logged.trg, logged.offset, operand)
    elif logged.kind is OpKind.COMPARE_AND_SWAP:
        view = win.view(logged.trg, logged.offset, logged.count)
        if np.array_equal(view.copy(), logged.compare):
            view[...] = operand
    else:  # accumulate-style: deterministic re-application in issue order
        view = win.view(logged.trg, logged.offset, logged.count)
        apply_accumulate(view, np.asarray(operand, dtype=win.dtype), logged.op)
    return int(np.asarray(operand).nbytes) if operand is not None else 0


class _PairQueues:
    """Per-(src, trg) FIFO queues over a slice of the log."""

    def __init__(self, actions: list[CommAction]) -> None:
        self.queues: dict[tuple[int, int], deque[CommAction]] = {}
        for action in actions:
            self.queues.setdefault((action.src, action.trg), deque()).append(action)
        self.remaining = len(actions)

    def head(self, action: CommAction) -> CommAction | None:
        queue = self.queues.get((action.src, action.trg))
        return queue[0] if queue else None

    def pop(self, action: CommAction) -> CommAction:
        logged = self.queues[(action.src, action.trg)].popleft()
        self.remaining -= 1
        return logged


class ReplayCursor:
    """Step-aligned suppression state for one localized recovery."""

    def __init__(
        self,
        actions: list[CommAction],
        restoring: set[int],
        *,
        partial_start: int | None = None,
        survivor_snapshot: SurvivorSnapshot | None = None,
    ) -> None:
        #: Ranks whose windows were restored from the checkpoint and are being
        #: reconstructed by this replay.
        self.restoring = frozenset(restoring)
        if partial_start is None:
            partial_start = len(actions)
        self._full = _PairQueues(actions[:partial_start])
        self._partial = _PairQueues(actions[partial_start:])
        self._snapshot: SurvivorSnapshot = survivor_snapshot or {}
        # With no fully-completed steps to replay, survivor windows never
        # become scratch space: the partial phase is live immediately.
        self._partial_active = self._full.remaining == 0
        self._survivors_restored = self._full.remaining == 0

    # ------------------------------------------------------------------
    @property
    def exhausted(self) -> bool:
        """Whether every logged action has been matched by the re-execution."""
        return self._full.remaining == 0 and self._partial.remaining == 0

    @property
    def remaining(self) -> int:
        """Logged actions not yet matched."""
        return self._full.remaining + self._partial.remaining

    def consume(self, action: CommAction) -> CommAction | None:
        """Match an issued action against the active phase's logged queue.

        Returns the logged twin to suppress against (``None`` when the pair's
        queue is empty — the re-execution has passed the crash point for this
        pair and the action must execute normally).  A non-empty queue whose
        head does not match means the re-execution diverged from the original
        schedule, which deterministic kernels cannot do: that is an error, not
        a fallback.
        """
        phase = self._partial if self._partial_active else self._full
        logged = phase.head(action)
        if logged is None:
            return None
        if not self._matches(logged, action):
            raise RecoveryError(
                f"replay diverged: re-execution issued {action.describe()} but "
                f"the log recorded {logged.describe()} for this pair; localized "
                f"recovery requires a deterministic kernel"
            )
        return phase.pop(action)

    # ------------------------------------------------------------------
    def step_boundary(self, runtime: "RmaRuntime") -> bool:
        """Advance the cursor's phase at a job-step boundary.

        Called by the session after each re-executed step.  Once the
        fully-completed steps have drained, the survivors' windows — scratch
        space until now — are restored from the crash-time snapshot (their
        exact state at this boundary) and the partial crash step's queue
        becomes active.  Returns ``True`` when the whole cursor is exhausted
        and replay mode should end.
        """
        if self._full.remaining == 0 and not self._survivors_restored:
            self.restore_survivors(runtime)
            self._partial_active = True
        return self.exhausted and self._survivors_restored

    def restore_survivors(self, runtime: "RmaRuntime") -> None:
        """Put the snapshotted survivor windows back (idempotent)."""
        if self._survivors_restored:
            return
        self._survivors_restored = True
        for rank, windows in self._snapshot.items():
            for name, data in windows.items():
                runtime.windows.get(name).restore(rank, data)

    # ------------------------------------------------------------------
    @staticmethod
    def _matches(logged: CommAction, issued: CommAction) -> bool:
        return (
            logged.kind is issued.kind
            and logged.window == issued.window
            and logged.offset == issued.offset
            and logged.count == issued.count
            and logged.op is issued.op
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ReplayCursor(remaining={self.remaining}, "
            f"restoring={sorted(self.restoring)})"
        )
