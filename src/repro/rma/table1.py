"""Operation categorization across RMA languages (the paper's Table 1).

The table maps concrete operations of MPI-3 One Sided, UPC and Fortran 2008 to
the categories of the formal model: ``put``, ``get``, ``lock``, ``unlock``,
``gsync`` and ``flush``.  Atomic read-modify-write functions appear in both
the put and the get row, exactly as in the paper.

The mapping is validated by ``tests/test_table1.py`` (round-trips of
:func:`categories_of` / :func:`operations_in_category` and of the runtime's
own operations against their declared categories), and :func:`render_table1`
produces the copy of the table embedded in ``docs/ARCHITECTURE.md``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.rma.actions import ActionCategory

__all__ = ["OperationEntry", "TABLE1", "categories_of", "operations_in_category", "render_table1"]


@dataclass(frozen=True)
class OperationEntry:
    """One operation of one RMA language and the categories it belongs to."""

    language: str
    operation: str
    categories: tuple[ActionCategory, ...]
    kind: str  # "comm." or "sync." — the table's left-hand grouping


def _e(lang: str, op: str, cats: tuple[ActionCategory, ...], kind: str) -> OperationEntry:
    return OperationEntry(language=lang, operation=op, categories=cats, kind=kind)


_PUT = (ActionCategory.PUT,)
_GET = (ActionCategory.GET,)
_PUTGET = (ActionCategory.PUT, ActionCategory.GET)

#: The full contents of Table 1.
TABLE1: tuple[OperationEntry, ...] = (
    # --- MPI-3 One Sided: communication -------------------------------------
    _e("mpi3", "MPI_Put", _PUT, "comm."),
    _e("mpi3", "MPI_Accumulate", _PUT, "comm."),
    _e("mpi3", "MPI_Get", _GET, "comm."),
    _e("mpi3", "MPI_Get_accumulate", _PUTGET, "comm."),
    _e("mpi3", "MPI_Fetch_and_op", _PUTGET, "comm."),
    _e("mpi3", "MPI_Compare_and_swap", _PUTGET, "comm."),
    # --- MPI-3 One Sided: synchronization ------------------------------------
    _e("mpi3", "MPI_Win_lock", (ActionCategory.LOCK,), "sync."),
    _e("mpi3", "MPI_Win_lock_all", (ActionCategory.LOCK,), "sync."),
    _e("mpi3", "MPI_Win_unlock", (ActionCategory.UNLOCK,), "sync."),
    _e("mpi3", "MPI_Win_unlock_all", (ActionCategory.UNLOCK,), "sync."),
    _e("mpi3", "MPI_Win_fence", (ActionCategory.GSYNC,), "sync."),
    _e("mpi3", "MPI_Win_flush", (ActionCategory.FLUSH,), "sync."),
    _e("mpi3", "MPI_Win_flush_all", (ActionCategory.FLUSH,), "sync."),
    _e("mpi3", "MPI_Win_sync", (ActionCategory.FLUSH,), "sync."),
    # --- UPC -----------------------------------------------------------------
    _e("upc", "upc_memput", _PUT, "comm."),
    _e("upc", "upc_memget", _GET, "comm."),
    _e("upc", "upc_memcpy", _PUTGET, "comm."),
    _e("upc", "upc_memset", _PUTGET, "comm."),
    _e("upc", "assignment (=)", _PUTGET, "comm."),
    _e("upc", "all UPC collectives", _PUTGET, "comm."),
    _e("upc", "upc_lock", (ActionCategory.LOCK,), "sync."),
    _e("upc", "upc_unlock", (ActionCategory.UNLOCK,), "sync."),
    _e("upc", "upc_barrier", (ActionCategory.GSYNC,), "sync."),
    _e("upc", "upc_fence", (ActionCategory.FLUSH,), "sync."),
    # --- Fortran 2008 (coarrays) ----------------------------------------------
    _e("fortran2008", "assignment (=)", _PUTGET, "comm."),
    _e("fortran2008", "lock", (ActionCategory.LOCK,), "sync."),
    _e("fortran2008", "unlock", (ActionCategory.UNLOCK,), "sync."),
    _e("fortran2008", "sync_all", (ActionCategory.GSYNC,), "sync."),
    _e("fortran2008", "sync_team", (ActionCategory.GSYNC,), "sync."),
    _e("fortran2008", "sync_images", (ActionCategory.GSYNC,), "sync."),
    _e("fortran2008", "sync_memory", (ActionCategory.FLUSH,), "sync."),
)


def categories_of(language: str, operation: str) -> tuple[ActionCategory, ...]:
    """Categories of one named operation, or an empty tuple if unknown."""
    for entry in TABLE1:
        if entry.language == language and entry.operation == operation:
            return entry.categories
    return ()


def operations_in_category(
    category: ActionCategory, language: str | None = None
) -> list[OperationEntry]:
    """All operations belonging to ``category`` (optionally of one language)."""
    return [
        entry
        for entry in TABLE1
        if category in entry.categories
        and (language is None or entry.language == language)
    ]


def render_table1() -> str:
    """Render the categorization as a text table (one row per category)."""
    languages = ("mpi3", "upc", "fortran2008")
    lines = ["category    | " + " | ".join(f"{lang:^34}" for lang in languages)]
    lines.append("-" * len(lines[0]))
    for category in ActionCategory:
        cells = []
        for lang in languages:
            ops = sorted({e.operation for e in operations_in_category(category, lang)})
            cells.append(", ".join(ops) if ops else "-")
        lines.append(f"{category.value:<11} | " + " | ".join(f"{c:<34}" for c in cells))
    return "\n".join(lines)
