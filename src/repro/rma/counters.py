"""Per-process recovery counters (§2.4, §4.1).

The runtime keeps, for every process ``p``:

* ``EC`` per target — tracked by :class:`~repro.rma.epoch.EpochTracker`;
* ``GC_p`` — the *Get Counter*, incremented each time ``p`` issues a flush to
  any other process; stamped on gets to order gets towards different targets;
* ``SC_p`` — the *Synchronization Counter* stored **at p**, fetched and
  incremented by any process that locks ``p``; the fetched value is stamped on
  the locker's subsequent accesses to record the ``so`` order;
* ``GNC_p`` — the *GsyNc Counter*, incremented at every process by each gsync;
* ``LC_p`` — the *Lock Counter* of the "Locks" coordinated-checkpointing
  scheme (§3.1.2): +1 on lock, -1 on unlock; a checkpoint may start only when
  it is zero.

The counters themselves are plain local integers; only ``SC`` requires an
extra remote access, whose *cost* is charged by the fault-tolerance protocol
(the counter value is always maintained so that tests can inspect orderings
even without any protocol attached).
"""

from __future__ import annotations

import copy
from collections import defaultdict
from dataclasses import dataclass, field

from repro.errors import LockError

__all__ = ["ProcessCounters", "CounterBoard"]


@dataclass
class ProcessCounters:
    """All recovery counters of a single process."""

    #: Get Counter: number of flushes issued by this process so far.
    gc: int = 0
    #: Gsync Counter: number of gsyncs observed by this process.
    gnc: int = 0
    #: Lock Counter of the Locks CC scheme: currently held locks.
    lc: int = 0
    #: Synchronization Counter stored at this process, incremented by lockers.
    sc_local: int = 0
    #: SC value this process currently holds for each target it has locked.
    sc_held: dict[int, int] = field(default_factory=lambda: defaultdict(int))
    #: Targets currently locked by this process (for LockError checking).
    held_locks: dict[tuple[int, str | None], int] = field(default_factory=dict)


class CounterBoard:
    """Counters of every process of the job."""

    def __init__(self, nprocs: int) -> None:
        self.nprocs = nprocs
        self._counters = [ProcessCounters() for _ in range(nprocs)]

    def of(self, rank: int) -> ProcessCounters:
        """Counters of ``rank``."""
        return self._counters[rank]

    # ------------------------------------------------------------------
    # GC — flush counter at the origin
    # ------------------------------------------------------------------
    def on_flush(self, src: int) -> int:
        """Record a flush issued by ``src``; return the new ``GC_src``."""
        self._counters[src].gc += 1
        return self._counters[src].gc

    def gc(self, rank: int) -> int:
        """Current ``GC`` of ``rank``."""
        return self._counters[rank].gc

    # ------------------------------------------------------------------
    # GNC — gsync counter
    # ------------------------------------------------------------------
    def on_gsync(self, ranks: list[int] | None = None) -> None:
        """Record a gsync observed by ``ranks`` (all processes by default)."""
        targets = range(self.nprocs) if ranks is None else ranks
        for rank in targets:
            self._counters[rank].gnc += 1

    def gnc(self, rank: int) -> int:
        """Current ``GNC`` of ``rank``."""
        return self._counters[rank].gnc

    # ------------------------------------------------------------------
    # SC — synchronization counter at the target, fetched on lock
    # ------------------------------------------------------------------
    def on_lock(self, src: int, trg: int, structure: str | None = None) -> int:
        """Record ``src`` locking ``trg``.

        Performs the fetch-and-increment of ``SC_trg`` described in §4.1 C and
        returns the value now held by ``src`` for its accesses to ``trg``.
        Also maintains ``LC_src`` for the Locks CC scheme.
        """
        src_counters = self._counters[src]
        trg_counters = self._counters[trg]
        key = (trg, structure)
        if key in src_counters.held_locks:
            raise LockError(
                f"rank {src} already holds lock {structure!r} on rank {trg}"
            )
        trg_counters.sc_local += 1
        src_counters.sc_held[trg] = trg_counters.sc_local
        src_counters.held_locks[key] = trg_counters.sc_local
        src_counters.lc += 1
        return trg_counters.sc_local

    def on_unlock(self, src: int, trg: int, structure: str | None = None) -> None:
        """Record ``src`` unlocking ``trg``; decrements ``LC_src``."""
        src_counters = self._counters[src]
        key = (trg, structure)
        if key not in src_counters.held_locks:
            raise LockError(
                f"rank {src} does not hold lock {structure!r} on rank {trg}"
            )
        del src_counters.held_locks[key]
        src_counters.lc -= 1
        if src_counters.lc < 0:  # pragma: no cover - defensive
            raise LockError(f"lock counter of rank {src} became negative")

    def sc_held(self, src: int, trg: int) -> int:
        """SC value ``src`` currently holds for ``trg`` (0 if never locked)."""
        return self._counters[src].sc_held.get(trg, 0)

    def sc_local(self, rank: int) -> int:
        """The synchronization counter stored at ``rank``."""
        return self._counters[rank].sc_local

    # ------------------------------------------------------------------
    # LC — lock counter of the Locks coordinated-checkpointing scheme
    # ------------------------------------------------------------------
    def lc(self, rank: int) -> int:
        """Currently held locks of ``rank``."""
        return self._counters[rank].lc

    def holds_any_lock(self, rank: int) -> bool:
        """Whether ``rank`` currently holds any lock (checkpoint must wait)."""
        return self._counters[rank].lc > 0

    def release_all_locks(self, rank: int) -> None:
        """Drop every lock ``rank`` currently holds (crash-recovery release).

        A step aborted by a failure can leave locks acquired mid-kernel
        unreleased; recovery protocols that do not restore counter state
        (localized replay, degraded continuation) release them explicitly so
        the re-executed or continuing program can acquire them again.  The
        historical ``sc_held`` stamps are kept — they record the ``so`` order
        of accesses already performed.
        """
        counters = self._counters[rank]
        counters.held_locks.clear()
        counters.lc = 0

    # ------------------------------------------------------------------
    def reset_rank(self, rank: int) -> None:
        """Forget the counters of ``rank`` (replacement process).

        Note that ``SC_local`` survives conceptually at the *target* side of a
        lock; since the failed process's own memory is lost, its local SC is
        reset too — recovering processes re-learn counter values from the logs
        (§6.2 demand-checkpoint confirmations carry them).
        """
        self._counters[rank] = ProcessCounters()

    def snapshot(self) -> list[ProcessCounters]:
        """Deep-copy the counters of every rank (checkpoint payload)."""
        return [copy.deepcopy(counters) for counters in self._counters]

    def restore(self, states: list[ProcessCounters]) -> None:
        """Roll every rank's counters back to a :meth:`snapshot`.

        A coordinated rollback restores *survivors* too: locks they held
        after the checkpoint are released with the rest of their state, so
        the re-executed program can acquire them again.
        """
        self._counters = [copy.deepcopy(counters) for counters in states]
