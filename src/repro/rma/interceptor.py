"""Interceptor hooks — the simulator's analogue of the PMPI profiling interface.

The paper's ftRMA library interposes on every RMA call through MPI's PMPI
profiling interface (§6.1).  In the simulated runtime the same effect is
achieved with *interceptors*: objects registered on the
:class:`~repro.rma.runtime.RmaRuntime` whose hooks are invoked before and
after every communication and synchronization action.

Interceptors implement fault tolerance (ftRMA), the message-logging baseline,
SCR-style checkpointing and instrumentation; applications never see them —
logging and checkpointing are fully transparent, exactly as in the paper.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.rma.actions import CommAction, SyncAction
from repro.rma.window import Window

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from repro.rma.runtime import RmaRuntime

__all__ = ["RmaInterceptor", "InterceptorChain"]


class RmaInterceptor:
    """Base class with no-op hooks; subclasses override what they need."""

    #: Human-readable name used in metrics and reports.
    name: str = "interceptor"

    def attach(self, runtime: "RmaRuntime") -> None:
        """Called when the interceptor is registered on a runtime."""

    # --- window lifecycle -------------------------------------------------
    def on_window_create(self, window: Window) -> None:
        """A new window was allocated collectively."""

    # --- communication actions ---------------------------------------------
    def before_comm(self, action: CommAction) -> None:
        """Invoked right before a put/get/atomic is issued."""

    def after_comm(self, action: CommAction) -> None:
        """Invoked when a put/get/atomic *completes* (its effect is applied).

        For blocking calls this is immediately after issue; for nonblocking
        calls it is the flush/unlock/gsync that closes the epoch.  Handles
        arrive in issue order regardless of how the backend batched the
        execution, so interceptors observe one canonical completion stream.
        """

    # --- synchronization actions --------------------------------------------
    def before_sync(self, action: SyncAction) -> None:
        """Invoked right before a lock/unlock/flush/gsync/barrier."""

    def after_sync(self, action: SyncAction) -> None:
        """Invoked right after a lock/unlock/flush/gsync/barrier completed."""

    # --- failures -----------------------------------------------------------
    def on_failure_detected(self, rank: int) -> None:
        """A fail-stop failure of ``rank`` has been observed."""

    def on_respawn(self, rank: int) -> None:
        """A replacement process for ``rank`` has been provided."""

    # --- recovery lifecycle ---------------------------------------------------
    def on_recovery_start(self, ranks: list[int], *, localized: bool) -> None:
        """A recovery protocol is about to restore ``ranks``.

        ``localized`` is ``True`` when only the failed ranks will be restored
        and the survivors keep their state (log-based recovery, §7) — an
        interceptor that keeps per-rank history (e.g. the put/get log) must
        then *preserve* it across the respawn, because the log is exactly what
        reconstructs the restored ranks' windows.
        """

    def on_recovery_complete(self, ranks: list[int]) -> None:
        """The recovery protocol finished restoring ``ranks``."""

    # --- run lifecycle --------------------------------------------------------
    def on_finalize(self) -> None:
        """The application finished; flush statistics."""


class InterceptorChain:
    """Orders multiple interceptors and dispatches hooks to each of them."""

    def __init__(self) -> None:
        self._interceptors: list[RmaInterceptor] = []

    def add(self, interceptor: RmaInterceptor, runtime: "RmaRuntime") -> None:
        """Register ``interceptor`` and notify it of the runtime."""
        self._interceptors.append(interceptor)
        interceptor.attach(runtime)

    def remove(self, interceptor: RmaInterceptor) -> None:
        """Unregister ``interceptor`` (no error if absent)."""
        if interceptor in self._interceptors:
            self._interceptors.remove(interceptor)

    def __iter__(self):
        return iter(self._interceptors)

    def __len__(self) -> int:
        return len(self._interceptors)

    # Dispatch helpers ------------------------------------------------------
    def on_window_create(self, window: Window) -> None:
        for i in self._interceptors:
            i.on_window_create(window)

    def before_comm(self, action: CommAction) -> None:
        for i in self._interceptors:
            i.before_comm(action)

    def after_comm(self, action: CommAction) -> None:
        for i in self._interceptors:
            i.after_comm(action)

    def before_sync(self, action: SyncAction) -> None:
        for i in self._interceptors:
            i.before_sync(action)

    def after_sync(self, action: SyncAction) -> None:
        for i in self._interceptors:
            i.after_sync(action)

    def on_failure_detected(self, rank: int) -> None:
        for i in self._interceptors:
            i.on_failure_detected(rank)

    def on_respawn(self, rank: int) -> None:
        for i in self._interceptors:
            i.on_respawn(rank)

    def on_recovery_start(self, ranks: list[int], *, localized: bool) -> None:
        for i in self._interceptors:
            i.on_recovery_start(ranks, localized=localized)

    def on_recovery_complete(self, ranks: list[int]) -> None:
        for i in self._interceptors:
            i.on_recovery_complete(ranks)

    def on_finalize(self) -> None:
        for i in self._interceptors:
            i.on_finalize()
