"""Recording and querying the RMA orders ``po``, ``so``, ``hb`` and ``co`` (§2.3).

The runtime can optionally record every action into an :class:`OrderRecorder`.
The recorder reconstructs:

* the **program order** ``po`` — actions of one process in issue order;
* the **synchronization order** ``so`` — lock/unlock (and gsync) ordering;
* the **happened-before order** ``hb`` — transitive closure of ``po ∪ so``;
* the **consistency order** ``co`` — actions of one origin towards one target
  issued in different epochs, plus the global order introduced by gsyncs.

These are used by the test-suite to verify the paper's theorems (RMA
consistency of coordinated checkpoints, causal replay ordering) and by the
consistency checker; recording is off by default because it retains every
action of a run.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

import networkx as nx

from repro.rma.actions import CommAction, SyncAction, SyncKind

__all__ = ["OrderRecorder", "RecordedEvent"]


@dataclass(frozen=True)
class RecordedEvent:
    """A recorded action together with its issue index at its origin."""

    index: int
    action: CommAction | SyncAction

    @property
    def src(self) -> int:
        """Origin rank of the event."""
        return self.action.src

    @property
    def seq(self) -> int:
        """Globally unique sequence number of the underlying action."""
        return self.action.seq


class OrderRecorder:
    """Accumulates actions and answers ordering queries."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.events: list[RecordedEvent] = []
        self._per_rank: dict[int, list[RecordedEvent]] = {}
        #: lock acquisition order per (target, structure): list of event seqs.
        self._lock_chains: dict[tuple[int, str | None], list[RecordedEvent]] = {}
        #: events per gsync generation, used for the global gsync order.
        self._gsync_generations: list[int] = []

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(self, action: CommAction | SyncAction) -> None:
        """Append one action to the recorded trace."""
        if not self.enabled:
            return
        event = RecordedEvent(index=len(self.events), action=action)
        self.events.append(event)
        self._per_rank.setdefault(action.src, []).append(event)
        if isinstance(action, SyncAction):
            if action.kind in (SyncKind.LOCK, SyncKind.UNLOCK) and action.trg is not None:
                key = (action.trg, action.structure)
                self._lock_chains.setdefault(key, []).append(event)
            if action.kind is SyncKind.GSYNC:
                self._gsync_generations.append(event.seq)

    def clear(self) -> None:
        """Drop everything recorded so far."""
        self.events.clear()
        self._per_rank.clear()
        self._lock_chains.clear()
        self._gsync_generations.clear()

    # ------------------------------------------------------------------
    # Simple accessors
    # ------------------------------------------------------------------
    def actions(self) -> list[CommAction]:
        """All recorded communication actions, in global record order."""
        return [e.action for e in self.events if isinstance(e.action, CommAction)]

    def syncs(self) -> list[SyncAction]:
        """All recorded synchronization actions, in global record order."""
        return [e.action for e in self.events if isinstance(e.action, SyncAction)]

    def per_rank(self, rank: int) -> list[CommAction | SyncAction]:
        """Actions issued by ``rank``, in program order."""
        return [e.action for e in self._per_rank.get(rank, [])]

    def __len__(self) -> int:
        return len(self.events)

    # ------------------------------------------------------------------
    # Orders
    # ------------------------------------------------------------------
    def program_order(self, a: CommAction | SyncAction, b: CommAction | SyncAction) -> bool:
        """``a po-> b``: same origin and ``a`` issued before ``b``."""
        if a.src != b.src:
            return False
        return a.seq < b.seq

    def consistency_order(self, a: CommAction, b: CommAction) -> bool:
        """``a co-> b`` for two communication actions.

        Holds when both actions have the same origin and target and ``a`` was
        issued in an earlier epoch, or when they are separated by a gsync
        generation (``a.GNC < b.GNC``).
        """
        if a.GNC < b.GNC:
            return True
        if a.src == b.src and a.trg == b.trg and a.EC < b.EC:
            return True
        return False

    def concurrent_co(self, a: CommAction, b: CommAction) -> bool:
        """``a ||co b``: neither ``a co-> b`` nor ``b co-> a``."""
        return not self.consistency_order(a, b) and not self.consistency_order(b, a)

    def synchronization_order(self, a: SyncAction, b: SyncAction) -> bool:
        """``a so-> b`` for lock/unlock actions on the same target structure."""
        if a.trg is None or b.trg is None:
            return False
        if (a.trg, a.structure) != (b.trg, b.structure):
            return False
        chain = self._lock_chains.get((a.trg, a.structure), [])
        seqs = [e.seq for e in chain]
        try:
            return seqs.index(a.seq) < seqs.index(b.seq)
        except ValueError:
            return False

    # ------------------------------------------------------------------
    # Happened-before graph
    # ------------------------------------------------------------------
    def build_hb_graph(self) -> nx.DiGraph:
        """Build the happened-before DAG over all recorded events.

        Edges: consecutive events of the same process (``po``), lock-chain
        edges on the same target structure (``so``) and gsync edges (every
        event before a gsync at any process happens-before every event after
        it — the paper's optional global ``hb`` of gsync, §3.1.2).
        """
        graph = nx.DiGraph()
        for event in self.events:
            graph.add_node(event.seq, action=event.action)
        # Program order
        for rank_events in self._per_rank.values():
            for earlier, later in zip(rank_events, rank_events[1:]):
                graph.add_edge(earlier.seq, later.seq, order="po")
        # Synchronization order (lock chains)
        for chain in self._lock_chains.values():
            for earlier, later in zip(chain, chain[1:]):
                graph.add_edge(earlier.seq, later.seq, order="so")
        # Gsync edges: connect the gsync events of one generation in sequence;
        # po already links each process's surrounding events to its gsync call.
        gsync_events = [e for e in self.events if isinstance(e.action, SyncAction)
                        and e.action.kind is SyncKind.GSYNC]
        by_generation: dict[int, list[RecordedEvent]] = {}
        for event in gsync_events:
            by_generation.setdefault(event.action.counters.gnc, []).append(event)
        for generation in sorted(by_generation):
            members = by_generation[generation]
            # All members of a generation are mutually synchronized: model the
            # collective as a virtual hub ordered after all members' po
            # predecessors and before their successors by chaining them both ways.
            for a in members:
                for b in members:
                    if a.seq != b.seq:
                        graph.add_edge(a.seq, b.seq, order="gsync")
        return graph

    def happens_before(self, a: CommAction | SyncAction, b: CommAction | SyncAction) -> bool:
        """``a hb-> b`` using the recorded trace (may be expensive)."""
        graph = self.build_hb_graph()
        if a.seq not in graph or b.seq not in graph:
            return False
        return nx.has_path(graph, a.seq, b.seq)

    def concurrent_hb(self, a: CommAction | SyncAction, b: CommAction | SyncAction) -> bool:
        """``a ||hb b``: no hb path either way."""
        graph = self.build_hb_graph()
        if a.seq not in graph or b.seq not in graph:
            return True
        return not nx.has_path(graph, a.seq, b.seq) and not nx.has_path(graph, b.seq, a.seq)

    # ------------------------------------------------------------------
    # Consistency-condition helpers (Definition 1)
    # ------------------------------------------------------------------
    def checkpoint_is_rma_consistent(
        self, checkpoint_markers: Iterable[CommAction | SyncAction]
    ) -> bool:
        """Check Definition 1 on a set of per-process checkpoint marker events.

        A coordinated checkpoint is RMA-consistent iff all its per-process
        checkpoint actions are pairwise unordered by ``cohb`` (i.e. no marker
        both happens-before and is consistency-ordered before another).
        """
        markers = list(checkpoint_markers)
        graph = self.build_hb_graph()
        for i, a in enumerate(markers):
            for b in markers[i + 1 :]:
                hb_ab = a.seq in graph and b.seq in graph and nx.has_path(graph, a.seq, b.seq)
                hb_ba = a.seq in graph and b.seq in graph and nx.has_path(graph, b.seq, a.seq)
                gnc_a = a.counters.gnc
                gnc_b = b.counters.gnc
                cohb_ab = hb_ab and gnc_a < gnc_b
                cohb_ba = hb_ba and gnc_b < gnc_a
                if cohb_ab or cohb_ba:
                    return False
        return True
