"""RMA actions — the formal objects of the paper's model (§2.4).

A *communication action* is the tuple of Eq. (1):

``a = <type, src, trg, combine, EC, GC, SC, GNC, data>``

and its *determinant* (Eq. 2) is the same tuple without the data.  A
*synchronization action* is the tuple of Eq. (3):

``b = <type, src, trg, EC, GC, SC, GNC, str>``.

The counters are:

* ``EC``  — Epoch Counter: epoch of the (src, trg) pair in which the action
  was issued; orders actions of one origin towards one target (``co``).
* ``GC``  — Get Counter: incremented at the origin on every flush it issues;
  orders the origin's gets towards *different* targets (§4.1 B).
* ``SC``  — Synchronization Counter: fetched-and-incremented at the target on
  every lock acquisition; records the ``so`` order of lock-synchronized
  accesses (§4.1 C).
* ``GNC`` — GsyNc Counter: incremented at every process by each gsync; records
  the global ``cohb`` order introduced by gsyncs (§4.1 E).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field, replace

import numpy as np

from repro.errors import RmaError

__all__ = [
    "ActionCategory",
    "OpKind",
    "SyncKind",
    "AccumulateOp",
    "Counters",
    "CommAction",
    "SyncAction",
    "Determinant",
    "apply_accumulate",
]

_SEQ = itertools.count()


class ActionCategory(enum.Enum):
    """The paper's coarse categorization (Table 1): put/get and four sync kinds."""

    PUT = "put"
    GET = "get"
    LOCK = "lock"
    UNLOCK = "unlock"
    FLUSH = "flush"
    GSYNC = "gsync"


class OpKind(enum.Enum):
    """Concrete communication operations offered by the runtime."""

    PUT = "put"
    GET = "get"
    ACCUMULATE = "accumulate"
    GET_ACCUMULATE = "get_accumulate"
    FETCH_AND_OP = "fetch_and_op"
    COMPARE_AND_SWAP = "compare_and_swap"

    @property
    def is_put_like(self) -> bool:
        """Whether the operation transfers data *to* the target (a put)."""
        return self in {
            OpKind.PUT,
            OpKind.ACCUMULATE,
            OpKind.GET_ACCUMULATE,
            OpKind.FETCH_AND_OP,
            OpKind.COMPARE_AND_SWAP,
        }

    @property
    def is_get_like(self) -> bool:
        """Whether the operation transfers data *from* the target (a get).

        Atomic read-modify-write operations are both puts and gets (Table 1).
        """
        return self in {
            OpKind.GET,
            OpKind.GET_ACCUMULATE,
            OpKind.FETCH_AND_OP,
            OpKind.COMPARE_AND_SWAP,
        }

    @property
    def is_atomic(self) -> bool:
        """Whether the operation is a remote atomic."""
        return self in {
            OpKind.ACCUMULATE,
            OpKind.GET_ACCUMULATE,
            OpKind.FETCH_AND_OP,
            OpKind.COMPARE_AND_SWAP,
        }


class SyncKind(enum.Enum):
    """Concrete synchronization operations offered by the runtime."""

    LOCK = "lock"
    UNLOCK = "unlock"
    FLUSH = "flush"
    FLUSH_ALL = "flush_all"
    GSYNC = "gsync"
    BARRIER = "barrier"

    @property
    def category(self) -> ActionCategory:
        """Map to the paper's four synchronization categories."""
        if self in (SyncKind.FLUSH, SyncKind.FLUSH_ALL):
            return ActionCategory.FLUSH
        if self is SyncKind.LOCK:
            return ActionCategory.LOCK
        if self is SyncKind.UNLOCK:
            return ActionCategory.UNLOCK
        return ActionCategory.GSYNC

    @property
    def closes_epoch(self) -> bool:
        """Whether this synchronization completes (commits) outstanding accesses."""
        return self in (SyncKind.UNLOCK, SyncKind.FLUSH, SyncKind.FLUSH_ALL, SyncKind.GSYNC)


class AccumulateOp(enum.Enum):
    """Combining operators for accumulate-style puts."""

    REPLACE = "replace"
    SUM = "sum"
    PROD = "prod"
    MIN = "min"
    MAX = "max"
    NO_OP = "no_op"  # used by fetch_and_op to implement an atomic read

    @property
    def combining(self) -> bool:
        """True if the result depends on the previous target value.

        The paper calls puts with this property *combining puts*; replaying
        them twice corrupts the target (§4.2), hence the ``M`` flag.
        """
        return self not in (AccumulateOp.REPLACE, AccumulateOp.NO_OP)


def apply_accumulate(
    target: np.ndarray, operand: np.ndarray, op: AccumulateOp
) -> np.ndarray:
    """Apply ``op`` in place to ``target`` and return the *previous* values."""
    previous = target.copy()
    if op is AccumulateOp.REPLACE:
        target[...] = operand
    elif op is AccumulateOp.SUM:
        target[...] = target + operand
    elif op is AccumulateOp.PROD:
        target[...] = target * operand
    elif op is AccumulateOp.MIN:
        target[...] = np.minimum(target, operand)
    elif op is AccumulateOp.MAX:
        target[...] = np.maximum(target, operand)
    elif op is AccumulateOp.NO_OP:
        pass
    else:  # pragma: no cover - defensive
        raise RmaError(f"unknown accumulate op {op!r}")
    return previous


@dataclass(frozen=True)
class Counters:
    """The recovery counters stamped on every action (Eq. 1 and 3)."""

    ec: int = 0
    gc: int = 0
    sc: int = 0
    gnc: int = 0

    def as_tuple(self) -> tuple[int, int, int, int]:
        """``(EC, GC, SC, GNC)``."""
        return (self.ec, self.gc, self.sc, self.gnc)


#: A determinant is the action without its data payload (Eq. 2); it is enough
#: to reconstruct *ordering* information but not to replay the access.
Determinant = tuple


@dataclass
class CommAction:
    """A communication action (Eq. 1)."""

    kind: OpKind
    src: int
    trg: int
    window: str
    offset: int
    count: int
    combine: bool
    counters: Counters
    op: AccumulateOp = AccumulateOp.REPLACE
    #: Payload carried by the action: the data written (puts), or metadata of
    #: the data read (gets).  ``None`` for pure gets until completed.
    data: np.ndarray | None = None
    #: The values the action was *issued* with.  For get-like atomics
    #: (get_accumulate, fetch_and_op, compare_and_swap) completion overwrites
    #: :attr:`data` with the fetched previous values; the operand is kept here
    #: so a log-based replay (§7) can re-apply the action to a restored
    #: window.  ``None`` until completion for pure puts (where ``data`` *is*
    #: the operand) and always for pure gets.
    operand: np.ndarray | None = None
    #: Compare value of a compare-and-swap.
    compare: np.ndarray | None = None
    #: Unique, monotonically increasing issue id (program order within a run).
    seq: int = field(default_factory=lambda: next(_SEQ))

    def __post_init__(self) -> None:
        if self.src < 0 or self.trg < 0:
            raise RmaError("ranks must be non-negative")
        if self.count <= 0:
            raise RmaError("count must be positive")
        if self.offset < 0:
            raise RmaError("offset must be non-negative")

    # ------------------------------------------------------------------
    @property
    def category(self) -> ActionCategory:
        """PUT or GET (atomics report PUT; use :attr:`is_get_like` for both)."""
        return ActionCategory.PUT if self.kind.is_put_like else ActionCategory.GET

    @property
    def is_put_like(self) -> bool:
        """Whether the action changes the target's memory."""
        return self.kind.is_put_like

    @property
    def is_get_like(self) -> bool:
        """Whether the action reads the target's memory into the source."""
        return self.kind.is_get_like

    @property
    def nbytes(self) -> int:
        """Bytes moved over the network by this action."""
        if self.data is not None:
            return int(self.data.nbytes)
        return self.count * 8  # conservative default: 8-byte elements

    # Paper notation helpers -------------------------------------------------
    @property
    def EC(self) -> int:  # noqa: N802 - matches the paper's field name
        """Epoch counter of the action."""
        return self.counters.ec

    @property
    def GC(self) -> int:  # noqa: N802
        """Get counter of the action."""
        return self.counters.gc

    @property
    def SC(self) -> int:  # noqa: N802
        """Synchronization counter of the action."""
        return self.counters.sc

    @property
    def GNC(self) -> int:  # noqa: N802
        """Gsync counter of the action."""
        return self.counters.gnc

    def determinant(self) -> Determinant:
        """The determinant ``#a`` (Eq. 2): the action without its data."""
        return (
            self.kind.value,
            self.src,
            self.trg,
            self.window,
            self.offset,
            self.count,
            self.combine,
            self.counters.as_tuple(),
            self.seq,
        )

    def with_data(self, data: np.ndarray) -> "CommAction":
        """Return a copy of the action carrying ``data`` as payload."""
        return replace(self, data=np.array(data, copy=True))

    def describe(self) -> str:
        """Short human-readable description, e.g. ``put(3=>7)[off=0,n=4]``."""
        arrow = "=>" if self.is_put_like else "<="
        return (
            f"{self.kind.value}({self.src}{arrow}{self.trg})"
            f"[win={self.window},off={self.offset},n={self.count},"
            f"EC={self.EC},GC={self.GC},SC={self.SC},GNC={self.GNC}]"
        )


@dataclass
class SyncAction:
    """A synchronization action (Eq. 3)."""

    kind: SyncKind
    src: int
    #: Target rank; ``None`` encodes the paper's "diamond" (all processes).
    trg: int | None
    counters: Counters
    #: Optional name of the structure being synchronized (the paper's ``str``).
    structure: str | None = None
    window: str | None = None
    seq: int = field(default_factory=lambda: next(_SEQ))

    @property
    def category(self) -> ActionCategory:
        """The paper's synchronization category."""
        return self.kind.category

    @property
    def is_global(self) -> bool:
        """Whether the action targets every process (gsync / barrier / flush_all)."""
        return self.trg is None

    def determinant(self) -> Determinant:
        """Tuple form used by logs and tests."""
        return (
            self.kind.value,
            self.src,
            self.trg,
            self.structure,
            self.counters.as_tuple(),
            self.seq,
        )

    def describe(self) -> str:
        """Short human-readable description."""
        target = "ALL" if self.trg is None else str(self.trg)
        suffix = f", str={self.structure}" if self.structure else ""
        return f"{self.kind.value}({self.src}->{target}{suffix})"


def reset_sequence_counter(value: int = 0) -> None:
    """Reset the global action sequence counter (test isolation helper)."""
    global _SEQ
    _SEQ = itertools.count(value)
