"""The paper's formal RMA model (§2) and its execution layer (§6).

* :mod:`~repro.rma.actions` — communication/synchronization actions (Eq. 1–3),
* :mod:`~repro.rma.epoch` — epoch tracking ``E(p -> q)`` (§2.2),
* :mod:`~repro.rma.counters` — the recovery counters EC/GC/SC/GNC/LC (§4.1),
* :mod:`~repro.rma.ordering` — the orders ``po``, ``so``, ``hb``, ``co`` (§2.3),
* :mod:`~repro.rma.handles` — nonblocking operation handles (issue vs completion),
* :mod:`~repro.rma.table1` — operation categorization across languages (Table 1),
* :mod:`~repro.rma.interceptor` — PMPI-style interposition hooks (§6.1),
* :mod:`~repro.rma.window` — shared memory windows,
* :mod:`~repro.rma.runtime` — the SPMD runtime binding it all to the simulator.
"""

from repro.rma.actions import (
    AccumulateOp,
    ActionCategory,
    CommAction,
    Counters,
    OpKind,
    SyncAction,
    SyncKind,
)
from repro.rma.counters import CounterBoard
from repro.rma.epoch import EpochTracker
from repro.rma.handles import OpHandle
from repro.rma.interceptor import InterceptorChain, RmaInterceptor
from repro.rma.ordering import OrderRecorder
from repro.rma.runtime import RmaRuntime
from repro.rma.window import Window, WindowRegistry

__all__ = [
    "AccumulateOp",
    "ActionCategory",
    "CommAction",
    "Counters",
    "OpKind",
    "SyncAction",
    "SyncKind",
    "CounterBoard",
    "EpochTracker",
    "OpHandle",
    "InterceptorChain",
    "RmaInterceptor",
    "OrderRecorder",
    "RmaRuntime",
    "Window",
    "WindowRegistry",
]
