"""Exception hierarchy for the ftRMA reproduction.

All library-specific exceptions derive from :class:`ReproError` so downstream
users can catch a single base class.  The hierarchy mirrors the major
subsystems: simulator, RMA runtime, fault-tolerance protocol and the
reliability model.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


# ---------------------------------------------------------------------------
# Simulator errors
# ---------------------------------------------------------------------------


class SimulationError(ReproError):
    """Generic error in the virtual-time cluster simulator."""


class TopologyError(SimulationError):
    """Invalid failure-domain hierarchy or hardware description."""


class PlacementError(SimulationError):
    """A process-to-hardware mapping violates its constraints."""


class FailureScheduleError(SimulationError):
    """Malformed or inconsistent failure schedule."""


class ProcessFailedError(SimulationError):
    """An operation targeted a process that has failed (fail-stop).

    The RMA runtime raises this when user code attempts to communicate with a
    crashed rank before recovery has completed.  The fault-tolerance protocol
    catches it to trigger recovery.
    """

    def __init__(self, rank: int, message: str | None = None) -> None:
        self.rank = rank
        super().__init__(message or f"process {rank} has failed (fail-stop)")


class RankSuspendedError(ProcessFailedError):
    """A *suspended* rank tried to act as the source of an operation.

    Only raised under a failure-tolerant delivery mode (``repro.qos``):
    the failed rank itself cannot issue or compute until it is repaired at
    the next step boundary, but its peers keep running.  The cooperative
    scheduler catches this per rank and skips the suspended rank's turn;
    any uncaught path degrades to the fail-stop semantics of the parent
    class, never to silent progress.
    """

    def __init__(self, rank: int, message: str | None = None) -> None:
        super().__init__(
            rank, message or f"process {rank} is suspended pending repair"
        )


# ---------------------------------------------------------------------------
# RMA runtime errors
# ---------------------------------------------------------------------------


class RmaError(ReproError):
    """Generic error in the RMA runtime."""


class WindowError(RmaError):
    """Invalid window access (out of bounds, wrong dtype, wrong rank)."""


class EpochError(RmaError):
    """Violation of epoch rules (e.g. checkpoint not at an epoch boundary)."""


class LockError(RmaError):
    """Lock/unlock misuse: double unlock, unlock without lock, deadlock."""


class SynchronizationError(RmaError):
    """Illegal mix of synchronization primitives (e.g. gsync inside a lock)."""


class OpHandleError(RmaError):
    """Misuse of a nonblocking operation handle.

    Raised when the buffer of an un-completed handle is read (the operation
    has not been flushed/unlocked/gsync'ed yet) or when a handle was discarded
    by a recovery rollback and its result no longer describes committed state.
    """


class BackendError(RmaError):
    """An RMA backend was misconfigured or misused (e.g. unknown backend name)."""


# ---------------------------------------------------------------------------
# Fault-tolerance protocol errors
# ---------------------------------------------------------------------------


class FaultToleranceError(ReproError):
    """Generic error in the ftRMA protocol."""


class CheckpointError(FaultToleranceError):
    """A checkpoint could not be taken or restored."""


class RecoveryError(FaultToleranceError):
    """Causal recovery failed and no coordinated checkpoint is available."""


class RecoveryFallback(FaultToleranceError):
    """Causal recovery must fall back to the last coordinated checkpoint.

    Raised internally when a recovering process observes ``N_q[p_f] = true``
    (an un-replayable in-flight get) or ``M_q[p_f] = true`` (a combining put
    that may be applied twice); see §3.2.3 and §4.2 of the paper.
    """


class CatastrophicFailure(FaultToleranceError):
    """More than ``m`` processes of one group failed; the run must restart."""


class ErasureCodingError(FaultToleranceError):
    """Checksum encoding/decoding failed (XOR or Reed-Solomon)."""


# ---------------------------------------------------------------------------
# Session API errors
# ---------------------------------------------------------------------------


class ApiError(ReproError):
    """Generic misuse of the high-level session API (:mod:`repro.api`)."""


class PolicyError(ApiError):
    """Invalid :class:`~repro.api.policy.FaultTolerancePolicy` or topology spec."""


class SchedulerError(ApiError):
    """A kernel violated the cooperative scheduling contract.

    Raised when a plain-function kernel issues a collective without yielding
    it, when ranks yield mismatched collectives in the same phase, or when a
    kernel yields something that is not a collective token.
    """


class WatchdogError(ApiError):
    """A hang watchdog expired.

    Raised when :meth:`repro.api.session.Job.run` exceeds its configured
    per-step watchdog, or when the real-process backend's batch dispatch
    receives no worker acknowledgement within its ack timeout.  The message
    carries a per-rank state dump so a deadlocked rendezvous fails CI with a
    diagnosis instead of hanging it.
    """


# ---------------------------------------------------------------------------
# Reliability-model errors
# ---------------------------------------------------------------------------


class ReliabilityModelError(ReproError):
    """Invalid parameters for the catastrophic-failure probability model."""


class BenchmarkError(ReproError):
    """A benchmark harness was configured inconsistently."""


# ---------------------------------------------------------------------------
# Resilience-study errors
# ---------------------------------------------------------------------------


class StudyError(ReproError):
    """Misuse of the resilience-study subsystem (:mod:`repro.study`).

    Raised for unknown workload names, invalid workload parameters, and
    inconsistent analytic-model inputs (non-positive costs or rates).
    """


class CampaignError(StudyError):
    """A Monte-Carlo campaign specification is inconsistent or empty."""


# ---------------------------------------------------------------------------
# Chaos/soak errors
# ---------------------------------------------------------------------------


class ChaosError(ReproError):
    """Misuse of the chaos/soak subsystem (:mod:`repro.chaos`).

    Raised for unknown scenario/monitor/countermeasure names, invalid soak
    specifications, and malformed chaos event logs."""


# ---------------------------------------------------------------------------
# Serving errors
# ---------------------------------------------------------------------------


class ServeError(ReproError):
    """Misuse of the KV-serving subsystem (:mod:`repro.serve`).

    Raised for invalid service specifications, malformed request logs and
    traffic-generator parameters outside their domain."""


# ---------------------------------------------------------------------------
# Quality-of-service errors
# ---------------------------------------------------------------------------


class QosError(ReproError):
    """Misuse of the delivery-mode subsystem (:mod:`repro.qos`).

    Raised for unknown delivery-mode names, invalid comparison
    specifications and malformed quality/robustness/speed reports."""


# ---------------------------------------------------------------------------
# Tracing errors
# ---------------------------------------------------------------------------


class TraceError(ReproError):
    """Misuse of the tracing subsystem (:mod:`repro.trace`).

    Raised for malformed trace events, schema violations in trace files,
    double-activated trace hubs and tracers bound to more than one job."""
