"""Reproduction of the ftRMA paper: fault-tolerant RMA programming.

The package is layered bottom-up:

* :mod:`repro.simulator` — the virtual-time cluster (clocks, cost model,
  failure-domain hierarchy, placement, fail-stop injection);
* :mod:`repro.rma` — the paper's formal RMA model (actions, epochs, counters,
  orders) and the :class:`~repro.rma.runtime.RmaRuntime` execution layer;
* :mod:`repro.ft` — the fault-tolerance protocols built on the runtime
  (topology-aware in-memory checkpointing and recovery);
* :mod:`repro.api` — the rank-centric session API: :func:`launch` a job,
  write kernels against per-rank :class:`~repro.api.context.RankContext`
  objects, and let the session checkpoint and recover transparently.

Applications should program against :mod:`repro.api` (re-exported here);
the lower layers remain public for protocol work and instrumentation.
"""

from repro.api import (
    Collective,
    FaultTolerancePolicy,
    Job,
    JobReport,
    RankContext,
    Topology,
    WindowHandle,
    launch,
)
from repro.errors import ReproError

__all__ = [
    "Collective",
    "FaultTolerancePolicy",
    "Job",
    "JobReport",
    "RankContext",
    "Topology",
    "WindowHandle",
    "launch",
    "ReproError",
    "__version__",
]

__version__ = "0.2.0"
