"""Reproduction of the ftRMA paper: fault-tolerant RMA programming.

The package is layered bottom-up:

* :mod:`repro.simulator` — the virtual-time cluster (clocks, cost model,
  failure-domain hierarchy, placement, fail-stop injection);
* :mod:`repro.rma` — the paper's formal RMA model (actions, epochs, counters,
  orders) and the :class:`~repro.rma.runtime.RmaRuntime` execution layer;
* :mod:`repro.ft` — the fault-tolerance protocols built on the runtime
  (topology-aware in-memory checkpointing and recovery).
"""

from repro.errors import ReproError

__all__ = ["ReproError", "__version__"]

__version__ = "0.1.0"
