"""Reproduction of the ftRMA paper: fault-tolerant RMA programming.

The package is layered bottom-up:

* :mod:`repro.simulator` — the virtual-time cluster (clocks, cost model,
  failure-domain hierarchy, placement, fail-stop injection);
* :mod:`repro.rma` — the paper's formal RMA model (actions, epochs, counters,
  orders, nonblocking operation handles) and the
  :class:`~repro.rma.runtime.RmaRuntime` coordination layer;
* :mod:`repro.backends` — pluggable execution backends owning window storage
  (eager ``"sim"``, batching ``"vector"``, real-process shared-memory
  ``"proc"``);
* :mod:`repro.ft` — the fault-tolerance protocols built on the runtime
  (topology-aware in-memory checkpointing and recovery);
* :mod:`repro.api` — the rank-centric session API: :func:`launch` a job,
  write kernels against per-rank :class:`~repro.api.context.RankContext`
  objects, and let the session checkpoint and recover transparently;
* :mod:`repro.study` — the resilience-study engine on top of everything:
  a registry-resolved workload catalog, the analytic Young/Daly interval
  model behind ``FaultTolerancePolicy(interval="auto")``, and the seeded
  Monte-Carlo campaign runner (``python -m repro.study``).

Applications should program against :mod:`repro.api` (re-exported here);
the lower layers remain public for protocol work and instrumentation.
"""

from repro.api import (
    Collective,
    FaultTolerancePolicy,
    Job,
    JobReport,
    RankContext,
    Topology,
    WindowHandle,
    launch,
)
from repro.backends import (
    Backend,
    ProcBackend,
    SimBackend,
    VectorBackend,
    make_backend,
    proc_available,
)
from repro.errors import ReproError
from repro.ft import (
    CheckpointStore,
    ContinueDegraded,
    DiskStore,
    FaultInjector,
    GlobalRollback,
    KillKind,
    KillPlan,
    LocalizedReplay,
    MemoryStore,
    ParityStore,
    RecoveryProtocol,
    install_injector,
)
from repro.registry import available
from repro.rma.handles import OpHandle
from repro.study import (
    CampaignSpec,
    IntervalModel,
    Workload,
    WorkloadRun,
    make_workload,
    run_campaign,
)

__all__ = [
    "available",
    "CampaignSpec",
    "IntervalModel",
    "Workload",
    "WorkloadRun",
    "make_workload",
    "run_campaign",
    "Collective",
    "FaultTolerancePolicy",
    "Job",
    "JobReport",
    "RankContext",
    "Topology",
    "WindowHandle",
    "launch",
    "OpHandle",
    "Backend",
    "SimBackend",
    "VectorBackend",
    "ProcBackend",
    "proc_available",
    "make_backend",
    "KillKind",
    "KillPlan",
    "FaultInjector",
    "install_injector",
    "CheckpointStore",
    "MemoryStore",
    "DiskStore",
    "ParityStore",
    "RecoveryProtocol",
    "GlobalRollback",
    "LocalizedReplay",
    "ContinueDegraded",
    "ReproError",
    "__version__",
]

__version__ = "0.5.0"
