"""Reproduction of the ftRMA paper: fault-tolerant RMA programming.

The package is layered bottom-up:

* :mod:`repro.simulator` — the virtual-time cluster (clocks, cost model,
  failure-domain hierarchy, placement, fail-stop injection);
* :mod:`repro.rma` — the paper's formal RMA model (actions, epochs, counters,
  orders, nonblocking operation handles) and the
  :class:`~repro.rma.runtime.RmaRuntime` coordination layer;
* :mod:`repro.backends` — pluggable execution backends owning window storage
  (eager ``"sim"``, batching ``"vector"``, real-process shared-memory
  ``"proc"``);
* :mod:`repro.ft` — the fault-tolerance protocols built on the runtime
  (topology-aware in-memory checkpointing and recovery);
* :mod:`repro.api` — the rank-centric session API: :func:`launch` a job,
  write kernels against per-rank :class:`~repro.api.context.RankContext`
  objects, and let the session checkpoint and recover transparently;
* :mod:`repro.study` — the resilience-study engine on top of everything:
  a registry-resolved workload catalog, the analytic Young/Daly interval
  model behind ``FaultTolerancePolicy(interval="auto")``, and the seeded
  Monte-Carlo campaign runner (``python -m repro.study``);
* :mod:`repro.chaos` — the long-horizon soak engine: accelerated virtual
  time (``scaled_cost_model``), seeded failure scenarios, transition
  monitors, MTTF/MTBF/MTTR/availability metrics and the cross-config
  comparison CLI (``python -m repro.chaos``).

Applications should program against :mod:`repro.api` (re-exported here);
the lower layers remain public for protocol work and instrumentation.
"""

from repro.api import (
    Collective,
    FaultTolerancePolicy,
    Job,
    JobReport,
    RankContext,
    SessionObserver,
    Topology,
    WindowHandle,
    launch,
)
from repro.backends import (
    Backend,
    ProcBackend,
    SimBackend,
    VectorBackend,
    make_backend,
    proc_available,
)
from repro.chaos import (
    ChaosMetrics,
    SoakResult,
    SoakSpec,
    compute_metrics,
    run_comparison,
    run_soak,
    scaled_cost_model,
)
from repro.errors import ReproError
from repro.ft import (
    CheckpointStore,
    ContinueDegraded,
    DiskStore,
    FaultInjector,
    GlobalRollback,
    KillKind,
    KillPlan,
    LocalizedReplay,
    MemoryStore,
    ParityStore,
    RecoveryProtocol,
    install_injector,
)
from repro.registry import available
from repro.rma.handles import OpHandle
from repro.study import (
    CampaignSpec,
    IntervalModel,
    Workload,
    WorkloadRun,
    make_workload,
    run_campaign,
)

__all__ = [
    "available",
    "CampaignSpec",
    "IntervalModel",
    "Workload",
    "WorkloadRun",
    "make_workload",
    "run_campaign",
    "ChaosMetrics",
    "SoakSpec",
    "SoakResult",
    "compute_metrics",
    "run_soak",
    "run_comparison",
    "scaled_cost_model",
    "SessionObserver",
    "Collective",
    "FaultTolerancePolicy",
    "Job",
    "JobReport",
    "RankContext",
    "Topology",
    "WindowHandle",
    "launch",
    "OpHandle",
    "Backend",
    "SimBackend",
    "VectorBackend",
    "ProcBackend",
    "proc_available",
    "make_backend",
    "KillKind",
    "KillPlan",
    "FaultInjector",
    "install_injector",
    "CheckpointStore",
    "MemoryStore",
    "DiskStore",
    "ParityStore",
    "RecoveryProtocol",
    "GlobalRollback",
    "LocalizedReplay",
    "ContinueDegraded",
    "ReproError",
    "__version__",
]

__version__ = "0.7.0"
