"""Kill injection — real ``SIGKILL`` faults on a seeded, backend-portable schedule.

The simulator's :class:`~repro.simulator.failures.FailureSchedule` expresses
failures in *virtual time*; that is the right notion for resilience studies
but the wrong one for differential testing, where the same fault must strike
at the same point of the *program* on every backend.  This module times kills
by position in the completion stream instead: the injector is an
:class:`~repro.rma.interceptor.RmaInterceptor` counting ``after_comm``
completions — a sequence the backends are contractually required to emit
identically — and fires each :class:`KillEvent` when its offset is reached.

Firing is physical where it can be: on the real-process backend
(:class:`~repro.backends.proc.ProcBackend`) the victim's worker receives a
real ``SIGKILL``, the injector waits on the process sentinel until the death
is confirmed, and only then marks the rank failed in the cluster — so control
flow stays deterministic.  On in-process backends the same event simply marks
the rank failed.  Either way the failure then surfaces through the one
fail-stop path (:meth:`~repro.rma.runtime.RmaRuntime.observe_failures` →
:class:`~repro.errors.ProcessFailedError` → recovery), which is what lets the
differential harness demand bit-identical results between a killed ``proc``
run and an exception-injected ``sim`` run.

The kill taxonomy follows the paper's failure-domain hierarchy (§5):
``POD_KILL`` takes out a single rank, ``NODE_KILL`` every rank placed on the
victim's compute node — the smallest correlated failure the topology-aware
checkpoint placement must survive.
"""

from __future__ import annotations

import enum
import os
import signal
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import FailureScheduleError
from repro.rma.actions import CommAction
from repro.rma.interceptor import RmaInterceptor
from repro.simulator.rng import make_rng

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from repro.api.session import Job
    from repro.rma.runtime import RmaRuntime

__all__ = [
    "KillKind",
    "KillEvent",
    "KillPlan",
    "FiredKill",
    "FaultInjector",
    "install_injector",
]


class KillKind(enum.Enum):
    """What a kill event takes out."""

    #: A single rank process.
    POD_KILL = "pod_kill"
    #: Every rank sharing the victim's compute node (correlated failure).
    NODE_KILL = "node_kill"


@dataclass(frozen=True, order=True)
class KillEvent:
    """One scheduled kill: strike after ``after_ops`` completed operations.

    ``rank`` names the primary victim; a ``NODE_KILL`` extends to every rank
    on its node.  Offsets count the job-wide completion stream (identical
    across backends), not per-rank activity.
    """

    after_ops: int
    rank: int
    kind: KillKind = KillKind.POD_KILL

    def __post_init__(self) -> None:
        if self.after_ops < 1:
            raise FailureScheduleError(
                "kills must strike after at least one completed operation "
                "(the session needs its phase-opening checkpoint first)"
            )
        if self.rank < 0:
            raise FailureScheduleError("kill victim rank must be non-negative")


@dataclass
class KillPlan:
    """An ordered collection of :class:`KillEvent` (the injector's schedule)."""

    events: list[KillEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.events.sort()

    @classmethod
    def single(cls, rank: int, after_ops: int, kind: KillKind = KillKind.POD_KILL) -> "KillPlan":
        """Kill one victim at one stream offset."""
        return cls([KillEvent(after_ops=after_ops, rank=rank, kind=kind)])

    @classmethod
    def seeded(
        cls,
        seed: int | np.random.Generator | np.random.SeedSequence,
        *,
        nprocs: int,
        max_ops: int,
        kills: int = 1,
        node_kill_prob: float = 0.0,
        min_ops: int = 1,
    ) -> "KillPlan":
        """Draw ``kills`` events uniformly over offsets and victims.

        Identical seeds yield identical plans, event for event — the property
        the kill-timing sweep and the differential harness rely on to run the
        *same* plan on every backend.
        """
        if nprocs < 1 or max_ops <= min_ops:
            raise FailureScheduleError("seeded plan needs nprocs >= 1 and max_ops > min_ops")
        rng = make_rng(seed)
        events = []
        for _ in range(kills):
            events.append(
                KillEvent(
                    after_ops=int(rng.integers(min_ops, max_ops)),
                    rank=int(rng.integers(0, nprocs)),
                    kind=(
                        KillKind.NODE_KILL
                        if rng.random() < node_kill_prob
                        else KillKind.POD_KILL
                    ),
                )
            )
        return cls(events)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)


@dataclass(frozen=True)
class FiredKill:
    """Record of one fired event: who actually died, and how.

    An event whose victims were all already dead or excised is *skipped*;
    listeners still see it, as a record with an empty ``victims`` tuple, so
    chaos monitors can account for every planned event.
    """

    event: KillEvent
    victims: tuple[int, ...]
    #: True when real SIGKILLs were delivered (proc backend), False when the
    #: deaths were simulated by marking the cluster.
    real: bool

    @property
    def skipped(self) -> bool:
        """Whether the event struck no one (victims all dead or excised)."""
        return not self.victims


class FaultInjector(RmaInterceptor):
    """Fires a :class:`KillPlan` against whatever backend the job runs on.

    Register it on the runtime (or use :func:`install_injector`).  Events
    whose victims are all already dead or excised are skipped, not deferred.
    ``kill_on_respawn`` additionally kills the ``n``-th respawned rank the
    moment its replacement process appears — the "failure during recovery"
    case, whose retry loop the session already owns.
    """

    name = "fault-injector"

    def __init__(
        self,
        plan: KillPlan,
        *,
        wait_timeout: float = 10.0,
        kill_on_respawn: int | None = None,
    ) -> None:
        self.plan = plan
        self.wait_timeout = wait_timeout
        self.kill_on_respawn = kill_on_respawn
        self.ops_seen = 0
        self.respawns_seen = 0
        self.fired: list[FiredKill] = []
        self.skipped: list[KillEvent] = []
        self._pending: list[KillEvent] = list(plan.events)
        self._listeners: list[Callable[[FiredKill], None]] = []
        self._runtime: RmaRuntime | None = None

    def add_listener(self, listener: Callable[[FiredKill], None]) -> None:
        """Observe every planned event as it resolves (fired or skipped).

        Listeners receive the :class:`FiredKill` record at the exact stream
        position the kill lands — before the failure surfaces through the
        fail-stop path — which is what lets a chaos monitor timestamp
        ``failure_initiated`` separately from ``failure_detected``.
        """
        self._listeners.append(listener)

    # ------------------------------------------------------------------
    def attach(self, runtime: "RmaRuntime") -> None:
        self._runtime = runtime

    def after_comm(self, action: CommAction) -> None:
        self.ops_seen += 1
        while self._pending and self._pending[0].after_ops <= self.ops_seen:
            self._fire(self._pending.pop(0))

    def on_respawn(self, rank: int) -> None:
        self.respawns_seen += 1
        if self.kill_on_respawn is not None and self.respawns_seen == self.kill_on_respawn:
            self._fire(KillEvent(after_ops=max(1, self.ops_seen), rank=rank))

    # ------------------------------------------------------------------
    @property
    def exhausted(self) -> bool:
        """Whether every planned event has fired (or been skipped)."""
        return not self._pending

    def _fire(self, event: KillEvent) -> None:
        runtime = self._runtime
        assert runtime is not None, "injector fired before being attached"
        cluster = runtime.cluster
        if event.rank >= cluster.nprocs:
            raise FailureScheduleError(
                f"kill targets rank {event.rank} but the job has only "
                f"{cluster.nprocs} processes"
            )
        if event.kind is KillKind.NODE_KILL:
            victims = [
                r
                for r in range(cluster.nprocs)
                if cluster.same_node(r, event.rank)
            ]
        else:
            victims = [event.rank]
        victims = [
            r
            for r in victims
            if cluster.is_alive(r) and r not in runtime.excised
        ]
        if not victims:
            self.skipped.append(event)
            record = FiredKill(event=event, victims=(), real=False)
            for listener in self._listeners:
                listener(record)
            return
        backend = runtime.backend
        real = hasattr(backend, "worker_pid") and hasattr(backend, "wait_dead")
        if real:
            # Deliver the physical kills first and *wait for confirmed death*
            # (sentinel), so marking the cluster — the step that makes the
            # control plane observe the failure — happens at the same stream
            # position as on the in-process backends.
            for rank in victims:
                try:
                    os.kill(backend.worker_pid(rank), signal.SIGKILL)
                except ProcessLookupError:  # pragma: no cover - already gone
                    pass
                backend.wait_dead(rank, self.wait_timeout)
        for rank in victims:
            if cluster.is_alive(rank):
                cluster.fail_rank(rank)
            cluster.metrics.incr("inject.kills", rank=rank)
        record = FiredKill(event=event, victims=tuple(victims), real=real)
        self.fired.append(record)
        for listener in self._listeners:
            listener(record)


def install_injector(
    job: "Job",
    plan: KillPlan,
    *,
    wait_timeout: float = 10.0,
    kill_on_respawn: int | None = None,
) -> FaultInjector:
    """Attach a :class:`FaultInjector` for ``plan`` to a launched job.

    A traced job (``Job(trace=...)`` or an active ``tracing()`` hub) gets
    the tracer wired as a kill listener automatically, so every fired and
    skipped kill lands on the trace bus without engine plumbing.
    """
    injector = FaultInjector(
        plan, wait_timeout=wait_timeout, kill_on_respawn=kill_on_respawn
    )
    job.runtime.add_interceptor(injector)
    if getattr(job, "trace", None) is not None:
        injector.add_listener(job.trace.on_kill)
    return injector
