"""Pluggable checkpoint stores — *where* checkpoint copies live (§3.1, §3.3, §5).

The paper's protocol separates *when* a checkpoint is taken (coordinated at
epoch boundaries, §3.1; on demand when the put/get log outgrows a threshold,
§6.2) from *where* its copies are placed so that they survive failures.  The
:class:`CheckpointStore` strategy owns the second question.  Three placements
ship:

* :class:`MemoryStore` (``"memory"``, the default) — the paper's diskless
  scheme: every rank keeps a local copy **and** sends a second copy to a
  buddy in a different failure domain (§5).  2x memory overhead; survives any
  failure that does not take a rank and its buddy together.
* :class:`DiskStore` (``"disk"``) — spill every rank's snapshot to a
  directory (the SCR-PFS baseline of §7): slow, but copies survive arbitrary
  node loss, including a rank *and* its buddy.
* :class:`ParityStore` (``"parity"``) — diskless erasure coding (§3.3): each
  rank keeps its local copy, and every t-aware group of ``k`` ranks XORs its
  snapshots into a parity stripe held, chunked, by the members of the *next*
  group (a different set of failure domains).  ~``1 + 1/k`` memory overhead
  instead of 2x; any single failure per group is reconstructed from the
  survivors plus the parity.
* :class:`MultiLevelStore` (``"multilevel"``) — a hierarchy (§5–§7): the base
  child store places every checkpoint, while parity-/disk-class upper levels
  keep full mirrors refreshed *incrementally* (action-log dirty regions) every
  n-th checkpoint, so rare large failures are covered without paying the
  far-away placement cost every time.

Stores are resolved by name through :data:`STORES` (the same convention as
``backend="sim"|"vector"``) and are orthogonal to the
:class:`~repro.ft.protocols.RecoveryProtocol` restoring from them.
"""

from __future__ import annotations

import abc
import shutil
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.errors import CheckpointError
from repro.ft.groups import buddy_assignment, t_aware_groups
from repro.registry import register_kind, resolve_component

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from repro.rma.runtime import RmaRuntime

__all__ = [
    "CheckpointVersion",
    "RestorePayload",
    "CheckpointStore",
    "MemoryStore",
    "DiskStore",
    "ParityStore",
    "MultiLevelStore",
    "STORES",
    "make_store",
]

#: Per-rank window snapshots handed to a store: ``rank -> window -> data``.
Snapshots = dict[int, dict[str, np.ndarray]]


@dataclass
class CheckpointVersion:
    """One coordinated checkpoint: tags, protocol state and (store-owned) copies."""

    version: int
    tag: Any
    taken_at: float
    buddy_of: dict[int, int]
    #: Copy kept in the owner's own memory: ``owner -> window -> data``.
    local: dict[int, dict[str, np.ndarray]] = field(default_factory=dict)
    #: Copy held in the buddy's memory: ``owner -> window -> data``
    #: (populated by :class:`MemoryStore`; other stores place copies elsewhere).
    remote: dict[int, dict[str, np.ndarray]] = field(default_factory=dict)
    #: Per-rank epoch state at checkpoint time (restored on rollback so
    #: survivors do not keep post-checkpoint epochs/pending operations).
    epoch_states: list | None = None
    #: Per-rank counter state (EC/GC/SC/GNC/LC and held locks) at checkpoint
    #: time; restoring it releases locks acquired after the checkpoint.
    counter_states: list | None = None

    def payload_for(self, owner: int) -> tuple[str, dict[str, np.ndarray]] | None:
        """The surviving in-memory copy of ``owner``'s windows.

        ``None`` when both copies were lost (owner and its buddy both failed
        since the checkpoint was taken).  Only meaningful for versions placed
        by :class:`MemoryStore`; other stores answer through
        :meth:`CheckpointStore.fetch`.
        """
        if owner in self.local:
            return ("local", self.local[owner])
        if owner in self.remote:
            return ("buddy", self.remote[owner])
        return None

    def drop_rank(self, rank: int) -> None:
        """Lose every copy stored in ``rank``'s memory (it failed)."""
        self.local.pop(rank, None)
        for owner, buddy in self.buddy_of.items():
            if buddy == rank:
                self.remote.pop(owner, None)

    def usable_for(self, ranks: list[int]) -> bool:
        """Whether every rank of ``ranks`` still has at least one in-memory copy."""
        return all(self.payload_for(rank) is not None for rank in ranks)

    def nbytes(self) -> int:
        """Total memory held by this version's in-memory copies."""
        total = 0
        for copies in (self.local, self.remote):
            for windows in copies.values():
                total += sum(int(data.nbytes) for data in windows.values())
        return total


@dataclass(frozen=True)
class RestorePayload:
    """One rank's recovered window contents, with the cost of obtaining them."""

    #: Where the copy came from: ``"local"``, ``"buddy"``, ``"disk"``, ``"parity"``.
    source: str
    #: ``window -> data`` for the restoring rank.
    windows: dict[str, np.ndarray]
    #: Bytes restored into the rank's windows.
    nbytes: int
    #: Virtual-time cost charged on the restoring rank's clock.
    seconds: float
    #: Ranks participating in the transfer, charged the same cost (the buddy
    #: serving its copy, the group members serving a parity reconstruction).
    peers: tuple[int, ...] = ()


class CheckpointStore(abc.ABC):
    """Placement strategy for checkpoint copies.

    Lifecycle: the :class:`~repro.ft.checkpoint.CoordinatedCheckpointer`
    binds the store to a runtime, then — between the two barriers of every
    coordinated checkpoint — calls :meth:`prepare` (place copies, charge
    their cost) and, only after the closing barrier confirmed every rank
    completed, :meth:`commit` (publish the version, evict beyond the limit).
    A failure firing during the checkpoint therefore never publishes a
    half-placed version.
    """

    #: Registry name of the store ("memory", "disk", "parity", ...).
    name: str = "abstract"

    def __init__(self, keep_versions: int = 2) -> None:
        if keep_versions < 1:
            raise CheckpointError("the store must keep at least one version")
        self.keep_versions = keep_versions
        self.versions: list[CheckpointVersion] = []
        self._next_version = 0
        self._runtime: RmaRuntime | None = None
        self._placement_listeners: list = []

    def add_placement_listener(self, listener) -> None:
        """Observe every placement: ``(store, level, rank, nbytes, incremental)``.

        The trace bus registers here to attribute checkpoint bytes to store
        levels; :meth:`_account` notifies listeners alongside the
        ``ft.checkpoint_bytes`` metric, so both views always agree.
        """
        self._placement_listeners.append(listener)

    def _account(
        self, rank: int, nbytes: int, *, level: str, incremental: bool = False
    ) -> None:
        """Charge ``nbytes`` placed for ``rank`` at ``level`` (single funnel)."""
        self.runtime.cluster.metrics.incr("ft.checkpoint_bytes", nbytes, rank=rank)
        for listener in self._placement_listeners:
            listener(self.name, level, rank, nbytes, incremental)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def bind(self, runtime: "RmaRuntime", *, level: int = 1) -> None:
        """Attach the store to a runtime; compute placement structures.

        A store instance belongs to exactly one job: it holds that job's
        committed versions (and possibly scratch files), so rebinding would
        leak one job's checkpoints into another.  Construct a fresh instance
        per job instead — the same contract as
        :meth:`repro.backends.base.Backend.bind`.
        """
        if self._runtime is not None and self._runtime is not runtime:
            raise CheckpointError(
                f"store {self.name!r} is already bound to a job; stores hold "
                f"checkpoint state and cannot be reused — construct a fresh "
                f"instance per job"
            )
        self._runtime = runtime

    def attach_log(self, log: Any) -> None:
        """Offer the job's :class:`~repro.ft.checkpoint.ActionLog` to the store.

        Most placements ignore it; :class:`MultiLevelStore` reads the log's
        dirty-region map to ship only changed bytes to its upper levels.
        """

    @property
    def runtime(self) -> "RmaRuntime":
        if self._runtime is None:
            raise CheckpointError(f"store {self.name!r} is not bound to a runtime")
        return self._runtime

    def close(self) -> None:
        """Release external resources (scratch directories); idempotent."""

    # ------------------------------------------------------------------
    # Placement (template methods)
    # ------------------------------------------------------------------
    def prepare(
        self,
        *,
        tag: Any,
        snapshots: Snapshots,
        epoch_states: list | None,
        counter_states: list | None,
    ) -> CheckpointVersion:
        """Place copies of ``snapshots`` and charge their cost; do not publish."""
        version = CheckpointVersion(
            version=self._next_version,
            tag=tag,
            taken_at=self.runtime.cluster.elapsed(),
            buddy_of={},
            epoch_states=epoch_states,
            counter_states=counter_states,
        )
        self._place(version, snapshots)
        return version

    def commit(self, version: CheckpointVersion) -> CheckpointVersion:
        """Publish a fully-placed version; evict the oldest beyond the limit."""
        version.version = self._next_version
        self._next_version += 1
        self.versions.append(version)
        while len(self.versions) > self.keep_versions:
            self._evict(self.versions.pop(0))
        return version

    @abc.abstractmethod
    def _place(self, version: CheckpointVersion, snapshots: Snapshots) -> None:
        """Store every rank's snapshot copies and charge their virtual cost."""

    def _evict(self, version: CheckpointVersion) -> None:
        """Release whatever an evicted version held (disk files, parity)."""

    # ------------------------------------------------------------------
    # Retrieval
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def available(self, version: CheckpointVersion, rank: int) -> bool:
        """Whether ``rank``'s windows can still be recovered from ``version``."""

    @abc.abstractmethod
    def fetch(self, version: CheckpointVersion, rank: int) -> RestorePayload | None:
        """Recover ``rank``'s windows from ``version`` (``None`` if lost)."""

    def latest(self) -> CheckpointVersion | None:
        """The newest committed version."""
        return self.versions[-1] if self.versions else None

    def latest_usable(self, ranks: list[int]) -> CheckpointVersion | None:
        """The newest version that can still recover every rank of ``ranks``."""
        for version in reversed(self.versions):
            if all(self.available(version, rank) for rank in ranks):
                return version
        return None

    # ------------------------------------------------------------------
    # Failure propagation and accounting
    # ------------------------------------------------------------------
    def drop_rank(self, rank: int) -> None:
        """Propagate a rank failure: lose every copy held in its memory."""
        for version in self.versions:
            self._drop(version, rank)

    def _drop(self, version: CheckpointVersion, rank: int) -> None:
        """Per-version failure propagation (default: nothing store-held is lost)."""

    def nbytes(self) -> int:
        """Total memory held by the store across all versions."""
        return sum(version.nbytes() for version in self.versions)

    def __len__(self) -> int:
        return len(self.versions)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(versions={len(self.versions)}, "
            f"keep={self.keep_versions})"
        )


class MemoryStore(CheckpointStore):
    """The paper's diskless scheme: a local copy plus a buddy copy (§3.1, §5).

    Buddies are spread across level-``level`` failure domains by
    :func:`~repro.ft.groups.buddy_assignment`, so a copy survives exactly the
    failures its original does not.  2x memory overhead; restoring a failed
    rank pulls from its buddy over the network, survivors read locally.
    """

    name = "memory"

    def __init__(self, keep_versions: int = 2) -> None:
        super().__init__(keep_versions)
        self.buddies: dict[int, int] = {}

    def bind(self, runtime: "RmaRuntime", *, level: int = 1) -> None:
        super().bind(runtime, level=level)
        self.buddies = buddy_assignment(runtime.cluster.placement, level)

    def _place(self, version: CheckpointVersion, snapshots: Snapshots) -> None:
        cluster = self.runtime.cluster
        costs = cluster.costs
        excised = self.runtime.excised
        version.buddy_of = {
            rank: buddy for rank, buddy in self.buddies.items() if rank in snapshots
        }
        for rank, windows in snapshots.items():
            buddy = self.buddies[rank]
            copied_bytes = sum(int(data.nbytes) for data in windows.values())
            version.local[rank] = dict(windows)
            cluster.advance(rank, costs.local_copy(copied_bytes), kind="protocol")
            self._account(rank, copied_bytes, level="local")
            if buddy in excised:
                # The buddy was removed by a degraded continuation: only the
                # local copy exists (and nothing is charged to dead memory).
                continue
            version.remote[rank] = {name: data.copy() for name, data in windows.items()}
            # The transfer of the buddy copy, charged on both ends.
            cluster.advance(rank, costs.remote_transfer(copied_bytes), kind="protocol")
            cluster.advance(buddy, costs.local_copy(copied_bytes), kind="protocol")
            self._account(rank, copied_bytes, level="buddy")

    def available(self, version: CheckpointVersion, rank: int) -> bool:
        return version.payload_for(rank) is not None

    def fetch(self, version: CheckpointVersion, rank: int) -> RestorePayload | None:
        payload = version.payload_for(rank)
        if payload is None:
            return None
        source, windows = payload
        nbytes = sum(int(data.nbytes) for data in windows.values())
        costs = self.runtime.cluster.costs
        if source == "local":
            return RestorePayload("local", windows, nbytes, costs.local_copy(nbytes))
        buddy = version.buddy_of[rank]
        return RestorePayload(
            "buddy", windows, nbytes, costs.remote_transfer(nbytes), peers=(buddy,)
        )

    def _drop(self, version: CheckpointVersion, rank: int) -> None:
        version.drop_rank(rank)


class DiskStore(CheckpointStore):
    """Spill snapshots to a directory — the SCR-PFS baseline of §7.

    Copies survive arbitrary node loss (including a rank together with its
    buddy, the :class:`MemoryStore`'s catastrophic case), at parallel-file-
    system cost: every checkpoint and restore is charged through the cost
    model's shared-bandwidth :meth:`~repro.simulator.costs.CostModel.pfs_write`.
    With ``directory=None`` a scratch directory is created at bind time and
    removed by :meth:`close`.
    """

    name = "disk"

    def __init__(self, keep_versions: int = 2, directory: str | Path | None = None) -> None:
        super().__init__(keep_versions)
        self.directory = Path(directory) if directory is not None else None
        self._owns_directory = False
        self._layout: dict[tuple[int, int], dict[str, Path]] = {}
        self._closed = False

    def bind(self, runtime: "RmaRuntime", *, level: int = 1) -> None:
        if self._closed:
            raise CheckpointError(
                "this DiskStore was closed (its scratch directory is gone); "
                "construct a fresh instance per job"
            )
        super().bind(runtime, level=level)
        if self.directory is None:
            self.directory = Path(tempfile.mkdtemp(prefix="repro-ckpt-"))
            self._owns_directory = True
        else:
            self.directory.mkdir(parents=True, exist_ok=True)

    def _path(self, version: int, rank: int, window: str) -> Path:
        assert self.directory is not None
        return self.directory / f"v{version}_r{rank}_{window}.npy"

    def _place(self, version: CheckpointVersion, snapshots: Snapshots) -> None:
        cluster = self.runtime.cluster
        costs = cluster.costs
        nprocs = cluster.nprocs
        for rank, windows in snapshots.items():
            files: dict[str, Path] = {}
            rank_bytes = 0
            for name, data in windows.items():
                path = self._path(version.version, rank, name)
                np.save(path, data)
                files[name] = path
                rank_bytes += int(data.nbytes)
            self._layout[(version.version, rank)] = files
            # Every rank writes concurrently; the PFS bandwidth is shared.
            cluster.advance(
                rank, costs.pfs_write(rank_bytes, concurrent_writers=nprocs),
                kind="protocol",
            )
            self._account(rank, rank_bytes, level="pfs")

    def available(self, version: CheckpointVersion, rank: int) -> bool:
        return (version.version, rank) in self._layout

    def fetch(self, version: CheckpointVersion, rank: int) -> RestorePayload | None:
        files = self._layout.get((version.version, rank))
        if files is None:
            return None
        windows = {name: np.load(path) for name, path in files.items()}
        nbytes = sum(int(data.nbytes) for data in windows.values())
        seconds = self.runtime.cluster.costs.pfs_read(nbytes)
        return RestorePayload("disk", windows, nbytes, seconds)

    def _evict(self, version: CheckpointVersion) -> None:
        for key in [k for k in self._layout if k[0] == version.version]:
            for path in self._layout.pop(key).values():
                path.unlink(missing_ok=True)

    def nbytes(self) -> int:
        # Nothing is held in job memory; the spill lives on "disk".
        return 0

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._layout.clear()
        if self._owns_directory and self.directory is not None:
            shutil.rmtree(self.directory, ignore_errors=True)


class ParityStore(CheckpointStore):
    """Diskless XOR erasure coding across t-aware groups (§3.3, Eq. 6).

    Ranks are partitioned into groups of ``k`` spread over pairwise-distinct
    failure domains (:func:`~repro.ft.groups.t_aware_groups`).  Each rank
    keeps its local snapshot; each group additionally XORs its members'
    snapshots into one parity stripe, split into ``k`` chunks held by the
    members of the *next* group (different failure domains again).  Memory
    overhead is ``~1 + 1/k`` of the window footprint — against the
    :class:`MemoryStore`'s 2x — and any single failure per group is
    reconstructed as ``parity XOR (surviving members' copies)``.  Two
    failures in one group (or a failure plus a lost parity chunk) make the
    version unusable for those ranks, the analogue of losing a rank and its
    buddy.
    """

    name = "parity"

    #: Upper bound on the automatically-chosen group size.
    DEFAULT_MAX_GROUP = 4

    def __init__(self, keep_versions: int = 2, group_size: int | None = None) -> None:
        super().__init__(keep_versions)
        self.group_size = group_size
        self.groups: list[list[int]] = []
        self.group_of: dict[int, int] = {}
        #: ``version -> (group, window) -> k parity byte-chunks (None = lost)``.
        self._parity: dict[int, dict[tuple[int, str], list[np.ndarray | None]]] = {}

    # ------------------------------------------------------------------
    def bind(self, runtime: "RmaRuntime", *, level: int = 1) -> None:
        super().bind(runtime, level=level)
        placement = runtime.cluster.placement
        nprocs = placement.nprocs
        domains = len({placement.element(r, level) for r in range(nprocs)})
        if self.group_size is not None:
            k = self.group_size
        else:
            k = next(
                (
                    cand
                    for cand in range(min(self.DEFAULT_MAX_GROUP, domains), 1, -1)
                    if nprocs % cand == 0 and nprocs // cand >= 2
                ),
                0,
            )
        if k < 2 or nprocs % k != 0 or nprocs // k < 2:
            raise CheckpointError(
                f"parity checkpointing needs at least two groups of >=2 ranks "
                f"spread over level-{level} domains; {nprocs} ranks over "
                f"{domains} domains admit no such grouping (group_size="
                f"{self.group_size}) — use the 'memory' or 'disk' store"
            )
        self.groups = t_aware_groups(placement, k, level)
        self.group_of = {
            rank: gidx for gidx, group in enumerate(self.groups) for rank in group
        }

    def _holders(self, gidx: int) -> list[int]:
        """Ranks holding group ``gidx``'s parity chunks (the next group)."""
        return self.groups[(gidx + 1) % len(self.groups)]

    # ------------------------------------------------------------------
    def _place(self, version: CheckpointVersion, snapshots: Snapshots) -> None:
        cluster = self.runtime.cluster
        costs = cluster.costs
        k = len(self.groups[0])
        parity: dict[tuple[int, str], list[np.ndarray | None]] = {}
        for rank, windows in snapshots.items():
            rank_bytes = sum(int(data.nbytes) for data in windows.values())
            version.local[rank] = dict(windows)
            # The local duplicate plus this rank's contribution to the
            # group-wide XOR reduction (one transfer of its snapshot).
            cluster.advance(rank, costs.local_copy(rank_bytes), kind="protocol")
            cluster.advance(rank, costs.remote_transfer(rank_bytes), kind="protocol")
            self._account(rank, rank_bytes, level="local")
        excised = self.runtime.excised
        for gidx, group in enumerate(self.groups):
            holders = self._holders(gidx)
            # Members excised by a degraded continuation are absent from the
            # snapshots and contribute nothing to the XOR (the identity).
            present = [member for member in group if member in snapshots]
            if not present:
                continue
            for name in snapshots[present[0]]:
                stripe = np.zeros(snapshots[present[0]][name].nbytes, dtype=np.uint8)
                for member in present:
                    stripe ^= np.ascontiguousarray(snapshots[member][name]).view(np.uint8)
                chunks: list[np.ndarray | None] = [
                    chunk.copy() for chunk in np.array_split(stripe, k)
                ]
                for idx, chunk in enumerate(chunks):
                    if holders[idx] in excised:
                        # No memory to hold this chunk in; it is lost at birth.
                        chunks[idx] = None
                        continue
                    cluster.advance(
                        holders[idx], costs.local_copy(int(chunk.nbytes)),
                        kind="protocol",
                    )
                    self._account(holders[idx], int(chunk.nbytes), level="parity")
                parity[(gidx, name)] = chunks
        self._parity[version.version] = parity

    # ------------------------------------------------------------------
    def available(self, version: CheckpointVersion, rank: int) -> bool:
        if rank in version.local:
            return True
        parity = self._parity.get(version.version)
        if parity is None:
            return False
        gidx = self.group_of[rank]
        others_alive = all(
            member in version.local for member in self.groups[gidx] if member != rank
        )
        stripes_complete = all(
            all(chunk is not None for chunk in chunks)
            for (g, _), chunks in parity.items()
            if g == gidx
        )
        return others_alive and stripes_complete

    def fetch(self, version: CheckpointVersion, rank: int) -> RestorePayload | None:
        costs = self.runtime.cluster.costs
        if rank in version.local:
            windows = version.local[rank]
            nbytes = sum(int(d.nbytes) for d in windows.values())
            return RestorePayload("local", windows, nbytes, costs.local_copy(nbytes))
        if not self.available(version, rank):
            return None
        gidx = self.group_of[rank]
        group = self.groups[gidx]
        parity = self._parity[version.version]
        windows: dict[str, np.ndarray] = {}
        nbytes = 0
        for (g, name), chunks in parity.items():
            if g != gidx:
                continue
            stripe = np.concatenate([c for c in chunks if c is not None]).copy()
            for member in group:
                if member != rank:
                    stripe ^= np.ascontiguousarray(
                        version.local[member][name]
                    ).view(np.uint8)
            reference = self.runtime.windows.get(name)
            windows[name] = stripe.view(reference.dtype).copy()
            nbytes += int(stripe.nbytes)
        peers = tuple(
            sorted({m for m in group if m != rank} | set(self._holders(gidx)))
        )
        return RestorePayload(
            "parity", windows, nbytes, costs.remote_transfer(nbytes), peers=peers
        )

    # ------------------------------------------------------------------
    def _drop(self, version: CheckpointVersion, rank: int) -> None:
        version.local.pop(rank, None)
        parity = self._parity.get(version.version)
        if parity is None:
            return
        holder_group = self.group_of.get(rank)
        if holder_group is None:
            return
        # ``rank`` holds chunk[i] of the *previous* group's stripes, where i
        # is its position within its own group.
        held_for = (holder_group - 1) % len(self.groups)
        idx = self.groups[holder_group].index(rank)
        for (g, _), chunks in parity.items():
            if g == held_for:
                chunks[idx] = None

    def _evict(self, version: CheckpointVersion) -> None:
        self._parity.pop(version.version, None)

    def nbytes(self) -> int:
        total = super().nbytes()
        for parity in self._parity.values():
            for chunks in parity.values():
                total += sum(int(c.nbytes) for c in chunks if c is not None)
        return total


@dataclass
class _Level:
    """One upper level of a :class:`MultiLevelStore`."""

    #: Redundancy class of the level: ``"parity"`` (cross-domain transfer
    #: costs) or ``"disk"`` (shared-bandwidth PFS costs).
    kind: str
    #: Capture cadence: update the mirror every ``every``-th committed
    #: checkpoint (the first checkpoint always seeds a full image).
    every: int
    #: Full window mirrors at the last capture: ``rank -> window -> data``.
    mirrors: dict[int, dict[str, np.ndarray]] = field(default_factory=dict)
    #: Version number the mirrors correspond to (``None`` before any capture).
    captured_version: int | None = None
    #: Dirty write-set accumulated since the last capture, merged from the
    #: action log at every base checkpoint: ``(rank, window) -> [(off, cnt)]``.
    dirty: dict[tuple[int, str], list[tuple[int, int]]] = field(default_factory=dict)
    #: Captures performed (first is full, the rest incremental).
    captures: int = 0


class MultiLevelStore(CheckpointStore):
    """Hierarchical multi-level checkpointing with incremental upper levels.

    The paper's cost model (§5–§7) prices a *hierarchy* of failure domains:
    cheap in-memory copies guard single-node loss, while rarer, larger
    failures (a rank **and** its buddy, a whole domain) need copies placed
    further away — at a cost that would be ruinous to pay every checkpoint.
    This store composes the existing placements into such a hierarchy:

    * the **base** child store (default :class:`MemoryStore`) places every
      coordinated checkpoint exactly as today;
    * each **upper level** (``kind`` ``"parity"`` or ``"disk"``) keeps a full
      mirror of every rank's windows, refreshed only every ``every``-th
      committed checkpoint — and refreshed *incrementally*: the action log's
      :meth:`~repro.ft.checkpoint.ActionLog.dirty_regions` write-set, merged
      across the checkpoints since the level's last capture, determines which
      bytes move; a content diff against the mirror catches local stores the
      log never sees.  Moved bytes are metered as ``ft.multilevel_moved_bytes``
      against the ``ft.multilevel_full_bytes`` a non-incremental level would
      have shipped.

    A version whose base copies were lost (buddy pair failed together — the
    :class:`MemoryStore`'s catastrophic case) or evicted stays recoverable as
    long as an upper level captured it: evicted captured versions are kept as
    stripped archives (protocol state only, window data served from the
    mirrors), extending restore reach beyond ``keep_versions``.
    """

    name = "multilevel"

    #: Default hierarchy: a parity-class level every 2nd checkpoint and a
    #: disk-class level every 4th.
    DEFAULT_LEVELS: tuple[tuple[str, int], ...] = (("parity", 2), ("disk", 4))

    #: Level kinds with a defined cost mapping.
    LEVEL_KINDS = ("parity", "disk")

    def __init__(
        self,
        keep_versions: int = 2,
        base: "str | CheckpointStore | None" = "memory",
        levels: "tuple[tuple[str, int], ...] | None" = None,
    ) -> None:
        super().__init__(keep_versions)
        self.base = make_store(base, keep_versions=keep_versions)
        if isinstance(self.base, MultiLevelStore):
            raise CheckpointError("multilevel stores do not nest")
        specs = tuple(levels) if levels is not None else self.DEFAULT_LEVELS
        if not specs:
            raise CheckpointError(
                "a multilevel store needs at least one upper level; use the "
                "base store directly instead"
            )
        self.levels: list[_Level] = []
        for kind, every in specs:
            if kind not in self.LEVEL_KINDS:
                raise CheckpointError(
                    f"unknown multilevel level kind {kind!r}; choose from "
                    f"{list(self.LEVEL_KINDS)}"
                )
            if int(every) < 1:
                raise CheckpointError("level capture cadence must be at least 1")
            self.levels.append(_Level(kind=kind, every=int(every)))
        #: Evicted-but-captured versions, stripped of base copies: the upper
        #: mirrors still serve their window data.
        self.archived: dict[int, CheckpointVersion] = {}
        self._log: Any = None
        self._committed = 0

    # ------------------------------------------------------------------
    def bind(self, runtime: "RmaRuntime", *, level: int = 1) -> None:
        super().bind(runtime, level=level)
        self.base.bind(runtime, level=level)

    def add_placement_listener(self, listener) -> None:
        # The base store accounts its own placements; forward so listeners
        # see every level of the hierarchy through one registration.
        super().add_placement_listener(listener)
        self.base.add_placement_listener(listener)

    def attach_log(self, log: Any) -> None:
        self._log = log

    @property
    def buddies(self) -> dict[int, int]:
        return getattr(self.base, "buddies", {})

    def set_level_intervals(self, intervals: "list[int]") -> None:
        """Install capture cadences, e.g. resolved by the analytic model
        (:meth:`repro.study.model.IntervalModel.multilevel_intervals`)."""
        if len(intervals) != len(self.levels):
            raise CheckpointError(
                f"expected {len(self.levels)} cadences, got {len(intervals)}"
            )
        for lvl, every in zip(self.levels, intervals):
            if int(every) < 1:
                raise CheckpointError("level capture cadence must be at least 1")
            lvl.every = int(every)

    def close(self) -> None:
        self.base.close()

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def _place(self, version: CheckpointVersion, snapshots: Snapshots) -> None:
        self.base._place(version, snapshots)
        dirty = self._log.dirty_regions() if self._log is not None else {}
        for lvl in self.levels:
            for key, spans in dirty.items():
                lvl.dirty.setdefault(key, []).extend(spans)
        # Cadence counts *committed* checkpoints so that a retried attempt
        # (failure between the barriers) makes the same capture decision and
        # the last attempt before the commit wins.
        slot = self._committed + 1
        for lvl in self.levels:
            if slot == 1 or slot % lvl.every == 0:
                self._capture(lvl, version, snapshots)

    def _capture(
        self, lvl: _Level, version: CheckpointVersion, snapshots: Snapshots
    ) -> None:
        cluster = self.runtime.cluster
        costs = cluster.costs
        writers = max(1, len(snapshots))
        for rank, windows in snapshots.items():
            mirrors = lvl.mirrors.setdefault(rank, {})
            moved = 0
            full = 0
            for name, data in windows.items():
                full += int(data.nbytes)
                mirror = mirrors.get(name)
                if (
                    mirror is None
                    or mirror.shape != data.shape
                    or mirror.dtype != data.dtype
                ):
                    mirrors[name] = np.array(data, copy=True)
                    moved += int(data.nbytes)
                    continue
                flat = data.reshape(-1)
                mirror_flat = mirror.reshape(-1)
                mask = np.zeros(flat.shape[0], dtype=bool)
                for offset, count in lvl.dirty.get((rank, name), ()):
                    mask[offset : offset + count] = True
                # Local stores bypass the completion stream; diff the rest
                # against the mirror so the capture is always bit-exact.
                mask |= (flat != mirror_flat) & ~mask
                changed = int(np.count_nonzero(mask))
                if changed:
                    mirror_flat[mask] = flat[mask]
                moved += changed * int(data.dtype.itemsize)
            if lvl.kind == "disk":
                seconds = costs.pfs_write(moved, concurrent_writers=writers)
            else:
                seconds = costs.remote_transfer(moved)
            cluster.advance(rank, seconds, kind="protocol")
            cluster.metrics.incr("ft.multilevel_moved_bytes", moved, rank=rank)
            cluster.metrics.incr("ft.multilevel_full_bytes", full, rank=rank)
            self._account(
                rank, moved, level=lvl.kind, incremental=lvl.captures > 0
            )
        # Drop mirrors of ranks excised since the previous capture.
        for rank in [r for r in lvl.mirrors if r not in snapshots]:
            del lvl.mirrors[rank]
        lvl.dirty.clear()
        lvl.captured_version = version.version
        lvl.captures += 1

    def commit(self, version: CheckpointVersion) -> CheckpointVersion:
        committed = super().commit(version)
        self._committed += 1
        self._prune_archive()
        return committed

    def _evict(self, version: CheckpointVersion) -> None:
        self.base._evict(version)
        if any(lvl.captured_version == version.version for lvl in self.levels):
            # An upper level still serves this version's window data; keep
            # the protocol state, drop the (already-evicted) base copies.
            version.local = {}
            version.remote = {}
            self.archived[version.version] = version

    def _prune_archive(self) -> None:
        live = {lvl.captured_version for lvl in self.levels}
        for vnum in [v for v in self.archived if v not in live]:
            del self.archived[vnum]

    # ------------------------------------------------------------------
    # Retrieval
    # ------------------------------------------------------------------
    def available(self, version: CheckpointVersion, rank: int) -> bool:
        if self.base.available(version, rank):
            return True
        return any(
            lvl.captured_version == version.version and rank in lvl.mirrors
            for lvl in self.levels
        )

    def fetch(self, version: CheckpointVersion, rank: int) -> RestorePayload | None:
        payload = self.base.fetch(version, rank)
        if payload is not None:
            return payload
        costs = self.runtime.cluster.costs
        for lvl in self.levels:
            if lvl.captured_version != version.version or rank not in lvl.mirrors:
                continue
            windows = {name: data.copy() for name, data in lvl.mirrors[rank].items()}
            nbytes = sum(int(data.nbytes) for data in windows.values())
            if lvl.kind == "disk":
                seconds = costs.pfs_read(nbytes)
            else:
                seconds = costs.remote_transfer(nbytes)
            return RestorePayload(f"multilevel-{lvl.kind}", windows, nbytes, seconds)
        return None

    def latest_usable(self, ranks: list[int]) -> CheckpointVersion | None:
        found = super().latest_usable(ranks)
        if found is not None:
            return found
        for version in sorted(
            self.archived.values(), key=lambda v: v.version, reverse=True
        ):
            if all(self.available(version, rank) for rank in ranks):
                return version
        return None

    # ------------------------------------------------------------------
    def _drop(self, version: CheckpointVersion, rank: int) -> None:
        # Base copies in the failed rank's memory are lost; the upper-level
        # mirrors live across the failure domain the level guards and survive.
        self.base._drop(version, rank)

    def nbytes(self) -> int:
        total = super().nbytes() + self.base.nbytes()
        for lvl in self.levels:
            for windows in lvl.mirrors.values():
                total += sum(int(data.nbytes) for data in windows.values())
        return total


#: Registry of constructable checkpoint stores, by name.
STORES: dict[str, type[CheckpointStore]] = {
    MemoryStore.name: MemoryStore,
    DiskStore.name: DiskStore,
    ParityStore.name: ParityStore,
    MultiLevelStore.name: MultiLevelStore,
}
register_kind("store", STORES)


def make_store(
    spec: "str | CheckpointStore | None",
    *,
    keep_versions: int = 2,
    error: type[Exception] = CheckpointError,
) -> CheckpointStore:
    """Resolve a store specification into a fresh (or given) instance.

    ``None`` means the default (``"memory"``); a string is looked up in
    :data:`STORES` (an unknown name raises ``error`` listing the registered
    choices); a :class:`CheckpointStore` instance passes through unchanged,
    its own configuration winning over ``keep_versions``.
    """
    return resolve_component(
        "store", spec, STORES, CheckpointStore, error,
        default=MemoryStore.name, keep_versions=keep_versions,
    )
