"""Fault-tolerance protocols on top of the RMA runtime (§3–§6).

* :mod:`~repro.ft.groups` — topology-aware (t-aware) buddy and group
  construction over the failure-domain hierarchy (§5, Eq. 6);
* :mod:`~repro.ft.checkpoint` — coordinated in-memory checkpointing of window
  contents with buddy placement across failure domains, plus demand
  checkpoints driven by the interceptor's put/get log (§3.1, §6.2);
* :mod:`~repro.ft.recovery` — the recovery path: respawn a dead rank,
  reallocate its invalidated window buffers and restore every rank from the
  newest surviving coordinated checkpoint (§4.2–§4.3);
* :mod:`~repro.ft.stack` — one-call construction of the whole protocol
  (log + checkpointer + recovery) from plain parameters, used by the
  declarative policy of :mod:`repro.api`.
"""

from repro.ft.checkpoint import (
    ActionLog,
    CheckpointVersion,
    CoordinatedCheckpointer,
    InMemoryCheckpointStore,
)
from repro.ft.groups import buddy_assignment, group_spread, t_aware_groups
from repro.ft.recovery import RecoveryManager
from repro.ft.stack import FtStack, build_ft_stack

__all__ = [
    "ActionLog",
    "CheckpointVersion",
    "CoordinatedCheckpointer",
    "InMemoryCheckpointStore",
    "buddy_assignment",
    "group_spread",
    "t_aware_groups",
    "RecoveryManager",
    "FtStack",
    "build_ft_stack",
]
