"""Fault-tolerance protocols on top of the RMA runtime (§3–§7).

* :mod:`~repro.ft.groups` — topology-aware (t-aware) buddy and group
  construction over the failure-domain hierarchy (§5, Eq. 6);
* :mod:`~repro.ft.stores` — pluggable checkpoint placement strategies:
  in-memory buddy copies (§3.1, §5), disk spill (the SCR-PFS baseline of
  §7) and XOR parity stripes across t-aware groups (§3.3);
* :mod:`~repro.ft.checkpoint` — the coordinated checkpointer (epoch-boundary
  guard, §3.1.2) with demand checkpoints driven by the interceptor's put/get
  log (§6.2); the log also retains the completed actions for replay;
* :mod:`~repro.ft.protocols` — pluggable recovery strategies: coordinated
  global rollback (§4.2–§4.3), localized log-based replay restoring only the
  failed ranks (§7, with the §3.2.3 fallback), and best-effort degraded
  continuation;
* :mod:`~repro.ft.recovery` — the :class:`RecoveryManager` dispatching
  failures to the configured protocol;
* :mod:`~repro.ft.stack` — one-call construction of the whole protocol
  (log + store + checkpointer + recovery) from plain parameters, used by the
  declarative policy of :mod:`repro.api`;
* :mod:`~repro.ft.inject` — kill injection timed by completion-stream
  position (backend-portable): real ``SIGKILL`` on the real-process backend,
  simulated fail-stop elsewhere, with the POD_KILL/NODE_KILL taxonomy.
"""

from repro.ft.checkpoint import (
    ActionLog,
    CheckpointVersion,
    CoordinatedCheckpointer,
    InMemoryCheckpointStore,
)
from repro.ft.groups import buddy_assignment, group_spread, t_aware_groups
from repro.ft.inject import (
    FaultInjector,
    FiredKill,
    KillEvent,
    KillKind,
    KillPlan,
    install_injector,
)
from repro.ft.protocols import (
    PROTOCOLS,
    ContinueDegraded,
    GlobalRollback,
    LocalizedReplay,
    RecoveryOutcome,
    RecoveryProtocol,
    make_protocol,
)
from repro.ft.recovery import RecoveryManager
from repro.ft.stack import FtStack, build_ft_stack
from repro.ft.stores import (
    STORES,
    CheckpointStore,
    DiskStore,
    MemoryStore,
    MultiLevelStore,
    ParityStore,
    RestorePayload,
    make_store,
)

__all__ = [
    "ActionLog",
    "CheckpointVersion",
    "CoordinatedCheckpointer",
    "InMemoryCheckpointStore",
    "CheckpointStore",
    "MemoryStore",
    "DiskStore",
    "MultiLevelStore",
    "ParityStore",
    "RestorePayload",
    "STORES",
    "make_store",
    "RecoveryProtocol",
    "RecoveryOutcome",
    "GlobalRollback",
    "LocalizedReplay",
    "ContinueDegraded",
    "PROTOCOLS",
    "make_protocol",
    "buddy_assignment",
    "group_spread",
    "t_aware_groups",
    "RecoveryManager",
    "FtStack",
    "build_ft_stack",
    "KillKind",
    "KillEvent",
    "KillPlan",
    "FiredKill",
    "FaultInjector",
    "install_injector",
]
