"""Topology-aware buddy and group construction (§5).

The paper extends flat checkpointing with the failure-domain hierarchy: a
checkpoint copy only helps if it survives the failures that destroy the
original, so partners must live in *different* failure domains.  Eq. 6 calls a
group of processes *t-aware* at level ``k`` when its members are spread over
at least ``t`` distinct level-``k`` elements.

Two constructions are provided on top of a
:class:`~repro.simulator.placement.Placement`:

* :func:`buddy_assignment` — pairs every rank with a partner in a different
  level-``k`` domain (the in-memory checkpoint buddy);
* :func:`t_aware_groups` — partitions the job into groups of ``m`` ranks no
  two of which share a level-``k`` domain (the erasure-coding groups of §3.3).
"""

from __future__ import annotations

from repro.errors import PlacementError, TopologyError
from repro.simulator.placement import Placement

__all__ = ["buddy_assignment", "t_aware_groups", "group_spread"]


def _ranks_by_domain(placement: Placement, level: int) -> dict[int, list[int]]:
    """Group all ranks by the index of their level-``level`` domain element."""
    domains: dict[int, list[int]] = {}
    for rank in range(placement.nprocs):
        domains.setdefault(placement.element(rank, level), []).append(rank)
    return domains


def group_spread(placement: Placement, ranks: list[int], level: int) -> int:
    """Number of distinct level-``level`` domains covering ``ranks``.

    A group is *t-aware* at ``level`` (Eq. 6) iff this is at least ``t``.
    """
    return len({placement.element(rank, level) for rank in ranks})


def buddy_assignment(placement: Placement, level: int = 1) -> dict[int, int]:
    """Assign every rank a checkpoint buddy in a *different* level-``level`` domain.

    Domains are ordered by element index and chained cyclically: the ranks of
    domain ``d`` store their copies with the ranks of domain ``d+1``.  Within a
    pair of domains, ranks are matched by position (modulo the partner
    domain's size), so the assignment is deterministic and total.

    Raises
    ------
    TopologyError
        If every process lives in a single level-``level`` domain — no
        placement can then survive a failure of that domain.
    """
    domains = _ranks_by_domain(placement, level)
    if len(domains) < 2:
        raise TopologyError(
            f"buddy placement at level {level} needs at least two failure "
            f"domains, but all {placement.nprocs} ranks share one"
        )
    order = sorted(domains)
    buddies: dict[int, int] = {}
    for pos, domain in enumerate(order):
        partner_ranks = domains[order[(pos + 1) % len(order)]]
        for i, rank in enumerate(domains[domain]):
            buddies[rank] = partner_ranks[i % len(partner_ranks)]
    return buddies


def t_aware_groups(
    placement: Placement, group_size: int, level: int = 1
) -> list[list[int]]:
    """Partition the job into groups of ``group_size`` fully spread at ``level``.

    Each group's members all live in pairwise different level-``level``
    domains (the group is ``group_size``-aware, the strongest t-awareness).
    Ranks are dealt round-robin over the domains, so the construction works
    for any placement with at least ``group_size`` domains.

    Raises
    ------
    PlacementError
        If ``group_size`` does not divide the job size or exceeds the number
        of available domains.
    """
    if group_size <= 0:
        raise PlacementError("group_size must be positive")
    if placement.nprocs % group_size != 0:
        raise PlacementError(
            f"{placement.nprocs} ranks cannot be split into groups of {group_size}"
        )
    domains = _ranks_by_domain(placement, level)
    if group_size > len(domains):
        raise PlacementError(
            f"groups of {group_size} cannot be spread over only "
            f"{len(domains)} level-{level} domains"
        )
    # Deal ranks domain by domain into a round-robin pool: consecutive pool
    # entries come from different domains as long as domains are balanced.
    pools = [domains[d] for d in sorted(domains)]
    dealt: list[int] = []
    cursor = 0
    while any(pools):
        if pools[cursor % len(pools)]:
            dealt.append(pools[cursor % len(pools)].pop(0))
        cursor += 1
    groups = [dealt[i : i + group_size] for i in range(0, len(dealt), group_size)]
    for group in groups:
        if group_spread(placement, group, level) < len(group):
            raise PlacementError(
                f"could not build {group_size}-aware groups at level {level}: "
                f"group {group} shares a domain"
            )
    return groups
