"""Recovery from fail-stop failures (§4.2–§4.3).

When the application observes a :class:`~repro.errors.ProcessFailedError` it
hands control to the :class:`RecoveryManager`, which performs the paper's
coordinated rollback:

1. every failed rank is **respawned** — the batch system provides a
   replacement process that inherits the rank number (§4.3);
2. the replacement's invalidated window buffers are **reallocated**;
3. every rank — replacements *and* survivors — **restores** its window
   contents from the newest checkpoint version that still has a surviving
   copy for all ranks: survivors read their own in-memory copy, replacements
   pull theirs from the buddy over the network;
4. a closing barrier re-synchronizes the job, and the application resumes
   from the restored iteration (the checkpoint's ``tag``).

If some rank lost both its copies (it failed together with its buddy and no
older version helps), the run cannot be recovered in memory and
:class:`~repro.errors.CatastrophicFailure` is raised — the paper's restart
case (§3.3).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.errors import CatastrophicFailure, RecoveryError
from repro.ft.checkpoint import CheckpointVersion, CoordinatedCheckpointer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from repro.rma.runtime import RmaRuntime

__all__ = ["RecoveryManager"]


class RecoveryManager:
    """Drives respawn + restore after one or more fail-stop failures."""

    def __init__(self, runtime: "RmaRuntime", checkpointer: CoordinatedCheckpointer) -> None:
        self.runtime = runtime
        self.checkpointer = checkpointer

    @property
    def store(self):
        """The checkpoint store recovery restores from."""
        return self.checkpointer.store

    def recover(self) -> Any:
        """Recover all currently failed ranks; return the restored checkpoint tag.

        Raises
        ------
        RecoveryError
            If no rank is failed (nothing to recover) or no checkpoint was
            ever taken.
        CatastrophicFailure
            If no stored version has a surviving copy for every rank.
        """
        cluster = self.runtime.cluster
        # Fire any failure whose time has passed but was not yet observed, so
        # a single recovery handles simultaneous failures (e.g. a node loss).
        self.runtime.observe_failures()
        failed = cluster.failed_ranks()
        if not failed:
            raise RecoveryError("recover() called but no rank is failed")
        if len(self.store) == 0:
            raise RecoveryError("no checkpoint has been taken; cannot recover")
        all_ranks = list(range(cluster.nprocs))
        version = self.store.latest_usable(all_ranks)
        if version is None:
            raise CatastrophicFailure(
                f"ranks {failed} failed and no stored checkpoint retains a "
                f"copy for every rank; the job must restart"
            )
        # Operations issued after the checkpoint but never completed are part
        # of the execution being undone: drop them from the backend's queues
        # (and poison their handles) before restoring, or a later flush would
        # replay them on top of the rolled-back windows.
        self.runtime.discard_pending()
        for rank in failed:
            cluster.respawn_rank(rank)
            # Through the backend hook (not the registry directly): storage
            # ownership lives with the backend, and a custom one may rebuild
            # per-rank state of its own on respawn.
            self.runtime.backend.reallocate_rank(rank)
            self.runtime.notify_respawn(rank)
        self._restore_all(version)
        # The rolled-back actions' log entries describe execution that is
        # being undone; the restored checkpoint starts with an empty log.
        if self.checkpointer.log is not None:
            self.checkpointer.log.truncate()
        cluster.barrier()
        cluster.metrics.incr("ft.recoveries")
        for rank in failed:
            cluster.metrics.incr("ft.recovered_ranks", rank=rank)
        return version.tag

    # ------------------------------------------------------------------
    def _restore_all(self, version: CheckpointVersion) -> None:
        """Roll every rank back to ``version`` (coordinated rollback).

        Windows *and* protocol state roll back together: survivors that
        acquired locks or opened epochs after the checkpoint have that state
        undone, so the re-executed program performs exactly the same
        transitions as the first execution.
        """
        cluster = self.runtime.cluster
        costs = cluster.costs
        if version.epoch_states is not None:
            self.runtime.epochs.restore(version.epoch_states)
        if version.counter_states is not None:
            self.runtime.counters.restore(version.counter_states)
        for rank in range(cluster.nprocs):
            payload = version.payload_for(rank)
            if payload is None:  # pragma: no cover - guarded by latest_usable
                raise CatastrophicFailure(f"no surviving copy for rank {rank}")
            source, windows_data = payload
            restored_bytes = 0
            for name, data in windows_data.items():
                self.runtime.windows.get(name).restore(rank, data)
                restored_bytes += int(data.nbytes)
            if source == "local":
                cluster.advance(rank, costs.local_copy(restored_bytes), kind="protocol")
            else:
                # Pull from the buddy: network transfer, charged on both ends.
                buddy = version.buddy_of[rank]
                dt = costs.remote_transfer(restored_bytes)
                cluster.advance(rank, dt, kind="protocol")
                cluster.advance(buddy, dt, kind="protocol")
            cluster.metrics.incr("ft.restored_bytes", restored_bytes, rank=rank)
