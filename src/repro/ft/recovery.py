"""Recovery dispatch: hand failures to the configured protocol (§4.2–§4.3, §7).

When the application (or the session layer) observes a
:class:`~repro.errors.ProcessFailedError` it calls
:meth:`RecoveryManager.recover`, which delegates to the configured
:class:`~repro.ft.protocols.RecoveryProtocol` strategy — coordinated global
rollback, localized log-based replay, or best-effort degraded continuation —
and returns its :class:`~repro.ft.protocols.RecoveryOutcome`.  The manager
owns no protocol logic itself; it binds the runtime, the checkpointer (whose
store the protocols restore from) and the chosen strategy together, and it
enables undo capture on the backend when the strategy keeps survivor state.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import RecoveryError
from repro.ft.checkpoint import ActionLog, CoordinatedCheckpointer
from repro.ft.protocols import RecoveryOutcome, RecoveryProtocol, make_protocol
from repro.ft.stores import CheckpointStore

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from repro.rma.runtime import RmaRuntime

__all__ = ["RecoveryManager"]


class RecoveryManager:
    """Binds a runtime, a checkpointer and a recovery protocol strategy."""

    def __init__(
        self,
        runtime: "RmaRuntime",
        checkpointer: CoordinatedCheckpointer,
        protocol: RecoveryProtocol | str | None = None,
    ) -> None:
        self.runtime: RmaRuntime | None = runtime
        self.checkpointer: CoordinatedCheckpointer | None = checkpointer
        self.protocol = make_protocol(protocol)
        if self.protocol.needs_clean_discard:
            # Survivor-preserving protocols require that discarding issued-
            # but-uncompleted operations leaves memory untouched; an eagerly
            # writing backend must capture undo data from now on.
            runtime.backend.set_capture_undo(True)

    # ------------------------------------------------------------------
    @property
    def store(self) -> CheckpointStore:
        """The checkpoint store recovery restores from."""
        if self.checkpointer is None:
            raise RecoveryError(
                "the fault-tolerance stack was uninstalled; this manager is detached"
            )
        return self.checkpointer.store

    @property
    def log(self) -> ActionLog | None:
        """The put/get log, if the stack keeps one."""
        if self.checkpointer is None:
            raise RecoveryError(
                "the fault-tolerance stack was uninstalled; this manager is detached"
            )
        return self.checkpointer.log

    # ------------------------------------------------------------------
    def recover(self) -> RecoveryOutcome:
        """Recover all currently failed ranks via the configured protocol.

        Returns the protocol's :class:`~repro.ft.protocols.RecoveryOutcome`
        (``outcome.tag`` is the restored checkpoint tag for rollback/replay
        protocols).  Raises whatever the protocol raises — see
        :meth:`~repro.ft.protocols.RecoveryProtocol.recover`.
        """
        if self.runtime is None:
            raise RecoveryError(
                "the fault-tolerance stack was uninstalled; this manager is detached"
            )
        return self.protocol.recover(self)

    def detach(self) -> None:
        """Drop the live runtime/checkpointer references (stack uninstalled).

        A detached manager refuses further :meth:`recover` calls instead of
        silently operating on a runtime the stack no longer observes.
        Idempotent.
        """
        self.runtime = None
        self.checkpointer = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "detached" if self.runtime is None else "attached"
        return f"RecoveryManager(protocol={self.protocol.name!r}, {state})"
