"""Coordinated checkpointing of window contents (§3.1, §6.2).

The :class:`CoordinatedCheckpointer` decides *when* a checkpoint is taken —
collectively, at an epoch boundary, with the Locks scheme's guard (§3.1.2)
refusing to start while any rank holds a lock — and hands the per-rank window
snapshots to a pluggable :class:`~repro.ft.stores.CheckpointStore`, which
decides *where* the copies live (in-memory buddies, disk, XOR parity; §3.1,
§3.3, §5).

Two triggers are supported:

* **Coordinated** checkpoints (§3.1): a collective
  :meth:`CoordinatedCheckpointer.checkpoint` taken at an epoch boundary.
* **Demand** checkpoints (§6.2): an :class:`ActionLog` interceptor accumulates
  the put/get log; when the logged volume passes a threshold,
  :meth:`CoordinatedCheckpointer.maybe_checkpoint` takes a fresh checkpoint
  and truncates the log — bounding log growth exactly like the paper's
  demand checkpoints.

The :class:`ActionLog` is also the substrate of log-based recovery (§7): it
retains the completed actions themselves — determinants *and* payloads — so
:class:`~repro.ft.protocols.LocalizedReplay` can rebuild a failed rank's
post-checkpoint state without rolling survivors back.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.errors import CheckpointError, EpochError
from repro.ft.stores import (
    CheckpointStore,
    CheckpointVersion,
    MemoryStore,
    make_store,
)
from repro.rma.actions import CommAction
from repro.rma.interceptor import RmaInterceptor

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from repro.rma.runtime import RmaRuntime

__all__ = [
    "ActionLog",
    "CheckpointVersion",
    "InMemoryCheckpointStore",
    "CoordinatedCheckpointer",
]

#: Backwards-compatible name for the default store: earlier revisions shipped
#: exactly one placement strategy under this name.
InMemoryCheckpointStore = MemoryStore


class ActionLog(RmaInterceptor):
    """The put/get log of §6.2, kept at the origin of every action.

    The log observes the runtime's *completion stream*: ``after_comm`` fires
    when an operation completes (at the flush/unlock/gsync that closes its
    epoch, immediately for blocking calls), not when it is issued — so under
    a batching backend that reorders or coalesces execution, the log still
    records exactly the operations whose effects are part of the consistent
    state, and demand-checkpoint decisions stay correct.  Each completed
    communication action appends its determinant and payload size to the
    origin's log; the bookkeeping plus the local copy of put data is charged
    on the origin's clock as protocol overhead (the paper's logging cost).
    The per-rank logged volume drives demand checkpoints.

    With ``retain_actions`` (on by default, but disabled by
    :func:`~repro.ft.stack.build_ft_stack` for protocols that never replay)
    the log also retains, since the last truncation, the completed
    :class:`~repro.rma.actions.CommAction` objects themselves, in completion
    order — puts keep the operand they were issued with, gets the data they
    fetched — which is what localized (log-based) recovery replays (§7).
    Retention pins the payload arrays until the next truncation, so
    protocols that only need the demand-checkpoint byte counts should turn
    it off.
    """

    name = "action-log"

    def __init__(self, *, retain_actions: bool = True) -> None:
        self.retain_actions = retain_actions
        self._runtime: RmaRuntime | None = None
        #: Per-origin list of (determinant, nbytes) since the last truncation.
        self.entries: dict[int, list[tuple[tuple, int]]] = {}
        self.bytes_logged: dict[int, int] = {}
        #: Element ranges written by completed put-like actions since the
        #: last truncation, keyed ``(target rank, window name)`` — the dirty
        #: map incremental (multi-level) checkpoints move instead of full
        #: snapshots.  Kept regardless of ``retain_actions``: ranges are a
        #: few ints, not pinned payloads.
        self._dirty: dict[tuple[int, str], list[tuple[int, int]]] = {}
        #: Completed actions since the last truncation, in completion order.
        self.actions: list[CommAction] = []
        #: Positions into :attr:`actions` marking completed job-step
        #: boundaries (recorded by the session); everything past the last
        #: marker is the partial work of a step a crash aborted.
        self.step_marks: list[int] = []
        #: While a localized recovery runs, respawns must not clear the log —
        #: it is exactly what reconstructs the restored ranks' windows.
        self._preserve_on_respawn = False

    def attach(self, runtime: "RmaRuntime") -> None:
        self._runtime = runtime

    def after_comm(self, action: CommAction) -> None:
        nbytes = action.nbytes
        self.entries.setdefault(action.src, []).append((action.determinant(), nbytes))
        self.bytes_logged[action.src] = self.bytes_logged.get(action.src, 0) + nbytes
        if self.retain_actions:
            self.actions.append(action)
        if action.is_put_like:
            self._dirty.setdefault((action.trg, action.window), []).append(
                (action.offset, action.count)
            )
        if self._runtime is not None:
            costs = self._runtime.cluster.costs
            overhead = costs.log_bookkeeping
            if action.is_put_like:
                overhead += costs.local_copy(nbytes)
            self._runtime.cluster.advance(action.src, overhead, kind="protocol")

    def on_recovery_start(self, ranks: list[int], *, localized: bool) -> None:
        self._preserve_on_respawn = localized

    def on_recovery_complete(self, ranks: list[int]) -> None:
        self._preserve_on_respawn = False

    def on_respawn(self, rank: int) -> None:
        if self._preserve_on_respawn:
            return
        # A replacement process starts with an empty log (its memory is new).
        # Positions in step_marks go stale with the filtering; the rollback
        # protocols that take this path truncate the whole log right after.
        self.entries.pop(rank, None)
        self.bytes_logged.pop(rank, None)
        self.actions = [a for a in self.actions if a.src != rank]
        self.step_marks = [m for m in self.step_marks if m <= len(self.actions)]

    def mark_step(self) -> None:
        """Record a completed job-step boundary (called by the session)."""
        if not self.step_marks or self.step_marks[-1] != len(self.actions):
            self.step_marks.append(len(self.actions))

    def last_mark(self) -> int:
        """Log position of the last completed step boundary (0 if none)."""
        return self.step_marks[-1] if self.step_marks else 0

    def max_logged_bytes(self) -> int:
        """Largest per-rank logged volume since the last truncation."""
        return max(self.bytes_logged.values(), default=0)

    def total_logged_bytes(self) -> int:
        """Sum of logged volume over all ranks."""
        return sum(self.bytes_logged.values())

    def actions_targeting(self, ranks: set[int]) -> list[CommAction]:
        """Logged actions whose target is one of ``ranks``, completion order."""
        return [a for a in self.actions if a.trg in ranks]

    def dirty_regions(self) -> dict[tuple[int, str], list[tuple[int, int]]]:
        """Merged element ranges dirtied by puts since the last truncation.

        Returns ``{(target rank, window name): [(offset, count), ...]}`` with
        overlapping and adjacent ranges coalesced and sorted by offset.  This
        is the write-set an incremental checkpoint
        (:class:`~repro.ft.stores.MultiLevelStore`) ships to its upper levels
        instead of full window images.  Purely local stores (``ctx.local``
        writes) never pass through the completion stream and are *not* in
        this map — incremental consumers must diff those against their mirror
        themselves.
        """
        merged: dict[tuple[int, str], list[tuple[int, int]]] = {}
        for key, regions in self._dirty.items():
            spans: list[tuple[int, int]] = []
            for offset, count in sorted(regions):
                if spans and offset <= spans[-1][0] + spans[-1][1]:
                    last_off, last_cnt = spans[-1]
                    spans[-1] = (last_off, max(last_cnt, offset + count - last_off))
                else:
                    spans.append((offset, count))
            merged[key] = spans
        return merged

    def truncate(self) -> None:
        """Drop the log (a fresh checkpoint makes replaying it unnecessary)."""
        self.entries.clear()
        self.bytes_logged.clear()
        self.actions.clear()
        self.step_marks.clear()
        self._dirty.clear()


class CoordinatedCheckpointer(RmaInterceptor):
    """Takes coordinated checkpoints through a pluggable placement store.

    Register it on the runtime with
    :meth:`~repro.rma.runtime.RmaRuntime.add_interceptor` so that failures
    propagate into the store automatically (lost copies are dropped the moment
    the failure is observed).

    Parameters
    ----------
    level:
        FDH level across which buddy/parity placement is spread; ``1`` means
        "a different compute node", higher levels survive larger failure
        domains (§5).
    store:
        A :class:`~repro.ft.stores.CheckpointStore` instance or registered
        name (``"memory"``, ``"disk"``, ``"parity"``); defaults to the
        in-memory buddy scheme.
    log:
        Optional :class:`ActionLog` driving demand checkpoints.
    demand_threshold_bytes:
        Per-rank logged volume above which :meth:`maybe_checkpoint` fires.
    """

    name = "coordinated-checkpointer"

    def __init__(
        self,
        *,
        level: int = 1,
        store: CheckpointStore | str | None = None,
        log: ActionLog | None = None,
        demand_threshold_bytes: int | None = None,
    ) -> None:
        self.level = level
        self.store = make_store(store)
        self.log = log
        self.demand_threshold_bytes = demand_threshold_bytes
        self._runtime: RmaRuntime | None = None

    def attach(self, runtime: "RmaRuntime") -> None:
        self._runtime = runtime
        self.store.bind(runtime, level=self.level)
        if self.log is not None:
            self.store.attach_log(self.log)

    @property
    def buddies(self) -> dict[int, int]:
        """Buddy assignment of the store, if its placement uses buddies."""
        return getattr(self.store, "buddies", {})

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    @property
    def runtime(self) -> "RmaRuntime":
        if self._runtime is None:
            raise CheckpointError("checkpointer is not attached to a runtime")
        return self._runtime

    def checkpoint(self, tag: Any = None) -> CheckpointVersion:
        """Take one coordinated checkpoint of every window at every rank.

        The checkpoint must start at an epoch boundary: per the Locks scheme
        (§3.1.2) no rank may hold a lock, and per §2.4 every rank must be
        alive (recovery must complete first; ranks excised by a degraded
        continuation are no longer members and do not count).
        """
        runtime = self.runtime
        cluster = runtime.cluster
        dead = [r for r in cluster.failed_ranks() if r not in runtime.excised]
        if dead:
            raise CheckpointError(
                f"cannot checkpoint while ranks {dead} are failed; recover first"
            )
        for rank in range(cluster.nprocs):
            if runtime.counters.holds_any_lock(rank):
                raise EpochError(
                    f"checkpoint must start at an epoch boundary, but rank "
                    f"{rank} holds a lock (LC={runtime.counters.lc(rank)})"
                )
        pending = runtime.pending_nb_ops()
        if pending:
            raise EpochError(
                f"checkpoint must start at an epoch boundary, but {pending} "
                f"nonblocking operations are issued and unflushed; complete "
                f"them (flush/unlock/gsync) before checkpointing"
            )
        # Coordination: agree to checkpoint (a barrier), then copy.  Ranks
        # excised by a degraded continuation are no longer members: they are
        # neither snapshotted nor used as copy holders.
        cluster.barrier()
        snapshots = {
            rank: {
                window.name: window.snapshot(rank)
                for window in runtime.windows.all()
            }
            for rank in range(cluster.nprocs)
            if rank not in runtime.excised
        }
        version = self.store.prepare(
            tag=tag,
            snapshots=snapshots,
            epoch_states=runtime.epochs.snapshot(),
            counter_states=runtime.counters.snapshot(),
        )
        # The closing barrier confirms every copy completed; only then does
        # the version become restorable and the log dispensable.  A failure
        # firing during the checkpoint aborts it without committing anything.
        cluster.barrier()
        self.store.commit(version)
        if self.log is not None:
            self.log.truncate()
        cluster.metrics.incr("ft.checkpoints")
        return version

    def maybe_checkpoint(self, tag: Any = None) -> CheckpointVersion | None:
        """Demand checkpoint: fire when the put/get log passed the threshold."""
        if self.log is None or self.demand_threshold_bytes is None:
            return None
        if self.log.max_logged_bytes() < self.demand_threshold_bytes:
            return None
        version = self.checkpoint(tag=tag)
        self.runtime.cluster.metrics.incr("ft.demand_checkpoints")
        return version

    # ------------------------------------------------------------------
    # Interceptor hooks
    # ------------------------------------------------------------------
    def on_failure_detected(self, rank: int) -> None:
        self.store.drop_rank(rank)
