"""In-memory checkpointing of window contents (§3.1, §6.2).

Checkpoints are *diskless*: every rank keeps a copy of its window contents in
its own memory **and** sends a second copy to a buddy rank chosen by
:func:`~repro.ft.groups.buddy_assignment` in a different failure domain.  A
copy survives exactly as long as the memory holding it does — when a rank
fails, its local copies and every buddy copy it was holding for others are
lost.  Restoring therefore works as long as no rank *and* its buddy die
together, which the topology-aware placement makes unlikely (§5).

Two triggers are supported:

* **Coordinated** checkpoints (§3.1): a collective
  :meth:`CoordinatedCheckpointer.checkpoint` taken at an epoch boundary; the
  Locks scheme's guard (§3.1.2) refuses to start while any rank holds a lock
  (``LC > 0``).
* **Demand** checkpoints (§6.2): an :class:`ActionLog` interceptor accumulates
  the put/get log; when the logged volume passes a threshold,
  :meth:`CoordinatedCheckpointer.maybe_checkpoint` takes a fresh checkpoint
  and truncates the log — bounding log growth exactly like the paper's
  demand checkpoints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.errors import CheckpointError, EpochError
from repro.ft.groups import buddy_assignment
from repro.rma.actions import CommAction
from repro.rma.interceptor import RmaInterceptor

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from repro.rma.runtime import RmaRuntime

__all__ = [
    "ActionLog",
    "CheckpointVersion",
    "InMemoryCheckpointStore",
    "CoordinatedCheckpointer",
]


class ActionLog(RmaInterceptor):
    """The put/get log of §6.2, kept at the origin of every action.

    The log observes the runtime's *completion stream*: ``after_comm`` fires
    when an operation completes (at the flush/unlock/gsync that closes its
    epoch, immediately for blocking calls), not when it is issued — so under
    a batching backend that reorders or coalesces execution, the log still
    records exactly the operations whose effects are part of the consistent
    state, and demand-checkpoint decisions stay correct.  Each completed
    communication action appends its determinant and payload size to the
    origin's log; the bookkeeping plus the local copy of put data is charged
    on the origin's clock as protocol overhead (the paper's logging cost).
    The per-rank logged volume drives demand checkpoints.
    """

    name = "action-log"

    def __init__(self) -> None:
        self._runtime: RmaRuntime | None = None
        #: Per-origin list of (determinant, nbytes) since the last truncation.
        self.entries: dict[int, list[tuple[tuple, int]]] = {}
        self.bytes_logged: dict[int, int] = {}

    def attach(self, runtime: "RmaRuntime") -> None:
        self._runtime = runtime

    def after_comm(self, action: CommAction) -> None:
        nbytes = action.nbytes
        self.entries.setdefault(action.src, []).append((action.determinant(), nbytes))
        self.bytes_logged[action.src] = self.bytes_logged.get(action.src, 0) + nbytes
        if self._runtime is not None:
            costs = self._runtime.cluster.costs
            overhead = costs.log_bookkeeping
            if action.is_put_like:
                overhead += costs.local_copy(nbytes)
            self._runtime.cluster.advance(action.src, overhead, kind="protocol")

    def on_respawn(self, rank: int) -> None:
        # A replacement process starts with an empty log (its memory is new).
        self.entries.pop(rank, None)
        self.bytes_logged.pop(rank, None)

    def max_logged_bytes(self) -> int:
        """Largest per-rank logged volume since the last truncation."""
        return max(self.bytes_logged.values(), default=0)

    def total_logged_bytes(self) -> int:
        """Sum of logged volume over all ranks."""
        return sum(self.bytes_logged.values())

    def truncate(self) -> None:
        """Drop the log (a fresh checkpoint makes replaying it unnecessary)."""
        self.entries.clear()
        self.bytes_logged.clear()


@dataclass
class CheckpointVersion:
    """One coordinated checkpoint: window contents of every rank, twice."""

    version: int
    tag: Any
    taken_at: float
    buddy_of: dict[int, int]
    #: Copy kept in the owner's own memory: ``owner -> window -> data``.
    local: dict[int, dict[str, np.ndarray]] = field(default_factory=dict)
    #: Copy held in the buddy's memory: ``owner -> window -> data``.
    remote: dict[int, dict[str, np.ndarray]] = field(default_factory=dict)
    #: Per-rank epoch state at checkpoint time (restored on rollback so
    #: survivors do not keep post-checkpoint epochs/pending operations).
    epoch_states: list | None = None
    #: Per-rank counter state (EC/GC/SC/GNC/LC and held locks) at checkpoint
    #: time; restoring it releases locks acquired after the checkpoint.
    counter_states: list | None = None

    def payload_for(self, owner: int) -> tuple[str, dict[str, np.ndarray]] | None:
        """The surviving copy of ``owner``'s windows: ``("local"|"buddy", data)``.

        ``None`` when both copies were lost (owner and its buddy both failed
        since the checkpoint was taken).
        """
        if owner in self.local:
            return ("local", self.local[owner])
        if owner in self.remote:
            return ("buddy", self.remote[owner])
        return None

    def drop_rank(self, rank: int) -> None:
        """Lose every copy stored in ``rank``'s memory (it failed)."""
        self.local.pop(rank, None)
        for owner, buddy in self.buddy_of.items():
            if buddy == rank:
                self.remote.pop(owner, None)

    def usable_for(self, ranks: list[int]) -> bool:
        """Whether every rank of ``ranks`` still has at least one copy."""
        return all(self.payload_for(rank) is not None for rank in ranks)

    def nbytes(self) -> int:
        """Total memory held by this version across all copies."""
        total = 0
        for copies in (self.local, self.remote):
            for windows in copies.values():
                total += sum(int(data.nbytes) for data in windows.values())
        return total


class InMemoryCheckpointStore:
    """All checkpoint versions currently held in the job's memory."""

    def __init__(self, keep_versions: int = 2) -> None:
        if keep_versions < 1:
            raise CheckpointError("the store must keep at least one version")
        self.keep_versions = keep_versions
        self.versions: list[CheckpointVersion] = []
        self._next_version = 0

    def commit(self, version: CheckpointVersion) -> CheckpointVersion:
        """Publish a fully-populated version; evict the oldest beyond the limit.

        Called only after the closing barrier confirmed that every rank
        completed its copies — a checkpoint interrupted by a failure is never
        committed.
        """
        version.version = self._next_version
        self._next_version += 1
        self.versions.append(version)
        while len(self.versions) > self.keep_versions:
            self.versions.pop(0)
        return version

    def latest(self) -> CheckpointVersion | None:
        """The newest version, complete or not."""
        return self.versions[-1] if self.versions else None

    def latest_usable(self, ranks: list[int]) -> CheckpointVersion | None:
        """The newest version with a surviving copy for every rank of ``ranks``."""
        for version in reversed(self.versions):
            if version.usable_for(ranks):
                return version
        return None

    def drop_rank(self, rank: int) -> None:
        """Propagate a rank failure to every stored version."""
        for version in self.versions:
            version.drop_rank(rank)

    def __len__(self) -> int:
        return len(self.versions)


class CoordinatedCheckpointer(RmaInterceptor):
    """Takes coordinated in-memory checkpoints with t-aware buddy placement.

    Register it on the runtime with
    :meth:`~repro.rma.runtime.RmaRuntime.add_interceptor` so that failures
    propagate into the store automatically (lost copies are dropped the moment
    the failure is observed).

    Parameters
    ----------
    level:
        FDH level across which buddies are spread; ``1`` means "a different
        compute node", higher levels survive larger failure domains (§5).
    log:
        Optional :class:`ActionLog` driving demand checkpoints.
    demand_threshold_bytes:
        Per-rank logged volume above which :meth:`maybe_checkpoint` fires.
    """

    name = "coordinated-checkpointer"

    def __init__(
        self,
        *,
        level: int = 1,
        store: InMemoryCheckpointStore | None = None,
        log: ActionLog | None = None,
        demand_threshold_bytes: int | None = None,
    ) -> None:
        self.level = level
        self.store = store or InMemoryCheckpointStore()
        self.log = log
        self.demand_threshold_bytes = demand_threshold_bytes
        self.buddies: dict[int, int] = {}
        self._runtime: RmaRuntime | None = None

    def attach(self, runtime: "RmaRuntime") -> None:
        self._runtime = runtime
        self.buddies = buddy_assignment(runtime.cluster.placement, self.level)

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    @property
    def runtime(self) -> "RmaRuntime":
        if self._runtime is None:
            raise CheckpointError("checkpointer is not attached to a runtime")
        return self._runtime

    def checkpoint(self, tag: Any = None) -> CheckpointVersion:
        """Take one coordinated checkpoint of every window at every rank.

        The checkpoint must start at an epoch boundary: per the Locks scheme
        (§3.1.2) no rank may hold a lock, and per §2.4 every rank must be
        alive (recovery must complete first).
        """
        runtime = self.runtime
        cluster = runtime.cluster
        dead = cluster.failed_ranks()
        if dead:
            raise CheckpointError(
                f"cannot checkpoint while ranks {dead} are failed; recover first"
            )
        for rank in range(cluster.nprocs):
            if runtime.counters.holds_any_lock(rank):
                raise EpochError(
                    f"checkpoint must start at an epoch boundary, but rank "
                    f"{rank} holds a lock (LC={runtime.counters.lc(rank)})"
                )
        pending = runtime.pending_nb_ops()
        if pending:
            raise EpochError(
                f"checkpoint must start at an epoch boundary, but {pending} "
                f"nonblocking operations are issued and unflushed; complete "
                f"them (flush/unlock/gsync) before checkpointing"
            )
        # Coordination: agree to checkpoint (a barrier), then copy.
        cluster.barrier()
        version = CheckpointVersion(
            version=-1, tag=tag, taken_at=cluster.elapsed(), buddy_of=dict(self.buddies)
        )
        costs = cluster.costs
        for rank in range(cluster.nprocs):
            buddy = self.buddies[rank]
            local_copy: dict[str, np.ndarray] = {}
            remote_copy: dict[str, np.ndarray] = {}
            copied_bytes = 0
            for window in runtime.windows.all():
                data = window.snapshot(rank)
                local_copy[window.name] = data
                remote_copy[window.name] = data.copy()
                copied_bytes += int(data.nbytes)
            version.local[rank] = local_copy
            version.remote[rank] = remote_copy
            # Local duplicate plus the transfer of the buddy copy.
            cluster.advance(rank, costs.local_copy(copied_bytes), kind="protocol")
            cluster.advance(rank, costs.remote_transfer(copied_bytes), kind="protocol")
            cluster.advance(buddy, costs.local_copy(copied_bytes), kind="protocol")
            cluster.metrics.incr("ft.checkpoint_bytes", 2 * copied_bytes, rank=rank)
        version.epoch_states = runtime.epochs.snapshot()
        version.counter_states = runtime.counters.snapshot()
        # The closing barrier confirms every copy completed; only then does
        # the version become restorable and the log dispensable.  A failure
        # firing during the checkpoint aborts it without committing anything.
        cluster.barrier()
        self.store.commit(version)
        if self.log is not None:
            self.log.truncate()
        cluster.metrics.incr("ft.checkpoints")
        return version

    def maybe_checkpoint(self, tag: Any = None) -> CheckpointVersion | None:
        """Demand checkpoint: fire when the put/get log passed the threshold."""
        if self.log is None or self.demand_threshold_bytes is None:
            return None
        if self.log.max_logged_bytes() < self.demand_threshold_bytes:
            return None
        version = self.checkpoint(tag=tag)
        self.runtime.cluster.metrics.incr("ft.demand_checkpoints")
        return version

    # ------------------------------------------------------------------
    # Interceptor hooks
    # ------------------------------------------------------------------
    def on_failure_detected(self, rank: int) -> None:
        self.store.drop_rank(rank)
