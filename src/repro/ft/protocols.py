"""Pluggable recovery protocols — *how* a job survives a failure (§4.2–§4.3, §7).

The paper's deepest protocol point is that recovery is a policy choice, not a
fixed mechanism.  A :class:`RecoveryProtocol` receives control when the
session observes a :class:`~repro.errors.ProcessFailedError` and decides what
"recovered" means:

* :class:`GlobalRollback` (``"global"``) — the classic coordinated rollback
  (§4.2–§4.3): respawn the failed ranks, restore **every** rank from the
  newest checkpoint usable for all, and re-execute from the checkpoint's
  step.  Simple and always applicable; survivors lose their post-checkpoint
  progress.
* :class:`LocalizedReplay` (``"localized"``) — log-based recovery (§7): only
  the failed ranks restore from the newest checkpoint; survivors keep their
  state.  The deterministic re-execution from the checkpoint step then runs
  under a :class:`~repro.rma.replay.ReplayCursor` — completed actions found
  in the put/get log are suppressed against survivors (no double-applied
  combining puts, the paper's ``M`` flag problem), re-applied only to the
  restoring ranks' windows, and gets are served their logged data.  Strictly
  fewer bytes move than under a global rollback; when the log cannot reach
  back to a version usable for the failed ranks (a rank lost together with
  its copies), the protocol *falls back* to the coordinated checkpoint,
  exactly as §3.2.3 prescribes.
* :class:`ContinueDegraded` (``"degraded"``) — best-effort continuation (cf.
  Moreno & Ofria, arXiv:2211.10897): failed ranks are *excised* rather than
  respawned.  Survivors see a shrunk membership — operations targeting an
  excised rank are dropped, reads of its windows observe zeros — and the job
  keeps running without any rollback at all.  No bit-identity is promised;
  availability is.

Protocols are resolved by name through :data:`PROTOCOLS` (the same convention
as ``backend="sim"|"vector"``) and are orthogonal to the
:class:`~repro.ft.stores.CheckpointStore` they restore from.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any

from repro.errors import CatastrophicFailure, RecoveryError
from repro.ft.stores import CheckpointStore, CheckpointVersion, RestorePayload
from repro.registry import register_kind, resolve_component
from repro.rma.replay import ReplayCursor

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from repro.ft.recovery import RecoveryManager
    from repro.rma.runtime import RmaRuntime

__all__ = [
    "RecoveryOutcome",
    "RecoveryProtocol",
    "GlobalRollback",
    "LocalizedReplay",
    "ContinueDegraded",
    "PROTOCOLS",
    "make_protocol",
]


@dataclass(frozen=True)
class RecoveryOutcome:
    """What a recovery protocol did, and where the session should resume.

    ``kind`` is ``"rollback"`` (resume at the restored checkpoint's ``tag``),
    ``"replay"`` (resume at ``tag`` too, but under an active replay cursor so
    already-completed work is suppressed), or ``"degraded"`` (no rollback —
    re-execute the aborted step with the shrunk membership; ``tag`` is
    ``None``).
    """

    kind: str
    tag: Any
    #: Ranks that were failed when this recovery ran.
    failed: tuple[int, ...]
    #: Bytes restored from checkpoint copies into window memory.
    restored_bytes: int
    #: Name of the protocol that produced the outcome.
    protocol: str
    #: True when a localized recovery had to fall back to a global rollback.
    fallback: bool = False


class RecoveryProtocol(abc.ABC):
    """Strategy invoked by the :class:`~repro.ft.recovery.RecoveryManager`."""

    #: Registry name of the protocol ("global", "localized", "degraded", ...).
    name: str = "abstract"

    #: Whether discarding issued-but-uncompleted operations must leave window
    #: memory untouched.  Protocols that keep survivor state need this; an
    #: eagerly-writing backend then captures undo data at issue time.
    needs_clean_discard: bool = False

    #: Whether the protocol replays the put/get log and therefore requires an
    #: :class:`~repro.ft.checkpoint.ActionLog` that *retains* completed
    #: actions (not just their byte counts).  :func:`~repro.ft.stack.
    #: build_ft_stack` forces such a log on when this is set.
    needs_log: bool = False

    @abc.abstractmethod
    def recover(self, manager: "RecoveryManager") -> RecoveryOutcome:
        """Handle all currently failed ranks; return where to resume.

        Raises
        ------
        RecoveryError
            If no rank is failed (nothing to recover) or the protocol's
            prerequisites are unmet (e.g. no checkpoint was ever taken).
        CatastrophicFailure
            If the job cannot be recovered under this protocol at all.
        """

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _require_failed(runtime: "RmaRuntime") -> list[int]:
        """Observe pending failures; return the failed ranks or raise."""
        runtime.observe_failures()
        failed = [
            r for r in runtime.cluster.failed_ranks() if r not in runtime.excised
        ]
        if not failed:
            raise RecoveryError("recover() called but no rank is failed")
        return failed

    @staticmethod
    def _restore_rank(
        runtime: "RmaRuntime",
        store: CheckpointStore,
        version: CheckpointVersion,
        rank: int,
    ) -> RestorePayload:
        """Restore one rank's windows from ``version``, charging the cost."""
        payload = store.fetch(version, rank)
        if payload is None:  # pragma: no cover - callers check availability
            raise CatastrophicFailure(f"no surviving copy for rank {rank}")
        cluster = runtime.cluster
        for name, data in payload.windows.items():
            runtime.windows.get(name).restore(rank, data)
        cluster.advance(rank, payload.seconds, kind="protocol")
        for peer in payload.peers:
            cluster.advance(peer, payload.seconds, kind="protocol")
        cluster.metrics.incr("ft.restored_bytes", payload.nbytes, rank=rank)
        return payload

    @staticmethod
    def _respawn(runtime: "RmaRuntime", ranks: list[int]) -> None:
        """Respawn ``ranks``: fresh processes, reallocated buffers (§4.3)."""
        for rank in ranks:
            runtime.cluster.respawn_rank(rank)
            # Through the backend hook (not the registry directly): storage
            # ownership lives with the backend, and a custom one may rebuild
            # per-rank state of its own on respawn.
            runtime.backend.reallocate_rank(rank)
            runtime.notify_respawn(rank)


class GlobalRollback(RecoveryProtocol):
    """Coordinated rollback of every rank (§4.2–§4.3), the historical behavior.

    1. every failed rank is **respawned** — the batch system provides a
       replacement process that inherits the rank number (§4.3);
    2. the replacement's invalidated window buffers are **reallocated**;
    3. every rank — replacements *and* survivors — **restores** its window
       contents from the newest checkpoint version the store can still serve
       for all ranks; windows *and* protocol state (epochs, counters, locks)
       roll back together, so the re-executed program performs exactly the
       same transitions as the first execution;
    4. a closing barrier re-synchronizes the job, and the session resumes
       from the restored step (the checkpoint's ``tag``).

    If some rank cannot be served by any stored version (it failed together
    with its buddy and no older version helps),
    :class:`~repro.errors.CatastrophicFailure` is raised — the paper's
    restart case (§3.3).
    """

    name = "global"

    def recover(self, manager: "RecoveryManager") -> RecoveryOutcome:
        runtime = manager.runtime
        cluster = runtime.cluster
        store = manager.store
        failed = self._require_failed(runtime)
        if len(store) == 0:
            raise RecoveryError("no checkpoint has been taken; cannot recover")
        all_ranks = list(range(cluster.nprocs))
        version = store.latest_usable(all_ranks)
        if version is None:
            raise CatastrophicFailure(
                f"ranks {failed} failed and no stored checkpoint retains a "
                f"copy for every rank; the job must restart"
            )
        # Operations issued after the checkpoint but never completed are part
        # of the execution being undone: drop them from the backend's queues
        # (and poison their handles) before restoring, or a later flush would
        # replay them on top of the rolled-back windows.
        runtime.discard_pending()
        runtime.interceptors.on_recovery_start(failed, localized=False)
        self._respawn(runtime, failed)
        if version.epoch_states is not None:
            runtime.epochs.restore(version.epoch_states)
        if version.counter_states is not None:
            runtime.counters.restore(version.counter_states)
        restored_bytes = 0
        for rank in all_ranks:
            restored_bytes += self._restore_rank(runtime, store, version, rank).nbytes
        # The rolled-back actions' log entries describe execution that is
        # being undone; the restored checkpoint starts with an empty log.
        if manager.log is not None:
            manager.log.truncate()
        runtime.interceptors.on_recovery_complete(failed)
        cluster.barrier()
        cluster.metrics.incr("ft.recoveries")
        for rank in failed:
            cluster.metrics.incr("ft.recovered_ranks", rank=rank)
        return RecoveryOutcome(
            kind="rollback",
            tag=version.tag,
            failed=tuple(failed),
            restored_bytes=restored_bytes,
            protocol=self.name,
        )


class LocalizedReplay(RecoveryProtocol):
    """Log-based recovery (§7): restore only the failed ranks, replay the log.

    Requires the put/get :class:`~repro.ft.checkpoint.ActionLog` — the log is
    truncated at every committed checkpoint, so together the *newest* version
    and the log describe exactly the execution since it.  The failed ranks'
    windows are restored from that version; survivors are untouched (their
    uncommitted operations are discarded effect-free).  The session then
    re-executes the deterministic step loop from the checkpoint's step under
    a :class:`~repro.rma.replay.ReplayCursor`: survivors re-derive state they
    already hold (completed actions are suppressed, logged get data is
    served), while the restoring ranks genuinely re-execute — reconstructing
    their lost local computation — and receive the logged writes that
    targeted them, in issue order.

    When the newest version cannot serve one of the failed ranks (its copies
    died with it), the log cannot bridge from any older version and the
    protocol falls back to :class:`GlobalRollback` — the paper's fallback to
    the last coordinated checkpoint (§3.2.3), surfaced in the outcome's
    ``fallback`` flag.
    """

    name = "localized"
    needs_clean_discard = True
    needs_log = True

    def recover(self, manager: "RecoveryManager") -> RecoveryOutcome:
        runtime = manager.runtime
        cluster = runtime.cluster
        store = manager.store
        log = manager.log
        # A failure can strike *during* an earlier replay; its partially
        # reconstructed ranks must be restored afresh along with the newly
        # failed ones, under a fresh cursor over the (unchanged) log.
        interrupted = runtime.end_replay()
        prior = set(interrupted.restoring) if interrupted is not None else set()
        failed = self._require_failed(runtime)
        if len(store) == 0:
            raise RecoveryError("no checkpoint has been taken; cannot recover")
        restoring = sorted(set(failed) | prior)
        version = store.latest()
        assert version is not None
        replayable = log is not None and log.retain_actions
        if not replayable or not all(store.available(version, r) for r in restoring):
            # The log only reaches back to the newest committed version; if
            # that version cannot serve a failed rank, localized replay is
            # impossible — fall back to the coordinated checkpoint (§3.2.3).
            cluster.metrics.incr("ft.recovery_fallbacks")
            outcome = GlobalRollback().recover(manager)
            return replace(outcome, protocol=self.name, fallback=True)
        runtime.discard_pending()
        if interrupted is not None:
            # The interrupted replay left survivor windows as scratch space;
            # put their crash-time contents back before snapshotting anew.
            interrupted.restore_survivors(runtime)
        runtime.interceptors.on_recovery_start(restoring, localized=True)
        self._respawn(runtime, failed)
        restored_bytes = 0
        for rank in restoring:
            restored_bytes += self._restore_rank(runtime, store, version, rank).nbytes
        # Survivors keep epochs and window state, but locks acquired inside
        # the aborted step would deadlock its re-execution: release them.
        for rank in range(cluster.nprocs):
            runtime.counters.release_all_locks(rank)
        runtime.interceptors.on_recovery_complete(restoring)
        survivor_snapshot = {
            rank: {
                window.name: window.snapshot(rank)
                for window in runtime.windows.all()
            }
            for rank in range(cluster.nprocs)
            if rank not in restoring
        }
        # Install the cursor *before* the closing barrier: if the barrier
        # observes yet another failure, the retry finds the cursor active and
        # folds its restoring set into the next attempt.
        runtime.begin_replay(
            ReplayCursor(
                list(log.actions),
                set(restoring),
                partial_start=log.last_mark(),
                survivor_snapshot=survivor_snapshot,
            )
        )
        cluster.barrier()
        cluster.metrics.incr("ft.recoveries")
        cluster.metrics.incr("ft.localized_recoveries")
        for rank in failed:
            cluster.metrics.incr("ft.recovered_ranks", rank=rank)
        return RecoveryOutcome(
            kind="replay",
            tag=version.tag,
            failed=tuple(failed),
            restored_bytes=restored_bytes,
            protocol=self.name,
        )


class ContinueDegraded(RecoveryProtocol):
    """Best-effort continuation: excise the failed ranks, keep running.

    No respawn, no rollback, no checkpoint required.  Failed ranks are
    removed from the membership (:meth:`~repro.rma.runtime.RmaRuntime.
    excise_rank`): their window buffers are reallocated to zeros so
    survivors' reads stay defined, operations targeting them are silently
    dropped, and the cooperative scheduler stops running their kernels.  The
    aborted step is re-executed by the survivors alone.  This is the
    best-effort communication mode of Moreno & Ofria (arXiv:2211.10897):
    the result is *not* bit-identical to a failure-free run — availability
    and forward progress are traded for precision.
    """

    name = "degraded"
    needs_clean_discard = True

    def recover(self, manager: "RecoveryManager") -> RecoveryOutcome:
        runtime = manager.runtime
        cluster = runtime.cluster
        failed = self._require_failed(runtime)
        runtime.discard_pending()
        runtime.interceptors.on_recovery_start(failed, localized=False)
        for rank in failed:
            runtime.excise_rank(rank)
        # Locks held inside the aborted step — by survivors or the excised
        # ranks themselves — would wedge the re-execution: release them.
        for rank in range(cluster.nprocs):
            runtime.counters.release_all_locks(rank)
        runtime.interceptors.on_recovery_complete(failed)
        cluster.barrier()
        cluster.metrics.incr("ft.recoveries")
        cluster.metrics.incr("ft.degraded_continuations")
        return RecoveryOutcome(
            kind="degraded",
            tag=None,
            failed=tuple(failed),
            restored_bytes=0,
            protocol=self.name,
        )


#: Registry of constructable recovery protocols, by name.
PROTOCOLS: dict[str, type[RecoveryProtocol]] = {
    GlobalRollback.name: GlobalRollback,
    LocalizedReplay.name: LocalizedReplay,
    ContinueDegraded.name: ContinueDegraded,
}
register_kind("recovery", PROTOCOLS)


def make_protocol(
    spec: "str | RecoveryProtocol | None",
    *,
    error: type[Exception] = RecoveryError,
) -> RecoveryProtocol:
    """Resolve a protocol specification into a fresh (or given) instance.

    ``None`` means the default (``"global"``); a string is looked up in
    :data:`PROTOCOLS` (an unknown name raises ``error`` listing the
    registered choices); a :class:`RecoveryProtocol` instance passes through.
    """
    return resolve_component(
        "recovery", spec, PROTOCOLS, RecoveryProtocol, error,
        default=GlobalRollback.name,
    )
