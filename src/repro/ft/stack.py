"""Policy-driven construction of the fault-tolerance stack.

Hand-wiring the ftRMA protocol takes four objects in the right order: an
:class:`~repro.ft.checkpoint.ActionLog` interceptor, a
:class:`~repro.ft.stores.CheckpointStore` placement strategy, a
:class:`~repro.ft.checkpoint.CoordinatedCheckpointer` registered *after* the
log, and a :class:`~repro.ft.recovery.RecoveryManager` bound to both plus a
:class:`~repro.ft.protocols.RecoveryProtocol` strategy.
:func:`build_ft_stack` performs that wiring once, from plain keyword
parameters, so higher layers (notably the declarative
:class:`~repro.api.policy.FaultTolerancePolicy` of :mod:`repro.api`) can
install the whole protocol with one call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.ft.checkpoint import ActionLog, CoordinatedCheckpointer
from repro.ft.protocols import RecoveryProtocol, make_protocol
from repro.ft.recovery import RecoveryManager
from repro.ft.stores import CheckpointStore, make_store
from repro.qos.delivery import DeliveryMode, make_delivery

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from repro.rma.runtime import RmaRuntime

__all__ = ["FtStack", "build_ft_stack"]


@dataclass
class FtStack:
    """The fully-wired fault-tolerance protocol of one job."""

    #: Put/get log driving demand checkpoints; ``None`` when logging is off.
    log: ActionLog | None
    checkpointer: CoordinatedCheckpointer
    recovery: RecoveryManager
    #: Delivery mode installed on the runtime (reliable unless declared).
    delivery: DeliveryMode

    @property
    def store(self) -> CheckpointStore:
        """The checkpoint store shared by checkpointer and recovery."""
        return self.checkpointer.store

    @property
    def protocol(self) -> RecoveryProtocol:
        """The recovery protocol strategy of this stack."""
        return self.recovery.protocol

    def uninstall(self, runtime: "RmaRuntime") -> None:
        """Fully detach the stack from ``runtime``.  Idempotent.

        Removes the interceptors, closes the store (releasing scratch
        directories and the like), drops undo capture from the backend,
        uninstalls the delivery mode and detaches the recovery manager, so
        nothing in the stack keeps a live reference into a runtime it no
        longer observes.  The store close runs even when an earlier teardown
        step raises: a leaked scratch directory outlives the process, a
        dangling interceptor does not.
        """
        try:
            if self.log is not None:
                runtime.remove_interceptor(self.log)
            runtime.remove_interceptor(self.checkpointer)
            runtime.backend.set_capture_undo(False)
            runtime.set_delivery(None)
        finally:
            try:
                self.checkpointer.store.close()
            finally:
                self.recovery.detach()


def build_ft_stack(
    runtime: "RmaRuntime",
    *,
    buddy_level: int = 1,
    demand_threshold_bytes: int | None = None,
    keep_versions: int = 2,
    log_actions: bool = True,
    store: CheckpointStore | str | None = None,
    recovery: RecoveryProtocol | str | None = None,
    delivery: DeliveryMode | str | None = None,
) -> FtStack:
    """Install the ftRMA protocol on ``runtime`` and return its pieces.

    Parameters
    ----------
    buddy_level:
        FDH level across which checkpoint copies are spread (§5).
    demand_threshold_bytes:
        Per-rank logged volume that triggers a demand checkpoint (§6.2);
        ``None`` disables demand checkpoints.
    keep_versions:
        How many committed checkpoint versions the store retains (ignored
        when a ready store instance is given — its own configuration wins).
    log_actions:
        Whether to install the put/get :class:`ActionLog`.  Forced on when
        ``demand_threshold_bytes`` is set (the threshold is measured on the
        log) or when the recovery protocol is the log-based
        :class:`~repro.ft.protocols.LocalizedReplay` (the log is what it
        replays).
    store:
        Checkpoint placement: ``"memory"`` (default; local + buddy copies),
        ``"disk"`` (spill to a directory), ``"parity"`` (XOR stripe across
        t-aware groups), or a ready
        :class:`~repro.ft.stores.CheckpointStore` instance.
    recovery:
        Recovery strategy: ``"global"`` (default; coordinated rollback of
        every rank), ``"localized"`` (restore only the failed ranks, replay
        the log), ``"degraded"`` (excise failed ranks, continue
        best-effort), or a ready
        :class:`~repro.ft.protocols.RecoveryProtocol` instance.
    delivery:
        Delivery mode under failure: ``"reliable"`` (default; any touch of a
        failed rank raises and a recovery protocol runs), ``"best_effort"``
        (failed ranks are suspended — operations toward them drop or serve
        stale checkpoint data, the session repairs them at step boundaries),
        or a ready :class:`~repro.qos.delivery.DeliveryMode` instance.
    """
    protocol = make_protocol(recovery)
    log: ActionLog | None = None
    if log_actions or demand_threshold_bytes is not None or protocol.needs_log:
        # Retaining completed actions (payloads included) is only needed by
        # log-replaying protocols; everyone else keeps byte counts only, so
        # the log's memory stays bounded between truncations.
        log = ActionLog(retain_actions=protocol.needs_log)
        runtime.add_interceptor(log)
    checkpointer = CoordinatedCheckpointer(
        level=buddy_level,
        store=make_store(store, keep_versions=keep_versions),
        log=log,
        demand_threshold_bytes=demand_threshold_bytes,
    )
    runtime.add_interceptor(checkpointer)
    manager = RecoveryManager(runtime, checkpointer, protocol)
    mode = make_delivery(delivery)
    mode.bind(runtime, checkpointer.store)
    runtime.set_delivery(mode)
    if mode.needs_clean_discard:
        # A tolerant mode discards in-flight operations toward freshly-failed
        # ranks effect-free; eagerly-writing backends need undo capture for
        # that, exactly as survivor-preserving recovery protocols do.
        runtime.backend.set_capture_undo(True)
    return FtStack(
        log=log,
        checkpointer=checkpointer,
        recovery=manager,
        delivery=mode,
    )
