"""Policy-driven construction of the fault-tolerance stack.

Hand-wiring the ftRMA protocol takes four objects in the right order: an
:class:`~repro.ft.checkpoint.ActionLog` interceptor, an
:class:`~repro.ft.checkpoint.InMemoryCheckpointStore`, a
:class:`~repro.ft.checkpoint.CoordinatedCheckpointer` registered *after* the
log, and a :class:`~repro.ft.recovery.RecoveryManager` bound to both.
:func:`build_ft_stack` performs that wiring once, from plain keyword
parameters, so higher layers (notably the declarative
:class:`~repro.api.policy.FaultTolerancePolicy` of :mod:`repro.api`) can
install the whole protocol with one call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.ft.checkpoint import (
    ActionLog,
    CoordinatedCheckpointer,
    InMemoryCheckpointStore,
)
from repro.ft.recovery import RecoveryManager

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from repro.rma.runtime import RmaRuntime

__all__ = ["FtStack", "build_ft_stack"]


@dataclass
class FtStack:
    """The fully-wired fault-tolerance protocol of one job."""

    #: Put/get log driving demand checkpoints; ``None`` when logging is off.
    log: ActionLog | None
    checkpointer: CoordinatedCheckpointer
    recovery: RecoveryManager

    @property
    def store(self) -> InMemoryCheckpointStore:
        """The in-memory checkpoint store shared by checkpointer and recovery."""
        return self.checkpointer.store

    def uninstall(self, runtime: "RmaRuntime") -> None:
        """Remove the stack's interceptors from ``runtime``."""
        if self.log is not None:
            runtime.remove_interceptor(self.log)
        runtime.remove_interceptor(self.checkpointer)


def build_ft_stack(
    runtime: "RmaRuntime",
    *,
    buddy_level: int = 1,
    demand_threshold_bytes: int | None = None,
    keep_versions: int = 2,
    log_actions: bool = True,
) -> FtStack:
    """Install the ftRMA protocol on ``runtime`` and return its pieces.

    Parameters
    ----------
    buddy_level:
        FDH level across which checkpoint buddies are spread (§5).
    demand_threshold_bytes:
        Per-rank logged volume that triggers a demand checkpoint (§6.2);
        ``None`` disables demand checkpoints.
    keep_versions:
        How many committed checkpoint versions the store retains.
    log_actions:
        Whether to install the put/get :class:`ActionLog`.  Forced on when
        ``demand_threshold_bytes`` is set (the threshold is measured on the
        log).
    """
    log: ActionLog | None = None
    if log_actions or demand_threshold_bytes is not None:
        log = ActionLog()
        runtime.add_interceptor(log)
    checkpointer = CoordinatedCheckpointer(
        level=buddy_level,
        store=InMemoryCheckpointStore(keep_versions=keep_versions),
        log=log,
        demand_threshold_bytes=demand_threshold_bytes,
    )
    runtime.add_interceptor(checkpointer)
    return FtStack(
        log=log,
        checkpointer=checkpointer,
        recovery=RecoveryManager(runtime, checkpointer),
    )
