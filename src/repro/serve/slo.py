"""SLO accounting: window segmentation and the per-window latency report.

:class:`WindowTracker` is the serving layer's :class:`~repro.api.session.SessionObserver`:
it collects the **checkpoint windows** (the new ``on_checkpoint`` hook) and
the **recovery windows** (failure detected → the crash-aborted step completes
again, the same service-restored marker chaos MTTR uses) of one run, plus the
injector's kill records.  :func:`build_slo_report` then segments every
request by the window containing its *completion* instant — the moment the
client got its answer — and reduces each segment to the numbers an SLO is
written in: p50/p95/p99 latency (shared nearest-rank estimator,
:func:`repro.stats.latency_percentiles`), throughput, and error/stale-read
rate.  All timestamps are virtual, so the report is byte-identical across
re-runs and backends.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.api.session import SessionObserver
from repro.serve.service import STATUS_OK
from repro.stats import latency_percentiles

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from repro.api.session import Job
    from repro.ft.inject import FiredKill

__all__ = ["WindowTracker", "SEGMENTS", "build_slo_report"]

#: Window segments a request can complete in (the report's row keys).
SEGMENT_STEADY = "steady"
SEGMENT_CHECKPOINT = "checkpoint"
SEGMENT_RECOVERY = "recovery"
SEGMENTS = (SEGMENT_STEADY, SEGMENT_CHECKPOINT, SEGMENT_RECOVERY)


class WindowTracker(SessionObserver):
    """Records the checkpoint/recovery windows of one serving run."""

    def __init__(self) -> None:
        #: Committed checkpoint spans: ``(t_start, t_end, step, demand)``.
        self.checkpoint_windows: list[tuple[float, float, int, bool]] = []
        #: Closed outage spans: ``(detected_t, restored_t)``.
        self.recovery_windows: list[tuple[float, float]] = []
        #: Injector records: one dict per planned kill (fired or skipped).
        self.kills: list[dict] = []
        self.recoveries = 0
        self._job: Job | None = None
        self._outage: dict | None = None

    # ------------------------------------------------------------------
    def bind(self, job: "Job") -> None:
        """Attach to ``job``'s cluster for kill timestamps."""
        self._job = job

    def consume(self, event: dict) -> None:
        """Trace-bus subscriber: drive the tracker from a job's tracer.

        The serve engine wires this via ``tracer.subscribe(tracker.consume)``
        instead of registering the tracker as its own observer/listener
        stack.  Timestamps come from the events themselves — the tracer
        stamps the same ``cluster.elapsed()`` the direct hooks read — so the
        windows and kill records match the pre-bus wiring exactly.  Event
        types outside the tracker's vocabulary are ignored.
        """
        kind = event["type"]
        t = event["t"]
        if kind == "checkpoint_committed":
            self.on_checkpoint(
                event["step"], event["t_start"], event["t_end"], event["demand"]
            )
        elif kind == "failure_detected":
            self.on_failure_detected(event["rank"], event["step"], t)
        elif kind == "recovery_completed":
            self.on_recovery_completed(event["resume_step"], t)
        elif kind == "step_completed":
            self.on_step_completed(event["step"], t)
        elif kind == "kill_fired":
            self._record_kill(
                t,
                rank=event["rank"],
                kind=event["kind"],
                after_ops=event["after_ops"],
                victims=list(event["victims"]),
                skipped=False,
                real=bool(event.get("rt", {}).get("real", False)),
            )
        elif kind == "kill_skipped":
            self._record_kill(
                t,
                rank=event["rank"],
                kind=event["kind"],
                after_ops=event["after_ops"],
                victims=[],
                skipped=True,
                real=False,
            )

    def on_kill(self, record: "FiredKill") -> None:
        """Injector listener: timestamp every planned kill as it resolves."""
        assert self._job is not None, "tracker used before bind(job)"
        self._record_kill(
            self._job.cluster.elapsed(),
            rank=record.event.rank,
            kind=record.event.kind.value,
            after_ops=record.event.after_ops,
            victims=list(record.victims),
            skipped=record.skipped,
            real=record.real,
        )

    def _record_kill(
        self,
        t: float,
        *,
        rank: int,
        kind: str,
        after_ops: int,
        victims: list[int],
        skipped: bool,
        real: bool,
    ) -> None:
        self.kills.append(
            {
                "t": t,
                "rank": rank,
                "kind": kind,
                "after_ops": after_ops,
                "victims": victims,
                "skipped": skipped,
                "real": real,
            }
        )

    # ------------------------------------------------------------------
    # Session observer hooks
    # ------------------------------------------------------------------
    def on_checkpoint(self, step: int, t_start: float, t_end: float, demand: bool) -> None:
        self.checkpoint_windows.append((t_start, t_end, step, demand))

    def on_failure_detected(self, rank: int, step: int, t: float) -> None:
        if self._outage is None:
            self._outage = {"detected_t": t, "crash_step": step}
        else:
            # A further failure during recovery extends the same outage; the
            # service is restored only once the *latest* aborted step
            # completes again.
            self._outage["crash_step"] = max(self._outage["crash_step"], step)

    def on_recovery_completed(self, resume_step: int, t: float) -> None:
        self.recoveries += 1

    def on_step_completed(self, step: int, t: float) -> None:
        outage = self._outage
        if outage is not None and step >= outage["crash_step"]:
            self.recovery_windows.append((outage["detected_t"], t))
            self._outage = None

    # ------------------------------------------------------------------
    def finish(self, t: float) -> None:
        """Close the books at the run's final virtual time ``t``.

        An outage still open (the run aborted, or a degraded continuation
        never re-completed the crash step) counts until the end — consistent
        with how chaos availability prices open outages.
        """
        if self._outage is not None:
            self.recovery_windows.append((self._outage["detected_t"], t))
            self._outage = None

    def segment_of(self, t: float) -> str:
        """The segment the instant ``t`` belongs to (recovery wins)."""
        for t0, t1 in self.recovery_windows:
            if t0 <= t <= t1:
                return SEGMENT_RECOVERY
        for t0, t1, _step, _demand in self.checkpoint_windows:
            if t0 <= t <= t1:
                return SEGMENT_CHECKPOINT
        return SEGMENT_STEADY

    def segment_seconds(self, total_s: float) -> dict[str, float]:
        """Virtual seconds spent in each segment (recovery overlap wins)."""
        recovery = sum(t1 - t0 for t0, t1 in self.recovery_windows)
        checkpoint = sum(t1 - t0 for t0, t1, _s, _d in self.checkpoint_windows)
        steady = max(total_s - recovery - checkpoint, 0.0)
        return {
            SEGMENT_STEADY: steady,
            SEGMENT_CHECKPOINT: checkpoint,
            SEGMENT_RECOVERY: recovery,
        }


# ----------------------------------------------------------------------
# The report reducer
# ----------------------------------------------------------------------
def _reduce(rows: list[dict], window_s: float | None) -> dict:
    """One segment's SLO numbers from its request rows."""
    completed = [r for r in rows if r["completion_t"] is not None]
    served = sum(1 for r in rows if r["status"] == STATUS_OK)
    errors = len(rows) - served
    latencies = [r["latency_s"] for r in completed]
    pcts = latency_percentiles(latencies)
    return {
        "requests": len(rows),
        "served": served,
        "errors": errors,
        "error_rate": (errors / len(rows)) if rows else None,
        "latency_ms": (
            {key: value * 1e3 for key, value in pcts.items()} if pcts else None
        ),
        "throughput_rps": (
            len(completed) / window_s if window_s and window_s > 0 else None
        ),
        "window_s": window_s,
    }


def build_slo_report(rows: list[dict], tracker: WindowTracker, total_s: float) -> dict:
    """Reduce per-request rows to the segmented SLO document.

    ``rows`` carry ``completion_t`` (``None`` for unserved requests),
    ``latency_s``, ``status`` and ``segment`` — the engine assembles them
    from the service's records and stamps the segment via
    :meth:`WindowTracker.segment_of`.  The report holds one entry per
    segment plus an ``overall`` rollup; empty segments report ``None``
    percentiles, never NaN.
    """
    seconds = tracker.segment_seconds(total_s)
    by_segment: dict[str, list[dict]] = {segment: [] for segment in SEGMENTS}
    for row in rows:
        by_segment[row["segment"]].append(row)
    report = {
        segment: _reduce(by_segment[segment], seconds[segment])
        for segment in SEGMENTS
    }
    report["overall"] = _reduce(rows, total_s if total_s > 0 else None)
    return report
