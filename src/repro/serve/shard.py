"""Key placement: hashing client keys over rank-owned window regions.

A :class:`ShardMap` is the service's only notion of data placement: every
rank owns one shard — a contiguous region of ``slots`` elements of the
shared ``"kv"`` window — and a client key is placed by a multiplicative
(Fibonacci) hash over the global slot space.  Hashing, rather than the
``key // slots`` split the :class:`~repro.study.workloads.KvUpdate` kernel
uses, is what makes a skewed key distribution serveable: Zipf traffic
concentrates on low key ids, and the hash scatters those hot keys across
*all* shards instead of melting the rank that owns the low slots.

The map is a pure function of ``(nshards, slots)`` — no state, no RNG — so
every frontend rank, the request generator and the report reducer all agree
on placement without communicating, and placement is identical across
backends and re-runs by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ServeError

__all__ = ["ShardMap"]

#: Knuth's multiplicative hash constant (2^32 / phi), coprime to 2^32 — a
#: full-period scatter of consecutive key ids across the slot space.
_FIBONACCI_MULT = 2654435761


@dataclass(frozen=True)
class ShardMap:
    """Placement of client keys over ``nshards`` rank-owned shards.

    ``locate(key)`` returns ``(owner_rank, slot_offset)``; distinct keys may
    share a slot (the table is a bucketed accumulator, exactly like the GUPS
    kernel it grew out of), but one key always lands on one slot.
    """

    #: Number of shards — one per rank of the serving job.
    nshards: int
    #: Slots (window elements) each shard owns.
    slots: int

    def __post_init__(self) -> None:
        if self.nshards < 1 or self.slots < 1:
            raise ServeError("a shard map needs nshards >= 1 and slots >= 1")

    @property
    def total_slots(self) -> int:
        """Global slot count: ``nshards * slots``."""
        return self.nshards * self.slots

    def locate(self, key: int) -> tuple[int, int]:
        """``(owner_rank, offset)`` of ``key`` — pure, stateless placement."""
        if key < 0:
            raise ServeError(f"keys are non-negative integers, got {key}")
        slot = (key * _FIBONACCI_MULT) % self.total_slots
        return divmod(slot, self.slots)

    def owner(self, key: int) -> int:
        """The rank whose shard serves ``key``."""
        return self.locate(key)[0]
