"""``python -m repro.serve`` — sharded KV service under failures, SLO report.

Examples::

    # The default comparison: one seeded NODE_KILL against all three
    # recovery protocols on identical traffic, SLO table on stdout:
    python -m repro.serve

    # The same grid on the real-process backend too, with the canonical
    # request log and JSON report written out:
    python -m repro.serve --backends sim,proc \\
        --requests requests.jsonl --output serve.json

    # The CI gate: quick smoke, schema-validated log, baseline comparison:
    python -m repro.serve --quick --backends sim,proc \\
        --check-baseline benchmarks/BENCH_serve_baseline.json

    # What can I put on each axis?
    python -m repro.serve --list

Exit status 1 when a comparison invariant is violated or the baseline gate
fails.
"""

from __future__ import annotations

import argparse
import json

from repro.cli import (
    add_common_arguments,
    add_report_arguments,
    csv,
    handle_list,
    run_gates,
    trace_run,
    write_outputs,
)
from repro.registry import available
from repro.serve.engine import ServeSpec, run_slo_comparison
from repro.serve.report import (
    check_against_baseline,
    check_serve_invariants,
    render_markdown,
    report_json,
    write_requests,
)

__all__ = ["main"]


def quick_spec() -> ServeSpec:
    """The seconds-long CI serving cell: short run, modest key space."""
    return ServeSpec(
        steps=24,
        rate_per_step=5.0,
        slots=32,
        key_space=256,
        interval=8,
        seed=2026,
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="sharded resilient KV service with open-loop traffic and latency SLOs",
    )
    add_common_arguments(parser, default_seed=2026)
    parser.add_argument(
        "--backends", type=csv, default=("sim",),
        help="comma-separated backends to compare on identical traffic",
    )
    parser.add_argument(
        "--stores", type=csv, default=("memory",),
        help="comma-separated checkpoint stores to compare",
    )
    parser.add_argument(
        "--recoveries", type=csv, default=("global", "localized", "degraded"),
        help="comma-separated recovery protocols to compare (default: all three)",
    )
    parser.add_argument(
        "--delivery", default="reliable",
        help=f"delivery mode every cell serves under "
             f"(registered: {', '.join(available('delivery'))})",
    )
    parser.add_argument("--steps", type=int, default=40, help="job steps to serve")
    parser.add_argument(
        "--rate", type=float, default=6.0, metavar="REQS_PER_STEP",
        help="mean request arrivals per job step (default 6.0)",
    )
    parser.add_argument(
        "--zipf", type=float, default=1.1, metavar="S",
        help="key-skew exponent (0 = uniform; default 1.1)",
    )
    parser.add_argument(
        "--read-fraction", type=float, default=0.5,
        help="fraction of requests that are reads (default 0.5)",
    )
    parser.add_argument(
        "--key-space", type=int, default=512, help="distinct client keys"
    )
    parser.add_argument("--slots", type=int, default=64, help="slots per shard")
    parser.add_argument(
        "--interval", type=int, default=10, help="checkpoint interval in steps"
    )
    parser.add_argument(
        "--compression", type=float, default=1000.0,
        help="virtual-time compression factor (default 1000x)",
    )
    parser.add_argument("--nprocs", type=int, default=8, help="ranks (= shards) per job")
    parser.add_argument(
        "--procs-per-node", type=int, default=2, help="ranks packed per node"
    )
    parser.add_argument(
        "--kill-frac", type=float, default=0.45,
        help="kill offset as a fraction of the probe's op stream (default 0.45)",
    )
    parser.add_argument(
        "--kill-kind", default="node_kill",
        help="pod_kill (one rank) or node_kill (every rank of the node)",
    )
    parser.add_argument(
        "--executor", choices=("serial", "thread"), default="serial",
        help="how comparison cells are dispatched (report is identical either way)",
    )
    parser.add_argument(
        "--requests", default=None, metavar="PATH",
        help="write the canonical JSONL request log (all cells) here",
    )
    add_report_arguments(parser, regression_metric="p99")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if handle_list(args):
        return 0
    if args.quick:
        base = quick_spec()
    else:
        base = ServeSpec(
            delivery=args.delivery,
            steps=args.steps,
            rate_per_step=args.rate,
            zipf_s=args.zipf,
            read_fraction=args.read_fraction,
            key_space=args.key_space,
            slots=args.slots,
            interval=args.interval,
            compression=args.compression,
            seed=args.seed,
            nprocs=args.nprocs,
            procs_per_node=args.procs_per_node,
            kill_frac=args.kill_frac,
            kill_kind=args.kill_kind,
        )
    with trace_run(args):
        results = run_slo_comparison(
            base,
            recoveries=args.recoveries,
            backends=args.backends,
            stores=args.stores,
            executor=args.executor,
        )

    json_text = report_json(results)
    write_outputs(args, render_markdown(results), json_text)
    if args.requests:
        count = write_requests(results, args.requests)
        print(f"{count} request rows written to {args.requests}")
    return run_gates(
        args,
        check_invariants=lambda: check_serve_invariants(results),
        invariants_message=(
            "invariants hold (localized recovery p99 < global; "
            "degraded errs but stays flat)"
        ),
        check_baseline=lambda baseline, ratio: check_against_baseline(
            json.loads(json_text), baseline, max_ratio=ratio
        ),
    )


if __name__ == "__main__":
    raise SystemExit(main())
