"""``python -m repro.serve`` — sharded KV service under failures, SLO report.

Examples::

    # The default comparison: one seeded NODE_KILL against all three
    # recovery protocols on identical traffic, SLO table on stdout:
    python -m repro.serve

    # The same grid on the real-process backend too, with the canonical
    # request log and JSON report written out:
    python -m repro.serve --backends sim,proc \\
        --requests requests.jsonl --output serve.json

    # The CI gate: quick smoke, schema-validated log, baseline comparison:
    python -m repro.serve --quick --backends sim,proc \\
        --check-baseline benchmarks/BENCH_serve_baseline.json

    # What can I put on each axis?
    python -m repro.serve --list

Exit status 1 when a comparison invariant is violated or the baseline gate
fails.
"""

from __future__ import annotations

import argparse
import sys

from repro.registry import render_available
from repro.serve.engine import ServeSpec, run_slo_comparison
from repro.serve.report import (
    check_against_baseline,
    check_serve_invariants,
    render_markdown,
    report_json,
    write_requests,
)

__all__ = ["main"]


def _csv(value: str) -> tuple[str, ...]:
    return tuple(item.strip() for item in value.split(",") if item.strip())


def quick_spec() -> ServeSpec:
    """The seconds-long CI serving cell: short run, modest key space."""
    return ServeSpec(
        steps=24,
        rate_per_step=5.0,
        slots=32,
        key_space=256,
        interval=8,
        seed=2026,
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="sharded resilient KV service with open-loop traffic and latency SLOs",
    )
    parser.add_argument(
        "--list", action="store_true",
        help="print every registered component of every kind and exit",
    )
    parser.add_argument(
        "--backends", type=_csv, default=("sim",),
        help="comma-separated backends to compare on identical traffic",
    )
    parser.add_argument(
        "--stores", type=_csv, default=("memory",),
        help="comma-separated checkpoint stores to compare",
    )
    parser.add_argument(
        "--recoveries", type=_csv, default=("global", "localized", "degraded"),
        help="comma-separated recovery protocols to compare (default: all three)",
    )
    parser.add_argument("--steps", type=int, default=40, help="job steps to serve")
    parser.add_argument(
        "--rate", type=float, default=6.0, metavar="REQS_PER_STEP",
        help="mean request arrivals per job step (default 6.0)",
    )
    parser.add_argument(
        "--zipf", type=float, default=1.1, metavar="S",
        help="key-skew exponent (0 = uniform; default 1.1)",
    )
    parser.add_argument(
        "--read-fraction", type=float, default=0.5,
        help="fraction of requests that are reads (default 0.5)",
    )
    parser.add_argument(
        "--key-space", type=int, default=512, help="distinct client keys"
    )
    parser.add_argument("--slots", type=int, default=64, help="slots per shard")
    parser.add_argument(
        "--interval", type=int, default=10, help="checkpoint interval in steps"
    )
    parser.add_argument(
        "--compression", type=float, default=1000.0,
        help="virtual-time compression factor (default 1000x)",
    )
    parser.add_argument("--seed", type=int, default=2026, help="traffic + plan seed")
    parser.add_argument("--nprocs", type=int, default=8, help="ranks (= shards) per job")
    parser.add_argument(
        "--procs-per-node", type=int, default=2, help="ranks packed per node"
    )
    parser.add_argument(
        "--kill-frac", type=float, default=0.45,
        help="kill offset as a fraction of the probe's op stream (default 0.45)",
    )
    parser.add_argument(
        "--kill-kind", default="node_kill",
        help="pod_kill (one rank) or node_kill (every rank of the node)",
    )
    parser.add_argument(
        "--executor", choices=("serial", "thread"), default="serial",
        help="how comparison cells are dispatched (report is identical either way)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="run the seconds-long CI serving configuration",
    )
    parser.add_argument(
        "--output", default=None, metavar="PATH", help="write the JSON report here"
    )
    parser.add_argument(
        "--requests", default=None, metavar="PATH",
        help="write the canonical JSONL request log (all cells) here",
    )
    parser.add_argument(
        "--markdown", default=None, metavar="PATH",
        help="write the markdown SLO table here (always printed to stdout)",
    )
    parser.add_argument(
        "--check-baseline", default=None, metavar="PATH",
        help="compare against a baseline JSON report and exit 1 on regression",
    )
    parser.add_argument(
        "--max-regression", type=float, default=2.0,
        help="tolerated p99 ratio against the baseline (default 2.0)",
    )
    parser.add_argument(
        "--skip-invariants", action="store_true",
        help="do not gate on the comparison invariants (debugging only)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list:
        print(render_available())
        return 0
    if args.quick:
        base = quick_spec()
    else:
        base = ServeSpec(
            steps=args.steps,
            rate_per_step=args.rate,
            zipf_s=args.zipf,
            read_fraction=args.read_fraction,
            key_space=args.key_space,
            slots=args.slots,
            interval=args.interval,
            compression=args.compression,
            seed=args.seed,
            nprocs=args.nprocs,
            procs_per_node=args.procs_per_node,
            kill_frac=args.kill_frac,
            kill_kind=args.kill_kind,
        )
    results = run_slo_comparison(
        base,
        recoveries=args.recoveries,
        backends=args.backends,
        stores=args.stores,
        executor=args.executor,
    )

    markdown = render_markdown(results)
    print(markdown, end="")
    if args.requests:
        count = write_requests(results, args.requests)
        print(f"{count} request rows written to {args.requests}")
    report = None
    if args.output or args.check_baseline:
        import json

        report = json.loads(report_json(results))
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(report_json(results))
        print(f"report written to {args.output}")
    if args.markdown:
        with open(args.markdown, "w") as fh:
            fh.write(markdown)
        print(f"summary written to {args.markdown}")

    status = 0
    if not args.skip_invariants:
        violations = check_serve_invariants(results)
        for violation in violations:
            print(f"INVARIANT: {violation}", file=sys.stderr)
        if violations:
            status = 1
        else:
            print(
                "invariants hold (localized recovery p99 < global; "
                "degraded errs but stays flat)"
            )
    if args.check_baseline:
        import json

        with open(args.check_baseline) as fh:
            baseline = json.load(fh)
        failures = check_against_baseline(
            report, baseline, max_ratio=args.max_regression
        )
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        if failures:
            status = 1
        else:
            print(
                f"baseline check passed against {args.check_baseline} "
                f"(tolerance {args.max_regression:.1f}x)"
            )
    return status


if __name__ == "__main__":
    raise SystemExit(main())
