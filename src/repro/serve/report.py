"""Serve reports: JSON document, request-log JSONL, SLO tables, gates.

The report restates the paper's recovery-protocol trade-off in the language
operators actually use — a per-window SLO table::

    | cell | segment | requests | errors | p50 | p95 | p99 | throughput |

:func:`check_serve_invariants` encodes the headline the comparison exists to
show, on identical seeds and kill plans: a **localized replay** stalls only
the failed shard's requests (its recovery-window p99 stays strictly below a
**global rollback**'s, which re-executes — and re-prices — every key), while
a **degraded continuation** keeps latency flat at the cost of a measurable
error rate.  :func:`check_against_baseline` is the CI regression gate, and
:func:`write_requests` / :func:`load_requests` carry the canonical JSONL
request log whose schema CI validates.
"""

from __future__ import annotations

import json

from repro.errors import ServeError
from repro.serve.engine import ServeResult
from repro.serve.service import STATUSES
from repro.serve.slo import SEGMENT_RECOVERY, SEGMENT_STEADY, SEGMENTS
from repro.serve.traffic import READ, WRITE

__all__ = [
    "report_json",
    "render_markdown",
    "check_serve_invariants",
    "check_against_baseline",
    "write_requests",
    "load_requests",
    "validate_request_row",
]

#: Required keys of one JSONL request-log row (the log's schema).
REQUEST_FIELDS = (
    "rid",
    "frontend",
    "owner",
    "step",
    "op",
    "key",
    "arrival_t",
    "completion_t",
    "latency_s",
    "status",
    "segment",
)


def report_json(results: list[ServeResult]) -> str:
    """Canonical serialization — byte-identical across re-runs and executors.

    The per-request rows travel separately (:func:`write_requests`); the
    report keeps the reduced SLO document plus a status census per cell.
    """
    cells = {}
    for result in results:
        cell = result.as_dict()
        rows = cell.pop("requests")
        census: dict[str, int] = {}
        for row in rows:
            census[row["status"]] = census.get(row["status"], 0) + 1
        cell["request_count"] = len(rows)
        cell["status_counts"] = dict(sorted(census.items()))
        cells[result.spec.cell_key] = cell
    document = {
        "meta": {"engine": "repro.serve", "cells": len(results)},
        "cells": cells,
    }
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


# ----------------------------------------------------------------------
# The request log (canonical JSONL)
# ----------------------------------------------------------------------
def validate_request_row(row: dict) -> None:
    """Schema check for one request-log row; raises :class:`ServeError`."""
    missing = [key for key in REQUEST_FIELDS if key not in row]
    if missing:
        raise ServeError(f"request row missing fields: {', '.join(missing)}")
    if row["op"] not in (READ, WRITE):
        raise ServeError(f"request row has unknown op {row['op']!r}")
    if row["status"] not in STATUSES:
        raise ServeError(f"request row has unknown status {row['status']!r}")
    if row["segment"] not in SEGMENTS:
        raise ServeError(f"request row has unknown segment {row['segment']!r}")
    for key in ("rid", "frontend", "owner", "step", "key"):
        if not isinstance(row[key], int):
            raise ServeError(f"request row field {key!r} must be an integer")
    if not isinstance(row["arrival_t"], (int, float)):
        raise ServeError("request row field 'arrival_t' must be numeric")
    for key in ("completion_t", "latency_s"):
        if row[key] is not None and not isinstance(row[key], (int, float)):
            raise ServeError(f"request row field {key!r} must be numeric or null")


def write_requests(results: list[ServeResult], path) -> int:
    """Write every cell's request rows as canonical JSONL; returns the count.

    Each line carries its ``cell`` key so one file holds the whole grid.
    """
    count = 0
    with open(path, "w") as fh:
        for result in results:
            for row in result.rows:
                line = dict(row, cell=result.spec.cell_key)
                fh.write(json.dumps(line, sort_keys=True, separators=(",", ":")))
                fh.write("\n")
                count += 1
    return count


def load_requests(path) -> list[dict]:
    """Read and schema-validate a JSONL request log."""
    rows = []
    with open(path) as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ServeError(f"{path}:{lineno}: not valid JSON: {exc}") from exc
            if "cell" not in row:
                raise ServeError(f"{path}:{lineno}: request row missing 'cell'")
            try:
                validate_request_row(row)
            except ServeError as exc:
                raise ServeError(f"{path}:{lineno}: {exc}") from exc
            rows.append(row)
    return rows


# ----------------------------------------------------------------------
# Markdown
# ----------------------------------------------------------------------
def _fmt_ms(value: float | None) -> str:
    return "—" if value is None else f"{value:.3f}"


def _fmt_rate(value: float | None) -> str:
    return "—" if value is None else f"{value * 100.0:.2f}%"


def _fmt_rps(value: float | None) -> str:
    return "—" if value is None else f"{value:.1f}"


def render_markdown(results: list[ServeResult]) -> str:
    """The grid as markdown: one SLO row per (cell, segment) plus overall."""
    lines = [
        "| cell | segment | requests | errors | error rate "
        "| p50 (ms) | p95 (ms) | p99 (ms) | rps |",
        "|---|---|---|---|---|---|---|---|---|",
    ]
    for result in results:
        cell = result.spec.cell_key
        if result.aborted:
            cell += f" [{result.aborted}]"
        for segment in (*SEGMENTS, "overall"):
            entry = result.slo[segment]
            lat = entry["latency_ms"] or {}
            lines.append(
                f"| {cell} | {segment} | {entry['requests']} | {entry['errors']} "
                f"| {_fmt_rate(entry['error_rate'])} "
                f"| {_fmt_ms(lat.get('p50'))} | {_fmt_ms(lat.get('p95'))} "
                f"| {_fmt_ms(lat.get('p99'))} "
                f"| {_fmt_rps(entry['throughput_rps'])} |"
            )
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Gates
# ----------------------------------------------------------------------
def _segment_p99(result: ServeResult, segment: str) -> float | None:
    latency = result.slo[segment]["latency_ms"]
    return latency["p99"] if latency else None


def check_serve_invariants(results: list[ServeResult]) -> list[str]:
    """The comparison-mode invariants; returns human-readable violations.

    Within every group of cells sharing ``(backend, store)`` — identical
    seed, traffic and kill plan by construction:

    * **localized** recovery-window p99 must be **strictly below global's**
      (replay stalls one shard; rollback re-prices every key) — a group
      where either protocol has no recovery-window requests to compare is a
      violation, not a skip: the plan was built to land mid-traffic;
    * **global** and **localized** must serve with **zero errors** (both
      restore full membership — correctness is their whole price);
    * **degraded** must show a **measurable overall error rate** (the
      excised shard's requests are answered wrong or not at all) while its
      recovery-window p99 stays **flat** — within ``spec.flatness`` × its
      own steady-state p99 (vacuously flat if no request completed in the
      recovery window, which is the point: it barely has one).

    Across backends, cells sharing ``(store, recovery)`` must produce
    byte-identical SLO documents — the house cross-backend guarantee
    extended to the serving layer.
    """
    violations: list[str] = []
    groups: dict[tuple, dict[str, ServeResult]] = {}
    for result in results:
        spec = result.spec
        groups.setdefault((spec.backend, spec.store), {})[spec.recovery] = result

    for (backend, store), cells in sorted(groups.items()):
        label = f"{backend}/{store}"
        for name, result in sorted(cells.items()):
            if result.aborted:
                violations.append(
                    f"{label}/{name}: run aborted with {result.aborted}"
                )
        global_ = cells.get("global")
        localized = cells.get("localized")
        degraded = cells.get("degraded")
        if (
            global_ is not None and localized is not None
            and not global_.aborted and not localized.aborted
        ):
            p99_g = _segment_p99(global_, SEGMENT_RECOVERY)
            p99_l = _segment_p99(localized, SEGMENT_RECOVERY)
            if p99_g is None or p99_l is None:
                violations.append(
                    f"{label}: no recovery-window requests to compare "
                    f"(global p99={p99_g}, localized p99={p99_l})"
                )
            elif p99_l >= p99_g:
                violations.append(
                    f"{label}: localized recovery-window p99 {p99_l:.3f}ms is "
                    f"not strictly below global's {p99_g:.3f}ms"
                )
        for full in (global_, localized):
            if full is None or full.aborted:
                continue
            errors = full.slo["overall"]["errors"]
            if errors:
                violations.append(
                    f"{label}/{full.spec.recovery}: {errors} request errors in a "
                    f"full-recovery cell (must serve everything correctly)"
                )
        if degraded is not None and not degraded.aborted:
            rate = degraded.slo["overall"]["error_rate"]
            if not rate:
                violations.append(
                    f"{label}/degraded: error rate is {rate!r} but the excised "
                    f"shard's requests must surface as errors"
                )
            p99_r = _segment_p99(degraded, SEGMENT_RECOVERY)
            p99_s = _segment_p99(degraded, SEGMENT_STEADY)
            if p99_r is not None and p99_s is not None:
                limit = degraded.spec.flatness * p99_s
                if p99_r > limit:
                    violations.append(
                        f"{label}/degraded: recovery-window p99 {p99_r:.3f}ms "
                        f"exceeds {degraded.spec.flatness:.1f}x steady-state "
                        f"p99 {p99_s:.3f}ms — latency is not flat"
                    )

    by_config: dict[tuple, dict[str, ServeResult]] = {}
    for result in results:
        spec = result.spec
        by_config.setdefault((spec.store, spec.recovery), {})[spec.backend] = result
    for (store, recovery), backends in sorted(by_config.items()):
        if len(backends) < 2:
            continue
        docs = {
            backend: json.dumps(result.slo, sort_keys=True)
            for backend, result in sorted(backends.items())
        }
        reference_backend, reference = next(iter(docs.items()))
        for backend, doc in docs.items():
            if doc != reference:
                violations.append(
                    f"{store}/{recovery}: SLO report differs between backends "
                    f"{reference_backend!r} and {backend!r} — cross-backend "
                    f"determinism broken"
                )
    return violations


def check_against_baseline(
    report: dict, baseline: dict, *, max_ratio: float = 2.0
) -> list[str]:
    """Regression gate against a checked-in baseline report; returns failures.

    Everything in a serving run is virtual-time deterministic, so the
    schedule-shaped quantities (request census, kill plan, recovery counts)
    must match **exactly**; the latency outcomes are gated by ratio — a
    segment's p99 may not exceed ``max_ratio`` × the baseline's — so a
    protocol regression fails CI while legitimate cost-model retuning only
    shifts within the band.
    """
    failures: list[str] = []
    for key, base in baseline.get("cells", {}).items():
        current = report["cells"].get(key)
        if current is None:
            failures.append(f"{key}: cell missing from current report")
            continue
        for exact in (
            "request_count",
            "status_counts",
            "plan",
            "checkpoints",
            "recoveries",
            "excised_ranks",
            "aborted",
            "probe_ops",
        ):
            if current.get(exact) != base.get(exact):
                failures.append(
                    f"{key}: {exact} changed from {base.get(exact)!r} to "
                    f"{current.get(exact)!r}"
                )
        for segment in (*SEGMENTS, "overall"):
            base_lat = base["slo"][segment]["latency_ms"]
            cur_lat = current["slo"][segment]["latency_ms"]
            if (base_lat is None) != (cur_lat is None):
                failures.append(
                    f"{key}: {segment} latency presence changed "
                    f"({base_lat!r} -> {cur_lat!r})"
                )
                continue
            if base_lat is None:
                continue
            base_p99, cur_p99 = base_lat["p99"], cur_lat["p99"]
            if base_p99 > 0 and cur_p99 / base_p99 > max_ratio:
                failures.append(
                    f"{key}: {segment} p99 {cur_p99:.3f}ms is "
                    f"{cur_p99 / base_p99:.2f}x the baseline's {base_p99:.3f}ms "
                    f"(allowed {max_ratio:.1f}x)"
                )
    return failures
